// Ablation — §3.3 two-stage incorrect-ESV filtering. Runs the full
// pipeline on the noisiest-OCR vehicles (LAUNCH X431 cars) with the
// filter on and off, and reports the per-algorithm precision. GP's
// trimmed fitness tolerates unfiltered data better than the least-squares
// baselines — the robustness §4.4 attributes to GP.

#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace dpr;

struct Row {
  std::size_t formulas = 0;
  std::size_t gp = 0, lin = 0, poly = 0;
};

Row run(bool filter) {
  Row row;
  for (const auto car : {vehicle::CarId::kA, vehicle::CarId::kC}) {
    auto options = bench::table_options();
    options.two_stage_filter = filter;
    // Stress the camera: a 6x character error rate (glare / vibration)
    // makes the §3.3 filter's contribution visible.
    options.ocr_rate_scale = 6.0;
    options.video_fps = 4.0;  // fewer frames -> corrupted ones pair more
    core::Campaign campaign(car, options);
    campaign.collect();
    campaign.analyze();
    const auto& report = campaign.report();
    row.formulas += report.formula_signals();
    row.gp += report.gp_correct();
    row.lin += report.linear_correct();
    row.poly += report.polynomial_correct();
  }
  return row;
}

}  // namespace

int main() {
  std::printf("Ablation: two-stage incorrect-ESV filtering (§3.3), LAUNCH "
              "X431 vehicles\n\n");
  std::printf("%-22s %-12s %-14s %-14s %-14s\n", "configuration",
              "#formulas", "GP correct", "LinReg correct", "Poly correct");
  dpr::bench::print_rule(80);
  const auto with = run(true);
  std::printf("%-22s %-12zu %-14zu %-14zu %-14zu\n", "filter ON",
              with.formulas, with.gp, with.lin, with.poly);
  const auto without = run(false);
  std::printf("%-22s %-12zu %-14zu %-14zu %-14zu\n", "filter OFF",
              without.formulas, without.gp, without.lin, without.poly);
  dpr::bench::print_rule(80);
  std::printf("\nExpected: disabling the filter costs the least-squares "
              "baselines more than GP.\n");
  const long gp_loss = static_cast<long>(with.gp) - static_cast<long>(without.gp);
  const long ls_loss = static_cast<long>(with.lin + with.poly) -
                       static_cast<long>(without.lin + without.poly);
  std::printf("GP loss: %ld, least-squares loss: %ld\n", gp_loss, ls_loss);
  return 0;
}
