// Ablation — Table 2 pre/post scaling. The paper motivates the scaling
// with GP failure modes on extreme target ranges ("if most values of Y
// are extremely small ... GP will directly set a constant"). This bench
// runs the GP engine with and without scaling on targets spanning six
// orders of magnitude and reports the recovery rate per range.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "gp/engine.hpp"
#include "util/rng.hpp"

namespace {

using namespace dpr;

correlate::Dataset make_dataset(double scale, util::Rng& rng) {
  // Truth: Y = scale * (3 sqrt(X) + 5) over raw bytes — outside the
  // affine/degree-2 bases, so the evolutionary search itself must find
  // the structure (and feels the operand/target ranges).
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(0.0, 255.0);
    dataset.points.push_back(
        correlate::DataPoint{{x}, scale * (3.0 * std::sqrt(x) + 5.0)});
  }
  return dataset;
}

struct AblationRow {
  double recovered = 0;         // % runs matching the ground truth
  double constant_collapse = 0; // % runs degenerating to a constant
};

AblationRow recovery_rate(double scale, bool use_scaling) {
  util::Rng rng(0xAB1A7E);
  int correct = 0;
  int collapsed = 0;
  const int trials = 24;
  for (int trial = 0; trial < trials; ++trial) {
    const auto dataset = make_dataset(scale, rng);
    gp::GpConfig config;
    config.population = 192;
    config.max_generations = 30;
    config.use_scaling = use_scaling;
    config.seed = 0x5CA1E + static_cast<std::uint64_t>(trial);
    const auto result = gp::infer_formula(dataset, config);
    if (!result) continue;
    const auto truth = [scale](std::span<const double> xs) {
      return scale * (3.0 * std::sqrt(xs[0]) + 5.0);
    };
    if (gp::mean_relative_error(*result, dataset, truth) < 0.03) ++correct;
    // "GP will directly set a constant value as the formula" — the
    // failure mode Table 2 exists to prevent.
    bool has_variable = false;
    for (const auto* node : const_cast<gp::Expr&>(result->best).nodes()) {
      if (node->op == gp::Op::kVar) has_variable = true;
    }
    if (!has_variable) ++collapsed;
  }
  return AblationRow{100.0 * correct / trials, 100.0 * collapsed / trials};
}

}  // namespace

int main() {
  std::printf("Ablation: Table 2 pre/post scaling in GP inference\n");
  std::printf("(truth Y = k*(3*sqrt(X) + 5); recovery rate over 24 seeds)\n\n");
  std::printf("%-14s %-24s %-24s\n", "target scale",
              "with scaling (rec%/const%)",
              "without scaling (rec%/const%)");
  dpr::bench::print_rule(64);
  double with_total = 0, without_total = 0;
  const double scales[] = {1e-4, 1e-2, 1.0, 1e2, 1e4};
  for (const double scale : scales) {
    const auto with_scaling = recovery_rate(scale, true);
    const auto without_scaling = recovery_rate(scale, false);
    std::printf("%-14g %6.0f / %-15.0f %6.0f / %-15.0f\n", scale,
                with_scaling.recovered, with_scaling.constant_collapse,
                without_scaling.recovered,
                without_scaling.constant_collapse);
    with_total += with_scaling.recovered;
    without_total += without_scaling.recovered;
  }
  dpr::bench::print_rule(64);
  std::printf("mean recovery %-24.0f %-24.0f\n", with_total / 5,
              without_total / 5);
  std::printf("\nExpected: scaling dominates on extreme ranges (the Table 2 "
              "design rationale).\n");
  return with_total >= without_total ? 0 : 1;
}
