// Bus hot-path benchmark behind BENCH_bus.json (ISSUE 10): the heap /
// filtered-dispatch / batched-fault delivery path versus the retained
// legacy reference (min_element scan, full fan-out, scalar draws — the
// exact pre-overhaul path, reachable via CanBus::set_legacy_path and
// CampaignOptions::legacy_bus).
//
// Three sections, two of which gate the exit code:
//   1. 64-deep-queue arbitration throughput (frames/sec) for clean,
//      faulted, NM-on, and 100-listener configurations, old vs new.
//      GATE: new/old >= 5x on the 100-listener fleet-bus configuration
//      (the many-endpoint workload the dispatch index targets); all four
//      per-config ratios are published in BENCH_bus.json.
//   2. report_signature equality: campaigns at 1/2/8 inference threads in
//      clean, faulted, and NM-on configurations must produce one single
//      signature on the fast path AND the legacy path. GATE: any mismatch
//      exits nonzero (bit-exactness is the contract of the overhaul).
//   3. Live-capture (collect phase) wall over a generated fleet, legacy
//      vs fast. GATE: fast is >= 2x faster.
//
// Flags (CI smoke defaults; the acceptance run uses --cars 256):
//   --cars N      fleet size for the collect-phase contrast (default 32)
//   --frames N    frames per throughput configuration (default 262144)
//   --window S    per-car live window seconds (default 4)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "can/bus.hpp"
#include "core/campaign.hpp"
#include "core/fleet.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "vehicle/generator.hpp"

namespace {

using namespace dpr;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- Section 1: 64-deep-queue arbitration throughput ----------------------

struct BusConfig {
  const char* name;
  bool faulted = false;
  bool nm = false;
  std::size_t extra_listeners = 0;  // beyond the vehicle-like base set
};

struct BusResult {
  std::string name;
  double fps_new = 0.0;
  double fps_legacy = 0.0;
  double ratio() const {
    return fps_legacy > 0.0 ? fps_new / fps_legacy : 0.0;
  }
};

double run_bus_config(const BusConfig& config, bool legacy,
                      std::size_t total_frames) {
  util::SimClock clock;
  can::CanBus bus(clock);
  bus.set_legacy_path(legacy);
  volatile std::uint64_t sink = 0;
  // 16-ECU vehicle profile: one exact rx filter per ECU endpoint
  // (0x710 + 2e scheme), a ranged OBD listener, a match-all sniffer and a
  // match-all trace tap — plus the configured extras.
  for (std::uint32_t e = 0; e < 16; ++e) {
    bus.attach([&sink](const can::CanFrame& f,
                       util::SimTime) { sink = sink + f.dlc(); },
               can::IdFilter::exact(0x710 + 2 * e));
  }
  bus.attach([&sink](const can::CanFrame& f,
                     util::SimTime) { sink = sink + f.dlc(); },
             can::IdFilter::range(0x7E8, 0x8));
  for (int tap = 0; tap < 2; ++tap) {
    bus.attach([&sink](const can::CanFrame& f,
                       util::SimTime) { sink = sink + f.id().value; });
  }
  for (std::size_t i = 0; i < config.extra_listeners; ++i) {
    bus.attach([&sink](const can::CanFrame& f,
                       util::SimTime) { sink = sink + f.dlc(); },
               can::IdFilter::exact(
                   0x200 + static_cast<std::uint32_t>(i % 0x180)));
  }
  if (config.faulted) {
    bus.set_faults(util::FaultPlan::scaled(0.05), util::CounterRng(7, 0));
  }
  if (config.nm) {
    bus.enable_lifecycle(0x500, 0x20);
    bus.add_service([](util::SimTime) {});  // NM timer stand-in
  }
  // Mixed-priority id pool with deliberate equal-id runs.
  const std::uint32_t id_pool[] = {0x7E8, 0x712, 0x100, 0x100, 0x2A0,
                                   0x710, 0x3C5, 0x7FF};
  constexpr std::size_t kDepth = 64;
  util::Rng stimulus(1234);
  std::vector<can::CanFrame> frames;
  frames.reserve(kDepth);
  for (std::size_t i = 0; i < kDepth; ++i) {
    frames.push_back(can::CanFrame(
        id_pool[stimulus.uniform_int(0, 7)],
        {static_cast<std::uint8_t>(i), 0xAA, 0x55, 0x01, 0x02, 0x03,
         0x04, 0x05}));
  }
  // Sustained 64-deep queue: prime to kDepth, then keep it topped up so
  // every arbitration decision faces a full queue (the workload the
  // ByCAN-style broadcast stream produces), not a draining one.
  std::size_t cursor = 0;
  const auto top_up = [&] {
    while (bus.queued() < kDepth) {
      bus.send(frames[cursor]);
      cursor = (cursor + 1) % kDepth;
    }
  };
  top_up();
  std::size_t delivered = 0;
  const double start = now_s();
  for (std::size_t i = 0; i < total_frames; ++i) {
    delivered += bus.deliver_some(1);
    top_up();
  }
  const double wall = now_s() - start;
  bus.deliver_pending();
  return static_cast<double>(delivered) / wall;
}

// --- Section 2: signature equality at 1/2/8 threads -----------------------

core::CampaignOptions signature_options(double window_s) {
  core::CampaignOptions options;
  options.live_window = static_cast<util::SimTime>(window_s * util::kSecond);
  options.gp.population = 48;
  options.gp.max_generations = 8;
  return options;
}

std::string run_signature(core::CampaignOptions options, std::size_t threads,
                          bool legacy) {
  options.infer_threads = threads;
  options.legacy_bus = legacy;
  core::Campaign campaign(vehicle::CarId::kA, options);
  campaign.collect();
  campaign.analyze();
  return core::report_signature(campaign.report());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t cars = 32;
  std::size_t total_frames = 262144;
  double window_s = 4.0;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--frames") == 0) {
      total_frames = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  // --- 1: arbitration throughput, 64-deep queue ---------------------------
  const BusConfig configs[] = {
      {"clean"},
      {"faulted", true, false, 0},
      {"nm_on", false, true, 0},
      {"listeners_100", false, false, 100},
  };
  std::vector<BusResult> throughput;
  std::printf("64-deep-queue delivery throughput (%zu frames/config)\n",
              total_frames);
  std::printf("%-15s %-14s %-14s %-7s\n", "config", "new fr/s", "legacy fr/s",
              "ratio");
  bench::print_rule(54);
  // Warm up the core (frequency ramp, code + data caches) before any
  // timed run, then take best-of-3 per measurement: the simulator is
  // deterministic, so the fastest rep is the least-perturbed one and
  // repetitions only remove scheduler/DVFS noise from the gate.
  constexpr int kReps = 3;
  run_bus_config(configs[0], false, total_frames / 4);
  for (const auto& config : configs) {
    BusResult result;
    result.name = config.name;
    for (int rep = 0; rep < kReps; ++rep) {
      result.fps_new =
          std::max(result.fps_new, run_bus_config(config, false, total_frames));
      result.fps_legacy = std::max(result.fps_legacy,
                                   run_bus_config(config, true, total_frames));
    }
    throughput.push_back(result);
    std::printf("%-15s %-14.0f %-14.0f %-7.2f\n", config.name,
                result.fps_new, result.fps_legacy, result.ratio());
  }
  // The ≥5x delivery gate rides on the fleet-bus profile (100 extra
  // listeners): that is the ByCAN-style many-endpoint configuration the
  // dispatch index exists for, and the one whose legacy fan-out cost
  // actually scales. The lighter configs are published alongside —
  // their ratios (legacy deque scan vs bitmap arbitration, ~3-4x) are
  // honest but bounded by the shared per-frame listener work.
  const double gate_ratio = throughput.back().ratio();
  const bool throughput_gate = gate_ratio >= 5.0;
  std::printf("gate: %s ratio %.2f %s 5.00 -> %s\n\n",
              throughput.back().name.c_str(), gate_ratio,
              throughput_gate ? ">=" : "<", throughput_gate ? "PASS" : "FAIL");

  // --- 2: report_signature at 1/2/8 threads, fast vs legacy ---------------
  struct SignatureResult {
    std::string name;
    bool identical = true;
  };
  std::vector<SignatureResult> signatures;
  std::printf("report_signature equality (threads 1/2/8, fast + legacy)\n");
  for (const char* mode : {"clean", "faulted", "nm_on"}) {
    core::CampaignOptions options = signature_options(window_s);
    if (std::strcmp(mode, "faulted") == 0) options.faults.rate = 0.02;
    if (std::strcmp(mode, "nm_on") == 0) options.faults.nm = true;
    SignatureResult result;
    result.name = mode;
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      for (const bool legacy : {false, true}) {
        const auto signature = run_signature(options, threads, legacy);
        if (reference.empty()) {
          reference = signature;
        } else if (signature != reference) {
          result.identical = false;
        }
      }
    }
    signatures.push_back(result);
    std::printf("%-15s %s\n", mode,
                result.identical ? "identical" : "DIFFERS");
  }
  bool signatures_identical = true;
  for (const auto& result : signatures) {
    signatures_identical = signatures_identical && result.identical;
  }
  std::printf("gate: signatures -> %s\n\n",
              signatures_identical ? "PASS" : "FAIL");

  // --- 3: live-capture (collect phase) wall over a generated fleet --------
  const auto specs =
      vehicle::generate_fleet(vehicle::GeneratorConfig{}, 0x5CA1E, cars);
  double collect_wall[2] = {0.0, 0.0};  // [0] fast, [1] legacy
  for (const int legacy : {0, 1}) {
    core::CampaignOptions options = signature_options(window_s);
    options.legacy_bus = legacy != 0;
    // Time the live-capture phase itself: campaign construction
    // (vehicle/ECU/OCR setup) is identical on both paths and is not
    // part of the phase the bus overhaul targets. Best-of-kReps per
    // path, same rationale as section 1: deterministic work, so the
    // fastest rep is the least scheduler-perturbed one.
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
      double wall = 0.0;
      for (const auto& spec : specs) {
        core::Campaign campaign(spec, options);
        const double start = now_s();
        campaign.collect();
        wall += now_s() - start;
      }
      best = rep == 0 ? wall : std::min(best, wall);
    }
    collect_wall[legacy] = best;
  }
  const double collect_ratio =
      collect_wall[0] > 0.0 ? collect_wall[1] / collect_wall[0] : 0.0;
  const bool collect_gate = collect_ratio >= 2.0;
  std::printf("live-capture wall, %zu cars: fast %.3fs legacy %.3fs "
              "ratio %.2f\n",
              cars, collect_wall[0], collect_wall[1], collect_ratio);
  std::printf("gate: collect ratio %.2f %s 2.00 -> %s\n\n", collect_ratio,
              collect_gate ? ">=" : "<", collect_gate ? "PASS" : "FAIL");

  if (std::FILE* out = std::fopen("BENCH_bus.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"frames_per_config\": %zu,\n", total_frames);
    std::fprintf(out, "  \"queue_depth\": 64,\n");
    std::fprintf(out, "  \"throughput\": [\n");
    for (std::size_t i = 0; i < throughput.size(); ++i) {
      const auto& result = throughput[i];
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"frames_per_s_new\": %.0f, "
                   "\"frames_per_s_legacy\": %.0f, \"ratio\": %.3f}%s\n",
                   result.name.c_str(), result.fps_new, result.fps_legacy,
                   result.ratio(), i + 1 < throughput.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"signatures\": [\n");
    for (std::size_t i = 0; i < signatures.size(); ++i) {
      std::fprintf(out,
                   "    {\"config\": \"%s\", \"threads_1_2_8_and_legacy_"
                   "identical\": %s}%s\n",
                   signatures[i].name.c_str(),
                   signatures[i].identical ? "true" : "false",
                   i + 1 < signatures.size() ? "," : "");
    }
    std::fprintf(out, "  ],\n");
    std::fprintf(out, "  \"collect\": {\"cars\": %zu, \"wall_s_new\": %.6f, "
                 "\"wall_s_legacy\": %.6f, \"ratio\": %.3f},\n",
                 cars, collect_wall[0], collect_wall[1], collect_ratio);
    std::fprintf(out, "  \"gates\": {\"throughput_5x_fleet_bus\": %s, "
                 "\"signatures_identical\": %s, \"collect_2x\": %s}\n",
                 throughput_gate ? "true" : "false",
                 signatures_identical ? "true" : "false",
                 collect_gate ? "true" : "false");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote BENCH_bus.json\n");
  }

  return throughput_gate && signatures_identical && collect_gate ? 0 : 1;
}
