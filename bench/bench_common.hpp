#pragma once
// Shared helpers for the table-reproduction benches.

#include <cstdio>
#include <string>

#include "core/campaign.hpp"

namespace dpr::bench {

/// Campaign options used by the table benches: long enough windows for
/// stable datasets, GP sized to finish the 18-car sweep on a laptop.
inline core::CampaignOptions table_options() {
  core::CampaignOptions options;
  options.live_window = 16 * util::kSecond;
  options.video_fps = 10.0;
  options.gp.population = 192;
  options.gp.max_generations = 30;  // the paper's cap
  // Fan per-signal inferences across all cores via gp::BatchRunner; the
  // recovered formulas are identical to a serial run.
  options.infer_threads = 0;
  return options;
}

inline void print_rule(int width = 72) {
  for (int i = 0; i < width; ++i) std::putchar('-');
  std::putchar('\n');
}

inline std::string percent(std::size_t num, std::size_t den) {
  if (den == 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%",
                100.0 * static_cast<double>(num) /
                    static_cast<double>(den));
  return buf;
}

}  // namespace dpr::bench
