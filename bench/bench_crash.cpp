// Crash-point sweep behind BENCH_crash.json (ISSUE 9): for every
// registered DPR_CRASH_POINT site, fork a child that arms the site and
// runs a checkpointed fleet until the site kills it with
// _exit(util::kCrashExitCode) — the deterministic stand-in for SIGKILL —
// then resume in the parent and require the stitched fleet signature to
// be byte-identical to an uninterrupted run. The sweep repeats at 1, 2
// and 8 fleet threads.
//
// Four properties are asserted (nonzero exit on violation):
//   1. Liveness: every registered crash-point site is actually hit by a
//      checkpointed fleet run (counting mode) — no dead sites.
//   2. Harmlessness: a checkpointed run with the registry idle produces
//      the same signature as a run without checkpointing at all.
//   3. Crash fidelity: an armed child dies with kCrashExitCode, never
//      with a clean exit (which would mean the site failed to fire).
//   4. Resume equivalence: healing + resuming the crashed directory
//      reproduces the uninterrupted signature at every thread count.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --cars N        first N catalog cars (default 2)
//   --window S      per-ECU live window seconds (default 4)
//   --population P  GP population (default 48)
//   --seed N        campaign seed (default CampaignOptions')

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "util/crash.hpp"

namespace {

using namespace dpr;

struct SweepResult {
  std::size_t threads = 0;
  std::string site;
  std::uint64_t hits = 0;      ///< counting-mode hits at this thread count
  int crash_status = -1;       ///< child exit status (must be crash code)
  bool resumed_ok = false;     ///< resumed signature == fresh signature
  std::size_t salvaged = 0;    ///< ckpt_salvaged reported by the resume
  std::size_t quarantined = 0; ///< ckpt_quarantined reported by the resume
};

core::FleetOptions fleet_options(std::size_t threads, double window_s,
                                 std::size_t population, std::uint64_t seed,
                                 const std::string& checkpoint_dir,
                                 bool resume) {
  core::FleetOptions options;
  options.fleet_threads = threads;
  options.campaign.seed = seed;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;
  options.campaign.gp.max_generations = 8;
  options.campaign.checkpoint_dir = checkpoint_dir;
  options.campaign.resume = resume;
  return options;
}

std::vector<vehicle::CarId> first_cars(std::size_t n) {
  std::vector<vehicle::CarId> cars;
  for (const auto& spec : vehicle::catalog()) {
    if (cars.size() >= n) break;
    cars.push_back(spec.id);
  }
  return cars;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_cars = 2;
  double window_s = 4.0;
  std::size_t population = 48;
  std::uint64_t seed = core::CampaignOptions{}.seed;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = std::strtoull(next(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      seed = std::strtoull(next(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  const auto cars = first_cars(n_cars);
  const std::string ckpt_dir = "ckpt_crash_sweep";
  const std::size_t thread_counts[] = {1, 2, 8};
  std::size_t failures = 0;

  // Reference: one uninterrupted, uncheckpointed run. Thread-count
  // invariance of this signature is re-proven below by comparing every
  // resumed run at 1/2/8 threads against this single reference.
  std::printf("bench_crash: %zu cars, window %.1fs, population %zu\n",
              cars.size(), window_s, population);
  const std::string fresh = core::fleet_signature(
      core::FleetRunner(
          fleet_options(1, window_s, population, seed, "", false))
          .run(cars));

  std::vector<SweepResult> results;
  for (const std::size_t threads : thread_counts) {
    // Counting pass: a checkpointed run with no site armed. Proves both
    // that checkpointing is signature-neutral and that every registered
    // site is live under this workload.
    std::filesystem::remove_all(ckpt_dir);
    util::reset_crash_point_hits();
    util::set_crash_point_counting(true);
    const std::string counted = core::fleet_signature(
        core::FleetRunner(fleet_options(threads, window_s, population, seed,
                                        ckpt_dir, false))
            .run(cars));
    util::set_crash_point_counting(false);
    if (counted != fresh) {
      std::fprintf(stderr,
                   "FAIL: checkpointed run diverged from fresh at %zu "
                   "threads (registry idle)\n",
                   threads);
      ++failures;
    }

    for (const char* site : util::crash_point_sites()) {
      SweepResult result;
      result.threads = threads;
      result.site = site;
      result.hits = util::crash_point_hits(site);
      if (result.hits == 0) {
        std::fprintf(stderr, "FAIL: site %s never hit at %zu threads\n",
                     site, threads);
        ++failures;
        results.push_back(result);
        continue;
      }

      // Crash child: fresh directory, site armed for its first hit.
      std::filesystem::remove_all(ckpt_dir);
      const pid_t child = fork();
      if (child < 0) {
        std::perror("fork");
        return 1;
      }
      if (child == 0) {
        util::arm_crash_point(site, 1);
        core::FleetRunner(fleet_options(threads, window_s, population, seed,
                                        ckpt_dir, false))
            .run(cars);
        _exit(7);  // survived a run that was armed to die: sweep failure
      }
      int status = 0;
      if (waitpid(child, &status, 0) != child) {
        std::perror("waitpid");
        return 1;
      }
      result.crash_status =
          WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
      if (result.crash_status != util::kCrashExitCode) {
        std::fprintf(stderr,
                     "FAIL: child armed at %s exited %d (want %d) at %zu "
                     "threads\n",
                     site, result.crash_status, util::kCrashExitCode,
                     threads);
        ++failures;
      }

      // Resume over the crashed directory: heal, migrate, re-run the lost
      // phase — and land on the uninterrupted signature.
      const auto summary =
          core::FleetRunner(fleet_options(threads, window_s, population,
                                          seed, ckpt_dir, true))
              .run(cars);
      result.salvaged = summary.ckpt_salvaged;
      result.quarantined = summary.ckpt_quarantined;
      result.resumed_ok = core::fleet_signature(summary) == fresh;
      if (!result.resumed_ok) {
        std::fprintf(stderr,
                     "FAIL: resume after crash at %s diverged at %zu "
                     "threads\n",
                     site, threads);
        ++failures;
      }
      std::printf("  %zu threads  %-24s hits=%-4llu crash=%-3d resume=%s\n",
                  threads, site,
                  static_cast<unsigned long long>(result.hits),
                  result.crash_status, result.resumed_ok ? "ok" : "FAIL");
      results.push_back(result);
    }
  }
  std::filesystem::remove_all(ckpt_dir);

  if (std::FILE* out = std::fopen("BENCH_crash.json", "w")) {
    std::fprintf(out,
                 "{\n  \"cars\": %zu, \"window_s\": %.2f, "
                 "\"population\": %zu, \"sites\": %zu, \"failures\": %zu,\n"
                 "  \"sweeps\": [\n",
                 cars.size(), window_s, population,
                 util::crash_point_sites().size(), failures);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(out,
                   "    {\"threads\": %zu, \"site\": \"%s\", \"hits\": "
                   "%llu, \"crash_status\": %d, \"resumed_ok\": %s, "
                   "\"salvaged\": %zu, \"quarantined\": %zu}%s\n",
                   r.threads, r.site.c_str(),
                   static_cast<unsigned long long>(r.hits), r.crash_status,
                   r.resumed_ok ? "true" : "false", r.salvaged,
                   r.quarantined, i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
  }

  if (failures != 0) {
    std::fprintf(stderr, "bench_crash: %zu failure(s)\n", failures);
    return 1;
  }
  std::printf("bench_crash: every site crashed and resumed to the "
              "uninterrupted signature at 1/2/8 threads\n");
  return 0;
}
