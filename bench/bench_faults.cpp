// Fault-resilience benchmark behind BENCH_faults.json: sweep the bus /
// server fault rate over a small fleet and record how much of the
// reverse-engineering result the retry/timeout transaction stack
// preserves — GP accuracy, retries spent, exhausted transactions,
// per-car ok/failed status and raw bus fault counters per rate.
//
// Two properties are asserted (nonzero exit on violation):
//   1. Determinism: a faulty run replays bit-identically (same
//      fleet_signature) across 1, 2 and 8 fleet threads.
//   2. Graceful degradation: every campaign in the sweep completes —
//      faults degrade accuracy, they never abort a car.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --cars N        first N catalog cars (default 3)
//   --threads N     fleet threads for the sweep runs (default 2)
//   --window S      per-ECU live window seconds (default 8)
//   --population P  GP population (default 96)
//   --seed N        fault stream seed (default FaultConfig's)
//   --rates a,b,..  comma-separated fault rates
//                   (default 0,0.002,0.005,0.01,0.02)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"

namespace {

using namespace dpr;

struct SweepPoint {
  double rate = 0.0;
  double gp_accuracy = 0.0;        // gp_correct / formula_signals
  std::size_t signals = 0;
  std::size_t formula_signals = 0;
  std::size_t gp_correct = 0;
  std::size_t cars_ok = 0;
  std::size_t cars_failed = 0;
  util::TransactStats tx;
  util::FaultStats bus;
  double wall_s = 0.0;
};

SweepPoint summarize(double rate, const core::FleetSummary& summary) {
  SweepPoint point;
  point.rate = rate;
  point.signals = summary.total_signals();
  point.formula_signals = summary.total_formula_signals();
  point.gp_correct = summary.total_gp_correct();
  point.gp_accuracy =
      point.formula_signals == 0
          ? 1.0
          : static_cast<double>(point.gp_correct) /
                static_cast<double>(point.formula_signals);
  point.cars_ok = summary.cars_ok();
  point.cars_failed = summary.cars_failed();
  point.tx = summary.total_transactions();
  for (const auto& report : summary.reports) {
    point.bus += report.bus_faults;
  }
  point.wall_s = summary.wall_s;
  return point;
}

void write_point_json(std::FILE* out, const SweepPoint& p) {
  std::fprintf(
      out,
      "{\"rate\": %.6f, \"gp_accuracy\": %.6f, \"signals\": %zu, "
      "\"formula_signals\": %zu, \"gp_correct\": %zu, \"cars_ok\": %zu, "
      "\"cars_failed\": %zu, \"transactions\": %llu, \"retries\": %llu, "
      "\"busy_retries\": %llu, \"pending_waits\": %llu, "
      "\"tx_failures\": %llu, \"bus_delivered\": %llu, "
      "\"bus_dropped\": %llu, \"bus_corrupted\": %llu, "
      "\"bus_duplicated\": %llu, \"bus_jittered\": %llu, "
      "\"bus_bursts\": %llu, \"wall_s\": %.6f}",
      p.rate, p.gp_accuracy, p.signals, p.formula_signals, p.gp_correct,
      p.cars_ok, p.cars_failed,
      static_cast<unsigned long long>(p.tx.transactions),
      static_cast<unsigned long long>(p.tx.retries),
      static_cast<unsigned long long>(p.tx.busy_retries),
      static_cast<unsigned long long>(p.tx.pending_waits),
      static_cast<unsigned long long>(p.tx.failures),
      static_cast<unsigned long long>(p.bus.delivered),
      static_cast<unsigned long long>(p.bus.dropped),
      static_cast<unsigned long long>(p.bus.corrupted),
      static_cast<unsigned long long>(p.bus.duplicated),
      static_cast<unsigned long long>(p.bus.jittered),
      static_cast<unsigned long long>(p.bus.bursts), p.wall_s);
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_cars = 3;
  std::size_t n_threads = 2;
  double window_s = 8.0;
  std::size_t population = 96;
  util::FaultConfig base_faults;
  std::vector<double> rates = {0.0, 0.002, 0.005, 0.01, 0.02};
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      n_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_faults.fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--rates") == 0) {
      rates.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) rates.push_back(std::atof(item.c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(std::max<std::size_t>(n_cars, 1),
                    vehicle::catalog().size());

  std::vector<vehicle::CarId> cars;
  for (std::size_t i = 0; i < n_cars; ++i) {
    cars.push_back(vehicle::catalog()[i].id);
  }

  core::FleetOptions options;
  options.fleet_threads = n_threads;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;
  options.campaign.faults = base_faults;

  std::printf("Fault-resilience sweep: %zu cars, %zu fleet threads, "
              "fault seed %llu\n\n",
              cars.size(), core::FleetRunner(options).threads(),
              static_cast<unsigned long long>(base_faults.fault_seed));
  std::printf("%-8s %-8s %-9s %-8s %-8s %-9s %-9s %-9s %-9s\n", "rate",
              "GP acc", "ok/fail", "retries", "busy", "pending", "txfail",
              "dropped", "corrupt");
  dpr::bench::print_rule(82);

  std::vector<SweepPoint> points;
  bool all_completed = true;
  for (const double rate : rates) {
    options.campaign.faults.rate = rate;
    const auto summary = core::FleetRunner(options).run(cars);
    const auto point = summarize(rate, summary);
    if (point.cars_failed != 0) all_completed = false;
    points.push_back(point);
    std::printf("%-8.4f %-8.3f %zu/%-6zu %-8llu %-8llu %-9llu %-9llu "
                "%-9llu %-9llu\n",
                point.rate, point.gp_accuracy, point.cars_ok,
                point.cars_failed,
                static_cast<unsigned long long>(point.tx.retries),
                static_cast<unsigned long long>(point.tx.busy_retries),
                static_cast<unsigned long long>(point.tx.pending_waits),
                static_cast<unsigned long long>(point.tx.failures),
                static_cast<unsigned long long>(point.bus.dropped),
                static_cast<unsigned long long>(point.bus.corrupted));
  }

  // Determinism check: the heaviest nonzero rate must replay
  // bit-identically across thread counts.
  double check_rate = 0.0;
  for (const double rate : rates) {
    if (rate > check_rate) check_rate = rate;
  }
  bool deterministic = true;
  if (check_rate > 0.0) {
    options.campaign.faults.rate = check_rate;
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      options.fleet_threads = threads;
      const auto signature =
          core::fleet_signature(core::FleetRunner(options).run(cars));
      if (reference.empty()) {
        reference = signature;
      } else if (signature != reference) {
        deterministic = false;
        std::printf("\nDETERMINISM VIOLATION: rate %.4f differs at %zu "
                    "threads\n",
                    check_rate, threads);
      }
    }
  }

  // Accuracy floor: worst GP accuracy observed across the sweep — the
  // acceptance bar future runs are compared against.
  double accuracy_floor = 1.0;
  for (const auto& point : points) {
    if (point.gp_accuracy < accuracy_floor) accuracy_floor = point.gp_accuracy;
  }

  std::printf("\ndeterminism across {1,2,8} threads at rate %.4f: %s\n",
              check_rate, deterministic ? "identical" : "DIFFER");
  std::printf("all campaigns completed: %s\n",
              all_completed ? "yes" : "NO (per-car failure recorded)");
  std::printf("GP accuracy floor across sweep: %.3f\n", accuracy_floor);

  if (std::FILE* out = std::fopen("BENCH_faults.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", cars.size());
    std::fprintf(out, "  \"fleet_threads\": %zu,\n", n_threads);
    std::fprintf(out, "  \"fault_seed\": %llu,\n",
                 static_cast<unsigned long long>(base_faults.fault_seed));
    std::fprintf(out, "  \"deterministic_across_threads\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"determinism_check_rate\": %.6f,\n", check_rate);
    std::fprintf(out, "  \"all_campaigns_completed\": %s,\n",
                 all_completed ? "true" : "false");
    std::fprintf(out, "  \"gp_accuracy_floor\": %.6f,\n", accuracy_floor);
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(out, "    ");
      write_point_json(out, points[i]);
      std::fprintf(out, i + 1 < points.size() ? ",\n" : "\n");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_faults.json\n");
  }

  return (deterministic && all_completed) ? 0 : 1;
}
