// Fleet threading benchmark behind BENCH_fleet.json: the 18-car Table 3
// reproduction run twice — once as the legacy serial loop (FleetRunner
// with 1 thread) and once fanned over the shared-budget pool — verifying
// the reports are bit-identical and recording the speedup plus the
// per-car, per-phase wall-time breakdown.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --cars N        first N catalog cars (default: all 18)
//   --threads N     fleet threads for the parallel run (default 4, 0 = all)
//   --window S      per-ECU live window seconds (default 12)
//   --population P  GP population (default 160)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"

namespace {

using namespace dpr;

void write_phase_json(std::FILE* out, const core::PhaseTimings& phases) {
  std::fprintf(out,
               "{\"collect_s\": %.6f, \"assemble_s\": %.6f, "
               "\"ocr_extract_s\": %.6f, \"align_s\": %.6f, "
               "\"associate_s\": %.6f, \"infer_s\": %.6f, "
               "\"score_s\": %.6f, \"total_s\": %.6f}",
               phases.collect_s, phases.assemble_s, phases.ocr_extract_s,
               phases.align_s, phases.associate_s, phases.infer_s,
               phases.score_s, phases.total_s());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_cars = vehicle::catalog().size();
  std::size_t n_threads = 4;
  double window_s = 12.0;
  std::size_t population = 160;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      n_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(n_cars, vehicle::catalog().size());

  std::vector<vehicle::CarId> cars;
  for (std::size_t i = 0; i < n_cars; ++i) {
    cars.push_back(vehicle::catalog()[i].id);
  }

  core::FleetOptions options;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;

  std::printf("Fleet threading benchmark: %zu cars, %u hardware threads\n\n",
              cars.size(), std::thread::hardware_concurrency());

  options.fleet_threads = 1;
  const auto serial = core::FleetRunner(options).run(cars);

  options.fleet_threads = n_threads;
  const core::FleetRunner parallel_runner(options);
  const auto parallel = parallel_runner.run(cars);

  const bool identical =
      core::fleet_signature(serial) == core::fleet_signature(parallel);
  const double speedup = serial.wall_s / std::max(1e-9, parallel.wall_s);

  std::printf("%-8s %-10s %-10s %-10s %-10s %-10s %-10s %-10s\n", "Car",
              "collect", "assemble", "ocr/extr", "align", "assoc", "infer",
              "score");
  dpr::bench::print_rule(86);
  for (const auto& report : parallel.reports) {
    std::printf("%-8s %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f %-10.3f "
                "%-10.3f\n",
                report.car_label.c_str(), report.phases.collect_s,
                report.phases.assemble_s, report.phases.ocr_extract_s,
                report.phases.align_s, report.phases.associate_s,
                report.phases.infer_s, report.phases.score_s);
  }
  std::printf("\nserial   (1 thread):  %8.3f s\n", serial.wall_s);
  std::printf("parallel (%zu threads): %8.3f s  -> %.2fx  (reports %s)\n",
              parallel.threads_used, parallel.wall_s, speedup,
              identical ? "identical" : "DIFFER");
  std::printf("fleet totals: %zu signals (%zu formula, %zu enum), "
              "%zu ECRs, GP %zu/%zu\n",
              parallel.total_signals(), parallel.total_formula_signals(),
              parallel.total_enum_signals(), parallel.total_ecrs(),
              parallel.total_gp_correct(),
              parallel.total_formula_signals());

  if (std::FILE* out = std::fopen("BENCH_fleet.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", cars.size());
    std::fprintf(out, "  \"fleet_threads\": %zu,\n", parallel.threads_used);
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"serial_wall_s\": %.6f,\n", serial.wall_s);
    std::fprintf(out, "  \"parallel_wall_s\": %.6f,\n", parallel.wall_s);
    std::fprintf(out, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(out, "  \"reports_identical\": %s,\n",
                 identical ? "true" : "false");
    std::fprintf(out, "  \"phase_totals\": ");
    write_phase_json(out, parallel.phase_totals);
    std::fprintf(out, ",\n  \"per_car\": {\n");
    for (std::size_t i = 0; i < parallel.reports.size(); ++i) {
      std::fprintf(out, "    \"%s\": ",
                   parallel.reports[i].car_label.c_str());
      write_phase_json(out, parallel.reports[i].phases);
      std::fprintf(out, i + 1 < parallel.reports.size() ? ",\n" : "\n");
    }
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_fleet.json\n");
  }

  // Determinism is the hard requirement; the speedup depends on the
  // host's core count, so it is reported, not asserted.
  return identical ? 0 : 1;
}
