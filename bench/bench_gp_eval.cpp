// GP fitness-evaluation throughput: recursive tree walking vs the
// gp::Program bytecode tape (BENCH_gp_eval.json).
//
// The tape is the perf tentpole behind the inference phase: each
// expression is lowered once to a postfix instruction tape and scored
// against a column-major SampleMatrix, turning per-(node, sample)
// dispatch into one dispatch per node per batch. The contract is speed
// with zero drift — every trimmed MAE must match the tree walker bit
// for bit — so this bench measures single-thread throughput for both
// paths over real campaign datasets *and* hard-fails on any mismatch,
// then cross-checks full inference (formula + fitness bits + structural
// cache hit rate) the same way.
//
// Usage: bench_gp_eval [--cars N] [--window S] [--population N]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gp/engine.hpp"
#include "gp/program.hpp"

namespace {

using namespace dpr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Representative non-enum datasets from one car's campaign.
std::vector<correlate::Dataset> collect_datasets(vehicle::CarId car,
                                                 util::SimTime window,
                                                 std::size_t cap = 8) {
  auto options = bench::table_options();
  options.live_window = window;
  options.run_inference = false;
  core::Campaign campaign(car, options);
  campaign.collect();
  campaign.analyze();
  std::vector<correlate::Dataset> datasets;
  for (const auto& finding : campaign.report().signals) {
    if (finding.is_enum || finding.dataset.points.size() < 6) continue;
    datasets.push_back(finding.dataset);
    if (datasets.size() >= cap) break;
  }
  return datasets;
}

/// Trimmed MAE over precomputed predictions — the engine's fitness, with
/// the identical keep-count and selection, shared verbatim by both
/// timing paths so a bit difference can only come from the predictions.
double trimmed_mae(const std::vector<double>& predictions,
                   const std::vector<double>& ys,
                   std::vector<double>& residuals) {
  residuals.clear();
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double r = std::abs(predictions[i] - ys[i]);
    if (!std::isfinite(r)) return 1e300;
    residuals.push_back(r);
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.9 * static_cast<double>(
                                            residuals.size())));
  std::nth_element(residuals.begin(), residuals.begin() + (keep - 1),
                   residuals.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) sum += residuals[i];
  return sum / static_cast<double>(keep);
}

struct EvalCorpus {
  std::vector<std::vector<double>> rows;  // row-major, for the walker
  std::vector<double> ys;
  gp::SampleMatrix matrix;                // column-major, for the tape
  std::size_t n_vars = 1;
};

EvalCorpus make_corpus(const correlate::Dataset& dataset) {
  EvalCorpus corpus;
  corpus.n_vars = dataset.n_vars;
  for (const auto& point : dataset.points) {
    corpus.rows.push_back(point.xs);
    corpus.ys.push_back(point.y);
  }
  corpus.matrix = gp::SampleMatrix::from_rows(corpus.rows, corpus.n_vars);
  return corpus;
}

}  // namespace

int main(int argc, char** argv) {
  // 96 s windows approximate the paper's full-log campaign batches
  // (~180-sample datasets, the Table 8 regime where batched evaluation
  // amortizes per-offspring overhead); CI shrinks them with --window
  // for smoke runs.
  std::size_t n_cars = 2;
  double window_s = 96.0;
  std::size_t population = 512;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: bench_gp_eval [--cars N] [--window S] "
                     "[--population N]\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(n_cars, vehicle::catalog().size());
  const auto window =
      static_cast<util::SimTime>(window_s * util::kSecond);

  std::printf("GP fitness evaluation: tree walker vs bytecode tape\n");
  std::printf("(%zu cars, %.0f s windows, %zu expressions per dataset, "
              "single thread)\n\n",
              n_cars, window_s, population);

  std::vector<correlate::Dataset> datasets;
  for (std::size_t c = 0; c < n_cars; ++c) {
    const auto car_sets =
        collect_datasets(static_cast<vehicle::CarId>(c), window);
    datasets.insert(datasets.end(), car_sets.begin(), car_sets.end());
  }
  if (datasets.empty()) {
    std::fprintf(stderr, "no datasets collected\n");
    return 1;
  }

  // A breeding-shaped expression population per dataset: the mix the
  // engine actually scores (shallow grow trees, occasional full trees).
  util::Rng rng(0x6E5);
  std::size_t samples_total = 0;
  std::size_t mismatches = 0;
  double tree_s = 0.0;
  double tape_s = 0.0;
  std::vector<double> predictions;
  std::vector<double> residuals;
  gp::EvalScratch scratch;
  gp::Program program;

  for (const auto& dataset : datasets) {
    const auto corpus = make_corpus(dataset);
    std::vector<gp::Expr> exprs;
    for (std::size_t i = 0; i < population; ++i) {
      exprs.push_back(gp::random_expr(
          rng, corpus.n_vars, 2 + static_cast<int>(rng.uniform_int(0, 3)),
          rng.chance(0.3)));
    }
    samples_total += exprs.size() * corpus.rows.size();

    std::vector<double> tree_maes;
    auto start = Clock::now();
    for (const auto& expr : exprs) {
      predictions.clear();
      for (const auto& row : corpus.rows) {
        predictions.push_back(expr.eval(row));
      }
      tree_maes.push_back(trimmed_mae(predictions, corpus.ys, residuals));
    }
    tree_s += seconds_since(start);

    // The tape path pays for compilation inside the timed region, just
    // as the engine recompiles every fresh offspring before scoring it.
    std::vector<double> tape_maes;
    start = Clock::now();
    for (const auto& expr : exprs) {
      program.recompile(expr, corpus.n_vars);
      program.eval_batch(corpus.matrix, scratch);
      tape_maes.push_back(
          trimmed_mae(scratch.predictions, corpus.ys, residuals));
    }
    tape_s += seconds_since(start);

    for (std::size_t i = 0; i < exprs.size(); ++i) {
      if (bits(tree_maes[i]) != bits(tape_maes[i])) ++mismatches;
    }
  }

  const double tree_rate = static_cast<double>(samples_total) / tree_s;
  const double tape_rate = static_cast<double>(samples_total) / tape_s;
  const double speedup = tree_s / std::max(1e-12, tape_s);
  std::printf("datasets: %zu, sample evaluations per path: %zu\n",
              datasets.size(), samples_total);
  std::printf("  tree walker:  %8.3f s  (%12.0f sample-evals/s)\n",
              tree_s, tree_rate);
  std::printf("  bytecode tape:%8.3f s  (%12.0f sample-evals/s)\n",
              tape_s, tape_rate);
  std::printf("  speedup: %.2fx   MAE bits: %s\n", speedup,
              mismatches == 0 ? "identical" : "DIFFER");

  // --- Table 8 workload: deployed fitness-evaluation throughput -------------
  // The tape path as shipped is tape + structural cache; its throughput
  // metric is *scored offspring per scoring-second* (a cache hit scores
  // an offspring without an evaluation), against the tree walker which
  // must rescore every shape. Table 8's config: the paper's population
  // and generation cap with the improved-GP extras off, so fitness
  // scoring is the measured phase.
  gp::GpConfig tree_config;
  tree_config.population = 1000;      // the paper's population
  tree_config.max_generations = 30;   // and generation cap
  tree_config.seed_least_squares = false;
  tree_config.seed_templates = false;
  tree_config.constant_tuning = false;
  tree_config.fitness_threshold = 0.0;  // run all generations
  tree_config.use_tape = false;
  gp::GpConfig tape_config = tree_config;
  tape_config.use_tape = true;

  bool infer_identical = true;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t tree_scored = 0;
  std::size_t tape_scored = 0;
  double tree_scoring_s = 0.0;
  double tape_scoring_s = 0.0;
  double tree_infer_s = 0.0;
  double tape_infer_s = 0.0;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    tree_config.seed = tape_config.seed =
        gp::GpConfig{}.seed ^ (i * 0x9E3779B9ULL);
    auto start = Clock::now();
    const auto by_tree = gp::infer_formula(datasets[i], tree_config);
    tree_infer_s += seconds_since(start);
    start = Clock::now();
    const auto by_tape = gp::infer_formula(datasets[i], tape_config);
    tape_infer_s += seconds_since(start);
    if (by_tree.has_value() != by_tape.has_value()) {
      infer_identical = false;
      continue;
    }
    if (!by_tree) continue;
    if (by_tree->formula != by_tape->formula ||
        bits(by_tree->fitness) != bits(by_tape->fitness) ||
        by_tree->generations_run != by_tape->generations_run) {
      infer_identical = false;
    }
    tree_scored += by_tree->timings.evaluations;
    tree_scoring_s += by_tree->timings.scoring_s;
    // Every scored offspring: fresh evaluations plus cache hits.
    tape_scored += by_tape->timings.evaluations + by_tape->timings.cache_hits;
    tape_scoring_s += by_tape->timings.scoring_s;
    cache_hits += by_tape->timings.cache_hits;
    cache_misses += by_tape->timings.cache_misses;
  }
  const double hit_rate =
      cache_hits + cache_misses == 0
          ? 0.0
          : static_cast<double>(cache_hits) /
                static_cast<double>(cache_hits + cache_misses);
  const double tree_throughput =
      static_cast<double>(tree_scored) / std::max(1e-12, tree_scoring_s);
  const double tape_throughput =
      static_cast<double>(tape_scored) / std::max(1e-12, tape_scoring_s);
  const double throughput_speedup = tape_throughput / tree_throughput;
  const double infer_speedup = tree_infer_s / std::max(1e-12, tape_infer_s);
  std::printf("\nTable 8 workload (%zu datasets, population %zu x %zu "
              "generations):\n",
              datasets.size(), tree_config.population,
              tree_config.max_generations);
  std::printf("  fitness scoring:  tree %8.3f s (%9.0f scores/s)   "
              "tape+cache %8.3f s (%9.0f scores/s)\n",
              tree_scoring_s, tree_throughput, tape_scoring_s,
              tape_throughput);
  std::printf("  fitness-evaluation throughput speedup: %.2fx\n",
              throughput_speedup);
  std::printf("  end-to-end inference: tree %8.3f s   tape+cache %8.3f s "
              "  -> %.2fx   (results %s)\n",
              tree_infer_s, tape_infer_s, infer_speedup,
              infer_identical ? "identical" : "DIFFER");
  std::printf("  structural cache: %zu hits / %zu misses (%.1f%% hit "
              "rate)\n",
              cache_hits, cache_misses, 100.0 * hit_rate);

  if (std::FILE* out = std::fopen("BENCH_gp_eval.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", n_cars);
    std::fprintf(out, "  \"datasets\": %zu,\n", datasets.size());
    std::fprintf(out, "  \"population\": %zu,\n", population);
    std::fprintf(out, "  \"sample_evaluations\": %zu,\n", samples_total);
    std::fprintf(out, "  \"tree_s\": %.6f,\n", tree_s);
    std::fprintf(out, "  \"tape_s\": %.6f,\n", tape_s);
    std::fprintf(out, "  \"tree_sample_evals_per_s\": %.0f,\n", tree_rate);
    std::fprintf(out, "  \"tape_sample_evals_per_s\": %.0f,\n", tape_rate);
    std::fprintf(out, "  \"speedup\": %.4f,\n", speedup);
    std::fprintf(out, "  \"mae_bit_identical\": %s,\n",
                 mismatches == 0 ? "true" : "false");
    std::fprintf(out, "  \"table8\": {\n");
    std::fprintf(out, "    \"population\": %zu,\n", tree_config.population);
    std::fprintf(out, "    \"generations\": %zu,\n",
                 tree_config.max_generations);
    std::fprintf(out, "    \"tree_scoring_s\": %.6f,\n", tree_scoring_s);
    std::fprintf(out, "    \"tape_scoring_s\": %.6f,\n", tape_scoring_s);
    std::fprintf(out, "    \"tree_scores_per_s\": %.0f,\n", tree_throughput);
    std::fprintf(out, "    \"tape_scores_per_s\": %.0f,\n", tape_throughput);
    std::fprintf(out, "    \"fitness_throughput_speedup\": %.4f,\n",
                 throughput_speedup);
    std::fprintf(out, "    \"tree_infer_s\": %.6f,\n", tree_infer_s);
    std::fprintf(out, "    \"tape_infer_s\": %.6f,\n", tape_infer_s);
    std::fprintf(out, "    \"infer_speedup\": %.4f,\n", infer_speedup);
    std::fprintf(out, "    \"results_identical\": %s,\n",
                 infer_identical ? "true" : "false");
    std::fprintf(out, "    \"cache_hits\": %zu,\n", cache_hits);
    std::fprintf(out, "    \"cache_misses\": %zu,\n", cache_misses);
    std::fprintf(out, "    \"cache_hit_rate\": %.4f\n", hit_rate);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("  wrote BENCH_gp_eval.json\n");
  }

  // Bit-identity is the hard contract; "tape at least as fast as tree"
  // is the perf floor CI enforces — on the raw eval path and on the
  // Table 8 scoring stage. The ≥3x throughput target is host-dependent,
  // so it is recorded in the JSON, not asserted.
  if (mismatches != 0 || !infer_identical) return 1;
  return speedup >= 1.0 && throughput_speedup >= 1.0 ? 0 : 1;
}
