// GP fitness-evaluation throughput: recursive tree walking vs the
// gp::Program bytecode tape, with the tape measured under both kernel
// tables — portable scalar and AVX2 SIMD (BENCH_gp_eval.json).
//
// The tape is the perf tentpole behind the inference phase: each
// expression is lowered once to a postfix instruction tape and scored
// against a column-major SampleMatrix, turning per-(node, sample)
// dispatch into one dispatch per node per batch; the SIMD kernels then
// process 4–8 samples per instruction. The contract is speed with zero
// drift — every trimmed MAE must match the tree walker bit for bit on
// every path — so this bench measures single-thread throughput for all
// three paths over real campaign datasets *and* hard-fails on any
// mismatch, then cross-checks full inference (formula + fitness bits +
// structural cache hit rate) the same way.
//
// Usage: bench_gp_eval [--cars N] [--window S] [--population N]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gp/engine.hpp"
#include "gp/kernels.hpp"
#include "gp/program.hpp"

namespace {

using namespace dpr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Representative non-enum datasets from one car's campaign.
std::vector<correlate::Dataset> collect_datasets(vehicle::CarId car,
                                                 util::SimTime window,
                                                 std::size_t cap = 8) {
  auto options = bench::table_options();
  options.live_window = window;
  options.run_inference = false;
  core::Campaign campaign(car, options);
  campaign.collect();
  campaign.analyze();
  std::vector<correlate::Dataset> datasets;
  for (const auto& finding : campaign.report().signals) {
    if (finding.is_enum || finding.dataset.points.size() < 6) continue;
    datasets.push_back(finding.dataset);
    if (datasets.size() >= cap) break;
  }
  return datasets;
}

/// Trimmed MAE over precomputed predictions — the engine's fitness, with
/// the identical keep-count and selection, shared verbatim by all
/// timing paths so a bit difference can only come from the predictions.
double trimmed_mae(const std::vector<double>& predictions,
                   const std::vector<double>& ys,
                   std::vector<double>& residuals) {
  residuals.clear();
  for (std::size_t i = 0; i < ys.size(); ++i) {
    const double r = std::abs(predictions[i] - ys[i]);
    if (!std::isfinite(r)) return 1e300;
    residuals.push_back(r);
  }
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(0.9 * static_cast<double>(
                                            residuals.size())));
  std::nth_element(residuals.begin(), residuals.begin() + (keep - 1),
                   residuals.end());
  double sum = 0.0;
  for (std::size_t i = 0; i < keep; ++i) sum += residuals[i];
  return sum / static_cast<double>(keep);
}

struct EvalCorpus {
  std::vector<std::vector<double>> rows;  // row-major, for the walker
  std::vector<double> ys;
  gp::SampleMatrix matrix;                // column-major, for the tape
  std::size_t n_vars = 1;
};

EvalCorpus make_corpus(const correlate::Dataset& dataset) {
  EvalCorpus corpus;
  corpus.n_vars = dataset.n_vars;
  for (const auto& point : dataset.points) {
    corpus.rows.push_back(point.xs);
    corpus.ys.push_back(point.y);
  }
  corpus.matrix = gp::SampleMatrix::from_rows(corpus.rows, corpus.n_vars);
  return corpus;
}

/// One timed tape pass over a population under the currently selected
/// kernel table. Compilation stays inside the timed region, just as the
/// engine recompiles every fresh offspring before scoring it.
double time_tape_pass(const std::vector<gp::Expr>& exprs,
                      const EvalCorpus& corpus, gp::Program& program,
                      gp::EvalScratch& scratch,
                      std::vector<double>& residuals,
                      std::vector<double>& maes) {
  const auto start = Clock::now();
  for (const auto& expr : exprs) {
    program.recompile(expr, corpus.n_vars);
    program.eval_batch(corpus.matrix, scratch);
    maes.push_back(trimmed_mae(scratch.predictions, corpus.ys, residuals));
  }
  return seconds_since(start);
}

struct InferTotals {
  std::size_t scored = 0;
  double scoring_s = 0.0;
  double infer_s = 0.0;
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

}  // namespace

int main(int argc, char** argv) {
  // 96 s windows approximate the paper's full-log campaign batches
  // (~180-sample datasets, the Table 8 regime where batched evaluation
  // amortizes per-offspring overhead); CI shrinks them with --window
  // for smoke runs.
  std::size_t n_cars = 2;
  double window_s = 96.0;
  std::size_t population = 512;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr,
                     "usage: bench_gp_eval [--cars N] [--window S] "
                     "[--population N]\n");
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown option %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(n_cars, vehicle::catalog().size());
  const auto window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  const bool simd_active = gp::simd_supported();

  std::printf("GP fitness evaluation: tree walker vs bytecode tape "
              "(scalar and SIMD kernels)\n");
  std::printf("(%zu cars, %.0f s windows, %zu expressions per dataset, "
              "single thread, AVX2 %s)\n\n",
              n_cars, window_s, population,
              simd_active ? "active" : "unavailable");

  std::vector<correlate::Dataset> datasets;
  for (std::size_t c = 0; c < n_cars; ++c) {
    const auto car_sets =
        collect_datasets(static_cast<vehicle::CarId>(c), window);
    datasets.insert(datasets.end(), car_sets.begin(), car_sets.end());
  }
  if (datasets.empty()) {
    std::fprintf(stderr, "no datasets collected\n");
    return 1;
  }

  // A breeding-shaped expression population per dataset: the mix the
  // engine actually scores (shallow grow trees, occasional full trees).
  util::Rng rng(0x6E5);
  std::size_t samples_total = 0;
  std::size_t mismatches = 0;
  double tree_s = 0.0;
  double scalar_s = 0.0;
  double simd_s = 0.0;
  std::vector<double> predictions;
  std::vector<double> residuals;
  gp::EvalScratch scratch;
  gp::Program program;

  for (const auto& dataset : datasets) {
    const auto corpus = make_corpus(dataset);
    std::vector<gp::Expr> exprs;
    for (std::size_t i = 0; i < population; ++i) {
      exprs.push_back(gp::random_expr(
          rng, corpus.n_vars, 2 + static_cast<int>(rng.uniform_int(0, 3)),
          rng.chance(0.3)));
    }
    samples_total += exprs.size() * corpus.rows.size();

    std::vector<double> tree_maes;
    auto start = Clock::now();
    for (const auto& expr : exprs) {
      predictions.clear();
      for (const auto& row : corpus.rows) {
        predictions.push_back(expr.eval(row));
      }
      tree_maes.push_back(trimmed_mae(predictions, corpus.ys, residuals));
    }
    tree_s += seconds_since(start);

    std::vector<double> scalar_maes;
    gp::set_simd_enabled(false);
    scalar_s += time_tape_pass(exprs, corpus, program, scratch, residuals,
                               scalar_maes);

    std::vector<double> simd_maes;
    if (simd_active) {
      gp::set_simd_enabled(true);
      simd_s += time_tape_pass(exprs, corpus, program, scratch, residuals,
                               simd_maes);
    }
    gp::set_simd_enabled(true);

    for (std::size_t i = 0; i < exprs.size(); ++i) {
      if (bits(tree_maes[i]) != bits(scalar_maes[i])) ++mismatches;
      if (simd_active && bits(tree_maes[i]) != bits(simd_maes[i])) {
        ++mismatches;
      }
    }
  }

  const double tree_rate = static_cast<double>(samples_total) / tree_s;
  const double scalar_rate =
      static_cast<double>(samples_total) / scalar_s;
  const double simd_rate =
      simd_active ? static_cast<double>(samples_total) / simd_s : 0.0;
  const double scalar_speedup = tree_s / std::max(1e-12, scalar_s);
  const double simd_speedup =
      simd_active ? tree_s / std::max(1e-12, simd_s) : 0.0;
  const double simd_vs_scalar =
      simd_active ? scalar_s / std::max(1e-12, simd_s) : 0.0;
  std::printf("datasets: %zu, sample evaluations per path: %zu\n",
              datasets.size(), samples_total);
  std::printf("  tree walker:   %8.3f s  (%12.0f sample-evals/s)\n",
              tree_s, tree_rate);
  std::printf("  scalar tape:   %8.3f s  (%12.0f sample-evals/s)  "
              "%.2fx vs tree\n",
              scalar_s, scalar_rate, scalar_speedup);
  if (simd_active) {
    std::printf("  SIMD tape:     %8.3f s  (%12.0f sample-evals/s)  "
                "%.2fx vs tree, %.2fx vs scalar tape\n",
                simd_s, simd_rate, simd_speedup, simd_vs_scalar);
  } else {
    std::printf("  SIMD tape:     (not available on this host/build)\n");
  }
  std::printf("  MAE bits: %s\n",
              mismatches == 0 ? "identical" : "DIFFER");

  // --- Table 8 workload: deployed fitness-evaluation throughput -------------
  // The tape path as shipped is tape + structural cache; its throughput
  // metric is *scored offspring per scoring-second* (a cache hit scores
  // an offspring without an evaluation), against the tree walker which
  // must rescore every shape. Table 8's config: the paper's population
  // and generation cap with the improved-GP extras off, so fitness
  // scoring is the measured phase.
  gp::GpConfig tree_config;
  tree_config.population = 1000;      // the paper's population
  tree_config.max_generations = 30;   // and generation cap
  tree_config.seed_least_squares = false;
  tree_config.seed_templates = false;
  tree_config.constant_tuning = false;
  tree_config.fitness_threshold = 0.0;  // run all generations
  tree_config.use_tape = false;
  gp::GpConfig tape_config = tree_config;
  tape_config.use_tape = true;

  bool infer_identical = true;
  InferTotals tree_totals;
  InferTotals scalar_totals;
  InferTotals simd_totals;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    tree_config.seed = tape_config.seed =
        gp::GpConfig{}.seed ^ (i * 0x9E3779B9ULL);
    auto start = Clock::now();
    const auto by_tree = gp::infer_formula(datasets[i], tree_config);
    tree_totals.infer_s += seconds_since(start);

    gp::set_simd_enabled(false);
    start = Clock::now();
    const auto by_scalar = gp::infer_formula(datasets[i], tape_config);
    scalar_totals.infer_s += seconds_since(start);

    std::optional<gp::GpResult> by_simd;
    if (simd_active) {
      gp::set_simd_enabled(true);
      start = Clock::now();
      by_simd = gp::infer_formula(datasets[i], tape_config);
      simd_totals.infer_s += seconds_since(start);
    }
    gp::set_simd_enabled(true);

    if (by_tree.has_value() != by_scalar.has_value() ||
        (simd_active && by_tree.has_value() != by_simd.has_value())) {
      infer_identical = false;
      continue;
    }
    if (!by_tree) continue;
    const auto matches_tree = [&](const gp::GpResult& other) {
      return by_tree->formula == other.formula &&
             bits(by_tree->fitness) == bits(other.fitness) &&
             by_tree->generations_run == other.generations_run;
    };
    if (!matches_tree(*by_scalar) ||
        (simd_active && !matches_tree(*by_simd))) {
      infer_identical = false;
    }
    tree_totals.scored += by_tree->timings.evaluations;
    tree_totals.scoring_s += by_tree->timings.scoring_s;
    const auto add_tape = [&](InferTotals& totals, const gp::GpResult& r) {
      // Every scored offspring: fresh evaluations plus cache hits.
      totals.scored += r.timings.evaluations + r.timings.cache_hits;
      totals.scoring_s += r.timings.scoring_s;
      totals.cache_hits += r.timings.cache_hits;
      totals.cache_misses += r.timings.cache_misses;
    };
    add_tape(scalar_totals, *by_scalar);
    if (simd_active) add_tape(simd_totals, *by_simd);
  }
  const auto throughput = [](const InferTotals& totals) {
    return static_cast<double>(totals.scored) /
           std::max(1e-12, totals.scoring_s);
  };
  const double tree_throughput = throughput(tree_totals);
  const double scalar_throughput = throughput(scalar_totals);
  const double simd_throughput = simd_active ? throughput(simd_totals) : 0.0;
  const double scalar_throughput_speedup = scalar_throughput / tree_throughput;
  const double simd_throughput_speedup =
      simd_active ? simd_throughput / tree_throughput : 0.0;
  const double simd_throughput_vs_scalar =
      simd_active ? simd_throughput / scalar_throughput : 0.0;
  const double hit_rate =
      scalar_totals.cache_hits + scalar_totals.cache_misses == 0
          ? 0.0
          : static_cast<double>(scalar_totals.cache_hits) /
                static_cast<double>(scalar_totals.cache_hits +
                                    scalar_totals.cache_misses);
  std::printf("\nTable 8 workload (%zu datasets, population %zu x %zu "
              "generations):\n",
              datasets.size(), tree_config.population,
              tree_config.max_generations);
  std::printf("  fitness scoring:  tree %8.3f s (%9.0f scores/s)\n",
              tree_totals.scoring_s, tree_throughput);
  std::printf("             scalar tape %8.3f s (%9.0f scores/s)  "
              "%.2fx vs tree\n",
              scalar_totals.scoring_s, scalar_throughput,
              scalar_throughput_speedup);
  if (simd_active) {
    std::printf("               SIMD tape %8.3f s (%9.0f scores/s)  "
                "%.2fx vs tree, %.2fx vs scalar tape\n",
                simd_totals.scoring_s, simd_throughput,
                simd_throughput_speedup, simd_throughput_vs_scalar);
  }
  std::printf("  end-to-end inference: tree %8.3f s   scalar tape %8.3f "
              "s   SIMD tape %8.3f s   (results %s)\n",
              tree_totals.infer_s, scalar_totals.infer_s,
              simd_totals.infer_s,
              infer_identical ? "identical" : "DIFFER");
  std::printf("  structural cache: %zu hits / %zu misses (%.1f%% hit "
              "rate)\n",
              scalar_totals.cache_hits, scalar_totals.cache_misses,
              100.0 * hit_rate);

  if (std::FILE* out = std::fopen("BENCH_gp_eval.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", n_cars);
    std::fprintf(out, "  \"datasets\": %zu,\n", datasets.size());
    std::fprintf(out, "  \"population\": %zu,\n", population);
    std::fprintf(out, "  \"simd_active\": %s,\n",
                 simd_active ? "true" : "false");
    std::fprintf(out, "  \"sample_evaluations\": %zu,\n", samples_total);
    std::fprintf(out, "  \"tree_s\": %.6f,\n", tree_s);
    std::fprintf(out, "  \"scalar_tape_s\": %.6f,\n", scalar_s);
    std::fprintf(out, "  \"simd_tape_s\": %.6f,\n", simd_s);
    std::fprintf(out, "  \"tree_sample_evals_per_s\": %.0f,\n", tree_rate);
    std::fprintf(out, "  \"scalar_tape_sample_evals_per_s\": %.0f,\n",
                 scalar_rate);
    std::fprintf(out, "  \"simd_tape_sample_evals_per_s\": %.0f,\n",
                 simd_rate);
    std::fprintf(out, "  \"scalar_tape_speedup_vs_tree\": %.4f,\n",
                 scalar_speedup);
    std::fprintf(out, "  \"simd_tape_speedup_vs_tree\": %.4f,\n",
                 simd_speedup);
    std::fprintf(out, "  \"simd_tape_speedup_vs_scalar\": %.4f,\n",
                 simd_vs_scalar);
    std::fprintf(out, "  \"mae_bit_identical\": %s,\n",
                 mismatches == 0 ? "true" : "false");
    std::fprintf(out, "  \"table8\": {\n");
    std::fprintf(out, "    \"population\": %zu,\n", tree_config.population);
    std::fprintf(out, "    \"generations\": %zu,\n",
                 tree_config.max_generations);
    std::fprintf(out, "    \"tree_scoring_s\": %.6f,\n",
                 tree_totals.scoring_s);
    std::fprintf(out, "    \"scalar_tape_scoring_s\": %.6f,\n",
                 scalar_totals.scoring_s);
    std::fprintf(out, "    \"simd_tape_scoring_s\": %.6f,\n",
                 simd_totals.scoring_s);
    std::fprintf(out, "    \"tree_scores_per_s\": %.0f,\n", tree_throughput);
    std::fprintf(out, "    \"scalar_tape_scores_per_s\": %.0f,\n",
                 scalar_throughput);
    std::fprintf(out, "    \"simd_tape_scores_per_s\": %.0f,\n",
                 simd_throughput);
    std::fprintf(out, "    \"scalar_throughput_speedup\": %.4f,\n",
                 scalar_throughput_speedup);
    std::fprintf(out, "    \"simd_throughput_speedup\": %.4f,\n",
                 simd_throughput_speedup);
    std::fprintf(out, "    \"simd_throughput_vs_scalar\": %.4f,\n",
                 simd_throughput_vs_scalar);
    std::fprintf(out, "    \"tree_infer_s\": %.6f,\n", tree_totals.infer_s);
    std::fprintf(out, "    \"scalar_tape_infer_s\": %.6f,\n",
                 scalar_totals.infer_s);
    std::fprintf(out, "    \"simd_tape_infer_s\": %.6f,\n",
                 simd_totals.infer_s);
    std::fprintf(out, "    \"results_identical\": %s,\n",
                 infer_identical ? "true" : "false");
    std::fprintf(out, "    \"cache_hits\": %zu,\n", scalar_totals.cache_hits);
    std::fprintf(out, "    \"cache_misses\": %zu,\n",
                 scalar_totals.cache_misses);
    std::fprintf(out, "    \"cache_hit_rate\": %.4f\n", hit_rate);
    std::fprintf(out, "  }\n}\n");
    std::fclose(out);
    std::printf("  wrote BENCH_gp_eval.json\n");
  }

  // Bit-identity is the hard contract; "tape at least as fast as tree"
  // is the perf floor CI enforces — on the raw eval path and on the
  // Table 8 scoring stage — and when the AVX2 kernels are active the
  // SIMD tape must additionally not regress below the scalar tape on
  // the raw eval path. The ≥2x SIMD-vs-scalar target is host-dependent,
  // so it is recorded in the JSON, not asserted.
  if (mismatches != 0 || !infer_identical) return 1;
  if (scalar_speedup < 1.0 || scalar_throughput_speedup < 1.0) return 1;
  if (simd_active && simd_vs_scalar < 1.0) return 1;
  return 0;
}
