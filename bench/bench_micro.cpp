// Micro-benchmarks (google-benchmark): protocol-stack and inference
// kernel throughput. Not a paper table — engineering numbers for the
// library itself.

#include <benchmark/benchmark.h>

#include "can/bus.hpp"
#include "gp/engine.hpp"
#include "gp/kernels.hpp"
#include "gp/program.hpp"
#include "isotp/isotp.hpp"
#include "obd/pid.hpp"
#include "uds/server.hpp"
#include "util/philox.hpp"
#include "util/rng.hpp"
#include "util/simd_philox.hpp"
#include "vwtp/vwtp.hpp"

namespace {

using namespace dpr;

void BM_IsoTpSegmentReassemble(benchmark::State& state) {
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0xAB);
  const can::CanId id{0x7E0, false};
  for (auto _ : state) {
    isotp::Reassembler reassembler;
    std::optional<util::Bytes> out;
    for (const auto& frame : isotp::segment_message(id, payload)) {
      out = reassembler.feed(frame);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IsoTpSegmentReassemble)->Arg(7)->Arg(62)->Arg(512)->Arg(4095);

void BM_VwtpSegmentReassemble(benchmark::State& state) {
  const util::Bytes payload(static_cast<std::size_t>(state.range(0)), 0x61);
  const can::CanId id{0x300, false};
  for (auto _ : state) {
    vwtp::Reassembler reassembler;
    std::optional<util::Bytes> out;
    for (const auto& frame : vwtp::segment_message(id, payload)) {
      out = reassembler.feed(frame);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VwtpSegmentReassemble)->Arg(7)->Arg(62)->Arg(512);

void BM_UdsServerReadRequest(benchmark::State& state) {
  uds::Server server;
  for (uds::Did did = 0xF400; did < 0xF420; ++did) {
    server.add_did(did, 2, [] { return util::Bytes{0x12, 0x34}; });
  }
  std::vector<uds::Did> dids;
  for (int i = 0; i < state.range(0); ++i) {
    dids.push_back(static_cast<uds::Did>(0xF400 + i));
  }
  const auto request = uds::encode_read_data_by_identifier(dids);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.handle(request));
  }
}
BENCHMARK(BM_UdsServerReadRequest)->Arg(1)->Arg(4)->Arg(16);

void BM_ObdDecode(benchmark::State& state) {
  const auto payload = util::from_hex("41 0C 1A F8");
  for (auto _ : state) {
    benchmark::DoNotOptimize(obd::decode_value(payload));
  }
}
BENCHMARK(BM_ObdDecode);

void BM_GpExprEval(benchmark::State& state) {
  // The paper's KWP RPM shape, evaluated over a 60-point dataset.
  auto expr = gp::Expr::binary(
      gp::Op::kDiv,
      gp::Expr::binary(gp::Op::kMul, gp::Expr::variable(0),
                       gp::Expr::variable(1)),
      gp::Expr::constant(5.0));
  util::Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.uniform(0, 255), rng.uniform(0, 255)});
  }
  for (auto _ : state) {
    double total = 0;
    for (const auto& point : points) total += expr.eval(point);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GpExprEval);

void BM_GpProgramEvalBatch(benchmark::State& state) {
  // Same shape and dataset as BM_GpExprEval, scored through the postfix
  // tape in one batched pass — the engine's hot path.
  auto expr = gp::Expr::binary(
      gp::Op::kDiv,
      gp::Expr::binary(gp::Op::kMul, gp::Expr::variable(0),
                       gp::Expr::variable(1)),
      gp::Expr::constant(5.0));
  util::Rng rng(1);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 60; ++i) {
    points.push_back({rng.uniform(0, 255), rng.uniform(0, 255)});
  }
  const auto matrix = gp::SampleMatrix::from_rows(points, 2);
  const auto program = gp::Program::compile(expr, 2);
  gp::EvalScratch scratch;
  for (auto _ : state) {
    program.eval_batch(matrix, scratch);
    double total = 0;
    for (const double p : scratch.predictions) total += p;
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_GpProgramEvalBatch);

// Per-op kernel throughput, scalar table vs AVX2 table, over a
// tape-column-sized buffer. Arg 0 selects the op; the /0 vs /1 suffix
// in the name is scalar vs SIMD.
void BM_GpKernelOp(benchmark::State& state) {
  const gp::Op op = static_cast<gp::Op>(state.range(0));
  const bool simd = state.range(1) != 0;
  if (simd && !gp::simd_supported()) {
    state.SkipWithError("AVX2 kernels not compiled/supported here");
    return;
  }
  const gp::KernelTable& table =
      simd ? *gp::avx2_kernels() : gp::scalar_kernels();
  constexpr std::size_t kN = 256;
  util::Rng rng(4);
  std::vector<double> a(kN), b(kN), dst(kN);
  for (std::size_t i = 0; i < kN; ++i) {
    a[i] = rng.uniform(-300.0, 300.0);
    b[i] = rng.uniform(-300.0, 300.0);
  }
  for (auto _ : state) {
    if (gp::arity(op) == 1) {
      table.unary(op, dst.data(), a.data(), kN);
    } else {
      table.binary(op, dst.data(), a.data(), b.data(), kN);
    }
    benchmark::DoNotOptimize(dst.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * kN);
}
BENCHMARK(BM_GpKernelOp)
    ->ArgNames({"op", "simd"})
    ->Args({static_cast<int>(gp::Op::kAdd), 0})
    ->Args({static_cast<int>(gp::Op::kAdd), 1})
    ->Args({static_cast<int>(gp::Op::kMul), 0})
    ->Args({static_cast<int>(gp::Op::kMul), 1})
    ->Args({static_cast<int>(gp::Op::kDiv), 0})
    ->Args({static_cast<int>(gp::Op::kDiv), 1})
    ->Args({static_cast<int>(gp::Op::kLog), 0})
    ->Args({static_cast<int>(gp::Op::kLog), 1})
    ->Args({static_cast<int>(gp::Op::kSqrt), 0})
    ->Args({static_cast<int>(gp::Op::kSqrt), 1});

void BM_GpProgramCompile(benchmark::State& state) {
  // Per-offspring lowering cost: recompile into warm buffers, the way
  // each worker's scratch program is reused across a scoring chunk.
  util::Rng rng(3);
  std::vector<gp::Expr> exprs;
  for (int i = 0; i < 64; ++i) {
    exprs.push_back(gp::random_expr(rng, 2, 4, false));
  }
  gp::Program program;
  for (auto _ : state) {
    for (const auto& expr : exprs) {
      program.recompile(expr, 2);
      benchmark::DoNotOptimize(program.size());
    }
  }
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_GpProgramCompile);

void BM_GpInferAffine(benchmark::State& state) {
  correlate::Dataset dataset;
  dataset.n_vars = 1;
  util::Rng rng(2);
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform(0, 255);
    dataset.points.push_back(correlate::DataPoint{{x}, 0.75 * x - 48.0});
  }
  gp::GpConfig config;
  config.population = 128;
  config.max_generations = 20;
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp::infer_formula(dataset, config));
  }
}
BENCHMARK(BM_GpInferAffine)->Unit(benchmark::kMillisecond);

void BM_BusDelivery(benchmark::State& state) {
  for (auto _ : state) {
    util::SimClock clock;
    can::CanBus bus(clock);
    std::size_t seen = 0;
    bus.attach([&seen](const can::CanFrame&, util::SimTime) { ++seen; });
    for (int i = 0; i < 100; ++i) {
      bus.send(can::CanFrame(0x100 + (i % 32), {0x01, 0x02}));
    }
    bus.deliver_pending();
    benchmark::DoNotOptimize(seen);
  }
}
BENCHMARK(BM_BusDelivery);

// 4-wide Philox blocks/sec: arg 0 = dispatched kernel (the pipelined
// scalar body by default; DPR_PHILOX_AVX2=1 selects the AVX2 body),
// arg 1 = forced portable scalar body, arg 2 = the one-lane scalar
// reference it must match. One iteration = one 4-lane block (arg 2 runs
// the reference four times for comparability).
void BM_SimdPhiloxBlock(benchmark::State& state) {
  const util::Philox4Fn fn = state.range(0) == 0 ? util::philox4()
                                                 : util::philox2x64x4_scalar;
  const std::uint64_t key = 0x9E3779B97F4A7C15ULL;
  std::uint64_t c0[4] = {0, 1, 2, 3};
  const std::uint64_t c1[4] = {7, 7, 7, 7};
  std::uint64_t out[4];
  if (state.range(0) == 2) {
    for (auto _ : state) {
      for (int lane = 0; lane < 4; ++lane) {
        out[lane] = util::philox2x64(key, c0[lane], c1[lane]);
      }
      benchmark::DoNotOptimize(out);
      c0[0] += 4;
    }
  } else {
    for (auto _ : state) {
      fn(key, c0, c1, out);
      benchmark::DoNotOptimize(out);
      c0[0] += 4;
    }
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_SimdPhiloxBlock)->Arg(0)->Arg(1)->Arg(2);

// Per-DLC wire-time table lookup vs the pre-overhaul per-frame double
// math it replaced (arg 0 = table via CanBus::frame_time, arg 1 = the
// original expression).
void BM_FrameTime(benchmark::State& state) {
  util::SimClock clock;
  can::CanBus bus(clock);
  can::CanFrame frames[9] = {
      can::CanFrame(0x100, {}),
      can::CanFrame(0x100, {1}),
      can::CanFrame(0x100, {1, 2}),
      can::CanFrame(0x100, {1, 2, 3}),
      can::CanFrame(0x100, {1, 2, 3, 4}),
      can::CanFrame(0x100, {1, 2, 3, 4, 5}),
      can::CanFrame(0x100, {1, 2, 3, 4, 5, 6}),
      can::CanFrame(0x100, {1, 2, 3, 4, 5, 6, 7}),
      can::CanFrame(0x100, {1, 2, 3, 4, 5, 6, 7, 8}),
  };
  std::size_t i = 0;
  if (state.range(0) == 0) {
    for (auto _ : state) {
      benchmark::DoNotOptimize(bus.frame_time(frames[i]));
      i = (i + 1) % 9;
    }
  } else {
    for (auto _ : state) {
      const double bits =
          (47.0 + 8.0 * static_cast<double>(frames[i].dlc())) * 1.19;
      benchmark::DoNotOptimize(
          static_cast<util::SimTime>(bits / 500000.0 * 1e6));
      i = (i + 1) % 9;
    }
  }
}
BENCHMARK(BM_FrameTime)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
