// OSEK network-management benchmark behind BENCH_nm.json: sweep the NM
// sleep timeout over a small fleet, running each point twice — once with
// the NM-aware tool (periodic wakeups + sleep-recovery retries) and once
// with the --nm-oblivious ablation — and record what NM awareness is
// worth: frames lost to bus sleep, failed transactions, recoveries, and
// the GP accuracy delta.
//
// Three properties are asserted (nonzero exit on violation):
//   1. Contrast: at the most aggressive sleep timeout the oblivious tool
//      loses strictly more frames to sleep than the aware tool, and the
//      aware tool records at least one successful sleep recovery.
//   2. Determinism: the most aggressive aware point replays
//      bit-identically (same fleet_signature) across 1, 2 and 8 threads.
//   3. Resume equivalence: an NM-armed run interrupted at a phase
//      boundary and resumed from its checkpoint matches the
//      uninterrupted run's fleet_signature.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --cars N          first N catalog cars (default 3)
//   --threads N       fleet threads for the sweep runs (default 2)
//   --window S        per-ECU live window seconds (default 8)
//   --population P    GP population (default 96)
//   --seed N          fault stream seed (default FaultConfig's)
//   --timeouts a,b,.. comma-separated sleep timeouts in seconds
//                     (default 0.2,0.4,0.8,3.0)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"

namespace {

using namespace dpr;

struct SweepPoint {
  double sleep_timeout_s = 0.0;
  bool oblivious = false;
  double gp_accuracy = 0.0;
  std::size_t signals = 0;
  std::size_t formula_signals = 0;
  std::size_t gp_correct = 0;
  std::size_t cars_ok = 0;
  std::size_t cars_failed = 0;
  nm::NmStats nm;
  std::uint64_t bus_sleeps_seen = 0;     // tool-side sleep detections
  std::uint64_t sleep_recoveries = 0;    // retries that won after re-waking
  util::TransactStats tx;
  double wall_s = 0.0;
};

SweepPoint summarize(double timeout_s, bool oblivious,
                     const core::FleetSummary& summary) {
  SweepPoint point;
  point.sleep_timeout_s = timeout_s;
  point.oblivious = oblivious;
  point.signals = summary.total_signals();
  point.formula_signals = summary.total_formula_signals();
  point.gp_correct = summary.total_gp_correct();
  point.gp_accuracy =
      point.formula_signals == 0
          ? 1.0
          : static_cast<double>(point.gp_correct) /
                static_cast<double>(point.formula_signals);
  point.cars_ok = summary.cars_ok();
  point.cars_failed = summary.cars_failed();
  for (const auto& report : summary.reports) {
    point.nm.sleeps += report.nm.sleeps;
    point.nm.wakeups += report.nm.wakeups;
    point.nm.frames_lost_to_sleep += report.nm.frames_lost_to_sleep;
    point.nm.limp_episodes += report.nm.limp_episodes;
    point.nm.ring_repairs += report.nm.ring_repairs;
    point.nm.nm_frames_sent += report.nm.nm_frames_sent;
    point.bus_sleeps_seen += report.session_stats.bus_sleeps;
    point.sleep_recoveries += report.session_stats.sleep_recoveries;
  }
  point.tx = summary.total_transactions();
  point.wall_s = summary.wall_s;
  return point;
}

void write_point_json(std::FILE* out, const SweepPoint& p) {
  std::fprintf(
      out,
      "{\"sleep_timeout_s\": %.6f, \"oblivious\": %s, "
      "\"gp_accuracy\": %.6f, \"signals\": %zu, \"formula_signals\": %zu, "
      "\"gp_correct\": %zu, \"cars_ok\": %zu, \"cars_failed\": %zu, "
      "\"sleeps\": %llu, \"wakeups\": %llu, \"frames_lost_to_sleep\": %llu, "
      "\"limp_episodes\": %llu, \"ring_repairs\": %llu, "
      "\"nm_frames_sent\": %llu, \"bus_sleeps_seen\": %llu, "
      "\"sleep_recoveries\": %llu, \"retries\": %llu, "
      "\"tx_failures\": %llu, \"wall_s\": %.6f}",
      p.sleep_timeout_s, p.oblivious ? "true" : "false", p.gp_accuracy,
      p.signals, p.formula_signals, p.gp_correct, p.cars_ok, p.cars_failed,
      static_cast<unsigned long long>(p.nm.sleeps),
      static_cast<unsigned long long>(p.nm.wakeups),
      static_cast<unsigned long long>(p.nm.frames_lost_to_sleep),
      static_cast<unsigned long long>(p.nm.limp_episodes),
      static_cast<unsigned long long>(p.nm.ring_repairs),
      static_cast<unsigned long long>(p.nm.nm_frames_sent),
      static_cast<unsigned long long>(p.bus_sleeps_seen),
      static_cast<unsigned long long>(p.sleep_recoveries),
      static_cast<unsigned long long>(p.tx.retries),
      static_cast<unsigned long long>(p.tx.failures), p.wall_s);
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_cars = 3;
  std::size_t n_threads = 2;
  double window_s = 8.0;
  std::size_t population = 96;
  util::FaultConfig base_faults;
  std::vector<double> timeouts = {0.2, 0.4, 0.8, 3.0};
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      n_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_faults.fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--timeouts") == 0) {
      timeouts.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) timeouts.push_back(std::atof(item.c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(std::max<std::size_t>(n_cars, 1),
                    vehicle::catalog().size());

  std::vector<vehicle::CarId> cars;
  for (std::size_t i = 0; i < n_cars; ++i) {
    cars.push_back(vehicle::catalog()[i].id);
  }

  core::FleetOptions options;
  options.fleet_threads = n_threads;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;
  options.campaign.faults = base_faults;
  options.campaign.faults.nm = true;

  std::printf("NM sleep-timeout sweep: %zu cars, %zu fleet threads, "
              "fault seed %llu\n\n",
              cars.size(), core::FleetRunner(options).threads(),
              static_cast<unsigned long long>(base_faults.fault_seed));
  std::printf("%-9s %-6s %-8s %-9s %-8s %-8s %-8s %-8s %-8s\n", "timeout",
              "tool", "GP acc", "ok/fail", "sleeps", "lost", "seen",
              "recov", "txfail");
  dpr::bench::print_rule(78);

  std::vector<SweepPoint> points;
  double min_timeout = timeouts.empty() ? 0.0 : timeouts[0];
  for (const double t : timeouts) min_timeout = std::min(min_timeout, t);
  SweepPoint aggressive_aware, aggressive_oblivious;
  for (const double timeout_s : timeouts) {
    options.campaign.faults.nm_sleep_timeout =
        static_cast<util::SimTime>(timeout_s * util::kSecond);
    for (const bool oblivious : {false, true}) {
      options.campaign.nm_oblivious = oblivious;
      const auto summary = core::FleetRunner(options).run(cars);
      const auto point = summarize(timeout_s, oblivious, summary);
      points.push_back(point);
      if (timeout_s == min_timeout) {
        (oblivious ? aggressive_oblivious : aggressive_aware) = point;
      }
      std::printf(
          "%-9.2f %-6s %-8.3f %zu/%-7zu %-8llu %-8llu %-8llu %-8llu "
          "%-8llu\n",
          point.sleep_timeout_s, oblivious ? "obliv" : "aware",
          point.gp_accuracy, point.cars_ok, point.cars_failed,
          static_cast<unsigned long long>(point.nm.sleeps),
          static_cast<unsigned long long>(point.nm.frames_lost_to_sleep),
          static_cast<unsigned long long>(point.bus_sleeps_seen),
          static_cast<unsigned long long>(point.sleep_recoveries),
          static_cast<unsigned long long>(point.tx.failures));
    }
  }
  options.campaign.nm_oblivious = false;

  // Gate 1: awareness must be worth something where sleep bites hardest.
  const bool contrast_holds =
      aggressive_oblivious.nm.frames_lost_to_sleep >
          aggressive_aware.nm.frames_lost_to_sleep &&
      aggressive_aware.sleep_recoveries > 0 &&
      aggressive_aware.cars_failed == 0;

  // Gate 2: the most aggressive aware point replays bit-identically
  // across thread counts.
  options.campaign.faults.nm_sleep_timeout =
      static_cast<util::SimTime>(min_timeout * util::kSecond);
  bool deterministic = true;
  std::string reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    options.fleet_threads = threads;
    const auto signature =
        core::fleet_signature(core::FleetRunner(options).run(cars));
    if (reference.empty()) {
      reference = signature;
    } else if (signature != reference) {
      deterministic = false;
      std::printf("\nDETERMINISM VIOLATION: NM timeout %.2fs differs at "
                  "%zu threads\n",
                  min_timeout, threads);
    }
  }

  // Gate 3: interrupt at the associate boundary and resume; the stitched
  // NM-armed run must match the uninterrupted one.
  const std::string checkpoint_dir =
      (std::filesystem::temp_directory_path() / "dpr_bench_nm_ckpt")
          .string();
  std::filesystem::remove_all(checkpoint_dir);
  options.fleet_threads = n_threads;

  double t0 = now_s();
  const auto uninterrupted_signature =
      core::fleet_signature(core::FleetRunner(options).run(cars));
  const double full_wall_s = now_s() - t0;

  core::FleetOptions first_half = options;
  first_half.campaign.checkpoint_dir = checkpoint_dir;
  first_half.campaign.stop_after_phase = 4;  // through 'associate'
  t0 = now_s();
  core::FleetRunner(first_half).run(cars);
  const double first_half_wall_s = now_s() - t0;

  core::FleetOptions resumed = options;
  resumed.campaign.checkpoint_dir = checkpoint_dir;
  resumed.campaign.resume = true;
  t0 = now_s();
  const auto resumed_signature =
      core::fleet_signature(core::FleetRunner(resumed).run(cars));
  const double resume_wall_s = now_s() - t0;
  std::filesystem::remove_all(checkpoint_dir);

  const bool resume_equivalent =
      resumed_signature == uninterrupted_signature;

  std::printf("\naware vs oblivious at %.2fs timeout: lost %llu vs %llu "
              "frames, %llu recoveries: %s\n",
              min_timeout,
              static_cast<unsigned long long>(
                  aggressive_aware.nm.frames_lost_to_sleep),
              static_cast<unsigned long long>(
                  aggressive_oblivious.nm.frames_lost_to_sleep),
              static_cast<unsigned long long>(
                  aggressive_aware.sleep_recoveries),
              contrast_holds ? "awareness pays" : "NO CONTRAST");
  std::printf("determinism across {1,2,8} threads at %.2fs timeout: %s\n",
              min_timeout, deterministic ? "identical" : "DIFFER");
  std::printf("resume == fresh: %s  (full %.2fs, pre-interrupt %.2fs, "
              "resume %.2fs)\n",
              resume_equivalent ? "identical" : "DIFFER", full_wall_s,
              first_half_wall_s, resume_wall_s);

  if (std::FILE* out = std::fopen("BENCH_nm.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", cars.size());
    std::fprintf(out, "  \"fleet_threads\": %zu,\n", n_threads);
    std::fprintf(out, "  \"fault_seed\": %llu,\n",
                 static_cast<unsigned long long>(base_faults.fault_seed));
    std::fprintf(out, "  \"contrast_holds\": %s,\n",
                 contrast_holds ? "true" : "false");
    std::fprintf(out, "  \"contrast_timeout_s\": %.6f,\n", min_timeout);
    std::fprintf(out, "  \"deterministic_across_threads\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"resume_equivalent\": %s,\n",
                 resume_equivalent ? "true" : "false");
    std::fprintf(out, "  \"full_wall_s\": %.6f,\n", full_wall_s);
    std::fprintf(out, "  \"pre_interrupt_wall_s\": %.6f,\n",
                 first_half_wall_s);
    std::fprintf(out, "  \"resume_wall_s\": %.6f,\n", resume_wall_s);
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(out, "    ");
      write_point_json(out, points[i]);
      std::fprintf(out, i + 1 < points.size() ? ",\n" : "\n");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_nm.json\n");
  }

  return (contrast_holds && deterministic && resume_equivalent) ? 0 : 1;
}
