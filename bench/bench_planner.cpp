// §3.1 planner claim — "compared with random selection, the nearest
// neighbor algorithm saves 7.3% time of moving" when clicking 14 ESVs
// (80.45 s random vs 74.6 s NN in the paper's rig).
//
// We reproduce the comparison with the modeled stylus kinematics, and
// extend it with exact brute force (small n) and 2-opt refinement.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "cps/clicker.hpp"
#include "cps/planner.hpp"

namespace {

using namespace dpr;

/// Total selection time for a click order: pen travel plus the fixed
/// per-click wait the script generator inserts so the tool can react
/// (§3.1). The paper's 80.45 s / 74.6 s for 14 ESVs imply ~5 s per
/// selection, dominated by that wait — which is why the NN saving is a
/// single-digit percentage of *total* time.
constexpr double kToolReactionS = 4.5;

double tour_seconds(const std::vector<cps::Point>& points,
                    const std::vector<std::size_t>& order) {
  util::SimClock clock;
  cps::RoboticClicker clicker(clock);
  for (std::size_t i : order) {
    clicker.move_and_click(points[i].x, points[i].y);
    clock.advance(static_cast<util::SimTime>(kToolReactionS *
                                             util::kSecond));
  }
  return static_cast<double>(clock.now()) /
         static_cast<double>(util::kSecond);
}

}  // namespace

int main() {
  std::printf("Planner benchmark: click 14 ESVs on screen (paper: NN saves "
              "~7.3%% vs random)\n\n");
  util::Rng rng(0x7A117);
  double nn_time = 0.0, random_time = 0.0, two_opt_time = 0.0;
  const int trials = 200;
  for (int trial = 0; trial < trials; ++trial) {
    // 14 ESV rows laid out like a data-stream screen, with some x jitter
    // (two-column layouts etc.).
    std::vector<cps::Point> points;
    for (int i = 0; i < 14; ++i) {
      points.push_back(cps::Point{
          static_cast<int>(rng.uniform_int(60, 1100)),
          60 + 48 * static_cast<int>(rng.uniform_int(0, 13))});
    }
    const cps::Point start{0, 0};
    nn_time += tour_seconds(points, cps::plan_nearest_neighbor(start, points));
    random_time += tour_seconds(points, cps::plan_random(points, rng));
    two_opt_time += tour_seconds(
        points, cps::refine_two_opt(start, points,
                                    cps::plan_nearest_neighbor(start,
                                                               points)));
  }
  nn_time /= trials;
  random_time /= trials;
  two_opt_time /= trials;

  std::printf("%-24s %-14s\n", "Strategy", "avg time (s)");
  dpr::bench::print_rule(40);
  std::printf("%-24s %-14.2f\n", "random order", random_time);
  std::printf("%-24s %-14.2f\n", "nearest neighbor", nn_time);
  std::printf("%-24s %-14.2f\n", "NN + 2-opt", two_opt_time);
  dpr::bench::print_rule(40);
  const double saving = (random_time - nn_time) / random_time * 100.0;
  std::printf("NN saves %.1f%% vs random   [paper: 7.3%%]\n", saving);

  // Exact optimality gap on small instances.
  double nn_total = 0, opt_total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<cps::Point> points;
    for (int i = 0; i < 8; ++i) {
      points.push_back(cps::Point{static_cast<int>(rng.uniform_int(0, 1100)),
                                  static_cast<int>(rng.uniform_int(0, 700))});
    }
    const cps::Point start{0, 0};
    nn_total += static_cast<double>(cps::tour_length(
        start, points, cps::plan_nearest_neighbor(start, points)));
    opt_total += static_cast<double>(cps::tour_length(
        start, points, cps::plan_brute_force(start, points)));
  }
  std::printf("NN optimality gap on 8-point instances: +%.1f%% over exact\n",
              (nn_total - opt_total) / opt_total * 100.0);
  return saving > 0.0 ? 0 : 1;
}
