// Stateful-failure resilience benchmark behind BENCH_resilience.json:
// sweep the ECU reset rate (with S3 session timers and the diagtool
// session supervisor armed) over a small fleet and record how many
// reboots / lost sessions the campaigns rode out, then time a
// checkpointed interrupt-and-resume cycle against the uninterrupted run.
//
// Three properties are asserted (nonzero exit on violation):
//   1. Determinism: the heaviest reset rate replays bit-identically
//      (same fleet_signature) across 1, 2 and 8 fleet threads.
//   2. Graceful degradation: every campaign in the sweep completes —
//      reboots cost sessions and retries, never a car.
//   3. Resume equivalence: a run interrupted at a phase boundary and
//      resumed from its checkpoint produces the same fleet_signature
//      as the uninterrupted run.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --cars N        first N catalog cars (default 3)
//   --threads N     fleet threads for the sweep runs (default 2)
//   --window S      per-ECU live window seconds (default 8)
//   --population P  GP population (default 96)
//   --seed N        fault stream seed (default FaultConfig's)
//   --rates a,b,..  comma-separated reset rates (default 0,0.01,0.03)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"

namespace {

using namespace dpr;

struct SweepPoint {
  double reset_rate = 0.0;
  double gp_accuracy = 0.0;
  std::size_t signals = 0;
  std::size_t formula_signals = 0;
  std::size_t gp_correct = 0;
  std::size_t cars_ok = 0;
  std::size_t cars_failed = 0;
  std::uint64_t ecu_resets = 0;
  std::uint64_t s3_expiries = 0;
  diagtool::SessionStats sessions;
  util::TransactStats tx;
  double wall_s = 0.0;
};

SweepPoint summarize(double rate, const core::FleetSummary& summary) {
  SweepPoint point;
  point.reset_rate = rate;
  point.signals = summary.total_signals();
  point.formula_signals = summary.total_formula_signals();
  point.gp_correct = summary.total_gp_correct();
  point.gp_accuracy =
      point.formula_signals == 0
          ? 1.0
          : static_cast<double>(point.gp_correct) /
                static_cast<double>(point.formula_signals);
  point.cars_ok = summary.cars_ok();
  point.cars_failed = summary.cars_failed();
  for (const auto& report : summary.reports) {
    point.ecu_resets += report.ecu_resets;
    point.s3_expiries += report.ecu_s3_expiries;
    point.sessions += report.session_stats;
  }
  point.tx = summary.total_transactions();
  point.wall_s = summary.wall_s;
  return point;
}

void write_point_json(std::FILE* out, const SweepPoint& p) {
  std::fprintf(
      out,
      "{\"reset_rate\": %.6f, \"gp_accuracy\": %.6f, \"signals\": %zu, "
      "\"formula_signals\": %zu, \"gp_correct\": %zu, \"cars_ok\": %zu, "
      "\"cars_failed\": %zu, \"ecu_resets\": %llu, \"s3_expiries\": %llu, "
      "\"keepalives\": %llu, \"sessions_lost\": %llu, "
      "\"sessions_restored\": %llu, \"reissued_requests\": %llu, "
      "\"recovery_failures\": %llu, \"retries\": %llu, "
      "\"tx_failures\": %llu, \"wall_s\": %.6f}",
      p.reset_rate, p.gp_accuracy, p.signals, p.formula_signals,
      p.gp_correct, p.cars_ok, p.cars_failed,
      static_cast<unsigned long long>(p.ecu_resets),
      static_cast<unsigned long long>(p.s3_expiries),
      static_cast<unsigned long long>(p.sessions.keepalives),
      static_cast<unsigned long long>(p.sessions.sessions_lost),
      static_cast<unsigned long long>(p.sessions.sessions_restored),
      static_cast<unsigned long long>(p.sessions.reissued_requests),
      static_cast<unsigned long long>(p.sessions.recovery_failures),
      static_cast<unsigned long long>(p.tx.retries),
      static_cast<unsigned long long>(p.tx.failures), p.wall_s);
}

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t n_cars = 3;
  std::size_t n_threads = 2;
  double window_s = 8.0;
  std::size_t population = 96;
  util::FaultConfig base_faults;
  std::vector<double> rates = {0.0, 0.01, 0.03};
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--cars") == 0) {
      n_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      n_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      base_faults.fault_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--rates") == 0) {
      rates.clear();
      std::string list = next();
      std::size_t pos = 0;
      while (pos < list.size()) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(
            pos, comma == std::string::npos ? std::string::npos : comma - pos);
        if (!item.empty()) rates.push_back(std::atof(item.c_str()));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  n_cars = std::min(std::max<std::size_t>(n_cars, 1),
                    vehicle::catalog().size());

  std::vector<vehicle::CarId> cars;
  for (std::size_t i = 0; i < n_cars; ++i) {
    cars.push_back(vehicle::catalog()[i].id);
  }

  core::FleetOptions options;
  options.fleet_threads = n_threads;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;
  options.campaign.faults = base_faults;
  options.campaign.faults.session_faults = true;

  std::printf("Reset-rate resilience sweep: %zu cars, %zu fleet threads, "
              "fault seed %llu\n\n",
              cars.size(), core::FleetRunner(options).threads(),
              static_cast<unsigned long long>(base_faults.fault_seed));
  std::printf("%-8s %-8s %-9s %-8s %-8s %-9s %-9s %-9s\n", "rate", "GP acc",
              "ok/fail", "resets", "s3 exp", "lost", "restored", "keepal");
  dpr::bench::print_rule(76);

  std::vector<SweepPoint> points;
  bool all_completed = true;
  for (const double rate : rates) {
    options.campaign.faults.reset_rate = rate;
    const auto summary = core::FleetRunner(options).run(cars);
    const auto point = summarize(rate, summary);
    if (point.cars_failed != 0) all_completed = false;
    points.push_back(point);
    std::printf("%-8.4f %-8.3f %zu/%-6zu %-8llu %-8llu %-9llu %-9llu "
                "%-9llu\n",
                point.reset_rate, point.gp_accuracy, point.cars_ok,
                point.cars_failed,
                static_cast<unsigned long long>(point.ecu_resets),
                static_cast<unsigned long long>(point.s3_expiries),
                static_cast<unsigned long long>(point.sessions.sessions_lost),
                static_cast<unsigned long long>(
                    point.sessions.sessions_restored),
                static_cast<unsigned long long>(point.sessions.keepalives));
  }

  // Determinism: the heaviest reset rate must replay bit-identically
  // across thread counts.
  double check_rate = 0.0;
  for (const double rate : rates) {
    if (rate > check_rate) check_rate = rate;
  }
  bool deterministic = true;
  if (check_rate > 0.0) {
    options.campaign.faults.reset_rate = check_rate;
    std::string reference;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{8}}) {
      options.fleet_threads = threads;
      const auto signature =
          core::fleet_signature(core::FleetRunner(options).run(cars));
      if (reference.empty()) {
        reference = signature;
      } else if (signature != reference) {
        deterministic = false;
        std::printf("\nDETERMINISM VIOLATION: reset rate %.4f differs at "
                    "%zu threads\n",
                    check_rate, threads);
      }
    }
  }

  // Interrupt-and-resume: run to the associate boundary, then resume from
  // the checkpoints; the stitched run must match the uninterrupted one.
  const std::string checkpoint_dir =
      (std::filesystem::temp_directory_path() / "dpr_bench_resilience_ckpt")
          .string();
  std::filesystem::remove_all(checkpoint_dir);
  options.fleet_threads = n_threads;
  options.campaign.faults.reset_rate = 0.0;

  double t0 = now_s();
  const auto uninterrupted_signature =
      core::fleet_signature(core::FleetRunner(options).run(cars));
  const double full_wall_s = now_s() - t0;

  core::FleetOptions first_half = options;
  first_half.campaign.checkpoint_dir = checkpoint_dir;
  first_half.campaign.stop_after_phase = 4;  // through 'associate'
  t0 = now_s();
  core::FleetRunner(first_half).run(cars);
  const double first_half_wall_s = now_s() - t0;

  core::FleetOptions resumed = options;
  resumed.campaign.checkpoint_dir = checkpoint_dir;
  resumed.campaign.resume = true;
  t0 = now_s();
  const auto resumed_signature =
      core::fleet_signature(core::FleetRunner(resumed).run(cars));
  const double resume_wall_s = now_s() - t0;
  std::filesystem::remove_all(checkpoint_dir);

  const bool resume_equivalent =
      resumed_signature == uninterrupted_signature;

  std::printf("\ndeterminism across {1,2,8} threads at reset rate %.4f: "
              "%s\n",
              check_rate, deterministic ? "identical" : "DIFFER");
  std::printf("all campaigns completed: %s\n",
              all_completed ? "yes" : "NO (per-car failure recorded)");
  std::printf("resume == fresh: %s  (full %.2fs, pre-interrupt %.2fs, "
              "resume %.2fs)\n",
              resume_equivalent ? "identical" : "DIFFER", full_wall_s,
              first_half_wall_s, resume_wall_s);

  if (std::FILE* out = std::fopen("BENCH_resilience.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"cars\": %zu,\n", cars.size());
    std::fprintf(out, "  \"fleet_threads\": %zu,\n", n_threads);
    std::fprintf(out, "  \"fault_seed\": %llu,\n",
                 static_cast<unsigned long long>(base_faults.fault_seed));
    std::fprintf(out, "  \"deterministic_across_threads\": %s,\n",
                 deterministic ? "true" : "false");
    std::fprintf(out, "  \"determinism_check_rate\": %.6f,\n", check_rate);
    std::fprintf(out, "  \"all_campaigns_completed\": %s,\n",
                 all_completed ? "true" : "false");
    std::fprintf(out, "  \"resume_equivalent\": %s,\n",
                 resume_equivalent ? "true" : "false");
    std::fprintf(out, "  \"full_wall_s\": %.6f,\n", full_wall_s);
    std::fprintf(out, "  \"pre_interrupt_wall_s\": %.6f,\n",
                 first_half_wall_s);
    std::fprintf(out, "  \"resume_wall_s\": %.6f,\n", resume_wall_s);
    std::fprintf(out, "  \"sweep\": [\n");
    for (std::size_t i = 0; i < points.size(); ++i) {
      std::fprintf(out, "    ");
      write_point_json(out, points[i]);
      std::fprintf(out, i + 1 < points.size() ? ",\n" : "\n");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("wrote BENCH_resilience.json\n");
  }

  return (deterministic && all_completed && resume_equivalent) ? 0 : 1;
}
