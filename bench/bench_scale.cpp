// Procedural-fleet scaling benchmark behind BENCH_scale.json: generated
// fleets of 64 / 256 / 1024 vehicles (vehicle::Generator, fixed seed)
// driven through core::FleetRunner, recording the cars-vs-wall-clock
// curve, peak RSS, the aggregate FitnessCache hit rate and the
// checkpoint-store fan-out of an interrupted tier.
//
// Two determinism probes ride along on the smallest tier:
//   * the fleet signature at 1, 2 and 8 fleet threads must be identical;
//   * an interrupt (stop_after_phase) + resume must reproduce the
//     uninterrupted signature bit for bit.
//
// Flags (all optional, for CI smoke runs on small machines):
//   --max-cars N    cap the largest tier (default 1024)
//   --threads N     fleet threads for the timed runs (default 0 = all)
//   --window S      per-ECU live window seconds (default 4)
//   --population P  GP population (default 64)
//   --gen-seed S    generator base seed (default 0x5CA1E)

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/fleet.hpp"
#include "vehicle/generator.hpp"

namespace {

using namespace dpr;

long peak_rss_kb() {
  struct rusage usage {};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;  // KiB on Linux
}

struct CacheStats {
  std::size_t hits = 0;
  std::size_t misses = 0;
  double rate() const {
    const std::size_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) /
                            static_cast<double>(total);
  }
};

CacheStats cache_stats(const core::FleetSummary& summary) {
  CacheStats stats;
  for (const auto& report : summary.reports) {
    for (const auto& signal : report.signals) {
      if (!signal.gp) continue;
      stats.hits += signal.gp->timings.cache_hits;
      stats.misses += signal.gp->timings.cache_misses;
    }
  }
  return stats;
}

std::size_t count_checkpoints(const std::string& dir) {
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".ckpt") ++count;
  }
  return count;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t max_cars = 1024;
  std::size_t n_threads = 0;
  double window_s = 4.0;
  std::size_t population = 64;
  std::uint64_t gen_seed = 0x5CA1E;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--max-cars") == 0) {
      max_cars = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      n_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--window") == 0) {
      window_s = std::atof(next());
    } else if (std::strcmp(argv[i], "--population") == 0) {
      population = static_cast<std::size_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--gen-seed") == 0) {
      gen_seed = static_cast<std::uint64_t>(std::atoll(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 2;
    }
  }

  core::FleetOptions options;
  options.campaign.live_window =
      static_cast<util::SimTime>(window_s * util::kSecond);
  options.campaign.gp.population = population;
  options.fleet_threads = n_threads;

  std::vector<std::size_t> tiers;
  for (std::size_t size : {std::size_t{64}, std::size_t{256},
                           std::size_t{1024}}) {
    if (size <= max_cars) tiers.push_back(size);
  }
  if (tiers.empty()) tiers.push_back(max_cars);

  std::printf("Procedural fleet scaling: tiers up to %zu cars, "
              "%u hardware threads\n\n",
              tiers.back(), std::thread::hardware_concurrency());

  // Determinism probe 1: the smallest tier at 1 / 2 / 8 fleet threads.
  const auto probe_specs =
      vehicle::generate_fleet(vehicle::GeneratorConfig{}, gen_seed,
                              tiers.front());
  std::string probe_signature;
  bool threads_identical = true;
  for (std::size_t threads : {std::size_t{1}, std::size_t{2},
                              std::size_t{8}}) {
    core::FleetOptions probe_options = options;
    probe_options.fleet_threads = threads;
    const auto summary = core::FleetRunner(probe_options).run(probe_specs);
    const auto signature = core::fleet_signature(summary);
    if (probe_signature.empty()) {
      probe_signature = signature;
    } else if (signature != probe_signature) {
      threads_identical = false;
    }
    std::printf("threads=%zu: %zu cars ok, signature %s\n", threads,
                summary.cars_ok(),
                signature == probe_signature ? "identical" : "DIFFERS");
  }

  // Determinism probe 2: interrupt the same tier after the align phase,
  // count the per-car checkpoint fan-out, then resume to completion.
  const std::string ckpt_dir = "bench_scale_ckpt";
  std::filesystem::remove_all(ckpt_dir);
  core::FleetOptions resume_options = options;
  resume_options.fleet_threads = 1;
  resume_options.campaign.checkpoint_dir = ckpt_dir;
  resume_options.campaign.stop_after_phase = 3;  // ...align
  core::FleetRunner(resume_options).run(probe_specs);
  const std::size_t checkpoint_files = count_checkpoints(ckpt_dir);
  resume_options.campaign.stop_after_phase = -1;
  resume_options.campaign.resume = true;
  const auto resumed = core::FleetRunner(resume_options).run(probe_specs);
  const bool resume_identical =
      core::fleet_signature(resumed) == probe_signature;
  std::filesystem::remove_all(ckpt_dir);
  std::printf("interrupt/resume: %zu checkpoint files for %zu cars, "
              "resumed signature %s\n\n",
              checkpoint_files, probe_specs.size(),
              resume_identical ? "identical" : "DIFFERS");

  // The cars-vs-wall curve: every tier is a fresh generated fleet with
  // the same base seed, so tier N's cars are a prefix of tier N+1's.
  struct TierResult {
    std::size_t cars = 0;
    double wall_s = 0.0;
    std::size_t cars_ok = 0;
    std::size_t signals = 0;
    std::size_t ecrs = 0;
    CacheStats cache;
    long peak_rss_kb = 0;
  };
  std::vector<TierResult> results;
  std::printf("%-8s %-10s %-8s %-9s %-7s %-10s %-12s\n", "cars", "wall s",
              "ok", "#signals", "#ECR", "cache hit", "peak RSS MB");
  bench::print_rule(68);
  for (std::size_t size : tiers) {
    const auto specs =
        vehicle::generate_fleet(vehicle::GeneratorConfig{}, gen_seed, size);
    const auto summary = core::FleetRunner(options).run(specs);
    TierResult tier;
    tier.cars = size;
    tier.wall_s = summary.wall_s;
    tier.cars_ok = summary.cars_ok();
    tier.signals = summary.total_signals();
    tier.ecrs = summary.total_ecrs();
    tier.cache = cache_stats(summary);
    tier.peak_rss_kb = peak_rss_kb();
    results.push_back(tier);
    std::printf("%-8zu %-10.3f %-8zu %-9zu %-7zu %-10s %-12.1f\n",
                tier.cars, tier.wall_s, tier.cars_ok, tier.signals,
                tier.ecrs,
                bench::percent(tier.cache.hits,
                               tier.cache.hits + tier.cache.misses)
                    .c_str(),
                static_cast<double>(tier.peak_rss_kb) / 1024.0);
  }

  if (std::FILE* out = std::fopen("BENCH_scale.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"gen_seed\": %llu,\n",
                 static_cast<unsigned long long>(gen_seed));
    std::fprintf(out, "  \"window_s\": %.3f,\n", window_s);
    std::fprintf(out, "  \"population\": %zu,\n", population);
    std::fprintf(out, "  \"fleet_threads\": %zu,\n", n_threads);
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"threads_1_2_8_identical\": %s,\n",
                 threads_identical ? "true" : "false");
    std::fprintf(out, "  \"resume_identical\": %s,\n",
                 resume_identical ? "true" : "false");
    std::fprintf(out, "  \"checkpoint_files\": %zu,\n", checkpoint_files);
    std::fprintf(out, "  \"tiers\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& tier = results[i];
      std::fprintf(out,
                   "    {\"cars\": %zu, \"wall_s\": %.6f, "
                   "\"cars_ok\": %zu, \"signals\": %zu, \"ecrs\": %zu, "
                   "\"cache_hits\": %zu, \"cache_misses\": %zu, "
                   "\"cache_hit_rate\": %.4f, \"peak_rss_kb\": %ld}%s\n",
                   tier.cars, tier.wall_s, tier.cars_ok, tier.signals,
                   tier.ecrs, tier.cache.hits, tier.cache.misses,
                   tier.cache.rate(), tier.peak_rss_kb,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(out, "  ]\n}\n");
    std::fclose(out);
    std::printf("\nwrote BENCH_scale.json\n");
  }

  // Determinism is the hard requirement; wall clock and RSS are host
  // facts, reported but never asserted.
  return threads_identical && resume_identical ? 0 : 1;
}
