// Table 10 — Precision of the alternative inference algorithms on the
// same data GP sees: multivariate linear regression (LibreCAN-style) and
// degree-2 polynomial curve fitting.
//
// Paper result: LR 127/290 (43.8%), polynomial 93/290 (32.1%), versus GP
// 285/290 (98.3%). The reproduced *ordering* — GP far ahead of both
// closed-form baselines — is the result under test; our absolute baseline
// numbers are higher because the synthetic formula corpus is more affine
// than the (undisclosed) manufacturer corpus (see EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dpr;
  std::printf("Table 10: baseline inference precision per car\n");
  std::printf("(paper: LR 127/290 = 43.8%%, poly 93/290 = 32.1%%)\n\n");
  std::printf("%-8s %-14s %-20s %-20s %-14s\n", "Car", "#ESV(formula)",
              "#Correct(LinReg)", "#Correct(Poly)", "#Correct(GP)");
  bench::print_rule(80);

  std::size_t total = 0, lin = 0, poly = 0, gp = 0;
  for (const auto& spec : vehicle::catalog()) {
    core::Campaign campaign(spec.id, bench::table_options());
    campaign.collect();
    campaign.analyze();
    const auto& report = campaign.report();
    std::printf("%-8s %-14zu %-20zu %-20zu %-14zu\n",
                report.car_label.c_str(), report.formula_signals(),
                report.linear_correct(), report.polynomial_correct(),
                report.gp_correct());
    total += report.formula_signals();
    lin += report.linear_correct();
    poly += report.polynomial_correct();
    gp += report.gp_correct();
  }
  bench::print_rule(80);
  std::printf("%-8s %-14zu %-20zu %-20zu %-14zu\n", "Total", total, lin,
              poly, gp);
  std::printf("\nPrecision: LinReg %s, Poly %s, GP %s\n",
              bench::percent(lin, total).c_str(),
              bench::percent(poly, total).c_str(),
              bench::percent(gp, total).c_str());
  std::printf("(ordering under test: GP >> both baselines)\n");
  return gp > lin && gp > poly ? 0 : 1;
}
