// Table 11 — Number of ECRs (ECU control records) extracted per vehicle,
// and the service each car uses (UDS 0x2F vs local-identifier 0x30).
//
// Paper result: 124 ECRs across ten vehicles, all following the 3-message
// freeze -> short-term-adjustment -> return-control pattern (§4.5).

#include <cstdio>

#include "bench_common.hpp"

int main() {
  using namespace dpr;
  const vehicle::CarId table11_cars[] = {
      vehicle::CarId::kA, vehicle::CarId::kD, vehicle::CarId::kE,
      vehicle::CarId::kF, vehicle::CarId::kH, vehicle::CarId::kI,
      vehicle::CarId::kJ, vehicle::CarId::kN, vehicle::CarId::kO,
      vehicle::CarId::kQ,
  };

  std::printf("Table 11: ECRs extracted per vehicle (paper: 124 total, "
              "5 cars via 2F / 5 via 30)\n\n");
  std::printf("%-8s %-8s %-12s %-22s %-10s\n", "Car", "#ECR", "Service ID",
              "#3-msg pattern", "expected");
  bench::print_rule(66);

  auto options = bench::table_options();
  options.run_inference = false;

  std::size_t total = 0;
  std::size_t pattern_total = 0;
  bool all_match = true;
  for (const auto car : table11_cars) {
    core::Campaign campaign(car, options);
    campaign.collect();
    campaign.analyze();
    const auto& report = campaign.report();
    std::size_t with_pattern = 0;
    bool uses_2f = false, uses_30 = false;
    for (const auto& ecr : report.ecrs) {
      if (ecr.three_message_pattern) ++with_pattern;
      (ecr.is_uds ? uses_2f : uses_30) = true;
    }
    const auto& spec = vehicle::car_spec(car);
    std::printf("%-8s %-8zu %-12s %-22zu %zu\n", report.car_label.c_str(),
                report.ecrs.size(), uses_2f ? "2F" : (uses_30 ? "30" : "-"),
                with_pattern, spec.ecr_count);
    total += report.ecrs.size();
    pattern_total += with_pattern;
    if (report.ecrs.size() != spec.ecr_count) all_match = false;
  }
  bench::print_rule(66);
  std::printf("Total ECRs: %zu (paper: 124), with 3-message pattern: %zu\n",
              total, pattern_total);
  std::printf("\nRecovered procedure (as in §4.5):\n"
              "  1. \"2F {DID} 02\"            freeze current state\n"
              "  2. \"2F {DID} 03 {state...}\"  short-term adjustment\n"
              "  3. \"2F {DID} 00\"            return control to ECU\n");
  return all_match ? 0 : 1;
}
