// Table 12 — Telematics apps containing response-message formulas,
// recovered by the Alg. 1 taint analysis over the 160-app corpus.
//
// Paper result: 3 apps with UDS/KWP 2000 formulas (the Carly family),
// ~25 apps with OBD-II-only formulas, 13 apps whose formulas resist
// extraction, and the rest without response math.

#include <cstdio>
#include <map>

#include "appanalysis/corpus.hpp"
#include "appanalysis/taint.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dpr::appanalysis;
  std::printf("Table 12: telematics apps containing formulas\n");
  std::printf("(paper: Carly VAG 90 UDS + 137 KWP; Carly Mercedes 1624 + "
              "468; Carly Toyota 7 KWP;\n the rest OBD-II only or none)\n\n");
  std::printf("%-34s %-14s %-10s\n", "APP Name", "Formula Type",
              "#Formula");
  dpr::bench::print_rule(60);

  std::size_t apps_with_proprietary = 0;
  std::size_t apps_with_obd_only = 0;
  std::size_t apps_without = 0;
  std::size_t resistant = 0;
  std::size_t mismatches = 0;

  for (const auto& entry : build_corpus()) {
    const auto report = analyze_app(entry.app);
    std::map<ProtocolClass, std::size_t> counts;
    for (const auto& formula : report.formulas) ++counts[formula.protocol];
    const std::size_t uds = counts[ProtocolClass::kUds];
    const std::size_t kwp = counts[ProtocolClass::kKwp2000];
    const std::size_t obd = counts[ProtocolClass::kObd2];

    if (uds + kwp > 0) {
      ++apps_with_proprietary;
      if (uds > 0) {
        std::printf("%-34s %-14s %zu\n", report.app_name.c_str(), "UDS",
                    uds);
      }
      if (kwp > 0) {
        std::printf("%-34s %-14s %zu\n", report.app_name.c_str(),
                    "KWP 2000", kwp);
      }
    } else if (obd > 0) {
      ++apps_with_obd_only;
      std::printf("%-34s %-14s %zu\n", report.app_name.c_str(), "OBD-II",
                  obd);
    } else {
      ++apps_without;
      if (report.taint_breaks > 0) ++resistant;
    }

    // Score the analyzer against the corpus ground truth.
    if (!entry.extraction_resistant &&
        (uds != entry.uds_formulas || kwp != entry.kwp_formulas ||
         obd != entry.obd_formulas)) {
      ++mismatches;
    }
    if (entry.extraction_resistant && !report.formulas.empty()) {
      ++mismatches;
    }
  }

  dpr::bench::print_rule(60);
  std::printf("\nApps with UDS/KWP formulas:   %zu   [paper: 3]\n",
              apps_with_proprietary);
  std::printf("Apps with OBD-II formulas:    %zu   [paper Table 12 lists "
              "~25 rows]\n", apps_with_obd_only);
  std::printf("Apps without extractable math: %zu (of which %zu blocked "
              "the taint analysis [paper: 13])\n",
              apps_without, resistant);
  std::printf("Analyzer/ground-truth mismatches: %zu\n", mismatches);
  return mismatches == 0 && apps_with_proprietary == 3 ? 0 : 1;
}
