// Table 13 — Using the reverse-engineered diagnostic messages to attack
// running vehicles (§9.3): rent another vehicle of the same model, inject
// the recovered request messages through the OBD port, and verify that
// the read succeeds / the component actually triggers.
//
// Paper result: every replayed message succeeds while the vehicle runs
// (e.g. unlocking all doors of a moving Toyota Corolla).

#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "isotp/endpoint.hpp"
#include "kwp/client.hpp"
#include "oemtp/link.hpp"
#include "uds/client.hpp"

namespace {

using namespace dpr;

/// The attacker's OBD dongle: a raw message link to one ECU of the
/// victim vehicle, built from the same public transport standards.
std::unique_ptr<util::MessageLink> attacker_link(
    can::CanBus& bus, const vehicle::CarSpec& spec,
    const vehicle::EcuSpec& ecu) {
  switch (spec.transport) {
    case vehicle::TransportKind::kIsoTp:
      return std::make_unique<isotp::Endpoint>(
          bus, isotp::EndpointConfig{can::CanId{ecu.request_id, false},
                                     can::CanId{ecu.response_id, false}});
    case vehicle::TransportKind::kBmwFraming:
      return std::make_unique<oemtp::BmwLink>(
          bus, oemtp::BmwLinkConfig{can::CanId{ecu.request_id, false},
                                    can::CanId{ecu.response_id, false},
                                    ecu.address, 0xF1});
    case vehicle::TransportKind::kVwTp20:
      return std::make_unique<vwtp::Channel>(
          bus, vwtp::ChannelConfig{can::CanId{ecu.request_id, false},
                                   can::CanId{ecu.response_id, false}});
  }
  return nullptr;
}

struct AttackResult {
  std::size_t attempted = 0;
  std::size_t succeeded = 0;
};

AttackResult attack_car(vehicle::CarId car) {
  // Phase 1: reverse engineer a rented instance of the model.
  auto options = bench::table_options();
  options.run_inference = false;
  core::Campaign campaign(car, options);
  campaign.collect();
  campaign.analyze();
  const auto& report = campaign.report();

  // Phase 2: attack a *different* instance (fresh seed -> fresh state).
  util::SimClock clock;
  can::CanBus bus(clock);
  vehicle::Vehicle victim(car, bus, clock, /*seed=*/0xA77AC4);
  const auto& spec = victim.spec();

  AttackResult result;

  // Replay two recovered read requests (e.g. BMW brake pressure).
  std::size_t reads = 0;
  for (const auto& signal : report.signals) {
    if (signal.is_kwp || reads >= 2) continue;
    auto* ecu = victim.find_ecu_with_did(signal.did);
    if (ecu == nullptr) continue;
    const vehicle::EcuSpec* ecu_spec = nullptr;
    for (const auto& e : spec.ecus) {
      if (e.request_id == ecu->request_id() &&
          e.response_id == ecu->response_id()) {
        ecu_spec = &e;
      }
    }
    if (!ecu_spec) continue;
    auto link = attacker_link(bus, spec, *ecu_spec);
    uds::Client client(*link, [&] { bus.deliver_pending(); });
    const std::vector<uds::Did> dids{signal.did};
    const auto resp = client.transact(
        uds::encode_read_data_by_identifier(dids));
    ++result.attempted;
    ++reads;
    if (resp && !resp->empty() && (*resp)[0] == 0x62) {
      ++result.succeeded;
      std::printf("    read  [%s] %-32s -> %s\n",
                  signal.request_message.c_str(),
                  signal.semantic_name.c_str(),
                  util::to_hex(*resp).c_str());
    } else {
      std::printf("    read  [%s] FAILED\n", signal.request_message.c_str());
    }
  }

  // Replay every recovered control procedure.
  for (const auto& ecr : report.ecrs) {
    auto* ecu = victim.find_ecu_with_actuator(ecr.id);
    if (ecu == nullptr) continue;
    const vehicle::EcuSpec* ecu_spec = nullptr;
    for (const auto& e : spec.ecus) {
      if (e.response_id == ecu->response_id()) ecu_spec = &e;
    }
    if (!ecu_spec) continue;
    auto link = attacker_link(bus, spec, *ecu_spec);
    ++result.attempted;
    const auto pump = [&] { bus.deliver_pending(); };
    bool ok = false;
    if (ecr.is_uds) {
      uds::Client client(*link, pump);
      client.start_session(0x03);
      ok = client.io_control(ecr.id,
                             uds::IoControlParameter::kFreezeCurrentState)
               .has_value();
      ok = ok && client.io_control(
                     ecr.id, uds::IoControlParameter::kShortTermAdjustment,
                     ecr.adjustment_state).has_value();
      ok = ok && client.io_control(
                     ecr.id, uds::IoControlParameter::kReturnControlToEcu)
                     .has_value();
    } else {
      uds::Client session(*link, pump);
      session.start_session(0x03);
      kwp::Client client(*link, pump);
      const auto local = static_cast<std::uint8_t>(ecr.id);
      util::Bytes freeze{0x02};
      ok = client.io_control_local(local, freeze).has_value();
      util::Bytes adjust{0x03};
      adjust.insert(adjust.end(), ecr.adjustment_state.begin(),
                    ecr.adjustment_state.end());
      ok = ok && client.io_control_local(local, adjust).has_value();
      util::Bytes ret{0x00};
      ok = ok && client.io_control_local(local, ret).has_value();
    }
    const bool triggered = ecu->actuator(ecr.id)->activations() > 0;
    if (ok && triggered) ++result.succeeded;
    std::printf("    ctrl  [%s id 0x%04X] %-28s -> %s\n",
                ecr.is_uds ? "2F" : "30", ecr.id, ecr.semantic_name.c_str(),
                ok && triggered ? "component triggered" : "FAILED");
  }
  return result;
}

}  // namespace

int main() {
  std::printf("Table 13: attacking running vehicles with reverse-"
              "engineered messages\n(paper: all messages succeed on BMW "
              "i3, Lexus NX300, Toyota Corolla, Kia)\n\n");
  const vehicle::CarId targets[] = {vehicle::CarId::kG, vehicle::CarId::kD,
                                    vehicle::CarId::kL, vehicle::CarId::kN};
  std::size_t attempted = 0, succeeded = 0;
  for (const auto car : targets) {
    std::printf("%s (%s):\n", vehicle::car_label(car).c_str(),
                vehicle::car_spec(car).model.c_str());
    const auto result = attack_car(car);
    attempted += result.attempted;
    succeeded += result.succeeded;
  }
  dpr::bench::print_rule(70);
  std::printf("Attack success: %zu/%zu   [paper: all succeed]\n", succeeded,
              attempted);
  return succeeded == attempted && attempted > 0 ? 0 : 1;
}
