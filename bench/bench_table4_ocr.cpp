// Table 4 — Performance of the OCR engine.
//
// Paper result: AUTEL 919 488/500 frames correct (97.6%); LAUNCH X431
// 425/500 (85.0%). A frame counts as correct when every live-value glyph
// is recognized exactly. The resolution dependence comes from the glyph
// height of each tool's screen.

#include <cstdio>

#include "bench_common.hpp"
#include "can/bus.hpp"
#include "cps/camera.hpp"
#include "cps/ocr.hpp"
#include "diagtool/tool.hpp"
#include "vehicle/vehicle.hpp"

namespace {

using namespace dpr;

struct OcrRun {
  std::size_t total = 0;
  std::size_t correct = 0;
};

OcrRun run_tool(diagtool::ToolKind kind, std::size_t frames) {
  util::SimClock clock;
  can::CanBus bus(clock);
  vehicle::Vehicle vehicle(vehicle::CarId::kA, bus, clock, 0x7AB1E4);
  diagtool::DiagnosticTool tool(diagtool::profile_for(kind), vehicle, bus,
                                clock);
  cps::Camera camera(tool, util::DeviceClock{},
                     tool.profile().value_font_px);
  cps::OcrEngine ocr(util::Rng(0x0C12 + static_cast<int>(kind)));

  // Navigate to a live data-stream view.
  auto click_text = [&](const std::string& keyword) {
    for (const auto& w : tool.screen().widgets) {
      if (w.kind == diagtool::Widget::Kind::kButton &&
          w.text.find(keyword) != std::string::npos) {
        tool.click(w.bounds.center_x(), w.bounds.center_y());
        return true;
      }
    }
    return false;
  };
  click_text("Local Diagnostics");
  click_text("Engine");
  click_text("Read Data Stream");
  while (click_text("[ ]")) {
  }
  click_text("Start");

  OcrRun run;
  while (run.total < frames) {
    tool.run_for(250 * util::kMillisecond);
    const auto shot = camera.capture(clock.now());
    bool frame_correct = true;
    bool has_values = false;
    for (const auto& region : shot.text_regions) {
      if (region.row < 0 || region.bounds.x <= shot.width / 2) continue;
      has_values = true;
      if (ocr.read(region.truth, region.font_px) != region.truth) {
        frame_correct = false;
      }
    }
    if (!has_values) continue;
    ++run.total;
    if (frame_correct) ++run.correct;
  }
  return run;
}

}  // namespace

int main() {
  std::printf("Table 4: Performance of OCR engine\n");
  std::printf("(paper: AUTEL 919 488/500 = 97.6%%, LAUNCH X431 425/500 = "
              "85.0%%)\n\n");
  std::printf("%-16s %-12s %-14s %-10s\n", "Diagnostic Tool", "#Total Pics",
              "#Correct Pics", "Precision");
  dpr::bench::print_rule(56);
  for (const auto kind :
       {dpr::diagtool::ToolKind::kAutel919,
        dpr::diagtool::ToolKind::kLaunchX431}) {
    const auto profile = dpr::diagtool::profile_for(kind);
    const auto run = run_tool(kind, 500);
    std::printf("%-16s %-12zu %-14zu %s\n", profile.name.c_str(), run.total,
                run.correct, dpr::bench::percent(run.correct, run.total).c_str());
  }
  return 0;
}
