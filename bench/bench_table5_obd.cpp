// Table 5 — Reverse engineering the formulas of the OBD-II protocol.
//
// Paper result: all 7 tested ESVs recovered with formulas equivalent to
// the SAE J1979 ground truth (100% precision, §4.2). The vehicle
// simulator + telematics-app setup is reproduced by run_obd_experiment.

#include <cstdio>

#include "bench_common.hpp"
#include "core/obd_experiment.hpp"

int main() {
  using namespace dpr;
  std::printf("Table 5: Reverse engineering OBD-II formulas (paper: 7/7 "
              "correct)\n\n");

  core::ObdExperimentOptions options;
  options.duration = 25 * util::kSecond;
  options.gp.population = 160;
  const auto report = core::run_obd_experiment(options);

  const std::uint8_t table5_pids[] = {0x11, 0x04, 0x2F,
                                      0x0C, 0x0D, 0x05, 0x0B};
  std::printf("%-34s %-8s %-22s %-34s %s\n", "ESV", "Request",
              "Formula (ground truth)", "Formula (GP system output)",
              "Correct");
  bench::print_rule(110);
  std::size_t correct = 0;
  std::size_t shown = 0;
  for (const std::uint8_t pid : table5_pids) {
    for (const auto& finding : report.findings) {
      if (finding.pid != pid) continue;
      ++shown;
      if (finding.correct) ++correct;
      std::printf("%-34s %-8s %-22s %-34s %s\n", finding.name.c_str(),
                  finding.request_message.c_str(),
                  finding.truth_formula.c_str(),
                  finding.gp ? finding.gp->formula.c_str() : "(none)",
                  finding.correct ? "yes" : "NO");
    }
  }
  bench::print_rule(110);
  std::printf("Precision: %zu/%zu (%s)   [paper: 7/7, 100%%]\n", correct,
              shown, bench::percent(correct, shown).c_str());

  // The remaining recovered PIDs, as a bonus sweep.
  std::printf("\nOther recovered PIDs: %zu/%zu correct overall\n",
              report.correct_count(), report.findings.size());
  return correct == shown && shown == 7 ? 0 : 1;
}
