// Table 6 — ESV analysis over all 18 vehicles: number of formula ESVs,
// number correctly inferred by GP, precision, and enum ESV counts.
//
// Paper result: 285/290 formulas correct (98.3%) plus 156 enum ESVs.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"

int main() {
  using namespace dpr;
  std::printf("Table 6: GP formula inference per car (paper: 285/290 = "
              "98.3%%, 156 enums)\n\n");
  std::printf("%-8s %-14s %-14s %-11s %-12s\n", "Car", "#ESV(formula)",
              "#Correct ESV", "Precision", "#ESV(Enum)");
  bench::print_rule(64);

  std::size_t total_formula = 0, total_correct = 0, total_enum = 0;
  for (const auto& spec : vehicle::catalog()) {
    core::Campaign campaign(spec.id, bench::table_options());
    campaign.collect();
    campaign.analyze();
    const auto& report = campaign.report();
    const std::size_t formulas = report.formula_signals();
    const std::size_t correct = report.gp_correct();
    const std::size_t enums = report.enum_signals();
    std::printf("%-8s %-14zu %-14zu %-11s %-12zu\n",
                report.car_label.c_str(), formulas, correct,
                bench::percent(correct, formulas).c_str(), enums);
    total_formula += formulas;
    total_correct += correct;
    total_enum += enums;
  }
  bench::print_rule(64);
  std::printf("%-8s %-14zu %-14zu %-11s %-12zu\n", "Total", total_formula,
              total_correct,
              bench::percent(total_correct, total_formula).c_str(),
              total_enum);
  std::printf("\n(paper totals: 290 formula ESVs, 285 correct, 98.3%%, 156 "
              "enums)\n");
  return 0;
}
