// Table 7 — Validation with real-vehicle dashboards: for four cars, the
// ESV shown on the dashboard is used as ground truth for the inferred
// formula ("combine the diagnostic messages and the inferred formulas to
// obtain the possible ESVs shown on dashboards").
//
// Paper result: all four inferred formulas correct.

#include <cstdio>
#include <string>

#include "bench_common.hpp"

int main() {
  using namespace dpr;
  struct Target {
    vehicle::CarId car;
    const char* signal;
  };
  const Target targets[] = {
      {vehicle::CarId::kF, "Engine Speed"},        // paper: Y = X
      {vehicle::CarId::kK, "Engine Speed"},        // paper: Y = X0*X1/5
      {vehicle::CarId::kL, "Coolant Temperature"}, // paper: Y = 0.5X
      {vehicle::CarId::kR, "Engine Speed"},  // paper: Y = 64.1X0+0.241X1
  };

  std::printf("Table 7: dashboard validation (paper: 4/4 correct)\n\n");
  std::printf("%-8s %-24s %-34s %-30s %s\n", "Vehicle", "ESV (dashboard)",
              "Formula (GP system output)", "Ground truth", "Same?");
  bench::print_rule(110);

  std::size_t correct = 0;
  for (const auto& target : targets) {
    core::Campaign campaign(target.car, bench::table_options());
    campaign.collect();
    campaign.analyze();

    // Sanity: the dashboard actually displays this signal.
    const auto dashboard =
        campaign.vehicle().dashboard_value(target.signal);

    const core::SignalFinding* found = nullptr;
    for (const auto& finding : campaign.report().signals) {
      if (finding.semantic_name == target.signal) found = &finding;
    }
    const bool ok = found != nullptr && found->gp_correct &&
                    dashboard.has_value();
    if (ok) ++correct;
    std::printf("%-8s %-24s %-34s %-30s %s\n",
                campaign.report().car_label.c_str(), target.signal,
                found && found->gp ? found->gp->formula.c_str() : "(none)",
                found ? found->truth_formula.c_str() : "?",
                ok ? "yes" : "NO");
  }
  bench::print_rule(110);
  std::printf("Correct: %zu/4   [paper: 4/4]\n", correct);
  return correct == 4 ? 0 : 1;
}
