// Table 8 — Average time cost of inferring one formula (seconds).
//
// Paper result (Python gplearn, population 1000 x 30 generations):
//   GP: UDS 201.40 s, KWP 192.19 s; linear regression and polynomial
//   curve fitting: < 1 ms. Absolute numbers depend on the implementation;
//   the reproduction must preserve the ordering (GP orders of magnitude
//   slower than the closed-form baselines).

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "gp/engine.hpp"
#include "regress/regress.hpp"

namespace {

using namespace dpr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Timings {
  double gp = 0, linear = 0, poly = 0;
  std::size_t count = 0;
};

Timings time_car(vehicle::CarId car) {
  // Collect datasets once, then time each inference algorithm on them.
  auto options = bench::table_options();
  options.run_inference = false;
  core::Campaign campaign(car, options);
  campaign.collect();
  campaign.analyze();

  Timings timings;
  gp::GpConfig config;
  config.population = 1000;        // the paper's population
  config.max_generations = 30;     // and generation cap
  config.seed_least_squares = false;  // time the raw evolutionary search
  config.seed_templates = false;
  config.constant_tuning = false;
  config.fitness_threshold = 0.0;  // run all generations, as a worst case
  for (const auto& finding : campaign.report().signals) {
    if (finding.is_enum || finding.dataset.points.size() < 6) continue;
    auto start = Clock::now();
    (void)gp::infer_formula(finding.dataset, config);
    timings.gp += seconds_since(start);
    start = Clock::now();
    (void)regress::fit_linear(finding.dataset);
    timings.linear += seconds_since(start);
    start = Clock::now();
    (void)regress::fit_polynomial(finding.dataset);
    timings.poly += seconds_since(start);
    ++timings.count;
    if (timings.count >= 8) break;  // a representative sample suffices
  }
  return timings;
}

}  // namespace

int main() {
  std::printf("Table 8: average time to infer one formula (seconds)\n");
  std::printf("(paper: GP ~201/192 s with population 1000 x 30 "
              "generations; LR/poly < 1 ms.\n");
  std::printf(" Our GP is C++ at the same population/generations, so its "
              "absolute time is\n lower; the GP >> LR/poly ordering is the "
              "reproduced result.)\n\n");
  std::printf("%-10s %-22s %-22s %-22s\n", "Protocol", "Genetic Programming",
              "Linear Regression", "Polynomial Fitting");
  dpr::bench::print_rule(78);

  const auto uds = time_car(dpr::vehicle::CarId::kA);
  std::printf("%-10s %-22.4f %-22.6f %-22.6f\n", "UDS",
              uds.gp / uds.count, uds.linear / uds.count,
              uds.poly / uds.count);
  const auto kwp = time_car(dpr::vehicle::CarId::kB);
  std::printf("%-10s %-22.4f %-22.6f %-22.6f\n", "KWP 2000",
              kwp.gp / kwp.count, kwp.linear / kwp.count,
              kwp.poly / kwp.count);

  const double ratio =
      (uds.gp / uds.count) / std::max(1e-9, uds.linear / uds.count);
  std::printf("\nGP / LR time ratio (UDS): %.0fx  [paper: ~10^5x]\n", ratio);
  return ratio > 100.0 ? 0 : 1;
}
