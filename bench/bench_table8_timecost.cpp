// Table 8 — Average time cost of inferring one formula (seconds) — plus
// the GP threading benchmark behind BENCH_gp.json.
//
// Paper result (Python gplearn, population 1000 x 30 generations):
//   GP: UDS 201.40 s, KWP 192.19 s; linear regression and polynomial
//   curve fitting: < 1 ms. Absolute numbers depend on the implementation;
//   the reproduction must preserve the ordering (GP orders of magnitude
//   slower than the closed-form baselines).
//
// The threading phase reruns the same fleet sample three ways — serial,
// batch fan-out over 4 pool workers (gp::BatchRunner), and intra-GP
// parallelism (GpConfig::n_threads = 4) — verifies all three produce
// identical formulas, and writes the speedups plus the per-stage
// breakdown to BENCH_gp.json so the perf trajectory is machine-readable.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gp/batch.hpp"
#include "gp/engine.hpp"
#include "regress/regress.hpp"

namespace {

using namespace dpr;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Timings {
  double gp = 0, linear = 0, poly = 0;
  std::size_t count = 0;
};

/// Representative non-enum datasets from one car's campaign.
std::vector<correlate::Dataset> collect_datasets(vehicle::CarId car,
                                                 std::size_t cap = 8) {
  auto options = bench::table_options();
  options.run_inference = false;
  core::Campaign campaign(car, options);
  campaign.collect();
  campaign.analyze();
  std::vector<correlate::Dataset> datasets;
  for (const auto& finding : campaign.report().signals) {
    if (finding.is_enum || finding.dataset.points.size() < 6) continue;
    datasets.push_back(finding.dataset);
    if (datasets.size() >= cap) break;
  }
  return datasets;
}

Timings time_car(const std::vector<correlate::Dataset>& datasets) {
  Timings timings;
  gp::GpConfig config;
  config.population = 1000;        // the paper's population
  config.max_generations = 30;     // and generation cap
  config.seed_least_squares = false;  // time the raw evolutionary search
  config.seed_templates = false;
  config.constant_tuning = false;
  config.fitness_threshold = 0.0;  // run all generations, as a worst case
  for (const auto& dataset : datasets) {
    auto start = Clock::now();
    (void)gp::infer_formula(dataset, config);
    timings.gp += seconds_since(start);
    start = Clock::now();
    (void)regress::fit_linear(dataset);
    timings.linear += seconds_since(start);
    start = Clock::now();
    (void)regress::fit_polynomial(dataset);
    timings.poly += seconds_since(start);
    ++timings.count;
  }
  return timings;
}

struct FleetRun {
  double wall_s = 0.0;
  gp::GpStageTimings stages;  // summed over all inferences
  std::vector<std::string> formulas;
};

/// Run every dataset through a BatchRunner with the given (outer, inner)
/// thread split and collect formulas + stage totals.
FleetRun run_fleet(const std::vector<correlate::Dataset>& datasets,
                   std::size_t batch_threads, std::size_t gp_threads) {
  std::vector<gp::BatchJob> jobs;
  jobs.reserve(datasets.size());
  gp::GpConfig config = bench::table_options().gp;
  config.fitness_threshold = 0.0;  // full generations: stable comparison
  config.n_threads = gp_threads;
  for (std::size_t i = 0; i < datasets.size(); ++i) {
    gp::BatchJob job;
    job.dataset = &datasets[i];
    job.config = config;
    job.config.seed ^= i * 0x9E3779B9ULL;  // one stream per dataset
    jobs.push_back(job);
  }

  FleetRun run;
  const auto start = Clock::now();
  const auto results = gp::BatchRunner(batch_threads).run(jobs);
  run.wall_s = seconds_since(start);
  for (const auto& result : results) {
    run.formulas.push_back(result ? result->formula : "(none)");
    if (!result) continue;
    run.stages.scoring_s += result->timings.scoring_s;
    run.stages.tuning_s += result->timings.tuning_s;
    run.stages.breeding_s += result->timings.breeding_s;
    run.stages.total_s += result->timings.total_s;
    run.stages.evaluations += result->timings.evaluations;
  }
  return run;
}

void write_stage_json(std::FILE* out, const char* name,
                      const FleetRun& run) {
  std::fprintf(out,
               "    \"%s\": {\"wall_s\": %.6f, \"scoring_s\": %.6f, "
               "\"tuning_s\": %.6f, \"breeding_s\": %.6f, "
               "\"evaluations\": %zu}",
               name, run.wall_s, run.stages.scoring_s, run.stages.tuning_s,
               run.stages.breeding_s, run.stages.evaluations);
}

}  // namespace

int main() {
  std::printf("Table 8: average time to infer one formula (seconds)\n");
  std::printf("(paper: GP ~201/192 s with population 1000 x 30 "
              "generations; LR/poly < 1 ms.\n");
  std::printf(" Our GP is C++ at the same population/generations, so its "
              "absolute time is\n lower; the GP >> LR/poly ordering is the "
              "reproduced result.)\n\n");
  std::printf("%-10s %-22s %-22s %-22s\n", "Protocol", "Genetic Programming",
              "Linear Regression", "Polynomial Fitting");
  dpr::bench::print_rule(78);

  const auto uds_datasets = collect_datasets(dpr::vehicle::CarId::kA);
  const auto kwp_datasets = collect_datasets(dpr::vehicle::CarId::kB);
  const auto uds = time_car(uds_datasets);
  std::printf("%-10s %-22.4f %-22.6f %-22.6f\n", "UDS",
              uds.gp / uds.count, uds.linear / uds.count,
              uds.poly / uds.count);
  const auto kwp = time_car(kwp_datasets);
  std::printf("%-10s %-22.4f %-22.6f %-22.6f\n", "KWP 2000",
              kwp.gp / kwp.count, kwp.linear / kwp.count,
              kwp.poly / kwp.count);

  const double ratio =
      (uds.gp / uds.count) / std::max(1e-9, uds.linear / uds.count);
  std::printf("\nGP / LR time ratio (UDS): %.0fx  [paper: ~10^5x]\n", ratio);

  // --- Threading speedup (BENCH_gp.json) ------------------------------------
  constexpr std::size_t kThreads = 4;
  std::vector<dpr::correlate::Dataset> fleet = uds_datasets;
  fleet.insert(fleet.end(), kwp_datasets.begin(), kwp_datasets.end());

  std::printf("\nGP threading (%zu datasets, %u hardware threads):\n",
              fleet.size(), std::thread::hardware_concurrency());
  const auto serial = run_fleet(fleet, 1, 1);
  const auto batch = run_fleet(fleet, kThreads, 1);   // fleet fan-out
  const auto intra = run_fleet(fleet, 1, kThreads);   // per-GP parallelism

  const bool batch_identical = serial.formulas == batch.formulas;
  const bool intra_identical = serial.formulas == intra.formulas;
  const double batch_speedup = serial.wall_s / std::max(1e-9, batch.wall_s);
  const double intra_speedup = serial.wall_s / std::max(1e-9, intra.wall_s);
  std::printf("  serial (1 thread):         %8.3f s\n", serial.wall_s);
  std::printf("  batch fan-out (%zu threads): %8.3f s  -> %.2fx  "
              "(formulas %s)\n",
              kThreads, batch.wall_s, batch_speedup,
              batch_identical ? "identical" : "DIFFER");
  std::printf("  intra-GP (%zu threads):      %8.3f s  -> %.2fx  "
              "(formulas %s)\n",
              kThreads, intra.wall_s, intra_speedup,
              intra_identical ? "identical" : "DIFFER");
  std::printf("  stage breakdown (serial, CPU-s): scoring %.3f, "
              "breeding %.3f, tuning %.3f, %zu evaluations\n",
              serial.stages.scoring_s, serial.stages.breeding_s,
              serial.stages.tuning_s, serial.stages.evaluations);

  if (std::FILE* out = std::fopen("BENCH_gp.json", "w")) {
    std::fprintf(out, "{\n");
    std::fprintf(out, "  \"n_threads\": %zu,\n", kThreads);
    std::fprintf(out, "  \"hardware_concurrency\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(out, "  \"datasets\": %zu,\n", fleet.size());
    std::fprintf(out, "  \"batch_speedup\": %.4f,\n", batch_speedup);
    std::fprintf(out, "  \"intra_gp_speedup\": %.4f,\n", intra_speedup);
    std::fprintf(out, "  \"formulas_identical\": %s,\n",
                 batch_identical && intra_identical ? "true" : "false");
    std::fprintf(out, "  \"runs\": {\n");
    write_stage_json(out, "serial", serial);
    std::fprintf(out, ",\n");
    write_stage_json(out, "batch", batch);
    std::fprintf(out, ",\n");
    write_stage_json(out, "intra_gp", intra);
    std::fprintf(out, "\n  }\n}\n");
    std::fclose(out);
    std::printf("  wrote BENCH_gp.json\n");
  }

  // Identical formulas are a hard determinism requirement; the speedup
  // itself depends on the host's core count, so it is reported, not
  // asserted.
  if (!batch_identical || !intra_identical) return 1;
  return ratio > 100.0 ? 0 : 1;
}
