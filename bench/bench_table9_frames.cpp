// Table 9 — Number/percentage of single frames and multi-frames in UDS
// and KWP 2000 traffic, i.e. how much of the capture *requires* payload
// recovery before any field can be extracted (§4.4 part 1).
//
// Paper result: UDS (Car A) 55.1% single / 32.0% multi (rest flow
// control); KWP 2000 (Cars B+C over VW TP 2.0) 75.2% of data frames must
// wait for further frames, 24.8% are last frames.

#include <cstdio>

#include "bench_common.hpp"
#include "frames/analysis.hpp"

int main() {
  using namespace dpr;
  std::printf("Table 9: single vs multi frames in captured traffic\n");
  std::printf("(paper: UDS 55.1%% SF / 32.0%% multi; KWP 75.2%% "
              "waiting / 24.8%% last)\n\n");

  auto options = bench::table_options();
  options.run_inference = false;

  // UDS traffic: Car A (Skoda Octavia), as in the paper.
  {
    core::Campaign campaign(vehicle::CarId::kA, options);
    campaign.collect();
    const auto census =
        frames::census(campaign.capture(), frames::TransportHint::kIsoTp);
    const std::size_t total = census.total();
    std::printf("UDS (Car A): %zu frames total\n", total);
    std::printf("  single frames:        %6zu (%s)\n", census.single_frames,
                bench::percent(census.single_frames, total).c_str());
    std::printf("  multi frames (FF+CF): %6zu (%s)\n", census.multi_frames(),
                bench::percent(census.multi_frames(), total).c_str());
    std::printf("  flow control:         %6zu (%s)\n",
                census.flow_control_frames,
                bench::percent(census.flow_control_frames, total).c_str());
  }

  // KWP 2000 traffic: Cars B and C (VW TP 2.0).
  {
    std::size_t more = 0, last = 0, control = 0;
    for (const auto car : {vehicle::CarId::kB, vehicle::CarId::kC}) {
      core::Campaign campaign(car, options);
      campaign.collect();
      const auto census = frames::census(campaign.capture(),
                                         frames::TransportHint::kVwTp20);
      more += census.vwtp_data_more;
      last += census.vwtp_data_last;
      control += census.vwtp_control;
    }
    const std::size_t data_total = more + last;
    std::printf("\nKWP 2000 (Cars B+C): %zu data frames (+%zu control)\n",
                data_total, control);
    std::printf("  need to wait for next frames: %6zu (%s)\n", more,
                bench::percent(more, data_total).c_str());
    std::printf("  last frames:                  %6zu (%s)\n", last,
                bench::percent(last, data_total).c_str());
  }

  std::printf("\nWithout payload recovery these multi-frame messages "
              "cannot be field-extracted\n(the LibreCAN/READ limitation "
              "the paper establishes).\n");
  return 0;
}
