# Empty dependencies file for bench_table10_baselines.
# This may be replaced when dependencies are built.
