file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_ecr.dir/bench_table11_ecr.cpp.o"
  "CMakeFiles/bench_table11_ecr.dir/bench_table11_ecr.cpp.o.d"
  "bench_table11_ecr"
  "bench_table11_ecr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_ecr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
