# Empty dependencies file for bench_table12_apps.
# This may be replaced when dependencies are built.
