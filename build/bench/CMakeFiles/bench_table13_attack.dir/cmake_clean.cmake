file(REMOVE_RECURSE
  "CMakeFiles/bench_table13_attack.dir/bench_table13_attack.cpp.o"
  "CMakeFiles/bench_table13_attack.dir/bench_table13_attack.cpp.o.d"
  "bench_table13_attack"
  "bench_table13_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table13_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
