# Empty dependencies file for bench_table13_attack.
# This may be replaced when dependencies are built.
