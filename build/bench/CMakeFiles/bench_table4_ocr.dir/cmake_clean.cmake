file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_ocr.dir/bench_table4_ocr.cpp.o"
  "CMakeFiles/bench_table4_ocr.dir/bench_table4_ocr.cpp.o.d"
  "bench_table4_ocr"
  "bench_table4_ocr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_ocr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
