file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_obd.dir/bench_table5_obd.cpp.o"
  "CMakeFiles/bench_table5_obd.dir/bench_table5_obd.cpp.o.d"
  "bench_table5_obd"
  "bench_table5_obd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_obd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
