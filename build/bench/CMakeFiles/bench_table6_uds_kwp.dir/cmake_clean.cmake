file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_uds_kwp.dir/bench_table6_uds_kwp.cpp.o"
  "CMakeFiles/bench_table6_uds_kwp.dir/bench_table6_uds_kwp.cpp.o.d"
  "bench_table6_uds_kwp"
  "bench_table6_uds_kwp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_uds_kwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
