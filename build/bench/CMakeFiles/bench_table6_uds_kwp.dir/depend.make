# Empty dependencies file for bench_table6_uds_kwp.
# This may be replaced when dependencies are built.
