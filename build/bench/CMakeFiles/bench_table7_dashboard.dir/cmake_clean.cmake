file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_dashboard.dir/bench_table7_dashboard.cpp.o"
  "CMakeFiles/bench_table7_dashboard.dir/bench_table7_dashboard.cpp.o.d"
  "bench_table7_dashboard"
  "bench_table7_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
