file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_timecost.dir/bench_table8_timecost.cpp.o"
  "CMakeFiles/bench_table8_timecost.dir/bench_table8_timecost.cpp.o.d"
  "bench_table8_timecost"
  "bench_table8_timecost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_timecost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
