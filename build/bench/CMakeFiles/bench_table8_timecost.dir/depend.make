# Empty dependencies file for bench_table8_timecost.
# This may be replaced when dependencies are built.
