file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_frames.dir/bench_table9_frames.cpp.o"
  "CMakeFiles/bench_table9_frames.dir/bench_table9_frames.cpp.o.d"
  "bench_table9_frames"
  "bench_table9_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
