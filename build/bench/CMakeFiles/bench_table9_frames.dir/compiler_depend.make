# Empty compiler generated dependencies file for bench_table9_frames.
# This may be replaced when dependencies are built.
