file(REMOVE_RECURSE
  "CMakeFiles/app_analysis.dir/app_analysis.cpp.o"
  "CMakeFiles/app_analysis.dir/app_analysis.cpp.o.d"
  "app_analysis"
  "app_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
