# Empty dependencies file for app_analysis.
# This may be replaced when dependencies are built.
