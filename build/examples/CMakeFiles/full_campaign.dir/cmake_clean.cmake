file(REMOVE_RECURSE
  "CMakeFiles/full_campaign.dir/full_campaign.cpp.o"
  "CMakeFiles/full_campaign.dir/full_campaign.cpp.o.d"
  "full_campaign"
  "full_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
