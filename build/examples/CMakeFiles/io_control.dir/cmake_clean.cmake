file(REMOVE_RECURSE
  "CMakeFiles/io_control.dir/io_control.cpp.o"
  "CMakeFiles/io_control.dir/io_control.cpp.o.d"
  "io_control"
  "io_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
