# Empty compiler generated dependencies file for io_control.
# This may be replaced when dependencies are built.
