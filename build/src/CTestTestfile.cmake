# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("can")
subdirs("isotp")
subdirs("vwtp")
subdirs("oemtp")
subdirs("kline")
subdirs("uds")
subdirs("kwp")
subdirs("obd")
subdirs("vehicle")
subdirs("diagtool")
subdirs("cps")
subdirs("frames")
subdirs("screenshot")
subdirs("correlate")
subdirs("gp")
subdirs("regress")
subdirs("appanalysis")
subdirs("core")
