
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/appanalysis/corpus.cpp" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/corpus.cpp.o" "gcc" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/corpus.cpp.o.d"
  "/root/repo/src/appanalysis/ir.cpp" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/ir.cpp.o" "gcc" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/ir.cpp.o.d"
  "/root/repo/src/appanalysis/taint.cpp" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/taint.cpp.o" "gcc" "src/appanalysis/CMakeFiles/dpr_appanalysis.dir/taint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
