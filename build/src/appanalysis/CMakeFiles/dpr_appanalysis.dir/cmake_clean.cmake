file(REMOVE_RECURSE
  "CMakeFiles/dpr_appanalysis.dir/corpus.cpp.o"
  "CMakeFiles/dpr_appanalysis.dir/corpus.cpp.o.d"
  "CMakeFiles/dpr_appanalysis.dir/ir.cpp.o"
  "CMakeFiles/dpr_appanalysis.dir/ir.cpp.o.d"
  "CMakeFiles/dpr_appanalysis.dir/taint.cpp.o"
  "CMakeFiles/dpr_appanalysis.dir/taint.cpp.o.d"
  "libdpr_appanalysis.a"
  "libdpr_appanalysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_appanalysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
