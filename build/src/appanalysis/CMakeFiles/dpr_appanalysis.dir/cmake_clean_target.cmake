file(REMOVE_RECURSE
  "libdpr_appanalysis.a"
)
