# Empty compiler generated dependencies file for dpr_appanalysis.
# This may be replaced when dependencies are built.
