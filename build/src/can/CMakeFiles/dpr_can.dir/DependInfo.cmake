
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/can/bus.cpp" "src/can/CMakeFiles/dpr_can.dir/bus.cpp.o" "gcc" "src/can/CMakeFiles/dpr_can.dir/bus.cpp.o.d"
  "/root/repo/src/can/frame.cpp" "src/can/CMakeFiles/dpr_can.dir/frame.cpp.o" "gcc" "src/can/CMakeFiles/dpr_can.dir/frame.cpp.o.d"
  "/root/repo/src/can/sniffer.cpp" "src/can/CMakeFiles/dpr_can.dir/sniffer.cpp.o" "gcc" "src/can/CMakeFiles/dpr_can.dir/sniffer.cpp.o.d"
  "/root/repo/src/can/trace.cpp" "src/can/CMakeFiles/dpr_can.dir/trace.cpp.o" "gcc" "src/can/CMakeFiles/dpr_can.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
