file(REMOVE_RECURSE
  "CMakeFiles/dpr_can.dir/bus.cpp.o"
  "CMakeFiles/dpr_can.dir/bus.cpp.o.d"
  "CMakeFiles/dpr_can.dir/frame.cpp.o"
  "CMakeFiles/dpr_can.dir/frame.cpp.o.d"
  "CMakeFiles/dpr_can.dir/sniffer.cpp.o"
  "CMakeFiles/dpr_can.dir/sniffer.cpp.o.d"
  "CMakeFiles/dpr_can.dir/trace.cpp.o"
  "CMakeFiles/dpr_can.dir/trace.cpp.o.d"
  "libdpr_can.a"
  "libdpr_can.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_can.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
