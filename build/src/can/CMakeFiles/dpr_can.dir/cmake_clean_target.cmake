file(REMOVE_RECURSE
  "libdpr_can.a"
)
