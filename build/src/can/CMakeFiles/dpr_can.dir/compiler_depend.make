# Empty compiler generated dependencies file for dpr_can.
# This may be replaced when dependencies are built.
