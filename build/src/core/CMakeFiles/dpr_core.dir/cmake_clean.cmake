file(REMOVE_RECURSE
  "CMakeFiles/dpr_core.dir/campaign.cpp.o"
  "CMakeFiles/dpr_core.dir/campaign.cpp.o.d"
  "CMakeFiles/dpr_core.dir/obd_experiment.cpp.o"
  "CMakeFiles/dpr_core.dir/obd_experiment.cpp.o.d"
  "libdpr_core.a"
  "libdpr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
