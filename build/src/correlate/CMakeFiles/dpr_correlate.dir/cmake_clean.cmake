file(REMOVE_RECURSE
  "CMakeFiles/dpr_correlate.dir/correlate.cpp.o"
  "CMakeFiles/dpr_correlate.dir/correlate.cpp.o.d"
  "libdpr_correlate.a"
  "libdpr_correlate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_correlate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
