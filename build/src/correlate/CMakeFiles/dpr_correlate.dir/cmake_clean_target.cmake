file(REMOVE_RECURSE
  "libdpr_correlate.a"
)
