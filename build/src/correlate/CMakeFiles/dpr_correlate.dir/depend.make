# Empty dependencies file for dpr_correlate.
# This may be replaced when dependencies are built.
