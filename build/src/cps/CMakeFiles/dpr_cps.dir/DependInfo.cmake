
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cps/analyzer.cpp" "src/cps/CMakeFiles/dpr_cps.dir/analyzer.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/analyzer.cpp.o.d"
  "/root/repo/src/cps/camera.cpp" "src/cps/CMakeFiles/dpr_cps.dir/camera.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/camera.cpp.o.d"
  "/root/repo/src/cps/clicker.cpp" "src/cps/CMakeFiles/dpr_cps.dir/clicker.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/clicker.cpp.o.d"
  "/root/repo/src/cps/ocr.cpp" "src/cps/CMakeFiles/dpr_cps.dir/ocr.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/ocr.cpp.o.d"
  "/root/repo/src/cps/planner.cpp" "src/cps/CMakeFiles/dpr_cps.dir/planner.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/planner.cpp.o.d"
  "/root/repo/src/cps/script.cpp" "src/cps/CMakeFiles/dpr_cps.dir/script.cpp.o" "gcc" "src/cps/CMakeFiles/dpr_cps.dir/script.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/diagtool/CMakeFiles/dpr_diagtool.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/dpr_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/uds/CMakeFiles/dpr_uds.dir/DependInfo.cmake"
  "/root/repo/build/src/kwp/CMakeFiles/dpr_kwp.dir/DependInfo.cmake"
  "/root/repo/build/src/obd/CMakeFiles/dpr_obd.dir/DependInfo.cmake"
  "/root/repo/build/src/vwtp/CMakeFiles/dpr_vwtp.dir/DependInfo.cmake"
  "/root/repo/build/src/oemtp/CMakeFiles/dpr_oemtp.dir/DependInfo.cmake"
  "/root/repo/build/src/isotp/CMakeFiles/dpr_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
