file(REMOVE_RECURSE
  "CMakeFiles/dpr_cps.dir/analyzer.cpp.o"
  "CMakeFiles/dpr_cps.dir/analyzer.cpp.o.d"
  "CMakeFiles/dpr_cps.dir/camera.cpp.o"
  "CMakeFiles/dpr_cps.dir/camera.cpp.o.d"
  "CMakeFiles/dpr_cps.dir/clicker.cpp.o"
  "CMakeFiles/dpr_cps.dir/clicker.cpp.o.d"
  "CMakeFiles/dpr_cps.dir/ocr.cpp.o"
  "CMakeFiles/dpr_cps.dir/ocr.cpp.o.d"
  "CMakeFiles/dpr_cps.dir/planner.cpp.o"
  "CMakeFiles/dpr_cps.dir/planner.cpp.o.d"
  "CMakeFiles/dpr_cps.dir/script.cpp.o"
  "CMakeFiles/dpr_cps.dir/script.cpp.o.d"
  "libdpr_cps.a"
  "libdpr_cps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_cps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
