file(REMOVE_RECURSE
  "libdpr_cps.a"
)
