# Empty compiler generated dependencies file for dpr_cps.
# This may be replaced when dependencies are built.
