file(REMOVE_RECURSE
  "CMakeFiles/dpr_diagtool.dir/profile.cpp.o"
  "CMakeFiles/dpr_diagtool.dir/profile.cpp.o.d"
  "CMakeFiles/dpr_diagtool.dir/tool.cpp.o"
  "CMakeFiles/dpr_diagtool.dir/tool.cpp.o.d"
  "CMakeFiles/dpr_diagtool.dir/ui.cpp.o"
  "CMakeFiles/dpr_diagtool.dir/ui.cpp.o.d"
  "libdpr_diagtool.a"
  "libdpr_diagtool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_diagtool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
