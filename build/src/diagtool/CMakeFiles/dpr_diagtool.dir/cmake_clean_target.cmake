file(REMOVE_RECURSE
  "libdpr_diagtool.a"
)
