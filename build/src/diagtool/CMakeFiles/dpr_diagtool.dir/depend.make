# Empty dependencies file for dpr_diagtool.
# This may be replaced when dependencies are built.
