file(REMOVE_RECURSE
  "CMakeFiles/dpr_frames.dir/analysis.cpp.o"
  "CMakeFiles/dpr_frames.dir/analysis.cpp.o.d"
  "CMakeFiles/dpr_frames.dir/fields.cpp.o"
  "CMakeFiles/dpr_frames.dir/fields.cpp.o.d"
  "libdpr_frames.a"
  "libdpr_frames.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_frames.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
