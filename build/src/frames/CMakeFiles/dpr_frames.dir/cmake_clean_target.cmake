file(REMOVE_RECURSE
  "libdpr_frames.a"
)
