# Empty dependencies file for dpr_frames.
# This may be replaced when dependencies are built.
