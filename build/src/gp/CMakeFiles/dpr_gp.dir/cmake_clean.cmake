file(REMOVE_RECURSE
  "CMakeFiles/dpr_gp.dir/engine.cpp.o"
  "CMakeFiles/dpr_gp.dir/engine.cpp.o.d"
  "CMakeFiles/dpr_gp.dir/expr.cpp.o"
  "CMakeFiles/dpr_gp.dir/expr.cpp.o.d"
  "CMakeFiles/dpr_gp.dir/scaling.cpp.o"
  "CMakeFiles/dpr_gp.dir/scaling.cpp.o.d"
  "libdpr_gp.a"
  "libdpr_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
