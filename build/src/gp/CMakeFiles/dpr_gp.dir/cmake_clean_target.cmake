file(REMOVE_RECURSE
  "libdpr_gp.a"
)
