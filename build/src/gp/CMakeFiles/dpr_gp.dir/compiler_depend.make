# Empty compiler generated dependencies file for dpr_gp.
# This may be replaced when dependencies are built.
