
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isotp/endpoint.cpp" "src/isotp/CMakeFiles/dpr_isotp.dir/endpoint.cpp.o" "gcc" "src/isotp/CMakeFiles/dpr_isotp.dir/endpoint.cpp.o.d"
  "/root/repo/src/isotp/isotp.cpp" "src/isotp/CMakeFiles/dpr_isotp.dir/isotp.cpp.o" "gcc" "src/isotp/CMakeFiles/dpr_isotp.dir/isotp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
