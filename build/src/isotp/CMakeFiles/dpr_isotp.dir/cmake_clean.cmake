file(REMOVE_RECURSE
  "CMakeFiles/dpr_isotp.dir/endpoint.cpp.o"
  "CMakeFiles/dpr_isotp.dir/endpoint.cpp.o.d"
  "CMakeFiles/dpr_isotp.dir/isotp.cpp.o"
  "CMakeFiles/dpr_isotp.dir/isotp.cpp.o.d"
  "libdpr_isotp.a"
  "libdpr_isotp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_isotp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
