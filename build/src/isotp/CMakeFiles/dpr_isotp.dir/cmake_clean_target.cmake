file(REMOVE_RECURSE
  "libdpr_isotp.a"
)
