# Empty compiler generated dependencies file for dpr_isotp.
# This may be replaced when dependencies are built.
