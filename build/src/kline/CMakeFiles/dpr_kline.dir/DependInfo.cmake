
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kline/bus.cpp" "src/kline/CMakeFiles/dpr_kline.dir/bus.cpp.o" "gcc" "src/kline/CMakeFiles/dpr_kline.dir/bus.cpp.o.d"
  "/root/repo/src/kline/endpoint.cpp" "src/kline/CMakeFiles/dpr_kline.dir/endpoint.cpp.o" "gcc" "src/kline/CMakeFiles/dpr_kline.dir/endpoint.cpp.o.d"
  "/root/repo/src/kline/message.cpp" "src/kline/CMakeFiles/dpr_kline.dir/message.cpp.o" "gcc" "src/kline/CMakeFiles/dpr_kline.dir/message.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
