file(REMOVE_RECURSE
  "CMakeFiles/dpr_kline.dir/bus.cpp.o"
  "CMakeFiles/dpr_kline.dir/bus.cpp.o.d"
  "CMakeFiles/dpr_kline.dir/endpoint.cpp.o"
  "CMakeFiles/dpr_kline.dir/endpoint.cpp.o.d"
  "CMakeFiles/dpr_kline.dir/message.cpp.o"
  "CMakeFiles/dpr_kline.dir/message.cpp.o.d"
  "libdpr_kline.a"
  "libdpr_kline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_kline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
