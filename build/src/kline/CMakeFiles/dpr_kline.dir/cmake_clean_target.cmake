file(REMOVE_RECURSE
  "libdpr_kline.a"
)
