# Empty dependencies file for dpr_kline.
# This may be replaced when dependencies are built.
