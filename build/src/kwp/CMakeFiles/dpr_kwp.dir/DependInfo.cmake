
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kwp/client.cpp" "src/kwp/CMakeFiles/dpr_kwp.dir/client.cpp.o" "gcc" "src/kwp/CMakeFiles/dpr_kwp.dir/client.cpp.o.d"
  "/root/repo/src/kwp/formulas.cpp" "src/kwp/CMakeFiles/dpr_kwp.dir/formulas.cpp.o" "gcc" "src/kwp/CMakeFiles/dpr_kwp.dir/formulas.cpp.o.d"
  "/root/repo/src/kwp/message.cpp" "src/kwp/CMakeFiles/dpr_kwp.dir/message.cpp.o" "gcc" "src/kwp/CMakeFiles/dpr_kwp.dir/message.cpp.o.d"
  "/root/repo/src/kwp/server.cpp" "src/kwp/CMakeFiles/dpr_kwp.dir/server.cpp.o" "gcc" "src/kwp/CMakeFiles/dpr_kwp.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
