file(REMOVE_RECURSE
  "CMakeFiles/dpr_kwp.dir/client.cpp.o"
  "CMakeFiles/dpr_kwp.dir/client.cpp.o.d"
  "CMakeFiles/dpr_kwp.dir/formulas.cpp.o"
  "CMakeFiles/dpr_kwp.dir/formulas.cpp.o.d"
  "CMakeFiles/dpr_kwp.dir/message.cpp.o"
  "CMakeFiles/dpr_kwp.dir/message.cpp.o.d"
  "CMakeFiles/dpr_kwp.dir/server.cpp.o"
  "CMakeFiles/dpr_kwp.dir/server.cpp.o.d"
  "libdpr_kwp.a"
  "libdpr_kwp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_kwp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
