file(REMOVE_RECURSE
  "libdpr_kwp.a"
)
