# Empty compiler generated dependencies file for dpr_kwp.
# This may be replaced when dependencies are built.
