file(REMOVE_RECURSE
  "CMakeFiles/dpr_obd.dir/pid.cpp.o"
  "CMakeFiles/dpr_obd.dir/pid.cpp.o.d"
  "libdpr_obd.a"
  "libdpr_obd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_obd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
