file(REMOVE_RECURSE
  "libdpr_obd.a"
)
