# Empty dependencies file for dpr_obd.
# This may be replaced when dependencies are built.
