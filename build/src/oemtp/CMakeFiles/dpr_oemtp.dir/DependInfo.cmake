
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/oemtp/bmw_framing.cpp" "src/oemtp/CMakeFiles/dpr_oemtp.dir/bmw_framing.cpp.o" "gcc" "src/oemtp/CMakeFiles/dpr_oemtp.dir/bmw_framing.cpp.o.d"
  "/root/repo/src/oemtp/link.cpp" "src/oemtp/CMakeFiles/dpr_oemtp.dir/link.cpp.o" "gcc" "src/oemtp/CMakeFiles/dpr_oemtp.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  "/root/repo/build/src/isotp/CMakeFiles/dpr_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
