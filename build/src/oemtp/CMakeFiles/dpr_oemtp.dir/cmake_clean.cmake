file(REMOVE_RECURSE
  "CMakeFiles/dpr_oemtp.dir/bmw_framing.cpp.o"
  "CMakeFiles/dpr_oemtp.dir/bmw_framing.cpp.o.d"
  "CMakeFiles/dpr_oemtp.dir/link.cpp.o"
  "CMakeFiles/dpr_oemtp.dir/link.cpp.o.d"
  "libdpr_oemtp.a"
  "libdpr_oemtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_oemtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
