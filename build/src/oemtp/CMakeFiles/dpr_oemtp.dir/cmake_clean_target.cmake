file(REMOVE_RECURSE
  "libdpr_oemtp.a"
)
