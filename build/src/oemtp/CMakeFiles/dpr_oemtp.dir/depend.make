# Empty dependencies file for dpr_oemtp.
# This may be replaced when dependencies are built.
