file(REMOVE_RECURSE
  "CMakeFiles/dpr_regress.dir/regress.cpp.o"
  "CMakeFiles/dpr_regress.dir/regress.cpp.o.d"
  "libdpr_regress.a"
  "libdpr_regress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_regress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
