file(REMOVE_RECURSE
  "libdpr_regress.a"
)
