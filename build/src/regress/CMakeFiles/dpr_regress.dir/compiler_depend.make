# Empty compiler generated dependencies file for dpr_regress.
# This may be replaced when dependencies are built.
