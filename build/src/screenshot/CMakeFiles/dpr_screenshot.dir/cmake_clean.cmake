file(REMOVE_RECURSE
  "CMakeFiles/dpr_screenshot.dir/extract.cpp.o"
  "CMakeFiles/dpr_screenshot.dir/extract.cpp.o.d"
  "CMakeFiles/dpr_screenshot.dir/filter.cpp.o"
  "CMakeFiles/dpr_screenshot.dir/filter.cpp.o.d"
  "libdpr_screenshot.a"
  "libdpr_screenshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_screenshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
