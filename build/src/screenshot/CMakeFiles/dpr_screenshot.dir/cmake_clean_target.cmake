file(REMOVE_RECURSE
  "libdpr_screenshot.a"
)
