# Empty compiler generated dependencies file for dpr_screenshot.
# This may be replaced when dependencies are built.
