# CMake generated Testfile for 
# Source directory: /root/repo/src/screenshot
# Build directory: /root/repo/build/src/screenshot
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
