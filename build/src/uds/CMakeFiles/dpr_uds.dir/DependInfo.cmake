
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/uds/client.cpp" "src/uds/CMakeFiles/dpr_uds.dir/client.cpp.o" "gcc" "src/uds/CMakeFiles/dpr_uds.dir/client.cpp.o.d"
  "/root/repo/src/uds/message.cpp" "src/uds/CMakeFiles/dpr_uds.dir/message.cpp.o" "gcc" "src/uds/CMakeFiles/dpr_uds.dir/message.cpp.o.d"
  "/root/repo/src/uds/server.cpp" "src/uds/CMakeFiles/dpr_uds.dir/server.cpp.o" "gcc" "src/uds/CMakeFiles/dpr_uds.dir/server.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isotp/CMakeFiles/dpr_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
