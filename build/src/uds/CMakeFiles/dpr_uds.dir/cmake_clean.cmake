file(REMOVE_RECURSE
  "CMakeFiles/dpr_uds.dir/client.cpp.o"
  "CMakeFiles/dpr_uds.dir/client.cpp.o.d"
  "CMakeFiles/dpr_uds.dir/message.cpp.o"
  "CMakeFiles/dpr_uds.dir/message.cpp.o.d"
  "CMakeFiles/dpr_uds.dir/server.cpp.o"
  "CMakeFiles/dpr_uds.dir/server.cpp.o.d"
  "libdpr_uds.a"
  "libdpr_uds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_uds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
