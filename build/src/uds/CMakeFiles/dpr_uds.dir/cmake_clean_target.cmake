file(REMOVE_RECURSE
  "libdpr_uds.a"
)
