# Empty compiler generated dependencies file for dpr_uds.
# This may be replaced when dependencies are built.
