file(REMOVE_RECURSE
  "CMakeFiles/dpr_util.dir/clock.cpp.o"
  "CMakeFiles/dpr_util.dir/clock.cpp.o.d"
  "CMakeFiles/dpr_util.dir/hex.cpp.o"
  "CMakeFiles/dpr_util.dir/hex.cpp.o.d"
  "CMakeFiles/dpr_util.dir/log.cpp.o"
  "CMakeFiles/dpr_util.dir/log.cpp.o.d"
  "CMakeFiles/dpr_util.dir/rng.cpp.o"
  "CMakeFiles/dpr_util.dir/rng.cpp.o.d"
  "CMakeFiles/dpr_util.dir/stats.cpp.o"
  "CMakeFiles/dpr_util.dir/stats.cpp.o.d"
  "libdpr_util.a"
  "libdpr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
