file(REMOVE_RECURSE
  "libdpr_util.a"
)
