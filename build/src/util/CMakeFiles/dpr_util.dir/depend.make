# Empty dependencies file for dpr_util.
# This may be replaced when dependencies are built.
