file(REMOVE_RECURSE
  "CMakeFiles/dpr_vehicle.dir/actuator.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/actuator.cpp.o.d"
  "CMakeFiles/dpr_vehicle.dir/catalog.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/catalog.cpp.o.d"
  "CMakeFiles/dpr_vehicle.dir/ecu.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/ecu.cpp.o.d"
  "CMakeFiles/dpr_vehicle.dir/formula.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/formula.cpp.o.d"
  "CMakeFiles/dpr_vehicle.dir/signal.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/signal.cpp.o.d"
  "CMakeFiles/dpr_vehicle.dir/vehicle.cpp.o"
  "CMakeFiles/dpr_vehicle.dir/vehicle.cpp.o.d"
  "libdpr_vehicle.a"
  "libdpr_vehicle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_vehicle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
