file(REMOVE_RECURSE
  "libdpr_vehicle.a"
)
