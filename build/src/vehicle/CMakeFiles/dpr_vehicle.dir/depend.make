# Empty dependencies file for dpr_vehicle.
# This may be replaced when dependencies are built.
