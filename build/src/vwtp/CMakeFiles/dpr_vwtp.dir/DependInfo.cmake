
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vwtp/channel.cpp" "src/vwtp/CMakeFiles/dpr_vwtp.dir/channel.cpp.o" "gcc" "src/vwtp/CMakeFiles/dpr_vwtp.dir/channel.cpp.o.d"
  "/root/repo/src/vwtp/vwtp.cpp" "src/vwtp/CMakeFiles/dpr_vwtp.dir/vwtp.cpp.o" "gcc" "src/vwtp/CMakeFiles/dpr_vwtp.dir/vwtp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
