file(REMOVE_RECURSE
  "CMakeFiles/dpr_vwtp.dir/channel.cpp.o"
  "CMakeFiles/dpr_vwtp.dir/channel.cpp.o.d"
  "CMakeFiles/dpr_vwtp.dir/vwtp.cpp.o"
  "CMakeFiles/dpr_vwtp.dir/vwtp.cpp.o.d"
  "libdpr_vwtp.a"
  "libdpr_vwtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpr_vwtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
