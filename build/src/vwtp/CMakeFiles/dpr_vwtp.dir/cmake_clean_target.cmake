file(REMOVE_RECURSE
  "libdpr_vwtp.a"
)
