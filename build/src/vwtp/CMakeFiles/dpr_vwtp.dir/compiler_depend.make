# Empty compiler generated dependencies file for dpr_vwtp.
# This may be replaced when dependencies are built.
