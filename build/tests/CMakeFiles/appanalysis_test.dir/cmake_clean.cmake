file(REMOVE_RECURSE
  "CMakeFiles/appanalysis_test.dir/appanalysis_test.cpp.o"
  "CMakeFiles/appanalysis_test.dir/appanalysis_test.cpp.o.d"
  "appanalysis_test"
  "appanalysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appanalysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
