# Empty dependencies file for appanalysis_test.
# This may be replaced when dependencies are built.
