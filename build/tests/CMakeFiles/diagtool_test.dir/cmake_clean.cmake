file(REMOVE_RECURSE
  "CMakeFiles/diagtool_test.dir/diagtool_test.cpp.o"
  "CMakeFiles/diagtool_test.dir/diagtool_test.cpp.o.d"
  "diagtool_test"
  "diagtool_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diagtool_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
