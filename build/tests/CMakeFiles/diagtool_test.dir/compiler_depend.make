# Empty compiler generated dependencies file for diagtool_test.
# This may be replaced when dependencies are built.
