file(REMOVE_RECURSE
  "CMakeFiles/isotp_test.dir/isotp_test.cpp.o"
  "CMakeFiles/isotp_test.dir/isotp_test.cpp.o.d"
  "isotp_test"
  "isotp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isotp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
