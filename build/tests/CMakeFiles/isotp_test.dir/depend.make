# Empty dependencies file for isotp_test.
# This may be replaced when dependencies are built.
