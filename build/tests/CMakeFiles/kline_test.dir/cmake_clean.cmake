file(REMOVE_RECURSE
  "CMakeFiles/kline_test.dir/kline_test.cpp.o"
  "CMakeFiles/kline_test.dir/kline_test.cpp.o.d"
  "kline_test"
  "kline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
