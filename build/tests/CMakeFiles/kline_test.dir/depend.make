# Empty dependencies file for kline_test.
# This may be replaced when dependencies are built.
