file(REMOVE_RECURSE
  "CMakeFiles/kwp_test.dir/kwp_test.cpp.o"
  "CMakeFiles/kwp_test.dir/kwp_test.cpp.o.d"
  "kwp_test"
  "kwp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kwp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
