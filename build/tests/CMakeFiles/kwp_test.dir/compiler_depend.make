# Empty compiler generated dependencies file for kwp_test.
# This may be replaced when dependencies are built.
