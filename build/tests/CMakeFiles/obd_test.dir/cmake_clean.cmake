file(REMOVE_RECURSE
  "CMakeFiles/obd_test.dir/obd_test.cpp.o"
  "CMakeFiles/obd_test.dir/obd_test.cpp.o.d"
  "obd_test"
  "obd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
