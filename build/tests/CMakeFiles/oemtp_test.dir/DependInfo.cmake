
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/oemtp_test.cpp" "tests/CMakeFiles/oemtp_test.dir/oemtp_test.cpp.o" "gcc" "tests/CMakeFiles/oemtp_test.dir/oemtp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dpr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/appanalysis/CMakeFiles/dpr_appanalysis.dir/DependInfo.cmake"
  "/root/repo/build/src/kline/CMakeFiles/dpr_kline.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/dpr_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/regress/CMakeFiles/dpr_regress.dir/DependInfo.cmake"
  "/root/repo/build/src/correlate/CMakeFiles/dpr_correlate.dir/DependInfo.cmake"
  "/root/repo/build/src/frames/CMakeFiles/dpr_frames.dir/DependInfo.cmake"
  "/root/repo/build/src/screenshot/CMakeFiles/dpr_screenshot.dir/DependInfo.cmake"
  "/root/repo/build/src/cps/CMakeFiles/dpr_cps.dir/DependInfo.cmake"
  "/root/repo/build/src/diagtool/CMakeFiles/dpr_diagtool.dir/DependInfo.cmake"
  "/root/repo/build/src/vehicle/CMakeFiles/dpr_vehicle.dir/DependInfo.cmake"
  "/root/repo/build/src/uds/CMakeFiles/dpr_uds.dir/DependInfo.cmake"
  "/root/repo/build/src/kwp/CMakeFiles/dpr_kwp.dir/DependInfo.cmake"
  "/root/repo/build/src/vwtp/CMakeFiles/dpr_vwtp.dir/DependInfo.cmake"
  "/root/repo/build/src/oemtp/CMakeFiles/dpr_oemtp.dir/DependInfo.cmake"
  "/root/repo/build/src/isotp/CMakeFiles/dpr_isotp.dir/DependInfo.cmake"
  "/root/repo/build/src/obd/CMakeFiles/dpr_obd.dir/DependInfo.cmake"
  "/root/repo/build/src/can/CMakeFiles/dpr_can.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dpr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
