file(REMOVE_RECURSE
  "CMakeFiles/oemtp_test.dir/oemtp_test.cpp.o"
  "CMakeFiles/oemtp_test.dir/oemtp_test.cpp.o.d"
  "oemtp_test"
  "oemtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oemtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
