# Empty compiler generated dependencies file for oemtp_test.
# This may be replaced when dependencies are built.
