file(REMOVE_RECURSE
  "CMakeFiles/regress_test.dir/regress_test.cpp.o"
  "CMakeFiles/regress_test.dir/regress_test.cpp.o.d"
  "regress_test"
  "regress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
