file(REMOVE_RECURSE
  "CMakeFiles/screenshot_test.dir/screenshot_test.cpp.o"
  "CMakeFiles/screenshot_test.dir/screenshot_test.cpp.o.d"
  "screenshot_test"
  "screenshot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/screenshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
