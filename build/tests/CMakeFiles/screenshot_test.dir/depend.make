# Empty dependencies file for screenshot_test.
# This may be replaced when dependencies are built.
