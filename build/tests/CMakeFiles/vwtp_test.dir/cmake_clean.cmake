file(REMOVE_RECURSE
  "CMakeFiles/vwtp_test.dir/vwtp_test.cpp.o"
  "CMakeFiles/vwtp_test.dir/vwtp_test.cpp.o.d"
  "vwtp_test"
  "vwtp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vwtp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
