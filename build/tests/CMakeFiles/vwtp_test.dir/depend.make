# Empty dependencies file for vwtp_test.
# This may be replaced when dependencies are built.
