file(REMOVE_RECURSE
  "CMakeFiles/dpreverser.dir/dpreverser_cli.cpp.o"
  "CMakeFiles/dpreverser.dir/dpreverser_cli.cpp.o.d"
  "dpreverser"
  "dpreverser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpreverser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
