# Empty compiler generated dependencies file for dpreverser.
# This may be replaced when dependencies are built.
