// Telematics-app formula extraction (§4.6, §9.2, Alg. 1, Fig. 9).
//
// Shows the taint analysis on the paper's Fig. 9 program, then sweeps a
// few apps from the 160-app corpus.

#include <cstdio>

#include "appanalysis/corpus.hpp"
#include "appanalysis/taint.hpp"

int main() {
  using namespace dpr::appanalysis;

  // The Fig. 9 example: an OBD app computing engine RPM.
  const App fig9 = fig9_example();
  std::printf("Fig. 9 program (%zu statements):\n", fig9.statements.size());
  for (const auto& stmt : fig9.statements) {
    std::printf("  %s\n", to_string(stmt).c_str());
  }
  const auto report = analyze_app(fig9);
  std::printf("\nAlg. 1 extraction:\n");
  for (const auto& formula : report.formulas) {
    std::printf("  formula:   %s\n", formula.expression.c_str());
    std::printf("  condition: %s\n", formula.condition.c_str());
    std::printf("  protocol:  %s\n",
                formula.protocol == ProtocolClass::kObd2 ? "OBD-II"
                : formula.protocol == ProtocolClass::kUds ? "UDS"
                                                          : "KWP 2000");
  }

  // A few corpus apps.
  std::printf("\nCorpus sweep (selected apps):\n");
  for (const auto& entry : build_corpus()) {
    if (entry.app.name != "Carly for VAG" &&
        entry.app.name != "ChevroSys Scan Free" &&
        entry.app.name != "ObfuscatedScanner 1" &&
        entry.app.name != "DTC Reader 42") {
      continue;
    }
    const auto app_report = analyze_app(entry.app);
    std::printf("  %-28s %zu formulas extracted (%zu taint breaks)\n",
                entry.app.name.c_str(), app_report.formulas.size(),
                app_report.taint_breaks);
  }
  return 0;
}
