// Full-fleet campaign: DP-Reverser over all 18 vehicles of Table 3,
// printing a compact summary of everything recovered — the end-to-end
// equivalent of the paper's headline result (570 messages: 446 reads +
// 124 controls).
//
// The campaigns are independent, so they fan out over the shared-budget
// fleet pool (core::FleetRunner); the table below is identical for every
// thread count. Usage: full_campaign [fleet_threads] [generate_count]
// [gen_seed]  (fleet_threads default 0 = all cores, 1 = the legacy serial
// loop; generate_count > 0 swaps the catalog for that many procedurally
// generated vehicles, reproducible per gen_seed).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/fleet.hpp"
#include "vehicle/generator.hpp"

int main(int argc, char** argv) {
  using namespace dpr;
  core::FleetOptions options;
  options.campaign.live_window = 12 * util::kSecond;
  options.campaign.gp.population = 160;
  options.fleet_threads =
      argc > 1 ? static_cast<std::size_t>(std::atoll(argv[1])) : 0;
  const std::size_t generate_count =
      argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 0;
  const std::uint64_t gen_seed =
      argc > 3 ? static_cast<std::uint64_t>(std::atoll(argv[3])) : 1;

  const std::vector<vehicle::CarSpec> specs =
      generate_count > 0
          ? vehicle::generate_fleet(vehicle::GeneratorConfig{}, gen_seed,
                                    generate_count)
          : vehicle::catalog();

  const core::FleetRunner runner(options);
  const auto summary = runner.run(specs);

  std::printf("%-8s %-22s %-10s %-9s %-8s %-7s %-6s\n", "Car", "Model",
              "Protocol", "#signals", "#formula", "GP ok", "#ECR");
  for (std::size_t i = 0; i < summary.reports.size(); ++i) {
    const auto& report = summary.reports[i];
    const auto& spec = specs[i];
    std::printf("%-8s %-22s %-10s %-9zu %-8zu %-7zu %-6zu\n",
                report.car_label.c_str(), spec.model.c_str(),
                spec.protocol == vehicle::Protocol::kUds ? "UDS" : "KWP",
                report.signals.size(), report.formula_signals(),
                report.gp_correct(), report.ecrs.size());
  }
  std::printf("\nFleet totals: %zu read messages (%zu with formulas, %zu "
              "enum) + %zu control messages = %zu reverse-engineered "
              "messages\n",
              summary.total_signals(), summary.total_formula_signals(),
              summary.total_enum_signals(), summary.total_ecrs(),
              summary.total_signals() + summary.total_ecrs());
  std::printf("GP formula precision: %zu/%zu\n", summary.total_gp_correct(),
              summary.total_formula_signals());
  std::printf("(paper: 446 reads + 124 controls = 570 messages, GP "
              "285/290; our control count\n includes the extra Table 13 "
              "attack-demo actuators of Cars G and L)\n");
  std::printf("\nwall time %.2f s on %zu fleet threads (per-phase CPU-s: "
              "collect %.1f, assemble %.1f, ocr/extract %.1f, align %.1f, "
              "associate %.1f, infer %.1f, score %.1f)\n",
              summary.wall_s, summary.threads_used,
              summary.phase_totals.collect_s, summary.phase_totals.assemble_s,
              summary.phase_totals.ocr_extract_s,
              summary.phase_totals.align_s,
              summary.phase_totals.associate_s, summary.phase_totals.infer_s,
              summary.phase_totals.score_s);
  return 0;
}
