// Full-fleet campaign: DP-Reverser over all 18 vehicles of Table 3,
// printing a compact summary of everything recovered — the end-to-end
// equivalent of the paper's headline result (570 messages: 446 reads +
// 124 controls).

#include <cstdio>

#include "core/campaign.hpp"

int main() {
  using namespace dpr;
  core::CampaignOptions options;
  options.live_window = 12 * util::kSecond;
  options.gp.population = 160;

  std::size_t total_signals = 0, total_formulas = 0, total_correct = 0;
  std::size_t total_enums = 0, total_ecrs = 0;

  std::printf("%-8s %-22s %-10s %-9s %-8s %-7s %-6s\n", "Car", "Model",
              "Protocol", "#signals", "#formula", "GP ok", "#ECR");
  for (const auto& spec : vehicle::catalog()) {
    core::Campaign campaign(spec.id, options);
    campaign.collect();
    campaign.analyze();
    const auto& report = campaign.report();
    std::printf("%-8s %-22s %-10s %-9zu %-8zu %-7zu %-6zu\n",
                report.car_label.c_str(), spec.model.c_str(),
                spec.protocol == vehicle::Protocol::kUds ? "UDS" : "KWP",
                report.signals.size(), report.formula_signals(),
                report.gp_correct(), report.ecrs.size());
    total_signals += report.signals.size();
    total_formulas += report.formula_signals();
    total_correct += report.gp_correct();
    total_enums += report.enum_signals();
    total_ecrs += report.ecrs.size();
  }
  std::printf("\nFleet totals: %zu read messages (%zu with formulas, %zu "
              "enum) + %zu control messages = %zu reverse-engineered "
              "messages\n",
              total_signals, total_formulas, total_enums, total_ecrs,
              total_signals + total_ecrs);
  std::printf("GP formula precision: %zu/%zu\n", total_correct,
              total_formulas);
  std::printf("(paper: 446 reads + 124 controls = 570 messages, GP "
              "285/290; our control count\n includes the extra Table 13 "
              "attack-demo actuators of Cars G and L)\n");
  return 0;
}
