// Actuator reverse engineering and replay (§4.5 / §9.3 / Table 13).
//
// Runs the CPS rig over a vehicle's active tests, extracts the ECU
// control records and their 3-message procedure from the sniffed
// traffic, then replays the recovered messages against a *different*
// instance of the same model — the paper's attack scenario.

#include <cstdio>

#include "core/campaign.hpp"
#include "isotp/endpoint.hpp"
#include "uds/client.hpp"

int main() {
  using namespace dpr;

  // Phase 1: reverse engineer the rented car.
  core::CampaignOptions options;
  options.live_window = 8 * util::kSecond;
  options.run_inference = false;  // this example is about ECRs only
  core::Campaign campaign(vehicle::CarId::kN, options);  // Kia k2
  std::printf("Reverse engineering %s (%s)...\n",
              campaign.report().car_label.c_str(),
              campaign.vehicle().spec().model.c_str());
  campaign.collect();
  campaign.analyze();

  std::printf("\nRecovered control procedures:\n");
  for (const auto& ecr : campaign.report().ecrs) {
    std::printf("  %s DID 0x%04X %-26s params:", ecr.is_uds ? "2F" : "30",
                ecr.id, ecr.semantic_name.c_str());
    for (const auto p : ecr.param_sequence) std::printf(" %02X", p);
    std::printf("  state: %s\n",
                util::to_hex(ecr.adjustment_state).c_str());
  }

  // Phase 2: replay against another vehicle of the same model.
  std::printf("\nReplaying against a second %s...\n",
              campaign.vehicle().spec().model.c_str());
  util::SimClock clock;
  can::CanBus bus(clock);
  vehicle::Vehicle victim(vehicle::CarId::kN, bus, clock, /*seed=*/999);

  std::size_t triggered = 0;
  for (const auto& ecr : campaign.report().ecrs) {
    auto* ecu = victim.find_ecu_with_actuator(ecr.id);
    if (ecu == nullptr || !ecr.is_uds) continue;
    isotp::Endpoint link(
        bus, isotp::EndpointConfig{can::CanId{ecu->request_id(), false},
                                   can::CanId{ecu->response_id(), false}});
    uds::Client client(link, [&] { bus.deliver_pending(); });
    client.start_session(0x03);
    client.io_control(ecr.id, uds::IoControlParameter::kFreezeCurrentState);
    client.io_control(ecr.id, uds::IoControlParameter::kShortTermAdjustment,
                      ecr.adjustment_state);
    client.io_control(ecr.id, uds::IoControlParameter::kReturnControlToEcu);
    if (ecu->actuator(ecr.id)->activations() > 0) {
      ++triggered;
      std::printf("  0x%04X %-26s -> TRIGGERED\n", ecr.id,
                  ecr.semantic_name.c_str());
    }
  }
  std::printf("\n%zu components triggered on the victim vehicle.\n",
              triggered);
  return 0;
}
