// Protocol-stack tour: the substrate layers on their own, without the
// reverse-engineering pipeline — build a bus, an ECU, and speak UDS /
// KWP 2000 / OBD-II over ISO-TP by hand.

#include <cstdio>

#include "can/bus.hpp"
#include "can/sniffer.hpp"
#include "isotp/endpoint.hpp"
#include "kwp/formulas.hpp"
#include "obd/pid.hpp"
#include "uds/client.hpp"
#include "uds/server.hpp"

int main() {
  using namespace dpr;

  util::SimClock clock;
  can::CanBus bus(clock);
  can::Sniffer sniffer(bus);

  // A hand-built ECU: one data identifier and one actuator.
  isotp::Endpoint ecu_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E8, false},
                                 can::CanId{0x7E0, false}});
  uds::Server ecu;
  ecu.add_did(0xF40D, 1, [] { return util::Bytes{0x21}; });  // 33 km/h
  ecu.add_io_did(0x0950,
                 [](uds::IoControlParameter param,
                    std::span<const std::uint8_t> state)
                     -> std::optional<util::Bytes> {
                   std::printf("  [ECU] fog light: param %02X state %s\n",
                               static_cast<int>(param),
                               util::to_hex(state).c_str());
                   return util::Bytes{static_cast<std::uint8_t>(param)};
                 });
  ecu.bind(ecu_link);

  // The tester side.
  isotp::Endpoint tester_link(
      bus, isotp::EndpointConfig{can::CanId{0x7E0, false},
                                 can::CanId{0x7E8, false}});
  uds::Client tester(tester_link, [&] { bus.deliver_pending(); });

  std::printf("UDS ReadDataByIdentifier (the paper's \"22 F4 0D\"):\n");
  const std::vector<uds::Did> dids{0xF40D};
  const auto records = tester.read_data(
      dids, [](uds::Did) { return std::optional<std::size_t>(1); });
  std::printf("  vehicle speed raw: %s -> %d km/h (Y = X * 1.0)\n",
              util::to_hex(records->front().data).c_str(),
              records->front().data[0]);

  std::printf("\nUDS IO control, the 3-message pattern of §4.5:\n");
  tester.start_session(0x03);
  tester.io_control(0x0950, uds::IoControlParameter::kFreezeCurrentState);
  const util::Bytes five_seconds_left{0x05, 0x01, 0x00, 0x00};
  tester.io_control(0x0950, uds::IoControlParameter::kShortTermAdjustment,
                    five_seconds_left);
  tester.io_control(0x0950, uds::IoControlParameter::kReturnControlToEcu);

  std::printf("\nKWP 2000 formula table (§2.3.1 example):\n");
  const auto value = kwp::decode_esv(0x01, 0xF1, 0x10);
  std::printf("  ESV \"01 F1 10\": type 0x01 = %s -> %.1f rpm\n",
              kwp::find_formula(0x01)->expression.c_str(), *value);

  std::printf("\nOBD-II standard decode (SAE J1979):\n");
  const auto rpm = obd::decode_value(util::from_hex("41 0C 1A F8"));
  std::printf("  \"41 0C 1A F8\" -> %.1f rpm via %s\n", *rpm,
              obd::find_pid(0x0C)->formula.c_str());

  std::printf("\nSniffer captured %zu CAN frames; first few:\n",
              sniffer.size());
  for (std::size_t i = 0; i < 5 && i < sniffer.size(); ++i) {
    std::printf("  %8lld us  %s\n",
                static_cast<long long>(sniffer.capture()[i].timestamp),
                sniffer.capture()[i].frame.to_string().c_str());
  }
  return 0;
}
