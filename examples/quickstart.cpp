// Quickstart: reverse engineer the diagnostic protocol of one simulated
// vehicle end to end.
//
// The Campaign object owns the whole Fig. 6 rig: a simulated vehicle
// (ECUs + transports on a CAN bus), a professional-diagnostic-tool model,
// and the CPS data-collection loop (robotic clicker + cameras + OCR +
// sniffer). collect() drives the tool through every ECU; analyze() runs
// frames analysis, screenshot analysis, correlation and GP inference.

#include <cstdio>

#include "core/campaign.hpp"

int main() {
  using namespace dpr;

  core::CampaignOptions options;
  options.live_window = 15 * util::kSecond;
  options.gp.population = 192;

  core::Campaign campaign(vehicle::CarId::kA, options);  // Skoda Octavia
  std::printf("Collecting diagnostic traffic and UI video from %s (%s)...\n",
              campaign.report().car_label.c_str(),
              campaign.vehicle().spec().model.c_str());
  campaign.collect();
  std::printf("  captured %zu CAN frames, %zu video frames\n",
              campaign.capture().size(), campaign.video().frames.size());

  std::printf("Analyzing...\n");
  campaign.analyze();

  const auto& report = campaign.report();
  std::printf("  assembled %zu diagnostic messages\n",
              report.messages_assembled);
  std::printf("  clock alignment offset: %lld us (%zu OBD anchors)\n",
              static_cast<long long>(report.alignment_offset),
              report.alignment_anchors);
  std::printf("\nReverse-engineered signals (%zu formula, %zu enum):\n",
              report.formula_signals(), report.enum_signals());
  for (const auto& signal : report.signals) {
    if (signal.is_enum) {
      std::printf("  [%s] %-34s -> status/enum signal\n",
                  signal.request_message.c_str(),
                  signal.semantic_name.c_str());
    } else if (signal.gp) {
      std::printf("  [%s] %-34s -> %s  %s\n", signal.request_message.c_str(),
                  signal.semantic_name.c_str(), signal.gp->formula.c_str(),
                  signal.gp_correct ? "(matches ground truth)"
                                    : "(MISMATCH)");
    }
  }
  std::printf("\nReverse-engineered control procedures (%zu):\n",
              report.ecrs.size());
  for (const auto& ecr : report.ecrs) {
    std::printf("  %s id 0x%04X  %-28s  3-message pattern: %s\n",
                ecr.is_uds ? "2F" : "30", ecr.id, ecr.semantic_name.c_str(),
                ecr.three_message_pattern ? "yes" : "no");
  }
  std::printf("\nGP precision on this car: %zu/%zu\n", report.gp_correct(),
              report.formula_signals());
  return 0;
}
