#include "appanalysis/corpus.hpp"

#include <array>
#include <cstdio>

#include "util/rng.hpp"

namespace dpr::appanalysis {

namespace {

struct Emitter {
  App app;
  Reg next_reg = 0;
  int next_label = 0;

  Reg fresh() { return next_reg++; }

  Reg read_api() {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kReadApi, r, -1, -1, 0, '+', "", 0, -1});
    return r;
  }

  Reg constant(double v) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kConst, r, -1, -1, v, '+', "", 0, -1});
    return r;
  }

  Reg starts_with(Reg src, const std::string& prefix) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kStartsWith, r, src, -1, 0, '+', prefix, 0, -1});
    return r;
  }

  int begin_if(Reg cond) {
    const int label = next_label++;
    app.statements.push_back(
        Stmt{Stmt::Kind::kIf, -1, cond, -1, 0, '+', "", 0, label});
    return label;
  }

  void end_if(int label) {
    app.statements.push_back(
        Stmt{Stmt::Kind::kLabel, -1, -1, -1, 0, '+', "", 0, label});
  }

  Reg substr(Reg src, int index) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kSubstr, r, src, -1, 0, '+', "", index, -1});
    return r;
  }

  Reg parse_int(Reg src) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kParseInt, r, src, -1, 0, '+', "", 0, -1});
    return r;
  }

  Reg binop(Reg a, char op, Reg b) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kBinOp, r, a, b, 0, op, "", 0, -1});
    return r;
  }

  Reg opaque(Reg a) {
    const Reg r = fresh();
    app.statements.push_back(
        Stmt{Stmt::Kind::kOpaqueCall, r, a, -1, 0, '+', "", 0, -1});
    return r;
  }

  void display(Reg a) {
    app.statements.push_back(
        Stmt{Stmt::Kind::kDisplay, -1, a, -1, 0, '+', "", 0, -1});
  }
};

std::string hex_byte(unsigned v) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "%02X", v & 0xFF);
  return buf;
}

/// Emit one prefix-guarded formula block: parse 1-2 fields, combine with
/// an affine/product expression, display.
void emit_formula(Emitter& e, Reg response, const std::string& prefix,
                  util::Rng& rng, bool opaque_break) {
  const Reg cond = e.starts_with(response, prefix);
  const int label = e.begin_if(cond);
  const Reg field0 = e.substr(response, 0);
  const Reg v0 = e.parse_int(field0);
  Reg result;
  if (opaque_break) {
    // The value is processed inside another method — taint dies (§4.6:
    // "request sent by subclass, response parsed by the parent class").
    result = e.opaque(v0);
  } else {
    const int shape = static_cast<int>(rng.uniform_int(0, 3));
    switch (shape) {
      case 0: {  // a*v0 + b
        const Reg a = e.constant(rng.uniform(0.01, 4.0));
        const Reg prod = e.binop(v0, '*', a);
        const Reg b = e.constant(rng.uniform(-64.0, 64.0));
        result = e.binop(prod, '+', b);
        break;
      }
      case 1: {  // v0 / a
        const Reg a = e.constant(rng.uniform(2.0, 10.0));
        result = e.binop(v0, '/', a);
        break;
      }
      case 2: {  // two-variable: a*v0 + b*v1 (Fig. 9 shape)
        const Reg field1 = e.substr(response, 1);
        const Reg v1 = e.parse_int(field1);
        const Reg a = e.constant(rng.uniform(16.0, 64.0));
        const Reg pa = e.binop(v0, '*', a);
        const Reg b = e.constant(rng.uniform(0.1, 1.0));
        const Reg pb = e.binop(v1, '*', b);
        result = e.binop(pa, '+', pb);
        break;
      }
      default: {  // product: v0 * v1 / c
        const Reg field1 = e.substr(response, 1);
        const Reg v1 = e.parse_int(field1);
        const Reg prod = e.binop(v0, '*', v1);
        const Reg c = e.constant(rng.uniform(2.0, 8.0));
        result = e.binop(prod, '/', c);
        break;
      }
    }
  }
  e.display(result);
  e.end_if(label);
}

App make_app(const std::string& name, std::size_t uds, std::size_t kwp,
             std::size_t obd, bool resistant, util::Rng& rng) {
  Emitter e;
  e.app.name = name;
  const Reg response = e.read_api();
  // UDS formulas: responses start with 0x62 + a DID.
  for (std::size_t i = 0; i < uds; ++i) {
    const std::string prefix =
        "62 " + hex_byte(0xF4 + (i / 256)) + " " + hex_byte(i);
    emit_formula(e, response, prefix, rng, resistant);
  }
  // KWP formulas: responses start with 0x61 + local id.
  for (std::size_t i = 0; i < kwp; ++i) {
    const std::string prefix = "61 " + hex_byte(1 + i);
    emit_formula(e, response, prefix, rng, resistant);
  }
  // OBD-II formulas: responses start with 0x41 + PID.
  for (std::size_t i = 0; i < obd; ++i) {
    const std::string prefix = "41 " + hex_byte(0x04 + i);
    emit_formula(e, response, prefix, rng, resistant);
  }
  return std::move(e.app);
}

/// A DTC-style app: reads the response but only compares it, no math.
App make_dtc_app(const std::string& name) {
  Emitter e;
  e.app.name = name;
  const Reg response = e.read_api();
  const Reg cond = e.starts_with(response, "59 02");  // readDTCInformation
  const int label = e.begin_if(cond);
  const Reg field = e.substr(response, 0);
  e.display(field);  // shows the raw code, no formula
  e.end_if(label);
  return std::move(e.app);
}

}  // namespace

App fig9_example() {
  // Fig. 9: engine-RPM processing of an OBD app.
  //   if response.startsWith("41 0C"):
  //     v0 = parseInt(fields[0]); v1 = parseInt(fields[1])
  //     display(64*v0 + v1*0.25)
  Emitter e;
  e.app.name = "fig9";
  const Reg response = e.read_api();
  const Reg cond = e.starts_with(response, "41 0C");
  const int label = e.begin_if(cond);
  const Reg f0 = e.substr(response, 0);
  const Reg v0 = e.parse_int(f0);
  const Reg f1 = e.substr(response, 1);
  const Reg v1 = e.parse_int(f1);
  const Reg c64 = e.constant(64.0);
  const Reg d0 = e.binop(c64, '*', v0);
  const Reg c025 = e.constant(0.25);
  const Reg d1 = e.binop(v1, '*', c025);
  const Reg sum = e.binop(d1, '+', d0);
  e.display(sum);
  e.end_if(label);
  return std::move(e.app);
}

std::vector<CorpusEntry> build_corpus() {
  std::vector<CorpusEntry> corpus;
  util::Rng rng(0xAB5EED);

  auto add = [&corpus, &rng](const std::string& name, std::size_t uds,
                             std::size_t kwp, std::size_t obd,
                             bool resistant) {
    CorpusEntry entry;
    entry.app = make_app(name, uds, kwp, obd, resistant, rng);
    entry.uds_formulas = uds;
    entry.kwp_formulas = kwp;
    entry.obd_formulas = obd;
    entry.extraction_resistant = resistant;
    corpus.push_back(std::move(entry));
  };

  // The three UDS/KWP-formula apps (Table 12 top).
  add("Carly for VAG", 90, 137, 0, false);
  add("Carly for Mercedes", 1624, 468, 0, false);
  add("Carly for Toyota", 0, 7, 0, false);

  // OBD-II-formula apps, counts as listed in Table 12.
  static const std::array<std::pair<const char*, std::size_t>, 25>
      obd_apps = {{
          {"inCarDoc", 82},
          {"Car Computer - Olivia Drive", 74},
          {"CarSys Scan", 64},
          {"Easy OBD", 55},
          {"inCarDoc Pro", 49},
          {"OBD Boy(OBD2-ELM327)", 45},
          {"FordSys Scan Free", 42},
          {"ChevroSys Scan Free", 40},
          {"ToyoSys Scan Free", 40},
          {"Obd Mary", 34},
          {"OBD2 Boost", 34},
          {"Obd Harry Scan", 28},
          {"Obd Arny", 27},
          {"MOSX", 24},
          {"Dr Prius Dr Hybrid", 22},
          {"Dacar Pro OBD2", 21},
          {"OBD2 Scanner Fault Codes Desc", 16},
          {"Dacar Pro OBD2 (2)", 14},
          {"Engie Easy Car Repair", 8},
          {"PHEV Watchdog", 8},
          {"Torque Lite(OBD2&Car)", 5},
          {"Kiwi OBD", 3},
          {"OBDclick", 2},
          {"Dr Prius Dr Hybrid (2)", 1},
          {"Fuel Economy for Torque Pro", 1},
      }};
  for (const auto& [name, count] : obd_apps) {
    add(name, 0, 0, count, false);
  }

  // 13 apps whose formulas resist extraction (§4.6: subclass/parent
  // splits etc. — modeled as opaque calls breaking the taint chain).
  for (int i = 0; i < 13; ++i) {
    add("ObfuscatedScanner " + std::to_string(i + 1), 0, 0,
        6 + static_cast<std::size_t>(i % 5), true);
  }

  // Remaining apps: DTC readers / freeze-frame viewers with no response
  // formulas at all (160 total apps in the study).
  while (corpus.size() < 160) {
    CorpusEntry entry;
    entry.app =
        make_dtc_app("DTC Reader " + std::to_string(corpus.size() + 1));
    corpus.push_back(std::move(entry));
  }
  return corpus;
}

}  // namespace dpr::appanalysis
