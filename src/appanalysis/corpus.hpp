#pragma once
// The 160-app corpus of §4.6 / Table 12: three Carly apps embedding
// UDS/KWP 2000 formulas, the OBD-II-formula apps of Table 12, apps whose
// formulas resist extraction (taint breaks), and the remainder that only
// read/clear DTCs or send plain OBD-II requests with no response math.

#include <vector>

#include "appanalysis/ir.hpp"

namespace dpr::appanalysis {

struct CorpusEntry {
  App app;
  // Ground truth for scoring the analyzer.
  std::size_t uds_formulas = 0;
  std::size_t kwp_formulas = 0;
  std::size_t obd_formulas = 0;
  bool extraction_resistant = false;  // formulas hidden behind opaque calls
};

/// Build the full 160-app corpus (deterministic).
std::vector<CorpusEntry> build_corpus();

/// The exact Fig. 9 example program (engine-RPM formula of an OBD app):
/// response "41 0C" -> v1 * 0.25 + 64 * v0.
App fig9_example();

}  // namespace dpr::appanalysis
