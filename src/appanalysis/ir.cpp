#include "appanalysis/ir.hpp"

#include <sstream>

namespace dpr::appanalysis {

bool is_response_read_api(const Stmt& stmt) {
  return stmt.kind == Stmt::Kind::kReadApi;
}

std::string to_string(const Stmt& stmt) {
  std::ostringstream out;
  switch (stmt.kind) {
    case Stmt::Kind::kConst:
      out << "r" << stmt.dst << " = " << stmt.value;
      break;
    case Stmt::Kind::kReadApi:
      out << "r" << stmt.dst << " = InputStream.read()";
      break;
    case Stmt::Kind::kStartsWith:
      out << "r" << stmt.dst << " = r" << stmt.src_a << ".startsWith(\""
          << stmt.literal << "\")";
      break;
    case Stmt::Kind::kSubstr:
      out << "r" << stmt.dst << " = r" << stmt.src_a << ".split(\" \")["
          << stmt.index << "]";
      break;
    case Stmt::Kind::kParseInt:
      out << "r" << stmt.dst << " = Integer.parseInt(r" << stmt.src_a
          << ", 16)";
      break;
    case Stmt::Kind::kBinOp:
      out << "r" << stmt.dst << " = r" << stmt.src_a << " " << stmt.op
          << " r" << stmt.src_b;
      break;
    case Stmt::Kind::kOpaqueCall:
      out << "r" << stmt.dst << " = helper(r" << stmt.src_a << ")";
      break;
    case Stmt::Kind::kIf:
      out << "if r" << stmt.src_a << " goto L" << stmt.target;
      break;
    case Stmt::Kind::kGoto:
      out << "goto L" << stmt.target;
      break;
    case Stmt::Kind::kLabel:
      out << "L" << stmt.target << ":";
      break;
    case Stmt::Kind::kDisplay:
      out << "display(r" << stmt.src_a << ")";
      break;
  }
  return out.str();
}

}  // namespace dpr::appanalysis
