#pragma once
// Register-based mini-IR for telematics-app analysis (§4.6, §9.2).
//
// The paper lifts Android bytecode to Jimple-like statements (Fig. 9) and
// runs Alg. 1 on them. Our substrate is a small three-address IR with the
// same essential shapes: framework-API reads of the response buffer,
// string slicing, integer parsing, arithmetic, branches conditioned on
// message prefixes, and a display sink.

#include <cstdint>
#include <string>
#include <vector>

namespace dpr::appanalysis {

using Reg = int;

struct Stmt {
  enum class Kind {
    kConst,       // dst = value
    kReadApi,     // dst = <framework read>, e.g. InputStream.read()
    kStartsWith,  // dst = src_a.startsWith(literal)
    kSubstr,      // dst = src_a.split(...)[index]  (field extraction)
    kParseInt,    // dst = Integer.parseInt(src_a, 16)
    kBinOp,       // dst = src_a op src_b
    kOpaqueCall,  // dst = someMethod(src_a) — kills taint tracking (§6.5)
    kIf,          // if src_a goto target
    kGoto,        // goto target
    kLabel,       // jump target `target`
    kDisplay,     // UI sink: show src_a
  };

  Kind kind = Kind::kConst;
  Reg dst = -1;
  Reg src_a = -1;
  Reg src_b = -1;
  double value = 0.0;      // kConst
  char op = '+';           // kBinOp
  std::string literal;     // kStartsWith prefix
  int index = 0;           // kSubstr field index
  int target = -1;         // kIf/kGoto/kLabel label id
};

struct App {
  std::string name;
  std::vector<Stmt> statements;
};

/// Framework APIs whose results are the taint sources of Alg. 1.
bool is_response_read_api(const Stmt& stmt);

/// Pretty-print one statement (for example programs and debugging).
std::string to_string(const Stmt& stmt);

}  // namespace dpr::appanalysis
