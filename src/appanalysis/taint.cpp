#include "appanalysis/taint.hpp"

#include <map>
#include <set>
#include <sstream>

namespace dpr::appanalysis {

ProtocolClass classify_prefix(const std::string& prefix) {
  if (prefix.rfind("41", 0) == 0) return ProtocolClass::kObd2;
  if (prefix.rfind("62", 0) == 0) return ProtocolClass::kUds;
  if (prefix.rfind("61", 0) == 0) return ProtocolClass::kKwp2000;
  return ProtocolClass::kUnknown;
}

namespace {

/// Reconstruct the arithmetic expression for a register from the
/// data-dependency chain. Response-derived integers (parseInt of a
/// tainted string) become the formula variables v0, v1, ...
struct Reconstructor {
  const std::vector<Stmt>& stmts;
  const std::map<Reg, std::size_t>& def_site;  // last definition index
  std::map<Reg, std::string>& var_names;
  std::size_t& var_counter;

  std::string expr_of(Reg reg) {
    const auto def = def_site.find(reg);
    if (def == def_site.end()) return "?";
    const Stmt& stmt = stmts[def->second];
    switch (stmt.kind) {
      case Stmt::Kind::kConst: {
        std::ostringstream out;
        out << stmt.value;
        return out.str();
      }
      case Stmt::Kind::kParseInt: {
        // Data dependency stops here: this register *is* a field value
        // extracted from the response (Fig. 9 "stops at lines 7 and 9").
        auto it = var_names.find(reg);
        if (it == var_names.end()) {
          it = var_names
                   .emplace(reg, "v" + std::to_string(var_counter++))
                   .first;
        }
        return it->second;
      }
      case Stmt::Kind::kBinOp:
        return "(" + expr_of(stmt.src_a) + " " + stmt.op + " " +
               expr_of(stmt.src_b) + ")";
      default:
        return "?";
    }
  }
};

}  // namespace

AnalysisReport analyze_app(const App& app) {
  AnalysisReport report;
  report.app_name = app.name;
  const auto& stmts = app.statements;

  // --- Forward taint propagation (Alg. 1 lines 4-6) -----------------------
  std::set<Reg> tainted;
  std::map<Reg, std::size_t> def_site;
  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& stmt = stmts[i];
    if (stmt.dst >= 0) def_site[stmt.dst] = i;
    switch (stmt.kind) {
      case Stmt::Kind::kReadApi:
        tainted.insert(stmt.dst);
        break;
      case Stmt::Kind::kStartsWith:
      case Stmt::Kind::kSubstr:
      case Stmt::Kind::kParseInt:
        if (tainted.count(stmt.src_a)) tainted.insert(stmt.dst);
        break;
      case Stmt::Kind::kBinOp:
        if (tainted.count(stmt.src_a) || tainted.count(stmt.src_b)) {
          tainted.insert(stmt.dst);
        }
        break;
      case Stmt::Kind::kOpaqueCall:
        // The taint analysis cannot see through the callee (§6 limitation
        // 5): propagation stops and the formula is lost.
        if (tainted.count(stmt.src_a)) ++report.taint_breaks;
        break;
      default:
        break;
    }
  }
  report.tainted_statements = tainted.size();

  // Math statements whose destination feeds no further math: the final
  // result computations (Fig. 9 line 14).
  std::set<Reg> consumed_by_math;
  for (const Stmt& stmt : stmts) {
    if (stmt.kind == Stmt::Kind::kBinOp) {
      consumed_by_math.insert(stmt.src_a);
      consumed_by_math.insert(stmt.src_b);
    }
  }

  // Control dependency: the innermost enclosing kIf guarding an index
  // range. Our generated apps use the layout
  //   rK = startsWith(...); if !rK goto L; ...body...; L:
  // so a statement is guarded by the latest kIf whose target label has
  // not yet been passed.
  struct Guard {
    int label = -1;
    std::string prefix;
  };
  std::vector<Guard> active_guards;
  std::map<Reg, std::string> startswith_prefix;

  std::size_t var_counter = 0;
  std::map<Reg, std::string> var_names;

  for (std::size_t i = 0; i < stmts.size(); ++i) {
    const Stmt& stmt = stmts[i];
    switch (stmt.kind) {
      case Stmt::Kind::kStartsWith:
        startswith_prefix[stmt.dst] = stmt.literal;
        break;
      case Stmt::Kind::kIf: {
        Guard guard;
        guard.label = stmt.target;
        const auto it = startswith_prefix.find(stmt.src_a);
        if (it != startswith_prefix.end()) guard.prefix = it->second;
        active_guards.push_back(guard);
        break;
      }
      case Stmt::Kind::kLabel: {
        // Close any guards that jumped to this label.
        std::erase_if(active_guards, [&stmt](const Guard& g) {
          return g.label == stmt.target;
        });
        break;
      }
      case Stmt::Kind::kBinOp: {
        if (!tainted.count(stmt.dst)) break;
        if (consumed_by_math.count(stmt.dst)) break;  // not a root
        // Reconstruct the formula (Alg. 1 lines 9-11).
        var_names.clear();
        var_counter = 0;
        Reconstructor rec{stmts, def_site, var_names, var_counter};
        ExtractedFormula formula;
        formula.expression = rec.expr_of(stmt.dst);
        formula.variables = var_names.size();
        // Condition from the innermost prefix guard (lines 12-14).
        for (auto it = active_guards.rbegin(); it != active_guards.rend();
             ++it) {
          if (!it->prefix.empty()) {
            formula.prefix = it->prefix;
            formula.condition =
                "response startsWith \"" + it->prefix + "\"";
            break;
          }
        }
        formula.protocol = classify_prefix(formula.prefix);
        report.formulas.push_back(std::move(formula));
        break;
      }
      default:
        break;
    }
  }
  return report;
}

}  // namespace dpr::appanalysis
