#pragma once
// Alg. 1 of the paper: formula extraction from a telematics app.
//   1. Taint the buffers returned by framework response-read APIs.
//   2. Forward-propagate taint through string/arithmetic statements.
//   3. For each tainted math statement that is a *root* of the data-flow
//      DAG (its result feeds a sink, not further math), reconstruct the
//      formula from its data-dependency closure.
//   4. Recover the usage condition from the control-dependent branch
//      (startsWith on a message prefix, Fig. 9).

#include <optional>
#include <string>
#include <vector>

#include "appanalysis/ir.hpp"

namespace dpr::appanalysis {

enum class ProtocolClass { kObd2, kUds, kKwp2000, kUnknown };

struct ExtractedFormula {
  std::string expression;      // e.g. "v1 * 0.25 + 64 * v0"
  std::string condition;       // e.g. "response startsWith \"41 0C\""
  std::string prefix;          // the raw matched prefix, e.g. "41 0C"
  ProtocolClass protocol = ProtocolClass::kUnknown;
  std::size_t variables = 0;   // distinct response-derived operands
};

/// Classify a response prefix by its service byte: "41" -> OBD-II,
/// "62" -> UDS, "61" -> KWP 2000.
ProtocolClass classify_prefix(const std::string& prefix);

struct AnalysisReport {
  std::string app_name;
  std::vector<ExtractedFormula> formulas;
  std::size_t tainted_statements = 0;
  std::size_t taint_breaks = 0;  // opaque calls that killed propagation
};

/// Run Alg. 1 over one app.
AnalysisReport analyze_app(const App& app);

}  // namespace dpr::appanalysis
