#include "can/bus.hpp"

#include <algorithm>
#include <array>

namespace dpr::can {

CanBus::CanBus(util::SimClock& clock, std::uint32_t bitrate_bps)
    : clock_(clock), bitrate_bps_(bitrate_bps) {}

std::size_t CanBus::attach(FrameListener listener) {
  listeners_.push_back(std::move(listener));
  return listeners_.size() - 1;
}

void CanBus::send(const CanFrame& frame) {
  if (lifecycle_enabled_ && state_ == BusState::kSleeping) {
    const std::uint32_t id = frame.id().value;
    if (id >= wake_base_ && id < wake_base_ + wake_span_) {
      // A wakeup frame's transmission is itself the wakeup event: the bus
      // wakes even if the fault injector later drops the frame on the wire.
      state_ = BusState::kAwake;
      ++wakeups_;
    } else {
      // Sleeping transceivers never see the frame; it dies silently.
      ++frames_lost_to_sleep_;
      return;
    }
  }
  queue_.emplace_back(next_seq_++, frame);
}

void CanBus::enable_lifecycle(std::uint32_t wake_base,
                              std::uint32_t wake_span) {
  lifecycle_enabled_ = true;
  wake_base_ = wake_base;
  wake_span_ = wake_span;
}

void CanBus::sleep() {
  if (!lifecycle_enabled_ || state_ == BusState::kSleeping) return;
  state_ = BusState::kSleeping;
  ++sleeps_;
}

std::size_t CanBus::add_service(BusService service) {
  services_.push_back(std::move(service));
  return services_.size() - 1;
}

void CanBus::run_services() {
  const util::SimTime now = clock_.now();
  for (const auto& service : services_) service(now);
}

void CanBus::set_faults(const util::FaultPlan& plan, util::CounterRng stream) {
  injector_.emplace(plan, stream);
}

util::SimTime CanBus::frame_time(const CanFrame& frame) const {
  // 47 overhead bits for a standard frame (SOF, arbitration, control, CRC,
  // ACK, EOF, IFS) + ~19% stuff-bit allowance, 8 bits per data byte.
  const double bits = (47.0 + 8.0 * frame.dlc()) * 1.19;
  const double seconds = bits / static_cast<double>(bitrate_bps_);
  return static_cast<util::SimTime>(seconds * 1e6);
}

std::size_t CanBus::deliver_some(std::size_t max_frames) {
  // A bus that fell asleep after frames were queued (the NM countdown ran
  // out inside the same delivery window) carries no traffic: the queued
  // frames die exactly like frames sent while sleeping. Without this, a
  // request could reach a server whose response then dies against the
  // sleeping bus, wedging the server's transport mid-transfer.
  if (lifecycle_enabled_ && state_ == BusState::kSleeping && !queue_.empty()) {
    frames_lost_to_sleep_ += queue_.size();
    queue_.clear();
    return 0;
  }
  std::size_t delivered = 0;
  while (delivered < max_frames && !queue_.empty()) {
    // Arbitration: lowest identifier wins; FIFO among equal identifiers.
    auto winner = std::min_element(
        queue_.begin(), queue_.end(), [](const auto& a, const auto& b) {
          if (a.second.id().value != b.second.id().value) {
            return a.second.id().value < b.second.id().value;
          }
          return a.first < b.first;
        });
    CanFrame frame = winner->second;
    queue_.erase(winner);

    std::size_t copies = 1;
    if (injector_ && injector_->enabled()) {
      const auto decision = injector_->decide(clock_.now());
      if (decision.drop) {
        // The frame still occupied the wire before being lost.
        clock_.advance(frame_time(frame));
        continue;
      }
      if (decision.extra_delay > 0) clock_.advance(decision.extra_delay);
      if (decision.corrupt && frame.dlc() > 0) {
        const std::uint32_t bit =
            decision.corrupt_bit % (8u * frame.dlc());
        std::array<std::uint8_t, 8> data{};
        std::copy(frame.data().begin(), frame.data().end(), data.begin());
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        frame = CanFrame(frame.id(), {data.data(), frame.dlc()});
      }
      if (decision.duplicate) copies = 2;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      clock_.advance(frame_time(frame));
      const util::SimTime ts = clock_.now();
      for (const auto& listener : listeners_) listener(frame, ts);
      ++delivered;
      ++frames_delivered_;
    }
  }
  return delivered;
}

std::size_t CanBus::deliver_pending() {
  // NM nodes and other periodic services get a chance to act (pass the
  // token, time out into limp-home, agree to sleep) before frames drain.
  if (!services_.empty()) run_services();
  std::size_t total = 0;
  // Listeners may enqueue responses while we deliver; keep draining.
  while (!queue_.empty()) {
    total += deliver_some(queue_.size());
  }
  return total;
}

}  // namespace dpr::can
