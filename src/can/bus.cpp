#include "can/bus.hpp"

#include <algorithm>
#include <array>
#include <bit>

namespace dpr::can {

CanBus::CanBus(util::SimClock& clock, std::uint32_t bitrate_bps)
    : clock_(clock), bitrate_bps_(bitrate_bps) {
  // 47 overhead bits for a standard frame (SOF, arbitration, control, CRC,
  // ACK, EOF, IFS) + ~19% stuff-bit allowance, 8 bits per data byte.
  // Precomputed per DLC — the per-frame double math was measurable on the
  // delivery hot path.
  for (std::size_t dlc = 0; dlc < frame_times_.size(); ++dlc) {
    const double bits = (47.0 + 8.0 * static_cast<double>(dlc)) * 1.19;
    const double seconds = bits / static_cast<double>(bitrate_bps_);
    frame_times_[dlc] = static_cast<util::SimTime>(seconds * 1e6);
  }
}

std::size_t CanBus::attach(FrameListener listener, IdFilter filter) {
  listeners_.push_back(Listener{std::move(listener), filter});
  return listeners_.size() - 1;
}

void CanBus::extend_index() {
  const auto n = static_cast<std::uint32_t>(listeners_.size());
  // Appending to the per-id buckets keeps them interleaved in attach
  // order for free: listener indices only ever ascend. The buckets are
  // materialized the first time a standard-range filter appears; until
  // then every indexed listener is match-all or wide-only, so each
  // bucket would be exactly match_all_ — which is what dispatch uses
  // while buckets_ is empty, and what materialization seeds from.
  if (buckets_.empty()) {
    bool std_filters = false;
    for (std::uint32_t i = indexed_count_; i < n && !std_filters; ++i) {
      const IdFilter filter = listeners_[i].filter;
      std_filters = !filter.match_all() && filter.base < kNumBuckets;
    }
    if (std_filters) {
      buckets_.assign(kNumBuckets, match_all_);
    }
  }
  for (std::uint32_t i = indexed_count_; i < n; ++i) {
    const IdFilter filter = listeners_[i].filter;
    if (filter.match_all()) {
      match_all_.push_back(i);
      for (auto& bucket : buckets_) bucket.push_back(i);
      continue;
    }
    // Saturating end of the filtered range; the part beyond the
    // standard-id buckets (29-bit ids) is matched by scanning wide_.
    std::uint32_t end = filter.base + filter.span;
    if (end < filter.base) end = 0xFFFFFFFFu;
    if (end > kNumBuckets) wide_.push_back(i);
    if (!buckets_.empty() && filter.base < kNumBuckets) {
      const std::uint32_t stop = end < kNumBuckets ? end : kNumBuckets;
      for (std::uint32_t id = filter.base; id < stop; ++id) {
        buckets_[id].push_back(i);
      }
    }
  }
  indexed_count_ = n;
}

void CanBus::send(const CanFrame& frame) {
  if (lifecycle_enabled_ && state_ == BusState::kSleeping) {
    const std::uint32_t id = frame.id().value;
    if (id >= wake_base_ && id < wake_base_ + wake_span_) {
      // A wakeup frame's transmission is itself the wakeup event: the bus
      // wakes even if the fault injector later drops the frame on the wire.
      state_ = BusState::kAwake;
      ++wakeups_;
    } else {
      // Sleeping transceivers never see the frame; it dies silently.
      ++frames_lost_to_sleep_;
      return;
    }
  }
  Queued item{frame.id().value, next_seq_++, frame};
  if (legacy_) {
    queue_.push_back(std::move(item));
  } else {
    fast_insert(std::move(item));
  }
}

std::int32_t CanBus::ring_of(std::uint32_t id) const {
  if (id < kNumBuckets) {
    return std_ring_index_.empty() ? -1 : std_ring_index_[id];
  }
  for (const auto& [ext_id, ring] : ext_ring_index_) {
    if (ext_id == id) return ring;
  }
  return -1;
}

void CanBus::map_ring(std::uint32_t id, std::uint32_t ring) {
  if (id < kNumBuckets) {
    if (std_ring_index_.empty()) std_ring_index_.resize(kNumBuckets, -1);
    std_ring_index_[id] = static_cast<std::int32_t>(ring);
  } else {
    ext_ring_index_.emplace_back(id, static_cast<std::int32_t>(ring));
  }
}

void CanBus::unmap_ring(std::uint32_t id) {
  if (id < kNumBuckets) {
    std_ring_index_[id] = -1;
    return;
  }
  for (auto& entry : ext_ring_index_) {
    if (entry.first == id) {
      entry = ext_ring_index_.back();
      ext_ring_index_.pop_back();
      return;
    }
  }
}

void CanBus::fast_insert(Queued&& item) {
  const std::uint32_t id = item.id;
  std::int32_t ring = ring_of(id);
  if (ring < 0) {
    // First frame of this id in arbitration: claim a ring and publish
    // the id to the arbitration structure — a bit set for standard ids,
    // a side-list append for extended ones. All O(1).
    if (free_rings_.empty()) {
      rings_.emplace_back();
      free_rings_.push_back(static_cast<std::uint32_t>(rings_.size() - 1));
    }
    ring = static_cast<std::int32_t>(free_rings_.back());
    free_rings_.pop_back();
    map_ring(id, static_cast<std::uint32_t>(ring));
    if (id < kNumBuckets) {
      arb_bits_[id >> 6] |= 1ULL << (id & 63);
      arb_summary_ |= 1u << (id >> 6);
    } else {
      ext_arb_.push_back(ArbEntry{id, static_cast<std::uint32_t>(ring)});
    }
  }
  Ring& r = rings_[static_cast<std::size_t>(ring)];
  if (r.head >= 16 && r.head * 2 >= r.items.size()) {
    // A long-lived ring (its id never fully drains) would otherwise grow
    // without bound as the consumed prefix advances; compacting when at
    // least half the vector is dead keeps appends amortized O(1).
    r.items.erase(r.items.begin(),
                  r.items.begin() + static_cast<std::ptrdiff_t>(r.head));
    r.head = 0;
  }
  r.items.push_back(std::move(item));
  ++fast_count_;
}

void CanBus::clear_arbitration() {
  while (arb_summary_ != 0) {
    const unsigned g = static_cast<unsigned>(std::countr_zero(arb_summary_));
    while (arb_bits_[g] != 0) {
      const unsigned b =
          static_cast<unsigned>(std::countr_zero(arb_bits_[g]));
      const std::uint32_t id = (g << 6) | b;
      const std::int32_t ring = std_ring_index_[id];
      rings_[static_cast<std::size_t>(ring)].items.clear();
      rings_[static_cast<std::size_t>(ring)].head = 0;
      free_rings_.push_back(static_cast<std::uint32_t>(ring));
      std_ring_index_[id] = -1;
      arb_bits_[g] &= arb_bits_[g] - 1;
    }
    arb_summary_ &= arb_summary_ - 1;
  }
  for (const auto& entry : ext_arb_) {
    rings_[entry.ring].items.clear();
    rings_[entry.ring].head = 0;
    free_rings_.push_back(entry.ring);
  }
  ext_arb_.clear();
  ext_ring_index_.clear();
  fast_count_ = 0;
  queue_.clear();
}

void CanBus::set_legacy_path(bool legacy) {
  if (legacy_ == legacy) return;
  // Migrate queued frames between the two representations. Relative
  // vector order does not matter for the legacy scan — (id, seq) is
  // unique — and fast_insert keys purely on (id, seq), so arbitration
  // order is preserved exactly across the switch.
  if (legacy) {
    std::deque<Queued> drained;
    while (fast_count_ > 0) drained.push_back(pop_winner());
    clear_arbitration();
    legacy_ = true;
    queue_ = std::move(drained);
  } else {
    std::deque<Queued> drained = std::move(queue_);
    queue_.clear();
    legacy_ = false;
    for (auto& item : drained) fast_insert(std::move(item));
  }
}

void CanBus::enable_lifecycle(std::uint32_t wake_base,
                              std::uint32_t wake_span) {
  lifecycle_enabled_ = true;
  wake_base_ = wake_base;
  wake_span_ = wake_span;
}

void CanBus::sleep() {
  if (!lifecycle_enabled_ || state_ == BusState::kSleeping) return;
  state_ = BusState::kSleeping;
  ++sleeps_;
}

std::size_t CanBus::add_service(BusService service) {
  services_.push_back(std::move(service));
  return services_.size() - 1;
}

void CanBus::run_services() {
  const util::SimTime now = clock_.now();
  for (const auto& service : services_) service(now);
}

void CanBus::set_faults(const util::FaultPlan& plan, util::CounterRng stream) {
  injector_.emplace(plan, stream);
}

util::SimTime CanBus::wire_time(const CanFrame& frame) const {
  if (legacy_) {
    // The pre-table expression, evaluated per frame exactly as the
    // original delivery loop did. Same math, same inputs — the value is
    // identical to the table entry; only the cost differs.
    const double bits = (47.0 + 8.0 * static_cast<double>(frame.dlc())) * 1.19;
    const double seconds = bits / static_cast<double>(bitrate_bps_);
    return static_cast<util::SimTime>(seconds * 1e6);
  }
  return frame_times_[frame.dlc()];
}

CanBus::Queued CanBus::pop_winner() {
  if (legacy_) {
    // Arbitration: lowest identifier wins; FIFO among equal identifiers.
    // The original O(n) reference scan.
    auto winner = std::min_element(
        queue_.begin(), queue_.end(), [](const Queued& a, const Queued& b) {
          if (a.id != b.id) return a.id < b.id;
          return a.seq < b.seq;
        });
    Queued item = std::move(*winner);
    queue_.erase(winner);
    return item;
  }
  // The arbitration winner is the lowest queued id; its ring head is the
  // oldest frame of that id. Standard ids resolve with two countr_zero
  // instructions; the extended side list only arbitrates when no
  // standard id is queued (every 29-bit id value exceeds every 11-bit
  // one). Callers guarantee queued() > 0.
  if (arb_summary_ != 0) {
    const unsigned g = static_cast<unsigned>(std::countr_zero(arb_summary_));
    const unsigned b = static_cast<unsigned>(std::countr_zero(arb_bits_[g]));
    const std::uint32_t id = (g << 6) | b;
    const std::int32_t ring_index = std_ring_index_[id];
    Ring& ring = rings_[static_cast<std::size_t>(ring_index)];
    Queued item = std::move(ring.items[ring.head++]);
    --fast_count_;
    if (ring.head == ring.items.size()) {
      ring.items.clear();
      ring.head = 0;
      free_rings_.push_back(static_cast<std::uint32_t>(ring_index));
      std_ring_index_[id] = -1;
      arb_bits_[g] &= arb_bits_[g] - 1;
      if (arb_bits_[g] == 0) arb_summary_ &= ~(1u << g);
    }
    return item;
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < ext_arb_.size(); ++i) {
    if (ext_arb_[i].id < ext_arb_[best].id) best = i;
  }
  const ArbEntry top = ext_arb_[best];
  Ring& ring = rings_[top.ring];
  Queued item = std::move(ring.items[ring.head++]);
  --fast_count_;
  if (ring.head == ring.items.size()) {
    ring.items.clear();
    ring.head = 0;
    free_rings_.push_back(top.ring);
    unmap_ring(top.id);
    ext_arb_[best] = ext_arb_.back();
    ext_arb_.pop_back();
  }
  return item;
}

void CanBus::dispatch(const CanFrame& frame, util::SimTime ts) {
  if (legacy_) {
    // Pre-filter fan-out: every listener sees every frame (they all carry
    // their own id checks, as they did before filters existed).
    for (const auto& listener : listeners_) listener.fn(frame, ts);
    return;
  }
  if (indexed_count_ != listeners_.size()) extend_index();
  const std::uint32_t id = frame.id().value;
  if (id < kNumBuckets) {
    // The pre-merged receiver list: one flat walk, already in attach
    // order, no per-frame merge work.
    const auto& list = buckets_.empty() ? match_all_ : buckets_[id];
    for (const std::uint32_t index : list) listeners_[index].fn(frame, ts);
    return;
  }
  // Extended id: merge the (ascending) wide and match-all index lists so
  // listeners still fire in attach order; wide_ holds mixed filters, so
  // each entry is matched individually.
  std::size_t i = 0;
  std::size_t j = 0;
  while (true) {
    while (i < wide_.size() && !listeners_[wide_[i]].filter.matches(id)) {
      ++i;
    }
    const bool has_w = i < wide_.size();
    const bool has_m = j < match_all_.size();
    if (!has_w && !has_m) break;
    std::uint32_t index;
    if (has_w && (!has_m || wide_[i] < match_all_[j])) {
      index = wide_[i];
      ++i;
    } else {
      index = match_all_[j];
      ++j;
    }
    listeners_[index].fn(frame, ts);
  }
}

void CanBus::deliver_copy(const CanFrame& frame, std::size_t& delivered) {
  clock_.advance(wire_time(frame));
  dispatch(frame, clock_.now());
  ++delivered;
  ++frames_delivered_;
}

std::size_t CanBus::deliver_some(std::size_t max_frames) {
  if (max_frames == 0) return 0;
  std::size_t delivered = 0;
  if (pending_copy_) {
    // Carried-over duplicate copy: on the wire it directly followed its
    // sibling, so it leaves before anything else — ahead of the sleep
    // purge too, matching the pre-budget-fix path where both copies went
    // out back to back.
    const CanFrame copy = *pending_copy_;
    pending_copy_.reset();
    deliver_copy(copy, delivered);
  }
  // A bus that fell asleep after frames were queued (the NM countdown ran
  // out inside the same delivery window) carries no traffic: the queued
  // frames die exactly like frames sent while sleeping. Without this, a
  // request could reach a server whose response then dies against the
  // sleeping bus, wedging the server's transport mid-transfer.
  if (lifecycle_enabled_ && state_ == BusState::kSleeping && queued() > 0) {
    frames_lost_to_sleep_ += queued();
    clear_arbitration();
    return delivered;
  }
  const bool faulted = injector_ && injector_->enabled();
  while (delivered < max_frames && queued() > 0) {
    if (faulted && !legacy_) {
      // Pre-compute the whole window's fault draws in one SIMD-batched
      // pass (no-op while the window still covers the cursor). Legal
      // because unit n's draws are pure in (stream, n) — see
      // FaultInjector::decide_batch.
      injector_->prefetch(
          std::min(queued(), util::FaultInjector::kPrefetchMax));
    }
    Queued item = pop_winner();
    CanFrame frame = std::move(item.frame);
    std::size_t copies = 1;
    if (faulted) {
      const auto decision = injector_->decide(clock_.now());
      if (decision.drop) {
        // The frame still occupied the wire before being lost.
        clock_.advance(wire_time(frame));
        continue;
      }
      if (decision.extra_delay > 0) clock_.advance(decision.extra_delay);
      if (decision.corrupt && frame.dlc() > 0) {
        const std::uint32_t bit =
            decision.corrupt_bit % (8u * frame.dlc());
        std::array<std::uint8_t, 8> data{};
        std::copy(frame.data().begin(), frame.data().end(), data.begin());
        data[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        frame = CanFrame(frame.id(), {data.data(), frame.dlc()});
      }
      if (decision.duplicate) copies = 2;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      if (delivered >= max_frames) {
        // Budget exhausted mid-duplicate: carry the second copy over to
        // the next call instead of overshooting the contract.
        pending_copy_ = frame;
        break;
      }
      deliver_copy(frame, delivered);
    }
  }
  return delivered;
}

std::size_t CanBus::deliver_pending() {
  // NM nodes and other periodic services get a chance to act (pass the
  // token, time out into limp-home, agree to sleep) before frames drain.
  if (!services_.empty()) run_services();
  std::size_t total = 0;
  // Listeners may enqueue responses while we deliver; keep draining.
  while (queued() > 0 || pending_copy_) {
    total += deliver_some(queued() + (pending_copy_ ? 1 : 0));
  }
  return total;
}

}  // namespace dpr::can
