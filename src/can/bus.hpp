#pragma once
// In-process simulated CAN bus with priority arbitration.
//
// The bus is single-threaded and deterministic: nodes enqueue frames with
// send(); deliver_pending() performs arbitration (lowest identifier first,
// FIFO among equal ids), advances the shared SimClock by each frame's wire
// time, and fans the frame out to every attached listener whose id filter
// matches (ECUs, the diagnostic tool, and the sniffer all observe the same
// broadcast medium — the sniffer subscribes match-all).
//
// Hot-path layout: arbitration is a two-level bitmap priority queue (a
// radix heap over the 11-bit id space, plus a side list for extended
// ids) with a FIFO ring per distinct queued id — pop order is the strict
// (id, seq) total order of a frame-granular heap at O(1) per frame, the
// winner found with two countr_zero instructions; per-DLC wire times
// come from a 9-entry table; dispatch walks a pre-merged per-id receiver
// list instead of scanning every listener.
// set_legacy_path(true) restores the original min_element scan / full
// fan-out / per-frame fault draws / per-frame wire-time math, kept as the
// differential-test and benchmark reference.

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "can/frame.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace dpr::can {

/// Receives every frame that completes arbitration on the bus.
using FrameListener =
    std::function<void(const CanFrame&, util::SimTime timestamp)>;

/// Periodic housekeeping hook (e.g. an NM node's timers) run at the top of
/// every deliver_pending() with the current sim time.
using BusService = std::function<void(util::SimTime now)>;

/// Bus lifecycle under OSEK/VDX network management: while kSleeping, normal
/// frames are swallowed at send() and only a frame in the configured wakeup
/// id range transitions the bus back to kAwake.
enum class BusState : std::uint8_t { kAwake, kSleeping };

/// Subscription filter for CanBus::attach: the listener sees exactly the
/// frames whose id value lies in [base, base + span). span == 0 means
/// match-all (the default, so sniffer/trace listeners keep seeing
/// everything). Filters match the 11/29-bit id *value*; listeners that
/// care about the extended flag keep their own check.
struct IdFilter {
  std::uint32_t base = 0;
  std::uint32_t span = 0;  ///< 0 = match-all

  static IdFilter all() { return IdFilter{}; }
  static IdFilter exact(std::uint32_t id) { return IdFilter{id, 1}; }
  static IdFilter exact(CanId id) { return IdFilter{id.value, 1}; }
  static IdFilter range(std::uint32_t base, std::uint32_t span) {
    return IdFilter{base, span};
  }

  bool match_all() const { return span == 0; }
  bool matches(std::uint32_t id) const {
    return span == 0 || id - base < span;
  }
};

class CanBus {
 public:
  /// `bitrate_bps` controls the simulated wire time per frame.
  explicit CanBus(util::SimClock& clock, std::uint32_t bitrate_bps = 500'000);

  /// Attach a listener; returns its registration index. The filter
  /// (default match-all) restricts which frame ids reach the listener;
  /// delivery order among the listeners a frame does reach is always
  /// attach order, filtered or not.
  std::size_t attach(FrameListener listener, IdFilter filter = IdFilter::all());

  /// Queue a frame for transmission. Delivery happens on deliver_pending().
  void send(const CanFrame& frame);

  /// Arbitrate and deliver every queued frame (including frames queued by
  /// listeners while delivering — e.g. an ECU answering a request).
  /// Returns the number of frames delivered.
  std::size_t deliver_pending();

  /// Deliver at most `max_frames` frames. Duplicate copies count against
  /// the budget: when a duplicated frame's second copy would exceed it,
  /// the copy is carried over and delivered first by the next call.
  std::size_t deliver_some(std::size_t max_frames);

  bool idle() const { return queued() == 0 && !pending_copy_; }
  /// Frames currently queued for arbitration (excludes a carried copy).
  std::size_t queued() const {
    return legacy_ ? queue_.size() : fast_count_;
  }
  std::size_t frames_delivered() const { return frames_delivered_; }
  util::SimClock& clock() { return clock_; }

  /// Install a fault injector consulted once per frame in delivery order;
  /// frame n draws from event n of the counter stream, so a dropped frame
  /// never shifts later frames' fates. Without an injector (or with a
  /// disabled plan) delivery is lossless.
  void set_faults(const util::FaultPlan& plan, util::CounterRng stream);
  void clear_faults() { injector_.reset(); }

  /// Accumulated fault counters, or nullptr when no injector is installed.
  const util::FaultStats* fault_stats() const {
    return injector_ ? &injector_->stats() : nullptr;
  }

  /// Wire time for one frame: worst-case stuffed classical CAN frame
  /// overhead plus data bits, at the configured bitrate (table lookup).
  util::SimTime frame_time(const CanFrame& frame) const {
    return frame_times_[frame.dlc()];
  }

  /// Arm the sleep/wakeup lifecycle. Frames with id in
  /// [wake_base, wake_base + wake_span) act as wakeup frames: sending one
  /// while the bus sleeps wakes it (the transmission itself is the wakeup
  /// event, so it wakes the bus even if the fault injector later drops it).
  /// Any other frame sent while asleep is swallowed and counted.
  void enable_lifecycle(std::uint32_t wake_base, std::uint32_t wake_span);
  bool lifecycle_enabled() const { return lifecycle_enabled_; }

  /// Put the bus to sleep (no-op unless the lifecycle is enabled or the
  /// bus already sleeps). Called by NM nodes once the ring agrees.
  void sleep();
  bool asleep() const { return state_ == BusState::kSleeping; }
  BusState state() const { return state_; }

  std::uint64_t sleeps() const { return sleeps_; }
  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t frames_lost_to_sleep() const { return frames_lost_to_sleep_; }

  /// Register a housekeeping hook run at the top of every deliver_pending().
  /// With no services registered, delivery is byte-for-byte the pre-NM path.
  std::size_t add_service(BusService service);
  void run_services();

  /// Reference shim: route delivery through the original pre-heap path —
  /// min_element arbitration scan, unfiltered full fan-out, per-frame
  /// scalar fault draws. Bit-identical outcomes by contract (the
  /// differential tests assert it); kept for equivalence tests and
  /// old-vs-new benchmarks. Call before or between deliveries.
  void set_legacy_path(bool legacy);
  bool legacy_path() const { return legacy_; }

 private:
  struct Queued {
    std::uint32_t id = 0;     ///< arbitration key (frame id value)
    std::uint64_t seq = 0;    ///< enqueue sequence: FIFO among equal ids
    CanFrame frame;
  };

  // Fast-path arbitration structure: a radix/bitmap priority queue with
  // one FIFO ring per *distinct* queued id. Standard ids (< 0x800) live
  // in a two-level bitmap — a 32-bit summary word over 32 × 64-bit detail
  // words — so the arbitration winner is two countr_zero instructions;
  // insert and drain are single bit sets/clears. Extended ids (rare: one
  // transport per BMW-framing car) sit in a scanned side list; every
  // extended id value exceeds every standard id value, so the side list
  // only arbitrates when the bitmap is empty. Pop order is lowest id
  // first, FIFO within an id — exactly the strict (id, seq) total order
  // of the legacy scan — at O(1) per frame.
  struct ArbEntry {
    std::uint32_t id = 0;
    std::uint32_t ring = 0;  ///< index into rings_
  };
  struct Ring {
    std::vector<Queued> items;
    std::size_t head = 0;  ///< consumed prefix; compacted amortized O(1)
  };

  struct Listener {
    FrameListener fn;
    IdFilter filter;
  };

  /// Fast-path insert preserving an already-assigned seq (send, and the
  /// legacy -> fast queue migration).
  void fast_insert(Queued&& item);
  /// Ring index for `id`, or -1. Standard ids use a flat table; extended
  /// ids (rare: one transport per BMW-framing car) a scanned vector.
  std::int32_t ring_of(std::uint32_t id) const;
  void map_ring(std::uint32_t id, std::uint32_t ring);
  void unmap_ring(std::uint32_t id);
  /// Drop every queued frame (sleep purge / mode switches).
  void clear_arbitration();

  /// Pop the arbitration winner (lowest id, FIFO among equals).
  Queued pop_winner();
  /// Wire time charged during delivery: the table on the fast path, the
  /// original per-frame double math (identical value) in legacy mode so
  /// old-vs-new benchmarks charge the pre-table cost.
  util::SimTime wire_time(const CanFrame& frame) const;
  /// Fan one delivered frame out to the listeners whose filter matches,
  /// in attach order.
  void dispatch(const CanFrame& frame, util::SimTime ts);
  /// Deliver one wire copy of `frame` (advance clock, fan out, count).
  void deliver_copy(const CanFrame& frame, std::size_t& delivered);
  /// Fold listeners attached since the last dispatch into the index
  /// (lazily, on the first dispatch after an attach burst). Append-only:
  /// the bus has no detach, so extending never reorders receivers.
  void extend_index();

  util::SimClock& clock_;
  std::uint32_t bitrate_bps_;
  std::array<util::SimTime, 9> frame_times_{};  // per-DLC wire time
  std::vector<Listener> listeners_;
  // Dispatch index. buckets_[id] is the *complete* pre-merged receiver
  // list for standard id `id` — filtered listeners and match-all
  // listeners interleaved in attach order — so standard-id dispatch is a
  // single flat walk with no per-frame merging. Built only when at least
  // one standard-range filter exists (otherwise match_all_ alone serves
  // every standard id). Extended ids merge wide_ (filters reaching past
  // the standard range, matched per entry) with match_all_ at dispatch;
  // they are rare (one transport per BMW-framing car). Maintenance is
  // incremental: listeners_[indexed_count_..] are folded in lazily on
  // the first dispatch after an attach burst (extend_index), appending
  // in ascending index order so attach-order interleaving is free.
  static constexpr std::uint32_t kNumBuckets = 0x800;
  std::vector<std::vector<std::uint32_t>> buckets_;
  std::vector<std::uint32_t> match_all_;
  std::vector<std::uint32_t> wide_;
  std::uint32_t indexed_count_ = 0;
  // Arbitration state. Fast path: the two-level bitmap (standard ids) +
  // ext_arb_ (extended ids) + rings_ (per-id FIFO) + the id -> ring
  // indexes. Legacy path: queue_, the original deque scanned with
  // min_element. Exactly one representation is populated at a time (see
  // set_legacy_path).
  std::uint32_t arb_summary_ = 0;              // bit g: detail word g != 0
  std::array<std::uint64_t, 32> arb_bits_{};   // bit per standard id
  std::vector<ArbEntry> ext_arb_;              // extended ids, scanned
  std::vector<Ring> rings_;
  std::vector<std::uint32_t> free_rings_;
  std::vector<std::int32_t> std_ring_index_;  // lazily sized kNumBuckets
  std::vector<std::pair<std::uint32_t, std::int32_t>> ext_ring_index_;
  std::size_t fast_count_ = 0;  ///< frames queued across all rings
  // Legacy-mode queue: a deque, exactly as the pre-overhaul bus stored
  // it, so old-vs-new benchmarks measure the original container too.
  std::deque<Queued> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t frames_delivered_ = 0;
  // Second copy of a duplicated frame that did not fit the previous
  // deliver_some budget; delivered first (before the sleep purge — on the
  // wire it directly followed its sibling) by the next call.
  std::optional<CanFrame> pending_copy_;
  std::optional<util::FaultInjector> injector_;
  bool legacy_ = false;
  // Sleep/wakeup lifecycle (disabled by default; see enable_lifecycle()).
  bool lifecycle_enabled_ = false;
  BusState state_ = BusState::kAwake;
  std::uint32_t wake_base_ = 0;
  std::uint32_t wake_span_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t frames_lost_to_sleep_ = 0;
  std::vector<BusService> services_;
};

}  // namespace dpr::can
