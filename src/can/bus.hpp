#pragma once
// In-process simulated CAN bus with priority arbitration.
//
// The bus is single-threaded and deterministic: nodes enqueue frames with
// send(); deliver_pending() performs arbitration (lowest identifier first,
// FIFO among equal ids), advances the shared SimClock by each frame's wire
// time, and fans the frame out to every attached listener (ECUs, the
// diagnostic tool, and the sniffer all observe the same broadcast medium).

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "can/frame.hpp"
#include "util/clock.hpp"
#include "util/fault.hpp"

namespace dpr::can {

/// Receives every frame that completes arbitration on the bus.
using FrameListener =
    std::function<void(const CanFrame&, util::SimTime timestamp)>;

/// Periodic housekeeping hook (e.g. an NM node's timers) run at the top of
/// every deliver_pending() with the current sim time.
using BusService = std::function<void(util::SimTime now)>;

/// Bus lifecycle under OSEK/VDX network management: while kSleeping, normal
/// frames are swallowed at send() and only a frame in the configured wakeup
/// id range transitions the bus back to kAwake.
enum class BusState : std::uint8_t { kAwake, kSleeping };

class CanBus {
 public:
  /// `bitrate_bps` controls the simulated wire time per frame.
  explicit CanBus(util::SimClock& clock, std::uint32_t bitrate_bps = 500'000);

  /// Attach a listener; returns its registration index.
  std::size_t attach(FrameListener listener);

  /// Queue a frame for transmission. Delivery happens on deliver_pending().
  void send(const CanFrame& frame);

  /// Arbitrate and deliver every queued frame (including frames queued by
  /// listeners while delivering — e.g. an ECU answering a request).
  /// Returns the number of frames delivered.
  std::size_t deliver_pending();

  /// Deliver at most `max_frames` frames.
  std::size_t deliver_some(std::size_t max_frames);

  bool idle() const { return queue_.empty(); }
  std::size_t frames_delivered() const { return frames_delivered_; }
  util::SimClock& clock() { return clock_; }

  /// Install a fault injector consulted once per frame in delivery order;
  /// frame n draws from event n of the counter stream, so a dropped frame
  /// never shifts later frames' fates. Without an injector (or with a
  /// disabled plan) delivery is lossless.
  void set_faults(const util::FaultPlan& plan, util::CounterRng stream);
  void clear_faults() { injector_.reset(); }

  /// Accumulated fault counters, or nullptr when no injector is installed.
  const util::FaultStats* fault_stats() const {
    return injector_ ? &injector_->stats() : nullptr;
  }

  /// Wire time for one frame: worst-case stuffed classical CAN frame
  /// overhead plus data bits, at the configured bitrate.
  util::SimTime frame_time(const CanFrame& frame) const;

  /// Arm the sleep/wakeup lifecycle. Frames with id in
  /// [wake_base, wake_base + wake_span) act as wakeup frames: sending one
  /// while the bus sleeps wakes it (the transmission itself is the wakeup
  /// event, so it wakes the bus even if the fault injector later drops it).
  /// Any other frame sent while asleep is swallowed and counted.
  void enable_lifecycle(std::uint32_t wake_base, std::uint32_t wake_span);
  bool lifecycle_enabled() const { return lifecycle_enabled_; }

  /// Put the bus to sleep (no-op unless the lifecycle is enabled or the
  /// bus already sleeps). Called by NM nodes once the ring agrees.
  void sleep();
  bool asleep() const { return state_ == BusState::kSleeping; }
  BusState state() const { return state_; }

  std::uint64_t sleeps() const { return sleeps_; }
  std::uint64_t wakeups() const { return wakeups_; }
  std::uint64_t frames_lost_to_sleep() const { return frames_lost_to_sleep_; }

  /// Register a housekeeping hook run at the top of every deliver_pending().
  /// With no services registered, delivery is byte-for-byte the pre-NM path.
  std::size_t add_service(BusService service);
  void run_services();

 private:
  util::SimClock& clock_;
  std::uint32_t bitrate_bps_;
  std::vector<FrameListener> listeners_;
  // (enqueue sequence, frame): sequence breaks ties among equal ids.
  std::deque<std::pair<std::uint64_t, CanFrame>> queue_;
  std::uint64_t next_seq_ = 0;
  std::size_t frames_delivered_ = 0;
  std::optional<util::FaultInjector> injector_;
  // Sleep/wakeup lifecycle (disabled by default; see enable_lifecycle()).
  bool lifecycle_enabled_ = false;
  BusState state_ = BusState::kAwake;
  std::uint32_t wake_base_ = 0;
  std::uint32_t wake_span_ = 0;
  std::uint64_t sleeps_ = 0;
  std::uint64_t wakeups_ = 0;
  std::uint64_t frames_lost_to_sleep_ = 0;
  std::vector<BusService> services_;
};

}  // namespace dpr::can
