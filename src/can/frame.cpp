#include "can/frame.hpp"

#include <sstream>
#include <stdexcept>

namespace dpr::can {

CanFrame::CanFrame(CanId id, std::span<const std::uint8_t> data) : id_(id) {
  if (data.size() > 8) {
    throw std::invalid_argument("CAN frame payload exceeds 8 bytes");
  }
  if (id.extended ? id.value > kMaxExtendedId : id.value > kMaxStandardId) {
    throw std::invalid_argument("CAN identifier out of range");
  }
  dlc_ = data.size();
  std::copy(data.begin(), data.end(), data_.begin());
}

CanFrame::CanFrame(std::uint32_t id, std::initializer_list<std::uint8_t> data)
    : CanFrame(CanId{id, id > kMaxStandardId},
               std::span<const std::uint8_t>(data.begin(), data.size())) {}

void CanFrame::pad_to_8(std::uint8_t fill) {
  for (std::size_t i = dlc_; i < data_.size(); ++i) data_[i] = fill;
  dlc_ = data_.size();
}

std::string CanFrame::to_string() const {
  std::ostringstream out;
  out << std::hex << std::uppercase << id_.value << std::dec << " ["
      << dlc_ << "] " << util::to_hex(data());
  return out.str();
}

}  // namespace dpr::can
