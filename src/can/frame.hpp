#pragma once
// CAN 2.0 data frames (§2.2).
//
// A frame carries an 11-bit (standard) or 29-bit (extended) identifier and
// up to 8 data bytes. Lower identifier values win bus arbitration.

#include <array>
#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "util/clock.hpp"
#include "util/hex.hpp"

namespace dpr::can {

/// CAN identifier. Standard ids are <= 0x7FF; extended ids use 29 bits.
struct CanId {
  std::uint32_t value = 0;
  bool extended = false;

  friend auto operator<=>(const CanId&, const CanId&) = default;
};

constexpr std::uint32_t kMaxStandardId = 0x7FF;
constexpr std::uint32_t kMaxExtendedId = 0x1FFFFFFF;

/// A classic CAN 2.0 data frame: id + 0..8 payload bytes.
class CanFrame {
 public:
  CanFrame() = default;
  CanFrame(CanId id, std::span<const std::uint8_t> data);
  CanFrame(std::uint32_t id, std::initializer_list<std::uint8_t> data);

  CanId id() const { return id_; }
  std::span<const std::uint8_t> data() const {
    return {data_.data(), dlc_};
  }
  std::uint8_t dlc() const { return static_cast<std::uint8_t>(dlc_); }

  /// Byte accessor; `i` must be < dlc().
  std::uint8_t byte(std::size_t i) const { return data_[i]; }

  /// Pad the payload with `fill` up to the full 8 bytes (classical CAN
  /// tools pad ISO-TP frames with 0x00 or 0xAA).
  void pad_to_8(std::uint8_t fill = 0x00);

  std::string to_string() const;

  friend bool operator==(const CanFrame&, const CanFrame&) = default;

 private:
  CanId id_{};
  std::array<std::uint8_t, 8> data_{};
  std::size_t dlc_ = 0;
};

/// A frame captured on the bus with its arbitration-complete timestamp.
struct TimestampedFrame {
  util::SimTime timestamp = 0;
  CanFrame frame;
};

}  // namespace dpr::can
