#include "can/sniffer.hpp"

namespace dpr::can {

Sniffer::Sniffer(CanBus& bus, util::DeviceClock device_clock)
    : device_clock_(device_clock) {
  // Match-all by design: the sniffer is the capture device — it must see
  // every frame that completes arbitration, whatever filters the
  // protocol endpoints subscribe with.
  bus.attach(
      [this](const CanFrame& frame, util::SimTime ts) {
        if (!recording_) return;
        capture_.push_back(
            TimestampedFrame{device_clock_.local_time(ts), frame});
      },
      IdFilter::all());
}

}  // namespace dpr::can
