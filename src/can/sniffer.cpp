#include "can/sniffer.hpp"

namespace dpr::can {

Sniffer::Sniffer(CanBus& bus, util::DeviceClock device_clock)
    : device_clock_(device_clock) {
  bus.attach([this](const CanFrame& frame, util::SimTime ts) {
    if (!recording_) return;
    capture_.push_back(
        TimestampedFrame{device_clock_.local_time(ts), frame});
  });
}

}  // namespace dpr::can
