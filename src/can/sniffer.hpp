#pragma once
// OBD-port sniffer: passively records every frame on the bus with the
// capture device's local timestamp (the capture laptop has its own clock,
// modeled by a DeviceClock — §9.4 alignment exists because of this skew).

#include <vector>

#include "can/bus.hpp"
#include "can/frame.hpp"
#include "util/clock.hpp"

namespace dpr::can {

class Sniffer {
 public:
  /// Attaches to `bus`; timestamps are translated through `device_clock`
  /// (pass a default-constructed clock for a perfectly synced sniffer).
  Sniffer(CanBus& bus, util::DeviceClock device_clock = {});

  const std::vector<TimestampedFrame>& capture() const { return capture_; }
  std::size_t size() const { return capture_.size(); }
  void clear() { capture_.clear(); }

  /// Start/stop recording (attached but paused sniffers drop frames).
  void set_recording(bool on) { recording_ = on; }
  bool recording() const { return recording_; }

  const util::DeviceClock& device_clock() const { return device_clock_; }

 private:
  util::DeviceClock device_clock_;
  std::vector<TimestampedFrame> capture_;
  bool recording_ = true;
};

}  // namespace dpr::can
