#include "can/trace.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace dpr::can {

void write_trace(std::ostream& out,
                 const std::vector<TimestampedFrame>& capture) {
  for (const auto& rec : capture) {
    out << rec.timestamp << ' ' << std::hex << std::uppercase
        << rec.frame.id().value << std::dec << ' '
        << static_cast<int>(rec.frame.dlc());
    for (std::uint8_t b : rec.frame.data()) {
      out << ' ' << std::hex << std::uppercase << std::setw(2)
          << std::setfill('0') << static_cast<int>(b) << std::dec
          << std::setfill(' ');
    }
    out << '\n';
  }
}

std::vector<TimestampedFrame> read_trace(std::istream& in) {
  std::vector<TimestampedFrame> capture;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    util::SimTime ts = 0;
    std::uint32_t id = 0;
    int dlc = 0;
    fields >> ts >> std::hex >> id >> std::dec >> dlc;
    if (!fields || dlc < 0 || dlc > 8) {
      throw std::runtime_error("malformed trace line: " + line);
    }
    util::Bytes data;
    for (int i = 0; i < dlc; ++i) {
      int byte = 0;
      fields >> std::hex >> byte >> std::dec;
      if (!fields) throw std::runtime_error("truncated trace line: " + line);
      data.push_back(static_cast<std::uint8_t>(byte));
    }
    capture.push_back(TimestampedFrame{
        ts, CanFrame(CanId{id, id > kMaxStandardId}, data)});
  }
  return capture;
}

std::string trace_to_string(const std::vector<TimestampedFrame>& capture) {
  std::ostringstream out;
  write_trace(out, capture);
  return out.str();
}

std::vector<TimestampedFrame> trace_from_string(const std::string& text) {
  std::istringstream in(text);
  return read_trace(in);
}

}  // namespace dpr::can
