#pragma once
// Text trace format for captured CAN traffic (candump-like):
//   <timestamp_us> <id_hex> <dlc> <byte0> <byte1> ...
// Used to persist captures for offline analysis and to feed the frames
// module with recorded sessions.

#include <iosfwd>
#include <string>
#include <vector>

#include "can/frame.hpp"

namespace dpr::can {

void write_trace(std::ostream& out,
                 const std::vector<TimestampedFrame>& capture);

std::vector<TimestampedFrame> read_trace(std::istream& in);

std::string trace_to_string(const std::vector<TimestampedFrame>& capture);

std::vector<TimestampedFrame> trace_from_string(const std::string& text);

}  // namespace dpr::can
