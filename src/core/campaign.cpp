#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "gp/batch.hpp"
#include "util/crash.hpp"
#include "kwp/formulas.hpp"
#include "screenshot/filter.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace dpr::core {

namespace {

/// Accumulates wall-clock seconds into a PhaseTimings field while alive.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    slot_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  std::chrono::steady_clock::time_point start_;
};

frames::TransportHint hint_for(vehicle::TransportKind kind) {
  switch (kind) {
    case vehicle::TransportKind::kIsoTp:
      return frames::TransportHint::kIsoTp;
    case vehicle::TransportKind::kVwTp20:
      return frames::TransportHint::kVwTp20;
    case vehicle::TransportKind::kBmwFraming:
      return frames::TransportHint::kBmwFraming;
  }
  return frames::TransportHint::kIsoTp;
}

std::string majority_vote(const std::vector<std::string>& names) {
  std::map<std::string, std::size_t> counts;
  for (const auto& name : names) ++counts[name];
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [name, count] : counts) {
    if (count > best_count) {
      best = name;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::size_t CampaignReport::formula_signals() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(),
                    [](const SignalFinding& s) { return !s.is_enum; }));
}

std::size_t CampaignReport::enum_signals() const {
  return signals.size() - formula_signals();
}

std::size_t CampaignReport::gp_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.gp_correct;
      }));
}

std::size_t CampaignReport::linear_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.linear_correct;
      }));
}

std::size_t CampaignReport::polynomial_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.polynomial_correct;
      }));
}

Campaign::Campaign(const vehicle::CarSpec& spec, CampaignOptions options)
    : options_(options) {
  bus_ = std::make_unique<can::CanBus>(clock_);
  if (options_.faults.rate > 0.0) {
    // Per-campaign injector stream, salted per car: each car's bus
    // replays its faults bit-identically at any fleet thread count.
    // Catalog cars salt by id exactly as before; generated cars fold in
    // their gen_seed. Gated on the *wire* rate — stateful-only configs
    // must not arm a zero-rate injector (its delivery tally would alter
    // the report signature).
    bus_->set_faults(
        options_.faults.bus_plan(),
        options_.faults.stream_for(vehicle::car_stream_salt(spec)));
  }
  vehicle_ = std::make_unique<vehicle::Vehicle>(spec, *bus_, clock_,
                                                options_.seed,
                                                options_.faults);
  if (options_.faults.nm) {
    // OSEK NM: arm the bus lifecycle and give every ECU a ring node. Node
    // addresses are 1-based ECU indices (address order = ring order); each
    // node's alive-stagger jitter draws from its own salted stream so the
    // ring forms identically at any fleet thread count.
    nm::NmConfig nm_cfg;
    nm_cfg.sleep_timeout = options_.faults.nm_sleep_timeout;
    // The ack→sleep countdown scales with the timeout (capped at the
    // protocol default) so aggressive timeouts produce an aggressive
    // sleeper: quiet for timeout+countdown ⇒ the bus actually powers down
    // inside real campaign idle gaps instead of always being rescued by
    // the next poll.
    nm_cfg.sleep_countdown =
        std::min(nm_cfg.sleep_countdown, nm_cfg.sleep_timeout / 2);
    nm_ = std::make_unique<nm::NmManager>(*bus_, nm_cfg);
    std::uint8_t address = 1;
    for (auto& ecu : vehicle_->ecus()) {
      vehicle::EcuSim* raw = ecu.get();
      // Veto holdout (ISSUE 9): the configured address joins the ring but
      // refuses every sleep agreement, pinning the whole bus awake — the
      // body-domain ECU that "needs" the bus pattern from OSEK NM.
      const bool allow_sleep = address != options_.faults.nm_veto_address;
      nm_->add_node(
          address, options_.faults.stream_for(nm::kNmStreamSalt + address),
          [raw](util::SimTime now) { return raw->offline(now); }, allow_sleep);
      ++address;
    }
  }
  tool_ = std::make_unique<diagtool::DiagnosticTool>(
      diagtool::profile_by_name(vehicle_->spec().tool), *vehicle_, *bus_,
      clock_,
      options_.faults.enabled() ? util::TransactPolicy::resilient()
                                : util::TransactPolicy{});
  if (options_.legacy_bus) {
    // Reference shim: the pre-overhaul delivery hot path end to end
    // (arbitration scan, full fan-out, scalar fault draws, per-step UI
    // rebuild). Bit-identical products; see CampaignOptions::legacy_bus.
    bus_->set_legacy_path(true);
    tool_->set_legacy_ui(true);
  }
  if (options_.faults.nm && !options_.nm_oblivious) {
    // The NM-aware tool: periodic wakeup frames bound every sleep window,
    // and transactions that still die against a sleeping bus re-wake it
    // and retry (SessionStats::{bus_sleeps, sleep_recoveries}).
    const diagtool::NmToolConfig tool_nm;
    tool_->enable_nm(nm_->config(), tool_nm,
                     options_.faults.stream_for(nm::kNmStreamSalt +
                                                tool_nm.address));
  }
  if (options_.faults.stateful()) {
    // Stateful failures (ECU reboots, S3 expiry) survive the client's
    // retry loop; only the session supervisor can ride them out.
    tool_->enable_supervision(diagtool::SupervisorConfig{
        /*enabled=*/true,
        /*keepalive_period_s=*/
        0.5 * static_cast<double>(options_.faults.s3_timeout) /
            static_cast<double>(util::kSecond),
        // 8 probes x boot/4 = two full boot windows of patience.
        /*boot_backoff_s=*/
        std::max(0.05,
                 0.25 * static_cast<double>(options_.faults.reset_boot_time) /
                     static_cast<double>(util::kSecond)),
        /*max_recovery_attempts=*/8});
  }
  sniffer_ = std::make_unique<can::Sniffer>(
      *bus_,
      util::DeviceClock(options_.sniffer_clock_offset, /*drift_ppm=*/0.0));

  util::Rng rng(options_.seed ^ 0xCB5);
  ocr_ = std::make_unique<cps::OcrEngine>(rng.fork(), options_.ocr_noise,
                                          options_.ocr_rate_scale);
  analyzer_ = std::make_unique<cps::UiAnalyzer>(*ocr_, rng.fork());
  clicker_ = std::make_unique<cps::RoboticClicker>(clock_);

  const util::DeviceClock camera_clock(options_.camera_clock_offset,
                                       options_.camera_clock_drift_ppm);
  camera_a_ = std::make_unique<cps::Camera>(*tool_, util::DeviceClock{},
                                            tool_->profile().value_font_px);
  camera_b_ = std::make_unique<cps::Camera>(*tool_, camera_clock,
                                            tool_->profile().value_font_px);

  report_.spec_digest = vehicle::spec_digest(vehicle_->spec());
  report_.car_label = vehicle_->spec().label;
}

Campaign::Campaign(vehicle::CarId car, CampaignOptions options)
    : Campaign(vehicle::car_spec(car), std::move(options)) {}

Campaign::~Campaign() = default;

const std::vector<can::TimestampedFrame>& Campaign::capture() const {
  return restored_capture_ ? *restored_capture_ : sniffer_->capture();
}

const char* Campaign::phase_name(std::size_t phase) {
  static constexpr const char* kNames[kNumPhases] = {
      "collect",   "assemble", "ocr_extract", "align",
      "associate", "infer",    "score"};
  return phase < kNumPhases ? kNames[phase] : "?";
}

bool Campaign::click_button(const std::string& keyword,
                            const std::vector<std::string>& exclude) {
  // Retry a few times: a fresh screenshot re-rolls the OCR noise.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const auto shot = camera_a_->capture(clock_.now());
    if (const auto point = analyzer_->find_button(shot, keyword, exclude)) {
      clicker_->move_and_click(point->x, point->y);
      tool_->click(point->x, point->y);
      return true;
    }
  }
  util::LogLine(util::LogLevel::kWarning, "campaign")
      << "button not found: " << keyword;
  return false;
}

bool Campaign::click_back() {
  const auto shot = camera_a_->capture(clock_.now());
  if (const auto point = analyzer_->find_icon(shot, "back_arrow")) {
    clicker_->move_and_click(point->x, point->y);
    tool_->click(point->x, point->y);
    return true;
  }
  return false;
}

void Campaign::record_live(util::SimTime duration) {
  const auto frame_period = static_cast<util::SimTime>(
      static_cast<double>(util::kSecond) / options_.video_fps);
  const util::SimTime deadline = clock_.now() + duration;
  const util::SimTime flip_at = clock_.now() + duration / 2;
  bool flipped = false;
  while (clock_.now() < deadline) {
    watchdog_.poll();
    tool_->run_for(frame_period);
    video_.frames.push_back(camera_b_->capture(clock_.now()));
    if (!flipped && clock_.now() >= flip_at) {
      // Visit the second page (a no-op on single-page streams).
      click_button("Next Page");
      flipped = true;
    }
  }
}

void Campaign::collect_obd_phase() {
  if (vehicle_->spec().transport != vehicle::TransportKind::kIsoTp) return;
  if (!click_button("OBD")) return;
  const auto frame_period = static_cast<util::SimTime>(
      static_cast<double>(util::kSecond) / options_.video_fps);
  const util::SimTime deadline = clock_.now() + 8 * util::kSecond;
  while (clock_.now() < deadline) {
    watchdog_.poll();
    tool_->run_for(frame_period);
    obd_video_.frames.push_back(camera_b_->capture(clock_.now()));
  }
  click_back();
  obd_phase_end_ = clock_.now();
}

void Campaign::collect_ecu(std::size_t index) {
  EcuSession session;
  session.ecu_index = index;

  // --- Read Data Stream ---------------------------------------------------
  if (!click_button("Data Stream", {"Trouble", "Clear"})) return;

  // Select every ESV row, page by page, clicking in nearest-neighbor
  // order (the §3.1 planner).
  for (int page = 0; page < 8; ++page) {
    const auto shot = camera_a_->capture(clock_.now());
    auto rows = analyzer_->find_selectable_rows(shot);
    // Keep only unselected rows (checkbox still empty).
    std::vector<cps::Point> targets;
    for (const auto& widget : analyzer_->recognize(shot)) {
      if (!widget.clickable) continue;
      if (widget.text.size() >= 3 && widget.text[0] == '[' &&
          widget.text[1] != 'x' &&
          widget.text.find(']') != std::string::npos) {
        targets.push_back(widget.center);
      }
    }
    if (targets.empty()) break;  // page exhausted (or last page repeated)
    const cps::Point start{clicker_->x(), clicker_->y()};
    const auto order = cps::plan_nearest_neighbor(start, targets);
    for (std::size_t i : order) {
      clicker_->move_and_click(targets[i].x, targets[i].y);
      tool_->click(targets[i].x, targets[i].y);
    }
    if (!click_button("Next Page")) break;
  }
  // Return to the first page before starting the live view.
  for (int page = 0; page < 8; ++page) {
    if (!click_button("Prev Page")) break;
  }

  if (!click_button("Start")) return;
  session.live_begin = clock_.now();
  record_live(options_.live_window);
  session.live_end = clock_.now();
  click_button("Stop");
  click_back();  // back to the ECU menu

  // --- Active Test ----------------------------------------------------------
  if (options_.run_active_tests &&
      !vehicle_->spec().ecus.at(index).actuators.empty()) {
    if (click_button("Active Test")) {
      session.active_begin = clock_.now();
      const auto shot = camera_a_->capture(clock_.now());
      // Every text button on the active-test screen is a component.
      for (const auto& widget : analyzer_->recognize(shot)) {
        if (!widget.clickable) continue;
        session.actuator_names.push_back(widget.text);
        clicker_->move_and_click(widget.center.x, widget.center.y);
        tool_->click(widget.center.x, widget.center.y);
        tool_->run_for(500 * util::kMillisecond);
      }
      session.active_end = clock_.now();
      click_back();
    }
  }
  click_back();  // back to the ECU list
  sessions_.push_back(std::move(session));
}

void Campaign::collect() { phase_collect(); }

void Campaign::phase_collect() {
  {
    PhaseTimer timer(report_.phases.collect_s);
    if (options_.obd_alignment) collect_obd_phase();

    if (click_button("Diagnos")) {
      const std::size_t n_ecus = vehicle_->spec().ecus.size();
      for (std::size_t i = 0; i < n_ecus; ++i) {
        watchdog_.poll();
        // The ECU list shows one button per control unit, top to bottom.
        const auto shot = camera_a_->capture(clock_.now());
        std::vector<cps::RecognizedWidget> buttons;
        for (const auto& widget : analyzer_->recognize(shot)) {
          if (widget.clickable) buttons.push_back(widget);
        }
        std::sort(buttons.begin(), buttons.end(),
                  [](const cps::RecognizedWidget& a,
                     const cps::RecognizedWidget& b) {
                    return a.center.y < b.center.y;
                  });
        if (i >= buttons.size()) break;
        clicker_->move_and_click(buttons[i].center.x, buttons[i].center.y);
        tool_->click(buttons[i].center.x, buttons[i].center.y);
        collect_ecu(i);
      }
      collected_ = true;
    }
  }
  finish_collect();

  // A reset storm — every session lost, none recovered — means the car is
  // effectively unreachable; fail the campaign instead of analyzing an
  // empty capture (FleetRunner degrades this to a failed per-car slot).
  const auto& ss = report_.session_stats;
  if (ss.sessions_lost >= 16 && ss.sessions_restored == 0) {
    throw std::runtime_error(
        "reset_storm: " + std::to_string(ss.sessions_lost) +
        " sessions lost, none recovered");
  }
}

void Campaign::finish_collect() {
  // Robustness bookkeeping: retry counters, exhausted identifiers, bus
  // injector tally, supervisor counters and the ECUs' own reset/S3
  // tallies. All transactions happen during collection, so snapshotting
  // here (instead of after analysis) reads the same final values.
  report_.transactions = tool_->transact_stats();
  report_.failed_transactions.clear();
  for (const auto& [key, count] : tool_->failed_reads()) {
    report_.failed_transactions.push_back(
        TransactionFailure{key.first, key.second, count});
  }
  if (const auto* fault_stats = bus_->fault_stats()) {
    report_.bus_faults = *fault_stats;
  }
  report_.session_stats = tool_->session_stats();
  if (nm_) {
    report_.nm_enabled = true;
    report_.nm = nm_->stats();
  }
  report_.ecu_resets = 0;
  report_.ecu_s3_expiries = 0;
  for (const auto& ecu : vehicle_->ecus()) {
    report_.ecu_resets += ecu->resets();
    report_.ecu_s3_expiries += ecu->s3_expiries();
  }
}

void Campaign::maybe_stall(const char* phase) const {
  if (options_.stall_phase != phase) return;
  // Simulated hang (CI watchdog smoke): spin until the armed deadline
  // fires. Never stalls without a deadline, so a stray option value can
  // not wedge a run.
  while (watchdog_.armed()) {
    watchdog_.poll();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

std::uint64_t Campaign::checkpoint_options_digest(bool legacy) const {
  return options_digest(legacy);
}

std::uint64_t Campaign::options_digest(bool legacy) const {
  using util::fnv1a64_f64;
  using util::fnv1a64_str;
  using util::fnv1a64_u64;
  // Digest of every option that shapes the campaign's *products*.
  // Execution-only knobs (thread counts, pools, checkpoint/watchdog
  // settings) are excluded on purpose: a checkpoint written at 8 threads
  // must resume a 1-thread run.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  h = fnv1a64_u64(options_.seed, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(options_.live_window), h);
  h = fnv1a64_f64(options_.video_fps, h);
  h = fnv1a64_u64(options_.ocr_noise ? 1 : 0, h);
  h = fnv1a64_f64(options_.ocr_rate_scale, h);
  h = fnv1a64_u64(options_.two_stage_filter ? 1 : 0, h);
  h = fnv1a64_u64(options_.run_baselines ? 1 : 0, h);
  h = fnv1a64_u64(options_.run_inference ? 1 : 0, h);
  h = fnv1a64_u64(options_.run_active_tests ? 1 : 0, h);
  h = fnv1a64_u64(options_.obd_alignment ? 1 : 0, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(options_.camera_clock_offset),
                  h);
  h = fnv1a64_f64(options_.camera_clock_drift_ppm, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(options_.sniffer_clock_offset),
                  h);
  h = fnv1a64_u64(options_.cache_analysis ? 1 : 0, h);
  const auto& gp = options_.gp;
  h = fnv1a64_u64(gp.population, h);
  h = fnv1a64_u64(gp.max_generations, h);
  h = fnv1a64_f64(gp.fitness_threshold, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(gp.init_depth_min), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(gp.init_depth_max), h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(gp.max_depth), h);
  h = fnv1a64_u64(gp.tournament, h);
  h = fnv1a64_f64(gp.crossover_rate, h);
  h = fnv1a64_f64(gp.subtree_mutation_rate, h);
  h = fnv1a64_f64(gp.point_mutation_rate, h);
  h = fnv1a64_f64(gp.parsimony, h);
  h = fnv1a64_f64(gp.trim_fraction, h);
  h = fnv1a64_u64(gp.seed_templates ? 1 : 0, h);
  h = fnv1a64_u64(gp.seed_least_squares ? 1 : 0, h);
  h = fnv1a64_u64(gp.constant_tuning ? 1 : 0, h);
  h = fnv1a64_u64(gp.use_scaling ? 1 : 0, h);
  h = fnv1a64_u64(gp.seed, h);
  const auto& faults = options_.faults;
  h = fnv1a64_f64(faults.rate, h);
  h = fnv1a64_u64(faults.fault_seed, h);
  h = fnv1a64_f64(faults.reset_rate, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(faults.reset_boot_time), h);
  h = fnv1a64_u64(faults.session_faults ? 1 : 0, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(faults.s3_timeout), h);
  if (legacy) return h;  // the v2/v3-era formula stopped here (pre-NM)
  h = fnv1a64_u64(faults.nm ? 1 : 0, h);
  h = fnv1a64_u64(static_cast<std::uint64_t>(faults.nm_sleep_timeout), h);
  h = fnv1a64_u64(options_.nm_oblivious ? 1 : 0, h);
  // Knobs added after the digest formula froze fold in only when armed:
  // default-config digests (and therefore checkpoint filenames) stay
  // bit-identical across builds, which is what keeps cross-build resume —
  // the whole point of the migration tier — reachable.
  if (faults.nm_veto_address != 0) {
    h = fnv1a64_u64(0x4E4D5645544FULL, h);  // "NMVETO" marker
    h = fnv1a64_u64(faults.nm_veto_address, h);
  }
  return h;
}

void Campaign::run() {
  using PhaseFn = void (Campaign::*)();
  static constexpr PhaseFn kPhaseFns[kNumPhases] = {
      &Campaign::phase_collect,     &Campaign::phase_assemble,
      &Campaign::phase_ocr_extract, &Campaign::phase_align,
      &Campaign::phase_associate,   &Campaign::phase_infer,
      &Campaign::phase_score};

  std::optional<CheckpointStore> store;
  const std::uint64_t digest = options_digest();
  const std::uint64_t car = report_.spec_digest;
  std::size_t first = 0;
  if (!options_.checkpoint_dir.empty()) {
    store.emplace(options_.checkpoint_dir);
    if (options_.resume) {
      // Old builds derived different keys: pre-NM digests (v3 era) and
      // u32 CarId keys (v2 era). Hand both to the store so their files
      // are found, validated and migrated to v5 under the current key.
      CheckpointStore::LegacyKey legacy;
      legacy.options_digest = options_digest(/*legacy=*/true);
      if (vehicle_->spec().gen_seed == 0) {
        legacy.catalog_car =
            static_cast<std::uint32_t>(vehicle_->spec().id);
      }
      auto loaded = store->load(car, options_.seed, digest, &legacy);
      if (loaded) {
        if (restore_state(loaded->payload, loaded->payload_schema)) {
          first = loaded->phase + 1;
          if (loaded->migrated) ++report_.ckpt_salvaged;
        } else {
          // Structurally valid container, unrestorable payload: move the
          // file out of the way and re-run from scratch — the phases it
          // covered simply run again; the car is never failed over it.
          store->quarantine_key(car, options_.seed, digest,
                                "payload failed to restore");
          ++report_.ckpt_quarantined;
          util::LogLine(util::LogLevel::kWarning, "ckpt")
              << report_.car_label
              << ": resume fell back to fresh (payload failed to restore, "
                 "file quarantined)";
        }
      } else if (loaded.error != CheckpointStore::LoadError::kMissing) {
        if (loaded.quarantined) ++report_.ckpt_quarantined;
        util::LogLine(util::LogLevel::kWarning, "ckpt")
            << report_.car_label << ": resume fell back to fresh ("
            << CheckpointStore::load_error_name(loaded.error) << ": "
            << loaded.detail
            << (loaded.quarantined ? "; file quarantined)" : ")");
      }
    }
  }

  for (std::size_t p = first; p < kNumPhases; ++p) {
    watchdog_.arm(phase_name(p), options_.phase_deadline_s,
                  options_.phase_sim_budget_s, &clock_);
    maybe_stall(phase_name(p));
    (this->*kPhaseFns[p])();
    watchdog_.poll();  // a phase that returned past its budget still fails
    watchdog_.disarm();
    DPR_CRASH_POINT("campaign.phase_done");
    if (store) {
      const auto saved =
          store->save(car, options_.seed, digest,
                      static_cast<std::uint32_t>(p), serialize_state());
      if (!saved) {
        // Fail soft: the run continues uncheckpointed, but the log says
        // exactly which syscall refused and why.
        util::LogLine(util::LogLevel::kWarning, "ckpt")
            << report_.car_label << ": checkpoint save failed after "
            << phase_name(p) << " (" << saved.message() << ")";
      }
      DPR_CRASH_POINT("campaign.post_checkpoint");
    }
    if (options_.stop_after_phase >= 0 &&
        p >= static_cast<std::size_t>(options_.stop_after_phase)) {
      return;
    }
  }
  // Completed end to end: the checkpoint has served its purpose.
  if (store) store->remove(car, options_.seed, digest);
}

void Campaign::analyze() {
  phase_assemble();
  phase_ocr_extract();
  phase_align();
  phase_associate();
  phase_infer();
  phase_score();
}

void Campaign::phase_assemble() {
  PhaseTimer timer(report_.phases.assemble_s);
  const auto hint = hint_for(vehicle_->spec().transport);
  report_.census = frames::census(capture(), hint);
  mid_.messages = frames::assemble(capture(), hint);
  report_.messages_assembled = mid_.messages.size();
}

void Campaign::phase_ocr_extract() {
  // --- Screenshot analysis + field extraction -----------------------------
  // Both the alignment fallback and the signal/ECR analyses consume the
  // extracted fields and the traffic<->UI associations; compute each once
  // (unless the legacy recompute path is requested for ablation).
  PhaseTimer timer(report_.phases.ocr_extract_s);
  if (options_.obd_alignment && obd_phase_end_ > 0) {
    mid_.obd_samples = screenshot::extract_samples(obd_video_, *ocr_);
  }
  mid_.samples = screenshot::extract_samples(video_, *ocr_);
  if (options_.two_stage_filter) {
    mid_.samples = screenshot::filter_samples(std::move(mid_.samples));
  }
  mid_.extraction = frames::extract_fields(mid_.messages);
  // OCR is finished for good after this phase (collection reads buttons,
  // this phase reads the videos); snapshot the final stats here.
  report_.ocr_stats = ocr_->stats();
}

void Campaign::phase_align() {
  {
    PhaseTimer timer(report_.phases.associate_s);
    mid_.associations = build_associations(mid_.extraction, mid_.samples);
  }

  // --- Clock alignment (§9.4) ---------------------------------------------
  PhaseTimer timer(report_.phases.align_s);
  util::SimTime offset = 0;
  bool aligned = false;
  if (options_.obd_alignment && obd_phase_end_ > 0) {
    const util::SimTime obd_cutoff =
        obd_phase_end_ + 100 * util::kMillisecond;
    std::vector<frames::DiagMessage> obd_messages;
    for (const auto& msg : mid_.messages) {
      if (msg.timestamp <= obd_cutoff) obd_messages.push_back(msg);
    }
    if (const auto alignment =
            correlate::align_with_obd(obd_messages, mid_.obd_samples)) {
      offset = alignment->offset;
      report_.alignment_anchors = alignment->matched;
      aligned = alignment->matched >= 8;
    }
  }
  report_.alignment_offset = offset;

  if (!aligned) {
    // NTP-only vehicles (§9.4 method 1): estimate the end-to-end
    // request->display latency from value changes in the diagnostic
    // traffic itself, then treat it as the pairing offset.
    const auto series =
        options_.cache_analysis
            ? build_alignment_series(mid_.associations)
            : build_alignment_series(build_associations(
                  frames::extract_fields(mid_.messages), mid_.samples));
    if (const auto estimate =
            correlate::estimate_offset_by_changes(series)) {
      report_.alignment_offset = estimate->offset;
      report_.alignment_anchors = estimate->matched;
    }
  }
}

void Campaign::phase_associate() {
  PhaseTimer timer(report_.phases.associate_s);
  if (options_.cache_analysis) {
    analyze_signals(std::move(mid_.associations));
    mid_.associations.clear();
    analyze_ecrs(mid_.extraction);
  } else {
    analyze_signals(
        build_associations(frames::extract_fields(mid_.messages),
                           mid_.samples));
    analyze_ecrs(frames::extract_fields(mid_.messages));
  }
}

void Campaign::phase_infer() {
  PhaseTimer timer(report_.phases.infer_s);
  infer_signals();
}

void Campaign::phase_score() {
  PhaseTimer timer(report_.phases.score_s);
  score_findings();
}

std::vector<Campaign::Association> Campaign::build_associations(
    const frames::ExtractionResult& extraction,
    const std::vector<screenshot::UiSample>& samples) const {
  std::vector<Association> associations;
  const util::SimTime margin = 1 * util::kSecond;

  for (const auto& session : sessions_) {
    const util::SimTime begin = session.live_begin - margin;
    const util::SimTime end = session.live_end + margin;

    // X observations of this session, keyed per signal in first-seen
    // (i.e. poll/row) order.
    struct Key {
      bool is_kwp;
      std::uint16_t did;
      std::uint8_t local_id;
      std::size_t esv_index;
      bool operator<(const Key& o) const {
        return std::tie(is_kwp, did, local_id, esv_index) <
               std::tie(o.is_kwp, o.did, o.local_id, o.esv_index);
      }
    };
    std::vector<Key> key_order;
    std::map<Key, std::vector<correlate::XSample>> xs_by_key;
    for (const auto& esv : extraction.esvs) {
      if (esv.timestamp < begin || esv.timestamp > end) continue;
      Key key{esv.is_kwp, esv.did, esv.local_id, esv.esv_index};
      auto it = xs_by_key.find(key);
      if (it == xs_by_key.end()) {
        key_order.push_back(key);
        it = xs_by_key.emplace(key, std::vector<correlate::XSample>{}).first;
      }
      correlate::XSample x;
      x.timestamp = esv.timestamp;
      if (esv.is_kwp) {
        x.xs = {static_cast<double>(esv.x0), static_cast<double>(esv.x1)};
      } else {
        for (std::size_t i = 0; i < esv.data.size() && i < 2; ++i) {
          x.xs.push_back(static_cast<double>(esv.data[i]));
        }
      }
      it->second.push_back(std::move(x));
    }

    // Y observations, grouped by layout row.
    std::map<int, std::vector<const screenshot::UiSample*>> by_row;
    for (const auto& sample : samples) {
      if (sample.timestamp < begin || sample.timestamp > end) continue;
      by_row[sample.row].push_back(&sample);
    }

    // The r-th populated row corresponds to the r-th signal key in the
    // session's traffic order (§3.4 association via the UI layout).
    std::size_t key_index = 0;
    associations.reserve(associations.size() +
                         std::min(by_row.size(), key_order.size()));
    for (const auto& [row, row_samples] : by_row) {
      if (key_index >= key_order.size()) break;
      const Key& key = key_order[key_index++];

      Association assoc;
      assoc.is_kwp = key.is_kwp;
      assoc.did = key.did;
      assoc.local_id = key.local_id;
      assoc.esv_index = key.esv_index;
      // Each key is consumed by exactly one association: steal the series.
      assoc.xs = std::move(xs_by_key[key]);
      assoc.names.reserve(row_samples.size());
      assoc.ys.reserve(row_samples.size());
      for (const auto* sample : row_samples) {
        assoc.names.push_back(sample->name);
        if (sample->value) {
          assoc.ys.push_back(
              correlate::YSample{sample->timestamp, *sample->value});
        } else {
          ++assoc.non_numeric;
        }
      }
      associations.push_back(std::move(assoc));
    }
  }
  return associations;
}

std::vector<std::pair<std::vector<correlate::XSample>,
                      std::vector<correlate::YSample>>>
Campaign::build_alignment_series(
    const std::vector<Association>& associations) {
  std::vector<std::pair<std::vector<correlate::XSample>,
                        std::vector<correlate::YSample>>>
      series;
  // Copies (rather than moves) so the cached associations stay intact for
  // the signal analysis that follows.
  for (const auto& assoc : associations) {
    if (assoc.ys.size() >= 6) {
      series.emplace_back(assoc.xs, assoc.ys);
    }
  }
  return series;
}

void Campaign::analyze_signals(std::vector<Association> associations) {
  report_.signals.reserve(report_.signals.size() + associations.size());
  for (auto& assoc : associations) {
    SignalFinding finding;
    finding.is_kwp = assoc.is_kwp;
    finding.did = assoc.did;
    finding.local_id = assoc.local_id;
    finding.esv_index = assoc.esv_index;
    finding.semantic_name = majority_vote(assoc.names);
    {
      char request[16];
      if (assoc.is_kwp) {
        std::snprintf(request, sizeof request, "21 %02X", assoc.local_id);
      } else {
        std::snprintf(request, sizeof request, "22 %02X %02X",
                      assoc.did >> 8, assoc.did & 0xFF);
      }
      finding.request_message = request;
    }

    const std::size_t total_samples = assoc.ys.size() + assoc.non_numeric;
    if (assoc.ys.size() < 6 || assoc.non_numeric > total_samples / 2) {
      // Mostly non-numeric: a status/enum signal, no formula (§4.3
      // "#ESV (Enum)").
      finding.is_enum = true;
      report_.signals.push_back(std::move(finding));
      continue;
    }

    finding.dataset = correlate::build_dataset(assoc.xs, assoc.ys,
                                               report_.alignment_offset);
    report_.signals.push_back(std::move(finding));
  }
}

void Campaign::infer_signals() {
  if (!options_.run_inference) return;

  // Each non-enum signal is an independent (vehicle, DID) inference
  // problem: fan them out over the BatchRunner pool. Seeds are derived
  // per signal exactly as the serial loop did, so the batch results are
  // identical regardless of thread count.
  std::vector<gp::BatchJob> jobs;
  std::vector<SignalFinding*> targets;
  for (auto& finding : report_.signals) {
    if (finding.is_enum) continue;
    gp::BatchJob job;
    job.dataset = &finding.dataset;
    job.config = options_.gp;
    // The phase watchdog's token lets a deadline wind the GP loops down
    // promptly; an unarmed token never expires, so plain runs are
    // unaffected.
    job.config.cancel = &watchdog_.token();
    job.config.seed ^= (static_cast<std::uint64_t>(finding.did) << 16) ^
                       finding.local_id ^ (finding.esv_index << 8);
    jobs.push_back(job);
    targets.push_back(&finding);
  }
  // A fleet-injected pool wins over the local thread knob: the whole
  // machine then runs on one shared budget, with this batch's jobs
  // interleaved among the other campaigns' work.
  auto results = options_.infer_pool
                     ? gp::BatchRunner(*options_.infer_pool).run(jobs)
                     : gp::BatchRunner(options_.infer_threads).run(jobs);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i]->gp = std::move(results[i]);
    if (options_.run_baselines) {
      targets[i]->linear = regress::fit_linear(targets[i]->dataset);
      targets[i]->polynomial = regress::fit_polynomial(targets[i]->dataset);
    }
  }
}

void Campaign::analyze_ecrs(const frames::ExtractionResult& extraction) {
  const util::SimTime margin = 1 * util::kSecond;

  for (const auto& session : sessions_) {
    if (session.actuator_names.empty()) continue;
    std::vector<frames::EcrObservation> window;
    for (const auto& ecr : extraction.ecrs) {
      if (ecr.timestamp >= session.active_begin - margin &&
          ecr.timestamp <= session.active_end + margin) {
        window.push_back(ecr);
      }
    }
    const auto procedures = frames::extract_procedures(window);
    for (std::size_t i = 0; i < procedures.size(); ++i) {
      EcrFinding finding;
      finding.is_uds = procedures[i].is_uds;
      finding.id = procedures[i].id;
      finding.param_sequence = procedures[i].param_sequence;
      finding.adjustment_state = procedures[i].adjustment_state;
      finding.three_message_pattern =
          procedures[i].matches_three_message_pattern();
      if (i < session.actuator_names.size()) {
        finding.semantic_name = session.actuator_names[i];
      }
      report_.ecrs.push_back(std::move(finding));
    }
  }
}

void Campaign::score_findings() {
  const auto& spec = vehicle_->spec();

  // Ground-truth lookup tables, built once per campaign instead of
  // rescanning every ECU's signal inventory for every finding
  // (O(findings + ecus*signals) instead of O(findings * ecus * signals)).
  // The legacy scan kept the *last* catalog match, so later entries
  // overwrite earlier ones here too.
  std::map<std::uint16_t, const vehicle::UdsSignalSpec*> uds_truth;
  std::map<std::uint8_t, std::vector<const vehicle::KwpLocalIdSpec*>>
      kwp_blocks;
  std::set<std::uint16_t> actuator_ids;
  for (const auto& ecu : spec.ecus) {
    for (const auto& sig : ecu.uds_signals) uds_truth[sig.did] = &sig;
    for (const auto& block : ecu.kwp_local_ids) {
      kwp_blocks[block.local_id].push_back(&block);
    }
    for (const auto& act : ecu.actuators) actuator_ids.insert(act.id);
  }

  for (auto& finding : report_.signals) {
    // Locate the ground truth in the catalog.
    std::function<double(std::span<const double>)> truth;
    if (!finding.is_kwp) {
      if (const auto it = uds_truth.find(finding.did);
          it != uds_truth.end()) {
        const auto& sig = *it->second;
        finding.truth_is_enum = sig.formula.is_enum();
        finding.truth_formula = sig.formula.repr();
        const vehicle::PropFormula formula = sig.formula;
        truth = [formula](std::span<const double> xs) {
          std::vector<std::uint8_t> bytes;
          bytes.reserve(xs.size());
          for (double x : xs) bytes.push_back(static_cast<std::uint8_t>(x));
          return formula.eval(bytes);
        };
      }
    } else {
      const auto it = kwp_blocks.find(finding.local_id);
      if (it != kwp_blocks.end()) {
        // The esv_index range check depends on the finding, so walk this
        // local id's (few) blocks in catalog order, last match winning —
        // exactly the legacy scan's behavior.
        for (const auto* block : it->second) {
          if (finding.esv_index >= block->esvs.size()) continue;
          const auto& esv = block->esvs[finding.esv_index];
          finding.truth_is_enum = esv.is_enum;
          const auto kwp_spec = kwp::find_formula(esv.formula_type);
          finding.truth_formula = kwp_spec ? kwp_spec->expression : "?";
          const std::uint8_t type = esv.formula_type;
          truth = [type](std::span<const double> xs) {
            if (xs.size() < 2) return 0.0;
            const auto value = kwp::decode_esv(
                type, static_cast<std::uint8_t>(xs[0]),
                static_cast<std::uint8_t>(xs[1]));
            return value.value_or(0.0);
          };
        }
      }
    }

    if (finding.is_enum || !truth) continue;
    // A formula counts as recovered when its outputs match the ground
    // truth uniformly over the observed operand domain: close in the
    // mean AND with no gross pointwise deviation (a wrong structure
    // fitted locally fails the latter).
    if (finding.gp) {
      finding.gp_correct =
          gp::mean_relative_error(*finding.gp, finding.dataset, truth) <
              kEquivalenceTolerance &&
          gp::max_relative_error(*finding.gp, finding.dataset, truth) <
              kMaxPointTolerance;
    }
    if (finding.linear) {
      finding.linear_correct =
          regress::mean_relative_error(*finding.linear, finding.dataset,
                                       truth) < kEquivalenceTolerance &&
          regress::max_relative_error(*finding.linear, finding.dataset,
                                      truth) < kMaxPointTolerance;
    }
    if (finding.polynomial) {
      finding.polynomial_correct =
          regress::mean_relative_error(*finding.polynomial, finding.dataset,
                                       truth) < kEquivalenceTolerance &&
          regress::max_relative_error(*finding.polynomial, finding.dataset,
                                      truth) < kMaxPointTolerance;
    }
  }

  for (auto& finding : report_.ecrs) {
    finding.matches_truth = actuator_ids.count(finding.id) > 0;
  }
}

// --- Checkpoint serialization ----------------------------------------------
// The payload is the full union of everything a later phase could need:
// the raw capture, both videos, the session windows, the OCR engine's RNG
// position, the intermediate phase products and the report so far. Doubles
// travel as raw bit patterns, so a resumed run is bit-identical to an
// uninterrupted one (the resilience tests compare report signatures).

namespace {

void write_rect(util::BinaryWriter& w, const diagtool::Rect& rect) {
  w.i64(rect.x);
  w.i64(rect.y);
  w.i64(rect.w);
  w.i64(rect.h);
}

diagtool::Rect read_rect(util::BinaryReader& r) {
  diagtool::Rect rect;
  rect.x = static_cast<int>(r.i64());
  rect.y = static_cast<int>(r.i64());
  rect.w = static_cast<int>(r.i64());
  rect.h = static_cast<int>(r.i64());
  return rect;
}

void write_video(util::BinaryWriter& w, const cps::VideoRecording& video) {
  w.u64(video.frames.size());
  for (const auto& frame : video.frames) {
    w.i64(frame.timestamp);
    w.i64(frame.width);
    w.i64(frame.height);
    w.u64(frame.text_regions.size());
    for (const auto& region : frame.text_regions) {
      w.str(region.truth);
      write_rect(w, region.bounds);
      w.i64(region.font_px);
      w.i64(region.row);
      w.b(region.clickable);
    }
    w.u64(frame.icon_regions.size());
    for (const auto& region : frame.icon_regions) {
      write_rect(w, region.bounds);
      w.str(region.icon_identity);
    }
  }
}

cps::VideoRecording read_video(util::BinaryReader& r) {
  cps::VideoRecording video;
  const std::uint64_t n_frames = r.u64();
  for (std::uint64_t i = 0; i < n_frames; ++i) {
    cps::Screenshot frame;
    frame.timestamp = r.i64();
    frame.width = static_cast<int>(r.i64());
    frame.height = static_cast<int>(r.i64());
    const std::uint64_t n_text = r.u64();
    for (std::uint64_t j = 0; j < n_text; ++j) {
      cps::TextRegion region;
      region.truth = r.str();
      region.bounds = read_rect(r);
      region.font_px = static_cast<int>(r.i64());
      region.row = static_cast<int>(r.i64());
      region.clickable = r.b();
      frame.text_regions.push_back(std::move(region));
    }
    const std::uint64_t n_icons = r.u64();
    for (std::uint64_t j = 0; j < n_icons; ++j) {
      cps::IconRegion region;
      region.bounds = read_rect(r);
      region.icon_identity = r.str();
      frame.icon_regions.push_back(std::move(region));
    }
    video.frames.push_back(std::move(frame));
  }
  return video;
}

void write_samples(util::BinaryWriter& w,
                   const std::vector<screenshot::UiSample>& samples) {
  w.u64(samples.size());
  for (const auto& sample : samples) {
    w.i64(sample.timestamp);
    w.i64(sample.row);
    w.str(sample.name);
    w.str(sample.value_text);
    w.b(sample.value.has_value());
    if (sample.value) w.f64(*sample.value);
  }
}

std::vector<screenshot::UiSample> read_samples(util::BinaryReader& r) {
  std::vector<screenshot::UiSample> samples;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    screenshot::UiSample sample;
    sample.timestamp = r.i64();
    sample.row = static_cast<int>(r.i64());
    sample.name = r.str();
    sample.value_text = r.str();
    if (r.b()) sample.value = r.f64();
    samples.push_back(std::move(sample));
  }
  return samples;
}

void write_extraction(util::BinaryWriter& w,
                      const frames::ExtractionResult& extraction) {
  w.u64(extraction.esvs.size());
  for (const auto& esv : extraction.esvs) {
    w.i64(esv.timestamp);
    w.b(esv.is_kwp);
    w.u16(esv.did);
    w.bytes(esv.data);
    w.u8(esv.local_id);
    w.u64(esv.esv_index);
    w.u8(esv.formula_type);
    w.u8(esv.x0);
    w.u8(esv.x1);
  }
  w.u64(extraction.ecrs.size());
  for (const auto& ecr : extraction.ecrs) {
    w.i64(ecr.timestamp);
    w.b(ecr.is_uds);
    w.u16(ecr.id);
    w.u8(ecr.io_param);
    w.bytes(ecr.control_state);
  }
  w.u64(extraction.unmatched_responses);
}

frames::ExtractionResult read_extraction(util::BinaryReader& r) {
  frames::ExtractionResult extraction;
  const std::uint64_t n_esvs = r.u64();
  for (std::uint64_t i = 0; i < n_esvs; ++i) {
    frames::EsvObservation esv;
    esv.timestamp = r.i64();
    esv.is_kwp = r.b();
    esv.did = r.u16();
    esv.data = r.bytes();
    esv.local_id = r.u8();
    esv.esv_index = r.u64();
    esv.formula_type = r.u8();
    esv.x0 = r.u8();
    esv.x1 = r.u8();
    extraction.esvs.push_back(std::move(esv));
  }
  const std::uint64_t n_ecrs = r.u64();
  for (std::uint64_t i = 0; i < n_ecrs; ++i) {
    frames::EcrObservation ecr;
    ecr.timestamp = r.i64();
    ecr.is_uds = r.b();
    ecr.id = r.u16();
    ecr.io_param = r.u8();
    ecr.control_state = r.bytes();
    extraction.ecrs.push_back(std::move(ecr));
  }
  extraction.unmatched_responses = r.u64();
  return extraction;
}

void write_dataset(util::BinaryWriter& w, const correlate::Dataset& dataset) {
  w.u64(dataset.n_vars);
  w.u64(dataset.points.size());
  for (const auto& point : dataset.points) {
    w.u64(point.xs.size());
    for (const double x : point.xs) w.f64(x);
    w.f64(point.y);
    w.i64(point.x_time);
    w.i64(point.y_time);
  }
}

correlate::Dataset read_dataset(util::BinaryReader& r) {
  correlate::Dataset dataset;
  dataset.n_vars = r.u64();
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) {
    correlate::DataPoint point;
    const std::uint64_t n_xs = r.u64();
    for (std::uint64_t j = 0; j < n_xs; ++j) point.xs.push_back(r.f64());
    point.y = r.f64();
    point.x_time = r.i64();
    point.y_time = r.i64();
    dataset.points.push_back(std::move(point));
  }
  return dataset;
}

void write_expr_node(util::BinaryWriter& w, const gp::Node* node) {
  w.u8(static_cast<std::uint8_t>(node->op));
  w.f64(node->value);
  w.i64(node->var);
  const int n_children = gp::arity(node->op);
  if (n_children >= 1) write_expr_node(w, node->lhs.get());
  if (n_children >= 2) write_expr_node(w, node->rhs.get());
}

std::unique_ptr<gp::Node> read_expr_node(util::BinaryReader& r, int depth) {
  if (depth > 64) throw std::runtime_error("checkpoint: expression too deep");
  auto node = std::make_unique<gp::Node>();
  const std::uint8_t op = r.u8();
  if (op > static_cast<std::uint8_t>(gp::Op::kInv)) {
    throw std::runtime_error("checkpoint: bad expression opcode");
  }
  node->op = static_cast<gp::Op>(op);
  node->value = r.f64();
  node->var = static_cast<int>(r.i64());
  const int n_children = gp::arity(node->op);
  if (n_children >= 1) node->lhs = read_expr_node(r, depth + 1);
  if (n_children >= 2) node->rhs = read_expr_node(r, depth + 1);
  return node;
}

void write_gp_result(util::BinaryWriter& w, const gp::GpResult& result) {
  write_expr_node(w, result.best.root());
  w.u64(result.n_vars);
  w.f64(result.fitness);
  w.u64(result.generations_run);
  w.b(result.converged);
  w.u64(result.x_scales.size());
  for (const auto& scale : result.x_scales) w.f64(scale.factor);
  w.f64(result.y_scale.factor);
  w.str(result.formula);
  w.f64(result.timings.scoring_s);
  w.f64(result.timings.tuning_s);
  w.f64(result.timings.breeding_s);
  w.f64(result.timings.total_s);
  w.u64(result.timings.evaluations);
  w.u64(result.timings.cache_hits);
  w.u64(result.timings.cache_misses);
}

gp::GpResult read_gp_result(util::BinaryReader& r) {
  gp::GpResult result;
  result.best = gp::Expr(read_expr_node(r, 0));
  result.n_vars = r.u64();
  result.fitness = r.f64();
  result.generations_run = r.u64();
  result.converged = r.b();
  const std::uint64_t n_scales = r.u64();
  for (std::uint64_t i = 0; i < n_scales; ++i) {
    result.x_scales.push_back(gp::SeriesScale{r.f64()});
  }
  result.y_scale.factor = r.f64();
  result.formula = r.str();
  result.timings.scoring_s = r.f64();
  result.timings.tuning_s = r.f64();
  result.timings.breeding_s = r.f64();
  result.timings.total_s = r.f64();
  result.timings.evaluations = r.u64();
  result.timings.cache_hits = r.u64();
  result.timings.cache_misses = r.u64();

  // A restored expression will be evaluated against n_vars operands;
  // reject stray variable references here (hard error) instead of letting
  // a bad tree surface later as an evaluation throw.
  std::vector<const gp::Node*> stack{result.best.root()};
  while (!stack.empty()) {
    const gp::Node* node = stack.back();
    stack.pop_back();
    if (node->op == gp::Op::kVar &&
        (node->var < 0 ||
         static_cast<std::uint64_t>(node->var) >= result.n_vars)) {
      throw std::runtime_error("checkpoint: variable index out of range");
    }
    if (node->lhs) stack.push_back(node->lhs.get());
    if (node->rhs) stack.push_back(node->rhs.get());
  }
  return result;
}

void write_fit(util::BinaryWriter& w, const regress::FitResult& fit) {
  w.u64(fit.coefficients.size());
  for (const double c : fit.coefficients) w.f64(c);
  w.u64(fit.n_vars);
  w.b(fit.polynomial);
  w.f64(fit.mae);
  w.str(fit.formula);
}

regress::FitResult read_fit(util::BinaryReader& r) {
  regress::FitResult fit;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n; ++i) fit.coefficients.push_back(r.f64());
  fit.n_vars = r.u64();
  fit.polynomial = r.b();
  fit.mae = r.f64();
  fit.formula = r.str();
  return fit;
}

}  // namespace

util::Bytes Campaign::serialize_state() const {
  return serialize_state_versioned(kCheckpointPayloadSchema);
}

util::Bytes Campaign::serialize_state_versioned(std::uint32_t schema) const {
  util::BinaryWriter w;

  // Collection products: raw capture, videos, per-ECU session windows.
  const auto& cap = capture();
  w.u64(cap.size());
  for (const auto& tf : cap) {
    w.i64(tf.timestamp);
    w.u32(tf.frame.id().value);
    w.b(tf.frame.id().extended);
    const auto data = tf.frame.data();
    w.u8(static_cast<std::uint8_t>(data.size()));
    for (const std::uint8_t byte : data) w.u8(byte);
  }
  write_video(w, video_);
  write_video(w, obd_video_);
  w.i64(obd_phase_end_);
  w.u64(sessions_.size());
  for (const auto& session : sessions_) {
    w.u64(session.ecu_index);
    w.i64(session.live_begin);
    w.i64(session.live_end);
    w.u64(session.actuator_names.size());
    for (const auto& name : session.actuator_names) w.str(name);
    w.i64(session.active_begin);
    w.i64(session.active_end);
  }
  w.b(collected_);

  // OCR engine replay state (the ocr_extract phase continues this stream).
  const auto rng_state = ocr_->rng_state();
  for (int i = 0; i < 4; ++i) w.u64(rng_state.s[i]);
  w.f64(rng_state.cached_normal);
  w.b(rng_state.has_cached_normal);
  const auto& engine_stats = ocr_->stats();
  w.u64(engine_stats.strings_read);
  w.u64(engine_stats.strings_correct);
  w.u64(engine_stats.char_errors);
  w.u64(engine_stats.decimal_drops);

  // Intermediate phase products.
  w.u64(mid_.messages.size());
  for (const auto& msg : mid_.messages) {
    w.i64(msg.timestamp);
    w.u32(msg.can_id);
    w.bytes(msg.payload);
  }
  write_samples(w, mid_.samples);
  write_samples(w, mid_.obd_samples);
  write_extraction(w, mid_.extraction);
  w.u64(mid_.associations.size());
  for (const auto& assoc : mid_.associations) {
    w.b(assoc.is_kwp);
    w.u16(assoc.did);
    w.u8(assoc.local_id);
    w.u64(assoc.esv_index);
    w.u64(assoc.xs.size());
    for (const auto& x : assoc.xs) {
      w.i64(x.timestamp);
      w.u64(x.xs.size());
      for (const double v : x.xs) w.f64(v);
    }
    w.u64(assoc.ys.size());
    for (const auto& y : assoc.ys) {
      w.i64(y.timestamp);
      w.f64(y.y);
    }
    w.u64(assoc.names.size());
    for (const auto& name : assoc.names) w.str(name);
    w.u64(assoc.non_numeric);
  }

  // The report as filled in so far. Schema 2 (pre-spec-digest builds)
  // keyed the report on the u32 catalog CarId.
  if (schema == 2) {
    w.u32(static_cast<std::uint32_t>(vehicle_->spec().id));
  } else {
    w.u64(report_.spec_digest);
  }
  w.str(report_.car_label);
  w.u64(report_.census.single_frames);
  w.u64(report_.census.first_frames);
  w.u64(report_.census.consecutive_frames);
  w.u64(report_.census.flow_control_frames);
  w.u64(report_.census.vwtp_data_last);
  w.u64(report_.census.vwtp_data_more);
  w.u64(report_.census.vwtp_control);
  w.u64(report_.census.other);
  w.u64(report_.messages_assembled);
  w.i64(report_.alignment_offset);
  w.u64(report_.alignment_anchors);
  w.u64(report_.signals.size());
  for (const auto& s : report_.signals) {
    w.b(s.is_kwp);
    w.u16(s.did);
    w.u8(s.local_id);
    w.u64(s.esv_index);
    w.str(s.semantic_name);
    w.str(s.request_message);
    w.b(s.is_enum);
    write_dataset(w, s.dataset);
    w.b(s.gp.has_value());
    if (s.gp) write_gp_result(w, *s.gp);
    w.b(s.linear.has_value());
    if (s.linear) write_fit(w, *s.linear);
    w.b(s.polynomial.has_value());
    if (s.polynomial) write_fit(w, *s.polynomial);
    w.str(s.truth_formula);
    w.b(s.truth_is_enum);
    w.b(s.gp_correct);
    w.b(s.linear_correct);
    w.b(s.polynomial_correct);
  }
  w.u64(report_.ecrs.size());
  for (const auto& e : report_.ecrs) {
    w.b(e.is_uds);
    w.u16(e.id);
    w.str(e.semantic_name);
    w.u64(e.param_sequence.size());
    for (const std::uint8_t p : e.param_sequence) w.u8(p);
    w.bytes(e.adjustment_state);
    w.b(e.three_message_pattern);
    w.b(e.matches_truth);
  }
  w.u64(report_.ocr_stats.strings_read);
  w.u64(report_.ocr_stats.strings_correct);
  w.u64(report_.ocr_stats.char_errors);
  w.u64(report_.ocr_stats.decimal_drops);
  w.f64(report_.phases.collect_s);
  w.f64(report_.phases.assemble_s);
  w.f64(report_.phases.ocr_extract_s);
  w.f64(report_.phases.align_s);
  w.f64(report_.phases.associate_s);
  w.f64(report_.phases.infer_s);
  w.f64(report_.phases.score_s);
  w.u64(report_.transactions.transactions);
  w.u64(report_.transactions.retries);
  w.u64(report_.transactions.busy_retries);
  w.u64(report_.transactions.pending_waits);
  w.u64(report_.transactions.failures);
  w.u64(report_.failed_transactions.size());
  for (const auto& f : report_.failed_transactions) {
    w.b(f.is_kwp);
    w.u16(f.id);
    w.u64(f.failures);
  }
  w.u64(report_.bus_faults.delivered);
  w.u64(report_.bus_faults.dropped);
  w.u64(report_.bus_faults.corrupted);
  w.u64(report_.bus_faults.duplicated);
  w.u64(report_.bus_faults.jittered);
  w.u64(report_.bus_faults.bursts);
  w.u64(report_.session_stats.keepalives);
  w.u64(report_.session_stats.sessions_lost);
  w.u64(report_.session_stats.sessions_restored);
  w.u64(report_.session_stats.reissued_requests);
  w.u64(report_.session_stats.recovery_failures);
  if (schema >= 4) {
    // Schema 4 grew the NM-era fields: the supervisor's sleep counters
    // and the NM ring outcome block.
    w.u64(report_.session_stats.bus_sleeps);
    w.u64(report_.session_stats.sleep_recoveries);
  }
  w.u64(report_.ecu_resets);
  w.u64(report_.ecu_s3_expiries);
  if (schema >= 4) {
    w.b(report_.nm_enabled);
    w.u64(report_.nm.sleeps);
    w.u64(report_.nm.wakeups);
    w.u64(report_.nm.frames_lost_to_sleep);
    w.u64(report_.nm.limp_episodes);
    w.u64(report_.nm.ring_repairs);
    w.u64(report_.nm.nm_frames_sent);
  }
  w.b(report_.completed);
  w.str(report_.failure_reason);
  return w.take();
}

bool Campaign::restore_state(const util::Bytes& payload,
                             std::uint32_t schema) {
  if (schema < 2 || schema > kCheckpointPayloadSchema) return false;
  try {
    util::BinaryReader r(payload);

    std::vector<can::TimestampedFrame> cap;
    const std::uint64_t n_frames = r.u64();
    for (std::uint64_t i = 0; i < n_frames; ++i) {
      can::TimestampedFrame tf;
      tf.timestamp = r.i64();
      can::CanId id;
      id.value = r.u32();
      id.extended = r.b();
      const std::uint8_t dlc = r.u8();
      if (dlc > 8) throw std::runtime_error("checkpoint: bad frame dlc");
      std::uint8_t data[8];
      for (std::uint8_t j = 0; j < dlc; ++j) data[j] = r.u8();
      tf.frame = can::CanFrame(id, std::span<const std::uint8_t>(data, dlc));
      cap.push_back(tf);
    }
    cps::VideoRecording video = read_video(r);
    cps::VideoRecording obd_video = read_video(r);
    const util::SimTime obd_phase_end = r.i64();
    std::vector<EcuSession> sessions;
    const std::uint64_t n_sessions = r.u64();
    for (std::uint64_t i = 0; i < n_sessions; ++i) {
      EcuSession session;
      session.ecu_index = r.u64();
      session.live_begin = r.i64();
      session.live_end = r.i64();
      const std::uint64_t n_names = r.u64();
      for (std::uint64_t j = 0; j < n_names; ++j) {
        session.actuator_names.push_back(r.str());
      }
      session.active_begin = r.i64();
      session.active_end = r.i64();
      sessions.push_back(std::move(session));
    }
    const bool collected = r.b();

    util::Rng::State rng_state;
    for (int i = 0; i < 4; ++i) rng_state.s[i] = r.u64();
    rng_state.cached_normal = r.f64();
    rng_state.has_cached_normal = r.b();
    cps::OcrStats engine_stats;
    engine_stats.strings_read = r.u64();
    engine_stats.strings_correct = r.u64();
    engine_stats.char_errors = r.u64();
    engine_stats.decimal_drops = r.u64();

    Intermediate mid;
    const std::uint64_t n_messages = r.u64();
    for (std::uint64_t i = 0; i < n_messages; ++i) {
      frames::DiagMessage msg;
      msg.timestamp = r.i64();
      msg.can_id = r.u32();
      msg.payload = r.bytes();
      mid.messages.push_back(std::move(msg));
    }
    mid.samples = read_samples(r);
    mid.obd_samples = read_samples(r);
    mid.extraction = read_extraction(r);
    const std::uint64_t n_assocs = r.u64();
    for (std::uint64_t i = 0; i < n_assocs; ++i) {
      Association assoc;
      assoc.is_kwp = r.b();
      assoc.did = r.u16();
      assoc.local_id = r.u8();
      assoc.esv_index = r.u64();
      const std::uint64_t n_xs = r.u64();
      for (std::uint64_t j = 0; j < n_xs; ++j) {
        correlate::XSample x;
        x.timestamp = r.i64();
        const std::uint64_t n_vals = r.u64();
        for (std::uint64_t k = 0; k < n_vals; ++k) x.xs.push_back(r.f64());
        assoc.xs.push_back(std::move(x));
      }
      const std::uint64_t n_ys = r.u64();
      for (std::uint64_t j = 0; j < n_ys; ++j) {
        correlate::YSample y;
        y.timestamp = r.i64();
        y.y = r.f64();
        assoc.ys.push_back(y);
      }
      const std::uint64_t n_names = r.u64();
      for (std::uint64_t j = 0; j < n_names; ++j) {
        assoc.names.push_back(r.str());
      }
      assoc.non_numeric = r.u64();
      mid.associations.push_back(std::move(assoc));
    }

    CampaignReport report;
    if (schema == 2) {
      // Schema-2 payloads carry the u32 catalog CarId; reject a payload
      // for a different car and keep this campaign's spec digest (the
      // uniform key the rest of the pipeline expects).
      if (r.u32() != static_cast<std::uint32_t>(vehicle_->spec().id)) {
        return false;
      }
      report.spec_digest = report_.spec_digest;
    } else {
      report.spec_digest = r.u64();
    }
    report.car_label = r.str();
    report.census.single_frames = r.u64();
    report.census.first_frames = r.u64();
    report.census.consecutive_frames = r.u64();
    report.census.flow_control_frames = r.u64();
    report.census.vwtp_data_last = r.u64();
    report.census.vwtp_data_more = r.u64();
    report.census.vwtp_control = r.u64();
    report.census.other = r.u64();
    report.messages_assembled = r.u64();
    report.alignment_offset = r.i64();
    report.alignment_anchors = r.u64();
    const std::uint64_t n_signals = r.u64();
    for (std::uint64_t i = 0; i < n_signals; ++i) {
      SignalFinding s;
      s.is_kwp = r.b();
      s.did = r.u16();
      s.local_id = r.u8();
      s.esv_index = r.u64();
      s.semantic_name = r.str();
      s.request_message = r.str();
      s.is_enum = r.b();
      s.dataset = read_dataset(r);
      if (r.b()) s.gp = read_gp_result(r);
      if (r.b()) s.linear = read_fit(r);
      if (r.b()) s.polynomial = read_fit(r);
      s.truth_formula = r.str();
      s.truth_is_enum = r.b();
      s.gp_correct = r.b();
      s.linear_correct = r.b();
      s.polynomial_correct = r.b();
      report.signals.push_back(std::move(s));
    }
    const std::uint64_t n_ecrs = r.u64();
    for (std::uint64_t i = 0; i < n_ecrs; ++i) {
      EcrFinding e;
      e.is_uds = r.b();
      e.id = r.u16();
      e.semantic_name = r.str();
      const std::uint64_t n_params = r.u64();
      for (std::uint64_t j = 0; j < n_params; ++j) {
        e.param_sequence.push_back(r.u8());
      }
      e.adjustment_state = r.bytes();
      e.three_message_pattern = r.b();
      e.matches_truth = r.b();
      report.ecrs.push_back(std::move(e));
    }
    report.ocr_stats.strings_read = r.u64();
    report.ocr_stats.strings_correct = r.u64();
    report.ocr_stats.char_errors = r.u64();
    report.ocr_stats.decimal_drops = r.u64();
    report.phases.collect_s = r.f64();
    report.phases.assemble_s = r.f64();
    report.phases.ocr_extract_s = r.f64();
    report.phases.align_s = r.f64();
    report.phases.associate_s = r.f64();
    report.phases.infer_s = r.f64();
    report.phases.score_s = r.f64();
    report.transactions.transactions = r.u64();
    report.transactions.retries = r.u64();
    report.transactions.busy_retries = r.u64();
    report.transactions.pending_waits = r.u64();
    report.transactions.failures = r.u64();
    const std::uint64_t n_failed = r.u64();
    for (std::uint64_t i = 0; i < n_failed; ++i) {
      TransactionFailure f;
      f.is_kwp = r.b();
      f.id = r.u16();
      f.failures = r.u64();
      report.failed_transactions.push_back(f);
    }
    report.bus_faults.delivered = r.u64();
    report.bus_faults.dropped = r.u64();
    report.bus_faults.corrupted = r.u64();
    report.bus_faults.duplicated = r.u64();
    report.bus_faults.jittered = r.u64();
    report.bus_faults.bursts = r.u64();
    report.session_stats.keepalives = r.u64();
    report.session_stats.sessions_lost = r.u64();
    report.session_stats.sessions_restored = r.u64();
    report.session_stats.reissued_requests = r.u64();
    report.session_stats.recovery_failures = r.u64();
    if (schema >= 4) {
      report.session_stats.bus_sleeps = r.u64();
      report.session_stats.sleep_recoveries = r.u64();
    }
    report.ecu_resets = r.u64();
    report.ecu_s3_expiries = r.u64();
    if (schema >= 4) {
      // Pre-NM payloads leave the block at its zero defaults — exactly
      // the state an NM-less build would have carried forward.
      report.nm_enabled = r.b();
      report.nm.sleeps = r.u64();
      report.nm.wakeups = r.u64();
      report.nm.frames_lost_to_sleep = r.u64();
      report.nm.limp_episodes = r.u64();
      report.nm.ring_repairs = r.u64();
      report.nm.nm_frames_sent = r.u64();
    }
    report.completed = r.b();
    report.failure_reason = r.str();
    if (!r.done()) return false;

    // Everything parsed; commit.
    restored_capture_ = std::move(cap);
    video_ = std::move(video);
    obd_video_ = std::move(obd_video);
    obd_phase_end_ = obd_phase_end;
    sessions_ = std::move(sessions);
    collected_ = collected;
    ocr_->restore(rng_state, engine_stats);
    mid_ = std::move(mid);
    report_ = std::move(report);
    return true;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace dpr::core
