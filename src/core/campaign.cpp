#include "core/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>

#include "gp/batch.hpp"
#include "kwp/formulas.hpp"
#include "screenshot/filter.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace dpr::core {

namespace {

/// Accumulates wall-clock seconds into a PhaseTimings field while alive.
class PhaseTimer {
 public:
  explicit PhaseTimer(double& slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~PhaseTimer() {
    slot_ += std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }
  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

 private:
  double& slot_;
  std::chrono::steady_clock::time_point start_;
};

frames::TransportHint hint_for(vehicle::TransportKind kind) {
  switch (kind) {
    case vehicle::TransportKind::kIsoTp:
      return frames::TransportHint::kIsoTp;
    case vehicle::TransportKind::kVwTp20:
      return frames::TransportHint::kVwTp20;
    case vehicle::TransportKind::kBmwFraming:
      return frames::TransportHint::kBmwFraming;
  }
  return frames::TransportHint::kIsoTp;
}

std::string majority_vote(const std::vector<std::string>& names) {
  std::map<std::string, std::size_t> counts;
  for (const auto& name : names) ++counts[name];
  std::string best;
  std::size_t best_count = 0;
  for (const auto& [name, count] : counts) {
    if (count > best_count) {
      best = name;
      best_count = count;
    }
  }
  return best;
}

}  // namespace

std::size_t CampaignReport::formula_signals() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(),
                    [](const SignalFinding& s) { return !s.is_enum; }));
}

std::size_t CampaignReport::enum_signals() const {
  return signals.size() - formula_signals();
}

std::size_t CampaignReport::gp_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.gp_correct;
      }));
}

std::size_t CampaignReport::linear_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.linear_correct;
      }));
}

std::size_t CampaignReport::polynomial_correct() const {
  return static_cast<std::size_t>(
      std::count_if(signals.begin(), signals.end(), [](const SignalFinding& s) {
        return !s.is_enum && s.polynomial_correct;
      }));
}

Campaign::Campaign(vehicle::CarId car, CampaignOptions options)
    : options_(options) {
  bus_ = std::make_unique<can::CanBus>(clock_);
  if (options_.faults.enabled()) {
    // Per-campaign injector stream, salted by the car id: each car's bus
    // replays its faults bit-identically at any fleet thread count.
    bus_->set_faults(options_.faults.bus_plan(),
                     options_.faults.rng_for(static_cast<std::uint64_t>(car)));
  }
  vehicle_ = std::make_unique<vehicle::Vehicle>(car, *bus_, clock_,
                                                options_.seed,
                                                options_.faults);
  tool_ = std::make_unique<diagtool::DiagnosticTool>(
      diagtool::profile_by_name(vehicle_->spec().tool), *vehicle_, *bus_,
      clock_,
      options_.faults.enabled() ? util::TransactPolicy::resilient()
                                : util::TransactPolicy{});
  sniffer_ = std::make_unique<can::Sniffer>(
      *bus_,
      util::DeviceClock(options_.sniffer_clock_offset, /*drift_ppm=*/0.0));

  util::Rng rng(options_.seed ^ 0xCB5);
  ocr_ = std::make_unique<cps::OcrEngine>(rng.fork(), options_.ocr_noise,
                                          options_.ocr_rate_scale);
  analyzer_ = std::make_unique<cps::UiAnalyzer>(*ocr_, rng.fork());
  clicker_ = std::make_unique<cps::RoboticClicker>(clock_);

  const util::DeviceClock camera_clock(options_.camera_clock_offset,
                                       options_.camera_clock_drift_ppm);
  camera_a_ = std::make_unique<cps::Camera>(*tool_, util::DeviceClock{},
                                            tool_->profile().value_font_px);
  camera_b_ = std::make_unique<cps::Camera>(*tool_, camera_clock,
                                            tool_->profile().value_font_px);

  report_.car = car;
  report_.car_label = vehicle_->spec().label;
}

Campaign::~Campaign() = default;

const std::vector<can::TimestampedFrame>& Campaign::capture() const {
  return sniffer_->capture();
}

bool Campaign::click_button(const std::string& keyword,
                            const std::vector<std::string>& exclude) {
  // Retry a few times: a fresh screenshot re-rolls the OCR noise.
  for (int attempt = 0; attempt < 4; ++attempt) {
    const auto shot = camera_a_->capture(clock_.now());
    if (const auto point = analyzer_->find_button(shot, keyword, exclude)) {
      clicker_->move_and_click(point->x, point->y);
      tool_->click(point->x, point->y);
      return true;
    }
  }
  util::LogLine(util::LogLevel::kWarning, "campaign")
      << "button not found: " << keyword;
  return false;
}

bool Campaign::click_back() {
  const auto shot = camera_a_->capture(clock_.now());
  if (const auto point = analyzer_->find_icon(shot, "back_arrow")) {
    clicker_->move_and_click(point->x, point->y);
    tool_->click(point->x, point->y);
    return true;
  }
  return false;
}

void Campaign::record_live(util::SimTime duration) {
  const auto frame_period = static_cast<util::SimTime>(
      static_cast<double>(util::kSecond) / options_.video_fps);
  const util::SimTime deadline = clock_.now() + duration;
  const util::SimTime flip_at = clock_.now() + duration / 2;
  bool flipped = false;
  while (clock_.now() < deadline) {
    tool_->run_for(frame_period);
    video_.frames.push_back(camera_b_->capture(clock_.now()));
    if (!flipped && clock_.now() >= flip_at) {
      // Visit the second page (a no-op on single-page streams).
      click_button("Next Page");
      flipped = true;
    }
  }
}

void Campaign::collect_obd_phase() {
  if (vehicle_->spec().transport != vehicle::TransportKind::kIsoTp) return;
  if (!click_button("OBD")) return;
  const auto frame_period = static_cast<util::SimTime>(
      static_cast<double>(util::kSecond) / options_.video_fps);
  const util::SimTime deadline = clock_.now() + 8 * util::kSecond;
  while (clock_.now() < deadline) {
    tool_->run_for(frame_period);
    obd_video_.frames.push_back(camera_b_->capture(clock_.now()));
  }
  click_back();
  obd_phase_end_ = clock_.now();
}

void Campaign::collect_ecu(std::size_t index) {
  EcuSession session;
  session.ecu_index = index;

  // --- Read Data Stream ---------------------------------------------------
  if (!click_button("Data Stream", {"Trouble", "Clear"})) return;

  // Select every ESV row, page by page, clicking in nearest-neighbor
  // order (the §3.1 planner).
  for (int page = 0; page < 8; ++page) {
    const auto shot = camera_a_->capture(clock_.now());
    auto rows = analyzer_->find_selectable_rows(shot);
    // Keep only unselected rows (checkbox still empty).
    std::vector<cps::Point> targets;
    for (const auto& widget : analyzer_->recognize(shot)) {
      if (!widget.clickable) continue;
      if (widget.text.size() >= 3 && widget.text[0] == '[' &&
          widget.text[1] != 'x' &&
          widget.text.find(']') != std::string::npos) {
        targets.push_back(widget.center);
      }
    }
    if (targets.empty()) break;  // page exhausted (or last page repeated)
    const cps::Point start{clicker_->x(), clicker_->y()};
    const auto order = cps::plan_nearest_neighbor(start, targets);
    for (std::size_t i : order) {
      clicker_->move_and_click(targets[i].x, targets[i].y);
      tool_->click(targets[i].x, targets[i].y);
    }
    if (!click_button("Next Page")) break;
  }
  // Return to the first page before starting the live view.
  for (int page = 0; page < 8; ++page) {
    if (!click_button("Prev Page")) break;
  }

  if (!click_button("Start")) return;
  session.live_begin = clock_.now();
  record_live(options_.live_window);
  session.live_end = clock_.now();
  click_button("Stop");
  click_back();  // back to the ECU menu

  // --- Active Test ----------------------------------------------------------
  if (options_.run_active_tests &&
      !vehicle_->spec().ecus.at(index).actuators.empty()) {
    if (click_button("Active Test")) {
      session.active_begin = clock_.now();
      const auto shot = camera_a_->capture(clock_.now());
      // Every text button on the active-test screen is a component.
      for (const auto& widget : analyzer_->recognize(shot)) {
        if (!widget.clickable) continue;
        session.actuator_names.push_back(widget.text);
        clicker_->move_and_click(widget.center.x, widget.center.y);
        tool_->click(widget.center.x, widget.center.y);
        tool_->run_for(500 * util::kMillisecond);
      }
      session.active_end = clock_.now();
      click_back();
    }
  }
  click_back();  // back to the ECU list
  sessions_.push_back(std::move(session));
}

void Campaign::collect() {
  PhaseTimer timer(report_.phases.collect_s);
  if (options_.obd_alignment) collect_obd_phase();

  if (!click_button("Diagnos")) return;
  const std::size_t n_ecus = vehicle_->spec().ecus.size();
  for (std::size_t i = 0; i < n_ecus; ++i) {
    // The ECU list shows one button per control unit, top to bottom.
    const auto shot = camera_a_->capture(clock_.now());
    std::vector<cps::RecognizedWidget> buttons;
    for (const auto& widget : analyzer_->recognize(shot)) {
      if (widget.clickable) buttons.push_back(widget);
    }
    std::sort(buttons.begin(), buttons.end(),
              [](const cps::RecognizedWidget& a,
                 const cps::RecognizedWidget& b) {
                return a.center.y < b.center.y;
              });
    if (i >= buttons.size()) break;
    clicker_->move_and_click(buttons[i].center.x, buttons[i].center.y);
    tool_->click(buttons[i].center.x, buttons[i].center.y);
    collect_ecu(i);
  }
  collected_ = true;
}

void Campaign::analyze() {
  const auto hint = hint_for(vehicle_->spec().transport);
  const auto& capture = sniffer_->capture();

  std::vector<frames::DiagMessage> messages;
  {
    PhaseTimer timer(report_.phases.assemble_s);
    report_.census = frames::census(capture, hint);
    messages = frames::assemble(capture, hint);
    report_.messages_assembled = messages.size();
  }

  // --- Screenshot analysis + field extraction --------------------------------
  // Both the alignment fallback and the signal/ECR analyses consume the
  // extracted fields and the traffic<->UI associations; compute each once
  // here (unless the legacy recompute path is requested for ablation).
  std::vector<screenshot::UiSample> samples;
  std::vector<screenshot::UiSample> obd_samples;
  frames::ExtractionResult extraction;
  {
    PhaseTimer timer(report_.phases.ocr_extract_s);
    if (options_.obd_alignment && obd_phase_end_ > 0) {
      obd_samples = screenshot::extract_samples(obd_video_, *ocr_);
    }
    samples = screenshot::extract_samples(video_, *ocr_);
    if (options_.two_stage_filter) {
      samples = screenshot::filter_samples(std::move(samples));
    }
    extraction = frames::extract_fields(messages);
  }

  std::vector<Association> associations;
  {
    PhaseTimer timer(report_.phases.associate_s);
    associations = build_associations(extraction, samples);
  }

  {
    // --- Clock alignment (§9.4) ---------------------------------------------
    PhaseTimer timer(report_.phases.align_s);
    util::SimTime offset = 0;
    bool aligned = false;
    if (options_.obd_alignment && obd_phase_end_ > 0) {
      const util::SimTime obd_cutoff =
          obd_phase_end_ + 100 * util::kMillisecond;
      std::vector<frames::DiagMessage> obd_messages;
      for (const auto& msg : messages) {
        if (msg.timestamp <= obd_cutoff) obd_messages.push_back(msg);
      }
      if (const auto alignment =
              correlate::align_with_obd(obd_messages, obd_samples)) {
        offset = alignment->offset;
        report_.alignment_anchors = alignment->matched;
        aligned = alignment->matched >= 8;
      }
    }
    report_.alignment_offset = offset;

    if (!aligned) {
      // NTP-only vehicles (§9.4 method 1): estimate the end-to-end
      // request->display latency from value changes in the diagnostic
      // traffic itself, then treat it as the pairing offset.
      const auto series =
          options_.cache_analysis
              ? build_alignment_series(associations)
              : build_alignment_series(build_associations(
                    frames::extract_fields(messages), samples));
      if (const auto estimate =
              correlate::estimate_offset_by_changes(series)) {
        report_.alignment_offset = estimate->offset;
        report_.alignment_anchors = estimate->matched;
      }
    }
  }

  {
    PhaseTimer timer(report_.phases.associate_s);
    if (options_.cache_analysis) {
      analyze_signals(std::move(associations));
    } else {
      analyze_signals(
          build_associations(frames::extract_fields(messages), samples));
    }
  }
  {
    PhaseTimer timer(report_.phases.infer_s);
    infer_signals();
  }
  {
    PhaseTimer timer(report_.phases.associate_s);
    if (options_.cache_analysis) {
      analyze_ecrs(extraction);
    } else {
      analyze_ecrs(frames::extract_fields(messages));
    }
  }
  {
    PhaseTimer timer(report_.phases.score_s);
    score_findings();
  }
  report_.ocr_stats = ocr_->stats();

  // Robustness bookkeeping: retry counters, exhausted identifiers, and
  // the bus injector's tally (empty in fault-free runs).
  report_.transactions = tool_->transact_stats();
  report_.failed_transactions.clear();
  for (const auto& [key, count] : tool_->failed_reads()) {
    report_.failed_transactions.push_back(
        TransactionFailure{key.first, key.second, count});
  }
  if (const auto* fault_stats = bus_->fault_stats()) {
    report_.bus_faults = *fault_stats;
  }
}

std::vector<Campaign::Association> Campaign::build_associations(
    const frames::ExtractionResult& extraction,
    const std::vector<screenshot::UiSample>& samples) const {
  std::vector<Association> associations;
  const util::SimTime margin = 1 * util::kSecond;

  for (const auto& session : sessions_) {
    const util::SimTime begin = session.live_begin - margin;
    const util::SimTime end = session.live_end + margin;

    // X observations of this session, keyed per signal in first-seen
    // (i.e. poll/row) order.
    struct Key {
      bool is_kwp;
      std::uint16_t did;
      std::uint8_t local_id;
      std::size_t esv_index;
      bool operator<(const Key& o) const {
        return std::tie(is_kwp, did, local_id, esv_index) <
               std::tie(o.is_kwp, o.did, o.local_id, o.esv_index);
      }
    };
    std::vector<Key> key_order;
    std::map<Key, std::vector<correlate::XSample>> xs_by_key;
    for (const auto& esv : extraction.esvs) {
      if (esv.timestamp < begin || esv.timestamp > end) continue;
      Key key{esv.is_kwp, esv.did, esv.local_id, esv.esv_index};
      auto it = xs_by_key.find(key);
      if (it == xs_by_key.end()) {
        key_order.push_back(key);
        it = xs_by_key.emplace(key, std::vector<correlate::XSample>{}).first;
      }
      correlate::XSample x;
      x.timestamp = esv.timestamp;
      if (esv.is_kwp) {
        x.xs = {static_cast<double>(esv.x0), static_cast<double>(esv.x1)};
      } else {
        for (std::size_t i = 0; i < esv.data.size() && i < 2; ++i) {
          x.xs.push_back(static_cast<double>(esv.data[i]));
        }
      }
      it->second.push_back(std::move(x));
    }

    // Y observations, grouped by layout row.
    std::map<int, std::vector<const screenshot::UiSample*>> by_row;
    for (const auto& sample : samples) {
      if (sample.timestamp < begin || sample.timestamp > end) continue;
      by_row[sample.row].push_back(&sample);
    }

    // The r-th populated row corresponds to the r-th signal key in the
    // session's traffic order (§3.4 association via the UI layout).
    std::size_t key_index = 0;
    associations.reserve(associations.size() +
                         std::min(by_row.size(), key_order.size()));
    for (const auto& [row, row_samples] : by_row) {
      if (key_index >= key_order.size()) break;
      const Key& key = key_order[key_index++];

      Association assoc;
      assoc.is_kwp = key.is_kwp;
      assoc.did = key.did;
      assoc.local_id = key.local_id;
      assoc.esv_index = key.esv_index;
      // Each key is consumed by exactly one association: steal the series.
      assoc.xs = std::move(xs_by_key[key]);
      assoc.names.reserve(row_samples.size());
      assoc.ys.reserve(row_samples.size());
      for (const auto* sample : row_samples) {
        assoc.names.push_back(sample->name);
        if (sample->value) {
          assoc.ys.push_back(
              correlate::YSample{sample->timestamp, *sample->value});
        } else {
          ++assoc.non_numeric;
        }
      }
      associations.push_back(std::move(assoc));
    }
  }
  return associations;
}

std::vector<std::pair<std::vector<correlate::XSample>,
                      std::vector<correlate::YSample>>>
Campaign::build_alignment_series(
    const std::vector<Association>& associations) {
  std::vector<std::pair<std::vector<correlate::XSample>,
                        std::vector<correlate::YSample>>>
      series;
  // Copies (rather than moves) so the cached associations stay intact for
  // the signal analysis that follows.
  for (const auto& assoc : associations) {
    if (assoc.ys.size() >= 6) {
      series.emplace_back(assoc.xs, assoc.ys);
    }
  }
  return series;
}

void Campaign::analyze_signals(std::vector<Association> associations) {
  report_.signals.reserve(report_.signals.size() + associations.size());
  for (auto& assoc : associations) {
    SignalFinding finding;
    finding.is_kwp = assoc.is_kwp;
    finding.did = assoc.did;
    finding.local_id = assoc.local_id;
    finding.esv_index = assoc.esv_index;
    finding.semantic_name = majority_vote(assoc.names);
    {
      char request[16];
      if (assoc.is_kwp) {
        std::snprintf(request, sizeof request, "21 %02X", assoc.local_id);
      } else {
        std::snprintf(request, sizeof request, "22 %02X %02X",
                      assoc.did >> 8, assoc.did & 0xFF);
      }
      finding.request_message = request;
    }

    const std::size_t total_samples = assoc.ys.size() + assoc.non_numeric;
    if (assoc.ys.size() < 6 || assoc.non_numeric > total_samples / 2) {
      // Mostly non-numeric: a status/enum signal, no formula (§4.3
      // "#ESV (Enum)").
      finding.is_enum = true;
      report_.signals.push_back(std::move(finding));
      continue;
    }

    finding.dataset = correlate::build_dataset(assoc.xs, assoc.ys,
                                               report_.alignment_offset);
    report_.signals.push_back(std::move(finding));
  }
}

void Campaign::infer_signals() {
  if (!options_.run_inference) return;

  // Each non-enum signal is an independent (vehicle, DID) inference
  // problem: fan them out over the BatchRunner pool. Seeds are derived
  // per signal exactly as the serial loop did, so the batch results are
  // identical regardless of thread count.
  std::vector<gp::BatchJob> jobs;
  std::vector<SignalFinding*> targets;
  for (auto& finding : report_.signals) {
    if (finding.is_enum) continue;
    gp::BatchJob job;
    job.dataset = &finding.dataset;
    job.config = options_.gp;
    job.config.seed ^= (static_cast<std::uint64_t>(finding.did) << 16) ^
                       finding.local_id ^ (finding.esv_index << 8);
    jobs.push_back(job);
    targets.push_back(&finding);
  }
  // A fleet-injected pool wins over the local thread knob: the whole
  // machine then runs on one shared budget, with this batch's jobs
  // interleaved among the other campaigns' work.
  auto results = options_.infer_pool
                     ? gp::BatchRunner(*options_.infer_pool).run(jobs)
                     : gp::BatchRunner(options_.infer_threads).run(jobs);
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i]->gp = std::move(results[i]);
    if (options_.run_baselines) {
      targets[i]->linear = regress::fit_linear(targets[i]->dataset);
      targets[i]->polynomial = regress::fit_polynomial(targets[i]->dataset);
    }
  }
}

void Campaign::analyze_ecrs(const frames::ExtractionResult& extraction) {
  const util::SimTime margin = 1 * util::kSecond;

  for (const auto& session : sessions_) {
    if (session.actuator_names.empty()) continue;
    std::vector<frames::EcrObservation> window;
    for (const auto& ecr : extraction.ecrs) {
      if (ecr.timestamp >= session.active_begin - margin &&
          ecr.timestamp <= session.active_end + margin) {
        window.push_back(ecr);
      }
    }
    const auto procedures = frames::extract_procedures(window);
    for (std::size_t i = 0; i < procedures.size(); ++i) {
      EcrFinding finding;
      finding.is_uds = procedures[i].is_uds;
      finding.id = procedures[i].id;
      finding.param_sequence = procedures[i].param_sequence;
      finding.adjustment_state = procedures[i].adjustment_state;
      finding.three_message_pattern =
          procedures[i].matches_three_message_pattern();
      if (i < session.actuator_names.size()) {
        finding.semantic_name = session.actuator_names[i];
      }
      report_.ecrs.push_back(std::move(finding));
    }
  }
}

void Campaign::score_findings() {
  const auto& spec = vehicle_->spec();

  // Ground-truth lookup tables, built once per campaign instead of
  // rescanning every ECU's signal inventory for every finding
  // (O(findings + ecus*signals) instead of O(findings * ecus * signals)).
  // The legacy scan kept the *last* catalog match, so later entries
  // overwrite earlier ones here too.
  std::map<std::uint16_t, const vehicle::UdsSignalSpec*> uds_truth;
  std::map<std::uint8_t, std::vector<const vehicle::KwpLocalIdSpec*>>
      kwp_blocks;
  std::set<std::uint16_t> actuator_ids;
  for (const auto& ecu : spec.ecus) {
    for (const auto& sig : ecu.uds_signals) uds_truth[sig.did] = &sig;
    for (const auto& block : ecu.kwp_local_ids) {
      kwp_blocks[block.local_id].push_back(&block);
    }
    for (const auto& act : ecu.actuators) actuator_ids.insert(act.id);
  }

  for (auto& finding : report_.signals) {
    // Locate the ground truth in the catalog.
    std::function<double(std::span<const double>)> truth;
    if (!finding.is_kwp) {
      if (const auto it = uds_truth.find(finding.did);
          it != uds_truth.end()) {
        const auto& sig = *it->second;
        finding.truth_is_enum = sig.formula.is_enum();
        finding.truth_formula = sig.formula.repr();
        const vehicle::PropFormula formula = sig.formula;
        truth = [formula](std::span<const double> xs) {
          std::vector<std::uint8_t> bytes;
          bytes.reserve(xs.size());
          for (double x : xs) bytes.push_back(static_cast<std::uint8_t>(x));
          return formula.eval(bytes);
        };
      }
    } else {
      const auto it = kwp_blocks.find(finding.local_id);
      if (it != kwp_blocks.end()) {
        // The esv_index range check depends on the finding, so walk this
        // local id's (few) blocks in catalog order, last match winning —
        // exactly the legacy scan's behavior.
        for (const auto* block : it->second) {
          if (finding.esv_index >= block->esvs.size()) continue;
          const auto& esv = block->esvs[finding.esv_index];
          finding.truth_is_enum = esv.is_enum;
          const auto kwp_spec = kwp::find_formula(esv.formula_type);
          finding.truth_formula = kwp_spec ? kwp_spec->expression : "?";
          const std::uint8_t type = esv.formula_type;
          truth = [type](std::span<const double> xs) {
            if (xs.size() < 2) return 0.0;
            const auto value = kwp::decode_esv(
                type, static_cast<std::uint8_t>(xs[0]),
                static_cast<std::uint8_t>(xs[1]));
            return value.value_or(0.0);
          };
        }
      }
    }

    if (finding.is_enum || !truth) continue;
    // A formula counts as recovered when its outputs match the ground
    // truth uniformly over the observed operand domain: close in the
    // mean AND with no gross pointwise deviation (a wrong structure
    // fitted locally fails the latter).
    if (finding.gp) {
      finding.gp_correct =
          gp::mean_relative_error(*finding.gp, finding.dataset, truth) <
              kEquivalenceTolerance &&
          gp::max_relative_error(*finding.gp, finding.dataset, truth) <
              kMaxPointTolerance;
    }
    if (finding.linear) {
      finding.linear_correct =
          regress::mean_relative_error(*finding.linear, finding.dataset,
                                       truth) < kEquivalenceTolerance &&
          regress::max_relative_error(*finding.linear, finding.dataset,
                                      truth) < kMaxPointTolerance;
    }
    if (finding.polynomial) {
      finding.polynomial_correct =
          regress::mean_relative_error(*finding.polynomial, finding.dataset,
                                       truth) < kEquivalenceTolerance &&
          regress::max_relative_error(*finding.polynomial, finding.dataset,
                                      truth) < kMaxPointTolerance;
    }
  }

  for (auto& finding : report_.ecrs) {
    finding.matches_truth = actuator_ids.count(finding.id) > 0;
  }
}

}  // namespace dpr::core
