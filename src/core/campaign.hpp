#pragma once
// DP-Reverser end-to-end campaign on one vehicle: the full Fig. 6
// pipeline. The CPS rig (cameras + robotic clicker + sniffer) drives the
// diagnostic tool through every ECU's data stream and active tests; the
// analysis half assembles the captured frames, extracts fields, OCRs the
// video, aligns the clocks, correlates (X, Y) pairs and infers formulas
// with GP (plus the §4.4 baselines).

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "can/bus.hpp"
#include "can/sniffer.hpp"
#include "correlate/correlate.hpp"
#include "cps/analyzer.hpp"
#include "cps/camera.hpp"
#include "cps/clicker.hpp"
#include "cps/ocr.hpp"
#include "diagtool/tool.hpp"
#include "frames/analysis.hpp"
#include "frames/fields.hpp"
#include "gp/engine.hpp"
#include "nm/nm.hpp"
#include "regress/regress.hpp"
#include "screenshot/extract.hpp"
#include "util/checkpoint.hpp"
#include "util/fault.hpp"
#include "util/transact.hpp"
#include "util/watchdog.hpp"
#include "vehicle/vehicle.hpp"

namespace dpr::util {
class ThreadPool;
}

namespace dpr::core {

struct CampaignOptions {
  std::uint64_t seed = 0x5EED;
  util::SimTime live_window = 20 * util::kSecond;  // per-ECU capture
  double video_fps = 8.0;
  bool ocr_noise = true;           // disable for clean-room ablations
  double ocr_rate_scale = 1.0;     // stress multiplier on the error rate
  bool two_stage_filter = true;    // §3.3 filtering ablation switch
  bool run_baselines = true;       // linear regression + polynomial
  bool run_inference = true;       // GP; off for traffic-only experiments
  bool run_active_tests = true;
  bool obd_alignment = true;       // §9.4 method 2 (when OBD available)
  util::SimTime camera_clock_offset = 180 * util::kMillisecond;
  double camera_clock_drift_ppm = 40.0;
  util::SimTime sniffer_clock_offset = -25 * util::kMillisecond;
  gp::GpConfig gp;
  /// Threads for fanning independent per-signal GP inferences over a
  /// gp::BatchRunner pool. 0 = hardware concurrency, 1 = serial. The
  /// recovered formulas are identical for every value.
  std::size_t infer_threads = 1;
  /// Non-owning: when set, per-signal GP inferences run on this existing
  /// pool instead of spawning one (`infer_threads` is ignored). This is
  /// how core::FleetRunner enforces a single machine-wide thread budget —
  /// fleet tasks and inner GP batches share the same workers, and the
  /// caller-participating pool makes the nesting deadlock-free.
  util::ThreadPool* infer_pool = nullptr;
  /// Compute the field extraction and the traffic<->UI associations once
  /// per analyze() and reuse them across alignment, signal analysis and
  /// ECR analysis. `false` restores the legacy recompute-per-consumer
  /// path (kept as an ablation / equivalence-test switch; the findings
  /// are identical either way).
  bool cache_analysis = true;
  /// Deterministic fault injection (bus drops/corruption/duplication,
  /// server 0x78/0x21 stalls) plus the resilient client policy that rides
  /// it out. Disabled by default; a disabled config performs zero RNG
  /// draws, so fault-free runs are bit-identical to pre-fault builds.
  /// The stateful knobs (reset_rate / session_faults) additionally arm
  /// ECU reboots + S3 session timers and the diagtool session supervisor.
  util::FaultConfig faults;

  // --- Checkpoint / resume / supervision (ISSUE 4) -----------------------
  /// Directory for per-phase checkpoints; empty = no checkpointing.
  std::string checkpoint_dir;
  /// With checkpoint_dir set: load the matching checkpoint (same car,
  /// seed and semantic options) and skip every completed phase. The
  /// resumed report is bit-identical to an uninterrupted run.
  bool resume = false;
  /// Stop run() after this phase index completes (0 = collect ...
  /// 6 = score); -1 = run everything. Test/CI hook that simulates an
  /// interruption at a phase boundary.
  int stop_after_phase = -1;
  /// Per-phase wall-clock budget in seconds; 0 = no watchdog. A phase
  /// that overruns aborts with util::DeadlineExceeded
  /// ("phase_timeout(<phase>)"), which FleetRunner degrades to a failed
  /// per-car slot instead of hanging the fleet.
  double phase_deadline_s = 0.0;
  /// Test hook: simulate a hang at the start of the named phase. Only
  /// stalls while the watchdog is armed (phase_deadline_s > 0), so a
  /// stray value can never wedge a run.
  std::string stall_phase;
  /// Per-phase *sim-time* budget in seconds; 0 = off. Catches the inverse
  /// failure of phase_deadline_s: a collect phase burning sim-hours (e.g.
  /// waiting out bus sleeps) while still making wall-clock progress.
  /// Execution-only like phase_deadline_s — excluded from the digest.
  double phase_sim_budget_s = 0.0;

  // --- OSEK network management (ISSUE 8) ---------------------------------
  /// With FaultConfig::nm set the campaign arms the bus lifecycle, runs a
  /// per-ECU NM ring and (unless nm_oblivious) makes the tool NM-aware:
  /// the tool sends periodic wakeup frames and, when a transaction dies
  /// against a sleeping bus, re-wakes it and retries. `nm_oblivious`
  /// keeps the vehicle side ringing but leaves the tool ignorant — the
  /// ablation hook bench_nm uses to measure what NM awareness is worth.
  bool nm_oblivious = false;

  // --- Hot-path reference shim (ISSUE 10) --------------------------------
  /// Route delivery through the pre-overhaul hot path: min_element
  /// arbitration scan, unfiltered listener fan-out, per-frame scalar
  /// fault draws, and the per-step UI rebuild in diagtool. Products are
  /// bit-identical either way (bench_bus gates it on report signatures);
  /// kept for differential tests and old-vs-new benchmarks.
  /// Execution-only: excluded from the options digest, like thread
  /// counts — a checkpoint from a legacy run resumes on the fast path.
  bool legacy_bus = false;
};

/// Wall-clock seconds spent in each pipeline phase of one campaign.
/// Purely observational: the timings never feed back into the analysis,
/// so reports stay bit-identical across runs and thread counts (compare
/// them with report_signature(), which excludes timings).
struct PhaseTimings {
  double collect_s = 0.0;      // CPS loop: drive tool, record CAN + video
  double assemble_s = 0.0;     // frame census + message assembly
  double ocr_extract_s = 0.0;  // screenshot OCR + filtering + field extraction
  double align_s = 0.0;        // clock alignment (OBD anchors / change latency)
  double associate_s = 0.0;    // §3.4 association + dataset construction
  double infer_s = 0.0;        // GP + baseline regressions
  double score_s = 0.0;        // ground-truth scoring

  double total_s() const {
    return collect_s + assemble_s + ocr_extract_s + align_s + associate_s +
           infer_s + score_s;
  }
  PhaseTimings& operator+=(const PhaseTimings& other) {
    collect_s += other.collect_s;
    assemble_s += other.assemble_s;
    ocr_extract_s += other.ocr_extract_s;
    align_s += other.align_s;
    associate_s += other.associate_s;
    infer_s += other.infer_s;
    score_s += other.score_s;
    return *this;
  }
};

/// Reverse-engineering outcome for one readable signal.
struct SignalFinding {
  bool is_kwp = false;
  std::uint16_t did = 0;          // UDS
  std::uint8_t local_id = 0;      // KWP
  std::size_t esv_index = 0;
  std::string semantic_name;      // recovered from UI text (§3.4)
  std::string request_message;    // hex of the request that reads it
  bool is_enum = false;           // no formula (status value)
  correlate::Dataset dataset;
  std::optional<gp::GpResult> gp;
  std::optional<regress::FitResult> linear;
  std::optional<regress::FitResult> polynomial;

  // Scoring against the simulator's ground truth.
  std::string truth_formula;
  bool truth_is_enum = false;
  bool gp_correct = false;
  bool linear_correct = false;
  bool polynomial_correct = false;
};

/// Reverse-engineering outcome for one controllable component.
struct EcrFinding {
  bool is_uds = false;            // 0x2F vs 0x30
  std::uint16_t id = 0;           // DID or local identifier
  std::string semantic_name;      // from the active-test button text
  std::vector<std::uint8_t> param_sequence;
  util::Bytes adjustment_state;
  bool three_message_pattern = false;
  bool matches_truth = false;     // id + name pair exists in the catalog
};

/// One identifier whose transactions exhausted every retry during the
/// campaign (graceful degradation: recorded, never fatal).
struct TransactionFailure {
  bool is_kwp = false;
  std::uint16_t id = 0;      // DID / local id (OBD PIDs as 0xF400+pid)
  std::size_t failures = 0;  // failed transactions on this id
};

struct CampaignReport {
  /// vehicle::spec_digest of the car this report describes (checkpoint /
  /// result-cache key); 0 only for failure slots whose spec never
  /// resolved (e.g. an unknown CarId handed to FleetRunner).
  std::uint64_t spec_digest = 0;
  std::string car_label;
  frames::FrameCensus census;
  std::size_t messages_assembled = 0;
  util::SimTime alignment_offset = 0;
  std::size_t alignment_anchors = 0;
  std::vector<SignalFinding> signals;
  std::vector<EcrFinding> ecrs;
  cps::OcrStats ocr_stats;
  PhaseTimings phases;

  // Robustness bookkeeping (all deterministic for a given fault seed).
  util::TransactStats transactions;
  std::vector<TransactionFailure> failed_transactions;
  util::FaultStats bus_faults;
  /// Session-supervisor counters plus the ECUs' own reboot / S3-expiry
  /// tallies; all zero unless stateful faults are armed.
  diagtool::SessionStats session_stats;
  std::uint64_t ecu_resets = 0;
  std::uint64_t ecu_s3_expiries = 0;
  /// OSEK NM outcome; nm_enabled mirrors FaultConfig::nm (the signature
  /// only includes the NM section when set, keeping NM-off runs
  /// byte-identical to pre-NM builds).
  bool nm_enabled = false;
  nm::NmStats nm;
  /// Checkpoint-store bookkeeping for this run (ISSUE 9): checkpoints
  /// recovered through cross-version migration, and checkpoint files this
  /// campaign had to quarantine (torn/corrupt/unrestorable) before
  /// re-running the affected phases. Deliberately excluded from both the
  /// serialized checkpoint payload and report_signature(): they describe
  /// the *journey* of the state, not the state, so a migrated-then-resumed
  /// run still signature-matches a fresh one.
  std::size_t ckpt_salvaged = 0;
  std::size_t ckpt_quarantined = 0;
  /// False when the campaign aborted with an exception (captured by
  /// core::FleetRunner); `failure_reason` then carries the what() text.
  bool completed = true;
  std::string failure_reason;

  std::size_t formula_signals() const;
  std::size_t enum_signals() const;
  std::size_t gp_correct() const;
  std::size_t linear_correct() const;
  std::size_t polynomial_correct() const;
};

class Campaign {
 public:
  /// Campaign over any spec — one of the 18 pre-baked catalog cars or a
  /// vehicle::Generator product. The spec is copied (the Vehicle owns
  /// it); checkpoints key on its spec_digest.
  Campaign(const vehicle::CarSpec& spec, CampaignOptions options = {});
  /// Catalog convenience: Campaign(car_spec(id), options). Throws
  /// std::out_of_range for ids outside the catalog.
  Campaign(vehicle::CarId car, CampaignOptions options = {});
  ~Campaign();

  Campaign(const Campaign&) = delete;
  Campaign& operator=(const Campaign&) = delete;

  /// Phase 1 (Fig. 6 b): drive the tool, record CAN traffic and UI video.
  void collect();

  /// Phase 2: frames analysis + screenshot analysis + correlation +
  /// formula inference + scoring. Requires collect() first.
  void analyze();

  /// The pipeline's named phases, in execution order: collect, assemble,
  /// ocr_extract, align, associate, infer, score.
  static constexpr std::size_t kNumPhases = 7;
  static const char* phase_name(std::size_t phase);

  /// Run the full pipeline with checkpointing, resume and the per-phase
  /// watchdog honored (CampaignOptions::{checkpoint_dir, resume,
  /// stop_after_phase, phase_deadline_s}). With every one of those at
  /// its default this is exactly collect() + analyze().
  void run();

  const CampaignReport& report() const { return report_; }

  /// Raw artifacts (for tests and ablations).
  const std::vector<can::TimestampedFrame>& capture() const;
  const cps::VideoRecording& video() const { return video_; }
  vehicle::Vehicle& vehicle() { return *vehicle_; }

  // --- Checkpoint schema tooling (ISSUE 9) -------------------------------
  /// Serialize the current campaign state in a historical payload schema:
  /// 2 (u32 CarId report key, pre-NM), 3 (spec-digest key, pre-NM) or 4
  /// (current). Fixture generators use this to mint golden old-format
  /// checkpoints; run() always writes the current schema.
  util::Bytes serialize_state_versioned(std::uint32_t schema) const;
  /// The options digest run() keys checkpoints on. `legacy` selects the
  /// v2/v3-era formula (predating the unconditional NM folds) — the digest
  /// old builds would have computed for these options, which is where
  /// load() searches for their files.
  std::uint64_t checkpoint_options_digest(bool legacy = false) const;
  /// The 64-bit car key run() checkpoints under (the car's spec digest).
  std::uint64_t checkpoint_car_key() const { return report_.spec_digest; }

  /// Acceptance tolerances (§4.2's "almost the same" criterion): the
  /// inferred formula's outputs must match the ground truth both in the
  /// mean and pointwise over the observed operand domain.
  static constexpr double kEquivalenceTolerance = 0.03;
  static constexpr double kMaxPointTolerance = 0.08;

 private:
  struct EcuSession {
    std::size_t ecu_index = 0;
    util::SimTime live_begin = 0;   // global time
    util::SimTime live_end = 0;
    std::vector<std::string> actuator_names;  // click order (OCR'd)
    util::SimTime active_begin = 0;
    util::SimTime active_end = 0;
  };

  void collect_obd_phase();
  void collect_ecu(std::size_t index);
  void record_live(util::SimTime duration);
  bool click_button(const std::string& keyword,
                    const std::vector<std::string>& exclude = {});
  bool click_back();

  /// One associated signal: the traffic-side key paired with the UI-side
  /// layout row (§3.4 association).
  struct Association {
    bool is_kwp = false;
    std::uint16_t did = 0;
    std::uint8_t local_id = 0;
    std::size_t esv_index = 0;
    std::vector<correlate::XSample> xs;
    std::vector<correlate::YSample> ys;
    std::vector<std::string> names;   // OCR'd label per sample
    std::size_t non_numeric = 0;
  };
  /// Products handed from one analysis phase to the next; everything in
  /// here is part of the checkpoint payload so a resumed campaign can
  /// start at any phase boundary.
  struct Intermediate {
    std::vector<frames::DiagMessage> messages;
    std::vector<screenshot::UiSample> samples;
    std::vector<screenshot::UiSample> obd_samples;
    frames::ExtractionResult extraction;
    std::vector<Association> associations;
  };

  void phase_collect();
  void phase_assemble();
  void phase_ocr_extract();
  void phase_align();
  void phase_associate();
  void phase_infer();
  void phase_score();
  void finish_collect();
  void maybe_stall(const char* phase) const;

  std::uint64_t options_digest(bool legacy = false) const;
  util::Bytes serialize_state() const;
  /// Decode a checkpoint payload of the given schema (2/3/4). Schema 2/3
  /// payloads predate the NM counters (and schema 2 keys its report block
  /// on the u32 CarId); the missing fields restore to their zero
  /// defaults, which is exactly what those builds would have produced.
  bool restore_state(const util::Bytes& payload, std::uint32_t schema);

  std::vector<Association> build_associations(
      const frames::ExtractionResult& extraction,
      const std::vector<screenshot::UiSample>& samples) const;
  static std::vector<std::pair<std::vector<correlate::XSample>,
                               std::vector<correlate::YSample>>>
  build_alignment_series(const std::vector<Association>& associations);
  void analyze_signals(std::vector<Association> associations);
  void infer_signals();
  void analyze_ecrs(const frames::ExtractionResult& extraction);
  void score_findings();

  CampaignOptions options_;
  util::SimClock clock_;
  std::unique_ptr<can::CanBus> bus_;
  std::unique_ptr<vehicle::Vehicle> vehicle_;
  std::unique_ptr<nm::NmManager> nm_;
  std::unique_ptr<diagtool::DiagnosticTool> tool_;
  std::unique_ptr<can::Sniffer> sniffer_;
  std::unique_ptr<cps::Camera> camera_a_;
  std::unique_ptr<cps::Camera> camera_b_;
  std::unique_ptr<cps::OcrEngine> ocr_;
  std::unique_ptr<cps::UiAnalyzer> analyzer_;
  std::unique_ptr<cps::RoboticClicker> clicker_;

  cps::VideoRecording video_;
  cps::VideoRecording obd_video_;
  util::SimTime obd_phase_end_ = 0;
  std::vector<EcuSession> sessions_;
  CampaignReport report_;
  bool collected_ = false;

  Intermediate mid_;
  /// Set by restore_state(): a resumed campaign never re-drives the
  /// sniffer, so the restored capture stands in for sniffer_->capture().
  std::optional<std::vector<can::TimestampedFrame>> restored_capture_;
  util::Watchdog watchdog_;
};

}  // namespace dpr::core
