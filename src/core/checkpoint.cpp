#include "core/checkpoint.hpp"

#include <cstdio>
#include <filesystem>

namespace dpr::core {

namespace {

constexpr std::uint32_t kMagic = 0x43525044;  // "DPRC" little-endian
// v3: keys (and the serialized report) identify the car by its 64-bit
// spec digest instead of the catalog CarId integer, so generated cars
// checkpoint/resume exactly like catalog cars.
// v4: the serialized report grew NM fields (bus sleep/wakeup counters,
// limp-home episodes, supervisor sleep recoveries).
constexpr std::uint32_t kVersion = 4;

}  // namespace

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
}

std::string CheckpointStore::path_for(std::uint64_t car, std::uint64_t seed,
                                      std::uint64_t digest) const {
  char name[80];
  std::snprintf(name, sizeof name, "dpr-%016llx-%016llx-%016llx.ckpt",
                static_cast<unsigned long long>(car),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(digest));
  return dir_ + "/" + name;
}

bool CheckpointStore::save(std::uint64_t car, std::uint64_t seed,
                           std::uint64_t digest, std::uint32_t phase,
                           std::span<const std::uint8_t> payload) const {
  util::BinaryWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u64(car);
  w.u64(seed);
  w.u64(digest);
  w.u32(phase);
  w.bytes(payload);
  w.u64(util::fnv1a64(w.data()));  // digest over everything before it
  return util::write_file_atomic(path_for(car, seed, digest), w.data());
}

std::optional<CheckpointStore::Loaded> CheckpointStore::load(
    std::uint64_t car, std::uint64_t seed, std::uint64_t digest) const {
  const auto data = util::read_file(path_for(car, seed, digest));
  if (!data || data->size() < 8) return std::nullopt;

  // Validate the trailing digest before trusting any field.
  const std::size_t body = data->size() - 8;
  util::BinaryReader tail(
      std::span<const std::uint8_t>(data->data() + body, 8));
  if (tail.u64() !=
      util::fnv1a64(std::span<const std::uint8_t>(data->data(), body))) {
    return std::nullopt;
  }

  try {
    util::BinaryReader r(std::span<const std::uint8_t>(data->data(), body));
    if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;
    if (r.u64() != car || r.u64() != seed || r.u64() != digest) {
      return std::nullopt;
    }
    Loaded loaded;
    loaded.phase = r.u32();
    loaded.payload = r.bytes();
    if (!r.done()) return std::nullopt;
    return loaded;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

void CheckpointStore::remove(std::uint64_t car, std::uint64_t seed,
                             std::uint64_t digest) const {
  std::error_code ec;
  std::filesystem::remove(path_for(car, seed, digest), ec);
}

}  // namespace dpr::core
