#include "core/checkpoint.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "util/crash.hpp"

namespace dpr::core {

namespace {

constexpr std::uint32_t kManifestMagic = 0x4D525044;  // "DPRM"
constexpr std::uint32_t kManifestVersion = 1;

/// flock(2)-based advisory lock on <dir>/.lock, held only around short
/// mutating critical sections (write + manifest bump), so N campaign
/// threads sharing one directory serialize their writes and an external
/// process (a future dpr::serviced) can coordinate with CLI runs. Lock
/// failure degrades to unlocked operation — the lock is an upgrade, not
/// a correctness requirement for the single-writer-per-key common case.
class DirLock {
 public:
  explicit DirLock(const std::string& dir) {
    const std::string path = dir + "/.lock";
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ >= 0 && ::flock(fd_, LOCK_EX) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~DirLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }
  DirLock(const DirLock&) = delete;
  DirLock& operator=(const DirLock&) = delete;

 private:
  int fd_ = -1;
};

std::string hex_u32(std::uint32_t v) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "0x%08x", v);
  return buf;
}

}  // namespace

namespace {

using LoadError = CheckpointStore::LoadError;

struct Parsed {
  std::uint32_t container_version = 0;
  std::uint64_t car = 0;  // v2 containers: the u32 CarId, widened
  std::uint64_t seed = 0;
  std::uint64_t digest = 0;
  std::uint32_t phase = 0;
  util::Bytes payload;
  std::uint32_t payload_schema = 0;
};

/// Decode any supported container version. kNone on success; on failure
/// `detail` names what was wrong with the file.
LoadError parse_checkpoint(const util::Bytes& data, Parsed& out,
                           std::string& detail) {
  if (data.size() < 16) {
    detail = "file too small to be a checkpoint";
    return LoadError::kTorn;
  }
  // Validate the trailing digest before trusting any field.
  const std::size_t body = data.size() - 8;
  util::BinaryReader tail(std::span<const std::uint8_t>(data.data() + body, 8));
  if (tail.u64() !=
      util::fnv1a64(std::span<const std::uint8_t>(data.data(), body))) {
    detail = "trailing digest mismatch (torn or corrupted write)";
    return LoadError::kTorn;
  }

  try {
    util::BinaryReader r(std::span<const std::uint8_t>(data.data(), body));
    if (r.u32() != kCheckpointMagic) {
      detail = "bad magic (not a checkpoint file)";
      return LoadError::kBadMagic;
    }
    const std::uint32_t version = r.u32();
    out.container_version = version;
    if (version < 2) {
      detail = "container version " + std::to_string(version) +
               " predates migration support";
      return LoadError::kBadStructure;
    }
    if (version > kCheckpointVersion) {
      detail = "container version " + std::to_string(version) +
               " is from a newer build";
      return LoadError::kFutureVersion;
    }

    if (version < 5) {
      // v2/v3/v4 monolith: key triple, phase, payload. v2 keyed on the
      // u32 catalog CarId; v3 widened to the 64-bit spec digest; v4 kept
      // the envelope and only grew the payload (schema == version).
      out.car = version == 2 ? r.u32() : r.u64();
      out.seed = r.u64();
      out.digest = r.u64();
      out.phase = r.u32();
      out.payload = r.bytes();
      out.payload_schema = version;
      if (!r.done()) {
        detail = "trailing bytes after v" + std::to_string(version) +
                 " payload";
        return LoadError::kBadStructure;
      }
      return LoadError::kNone;
    }

    // v5: section-tagged. Each section is (tag, version, length-prefixed
    // body) so a reader can account for sections it does not understand —
    // and reject them by name instead of misparsing.
    const std::uint32_t n_sections = r.u32();
    bool have_key = false, have_phase = false, have_state = false;
    for (std::uint32_t i = 0; i < n_sections; ++i) {
      const std::uint32_t tag = r.u32();
      const std::uint32_t section_version = r.u32();
      const util::Bytes section = r.bytes();
      util::BinaryReader s(section);
      switch (tag) {
        case kSectionKey: {
          if (have_key) {
            detail = "duplicate KEY section";
            return LoadError::kBadStructure;
          }
          if (section_version != 1) {
            detail = "KEY section version " +
                     std::to_string(section_version) + " is from a newer build";
            return LoadError::kFutureVersion;
          }
          out.car = s.u64();
          out.seed = s.u64();
          out.digest = s.u64();
          have_key = true;
          break;
        }
        case kSectionPhase: {
          if (have_phase) {
            detail = "duplicate PHS section";
            return LoadError::kBadStructure;
          }
          if (section_version != 1) {
            detail = "PHS section version " +
                     std::to_string(section_version) + " is from a newer build";
            return LoadError::kFutureVersion;
          }
          out.phase = s.u32();
          have_phase = true;
          break;
        }
        case kSectionState: {
          if (have_state) {
            detail = "duplicate STA section";
            return LoadError::kBadStructure;
          }
          if (section_version > kCheckpointPayloadSchema) {
            detail = "state schema " + std::to_string(section_version) +
                     " is from a newer build";
            return LoadError::kFutureVersion;
          }
          out.payload = std::move(section);
          out.payload_schema = section_version;
          have_state = true;
          break;
        }
        default:
          detail = "unknown section tag " + hex_u32(tag);
          return LoadError::kUnknownSection;
      }
    }
    if (!have_key || !have_phase || !have_state) {
      detail = "missing required section(s)";
      return LoadError::kBadStructure;
    }
    if (!r.done()) {
      detail = "trailing bytes after section list";
      return LoadError::kBadStructure;
    }
    return LoadError::kNone;
  } catch (const std::exception& e) {
    detail = e.what();
    return LoadError::kTorn;
  }
}

/// Parse a checkpoint filename back into its key. Current names are
/// dpr-<16hex car>-<16hex seed>-<16hex digest>.ckpt; v2-era names used a
/// decimal CarId first field.
struct NameKey {
  std::uint64_t car = 0, seed = 0, digest = 0;
  bool v2_name = false;
};
std::optional<NameKey> parse_name(const std::string& name) {
  NameKey key;
  unsigned long long car = 0, seed = 0, digest = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "dpr-%16llx-%16llx-%16llx.ckpt%n", &car,
                  &seed, &digest, &consumed) == 3 &&
      consumed == static_cast<int>(name.size()) && name.size() == 59) {
    key.car = car;
    key.seed = seed;
    key.digest = digest;
    return key;
  }
  unsigned int v2_car = 0;
  if (std::sscanf(name.c_str(), "dpr-%u-%16llx-%16llx.ckpt%n", &v2_car, &seed,
                  &digest, &consumed) == 3 &&
      consumed == static_cast<int>(name.size())) {
    key.car = v2_car;
    key.seed = seed;
    key.digest = digest;
    key.v2_name = true;
    return key;
  }
  return std::nullopt;
}

}  // namespace

const char* CheckpointStore::load_error_name(LoadError error) {
  switch (error) {
    case LoadError::kNone: return "none";
    case LoadError::kMissing: return "missing";
    case LoadError::kTorn: return "torn";
    case LoadError::kBadMagic: return "bad_magic";
    case LoadError::kFutureVersion: return "future_version";
    case LoadError::kUnknownSection: return "unknown_section";
    case LoadError::kKeyMismatch: return "key_mismatch";
    case LoadError::kBadStructure: return "bad_structure";
  }
  return "?";
}

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);  // best effort
}

std::string CheckpointStore::path_for(std::uint64_t car, std::uint64_t seed,
                                      std::uint64_t digest) const {
  char name[80];
  std::snprintf(name, sizeof name, "dpr-%016llx-%016llx-%016llx.ckpt",
                static_cast<unsigned long long>(car),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(digest));
  return dir_ + "/" + name;
}

std::string CheckpointStore::legacy_path_for(std::uint32_t car,
                                             std::uint64_t seed,
                                             std::uint64_t digest) const {
  char name[80];
  std::snprintf(name, sizeof name, "dpr-%u-%016llx-%016llx.ckpt",
                static_cast<unsigned>(car),
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(digest));
  return dir_ + "/" + name;
}

util::IoResult CheckpointStore::save(std::uint64_t car, std::uint64_t seed,
                                     std::uint64_t digest, std::uint32_t phase,
                                     std::span<const std::uint8_t> payload,
                                     std::uint32_t payload_schema) const {
  DPR_CRASH_POINT("ckpt.pre_save");
  DirLock lock(dir_);
  return save_locked(car, seed, digest, phase, payload, payload_schema,
                     /*migration=*/false);
}

util::IoResult CheckpointStore::save_locked(
    std::uint64_t car, std::uint64_t seed, std::uint64_t digest,
    std::uint32_t phase, std::span<const std::uint8_t> payload,
    std::uint32_t payload_schema, bool migration) const {
  util::BinaryWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  w.u32(3);  // sections
  {
    util::BinaryWriter key;
    key.u64(car);
    key.u64(seed);
    key.u64(digest);
    w.u32(kSectionKey);
    w.u32(1);
    w.bytes(key.data());
  }
  {
    util::BinaryWriter phs;
    phs.u32(phase);
    w.u32(kSectionPhase);
    w.u32(1);
    w.bytes(phs.data());
  }
  w.u32(kSectionState);
  w.u32(payload_schema);
  w.bytes(payload);
  w.u64(util::fnv1a64(w.data()));  // digest over everything before it

  const auto io = util::write_file_atomic(path_for(car, seed, digest),
                                          w.data());
  if (!io) return io;
  DPR_CRASH_POINT("ckpt.pre_manifest");
  bump_manifest([migration](Manifest& m) {
    ++m.saves;
    if (migration) ++m.migrations;
  });
  DPR_CRASH_POINT("ckpt.post_save");
  return io;
}

CheckpointStore::LoadResult CheckpointStore::load_at(
    const std::string& path, std::uint64_t expect_car,
    std::uint64_t expect_seed, std::uint64_t expect_digest,
    bool v2_key) const {
  LoadResult result;
  const auto data = util::read_file(path);
  if (!data) {
    result.error = LoadError::kMissing;
    return result;
  }
  Parsed parsed;
  std::string detail;
  const LoadError error = parse_checkpoint(*data, parsed, detail);
  if (error != LoadError::kNone) {
    result.error = error;
    result.detail = detail;
    result.quarantined = quarantine_file(path, detail);
    return result;
  }
  if ((v2_key && parsed.container_version != 2) ||
      (!v2_key && parsed.container_version == 2)) {
    result.error = LoadError::kKeyMismatch;
    result.detail = "container version does not match its filename era";
    result.quarantined = quarantine_file(path, result.detail);
    return result;
  }
  if (parsed.car != expect_car || parsed.seed != expect_seed ||
      parsed.digest != expect_digest) {
    result.error = LoadError::kKeyMismatch;
    result.detail = "embedded key disagrees with filename key";
    result.quarantined = quarantine_file(path, result.detail);
    return result;
  }
  Loaded loaded;
  loaded.phase = parsed.phase;
  loaded.payload = std::move(parsed.payload);
  loaded.payload_schema = parsed.payload_schema;
  loaded.migrated = parsed.container_version < kCheckpointVersion;
  result.loaded = std::move(loaded);
  return result;
}

CheckpointStore::LoadResult CheckpointStore::load(
    std::uint64_t car, std::uint64_t seed, std::uint64_t digest,
    const LegacyKey* legacy) const {
  const std::string current_path = path_for(car, seed, digest);
  LoadResult result = load_at(current_path, car, seed, digest,
                              /*v2_key=*/false);
  std::string found_path = current_path;

  // Older builds derived different keys: v3-era runs folded fewer options
  // into the digest (different filename, same 64-bit car), and v2-era
  // runs keyed on the catalog CarId outright. Only a clean miss falls
  // through — a corrupt file under the current key is already handled.
  if (!result && result.error == LoadError::kMissing && legacy != nullptr) {
    if (legacy->options_digest != digest) {
      found_path = path_for(car, seed, legacy->options_digest);
      result = load_at(found_path, car, seed, legacy->options_digest,
                       /*v2_key=*/false);
    }
    if (!result && result.error == LoadError::kMissing &&
        legacy->catalog_car.has_value()) {
      found_path = legacy_path_for(*legacy->catalog_car, seed,
                                   legacy->options_digest);
      result = load_at(found_path, *legacy->catalog_car, seed,
                       legacy->options_digest, /*v2_key=*/true);
    }
  }
  if (!result) return result;

  if (result->migrated) {
    // Migrate on load: rewrite the state as a v5 container under the
    // *current* key (payload bytes and their schema preserved verbatim)
    // and retire the legacy file, so the next resume takes the fast path.
    DirLock lock(dir_);
    const auto io =
        save_locked(car, seed, digest, result->phase, result->payload,
                    result->payload_schema, /*migration=*/true);
    if (io && found_path != current_path) {
      ::unlink(found_path.c_str());
    }
  }
  return result;
}

void CheckpointStore::remove(std::uint64_t car, std::uint64_t seed,
                             std::uint64_t digest) const {
  DPR_CRASH_POINT("ckpt.pre_remove");
  DirLock lock(dir_);
  std::error_code ec;
  const bool existed =
      std::filesystem::remove(path_for(car, seed, digest), ec);
  DPR_CRASH_POINT("ckpt.post_remove");
  if (existed && !ec) {
    bump_manifest([](Manifest& m) { ++m.removes; });
  }
}

bool CheckpointStore::quarantine_key(std::uint64_t car, std::uint64_t seed,
                                     std::uint64_t digest,
                                     const std::string& reason) const {
  return quarantine_file(path_for(car, seed, digest), reason);
}

bool CheckpointStore::quarantine_file(const std::string& path,
                                      const std::string& reason) const {
  DirLock lock(dir_);
  std::error_code ec;
  std::filesystem::create_directories(quarantine_dir(), ec);
  const std::string name = std::filesystem::path(path).filename().string();
  std::string target = quarantine_dir() + "/" + name;
  // Never clobber earlier evidence: suffix on collision.
  for (int i = 1; std::filesystem::exists(target, ec); ++i) {
    target = quarantine_dir() + "/" + name + "." + std::to_string(i);
  }
  std::filesystem::rename(path, target, ec);
  if (ec) return false;
  if (std::FILE* log = std::fopen(reasons_log_path().c_str(), "a")) {
    std::fprintf(log, "%s: %s\n", name.c_str(), reason.c_str());
    std::fclose(log);
  }
  bump_manifest([](Manifest& m) { ++m.quarantines; });
  return true;
}

CheckpointStore::Manifest CheckpointStore::manifest() const {
  Manifest m;
  const auto data = util::read_file(dir_ + "/MANIFEST");
  if (!data || data->size() < 8) return m;
  const std::size_t body = data->size() - 8;
  util::BinaryReader tail(std::span<const std::uint8_t>(data->data() + body, 8));
  if (tail.u64() !=
      util::fnv1a64(std::span<const std::uint8_t>(data->data(), body))) {
    return m;  // torn manifest: read as fresh, rebuilt on next mutation
  }
  try {
    util::BinaryReader r(std::span<const std::uint8_t>(data->data(), body));
    if (r.u32() != kManifestMagic || r.u32() != kManifestVersion) return m;
    m.generation = r.u64();
    m.saves = r.u64();
    m.removes = r.u64();
    m.quarantines = r.u64();
    m.migrations = r.u64();
    if (!r.done()) return Manifest{};
  } catch (const std::exception&) {
    return Manifest{};
  }
  return m;
}

void CheckpointStore::bump_manifest(
    const std::function<void(Manifest&)>& apply) const {
  Manifest m = manifest();
  ++m.generation;
  apply(m);
  util::BinaryWriter w;
  w.u32(kManifestMagic);
  w.u32(kManifestVersion);
  w.u64(m.generation);
  w.u64(m.saves);
  w.u64(m.removes);
  w.u64(m.quarantines);
  w.u64(m.migrations);
  w.u64(util::fnv1a64(w.data()));
  // Best effort: the manifest is observability, not a correctness gate.
  util::write_file_atomic(dir_ + "/MANIFEST", w.data());
}

CheckpointStore::HealReport CheckpointStore::heal() const {
  HealReport report;
  std::error_code ec;
  std::vector<std::filesystem::path> ckpts;
  std::vector<std::filesystem::path> tmps;
  for (std::filesystem::directory_iterator it(dir_, ec), end;
       !ec && it != end; it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() > 5 && name.ends_with(".ckpt")) {
      ckpts.push_back(it->path());
    } else if (name.find(".ckpt.tmp.") != std::string::npos) {
      tmps.push_back(it->path());
    }
  }

  // Temp files belong to a live writer mid-rename or to a dead one; the
  // pid suffix says which. Dead-writer leftovers are always garbage (the
  // rename that would have consumed them can no longer happen).
  for (const auto& tmp : tmps) {
    const std::string name = tmp.filename().string();
    const auto dot = name.rfind('.');
    const long pid = std::atol(name.c_str() + dot + 1);
    if (pid <= 0 || pid == static_cast<long>(::getpid())) continue;
    if (::kill(static_cast<pid_t>(pid), 0) != 0 && errno == ESRCH) {
      std::error_code rm_ec;
      if (std::filesystem::remove(tmp, rm_ec)) ++report.tmp_swept;
    }
  }

  for (const auto& path : ckpts) {
    ++report.scanned;
    const std::string name = path.filename().string();
    const auto data = util::read_file(path.string());
    if (!data) continue;  // raced with a concurrent remove
    Parsed parsed;
    std::string detail;
    const LoadError error = parse_checkpoint(*data, parsed, detail);
    if (error != LoadError::kNone) {
      if (quarantine_file(path.string(), detail)) ++report.quarantined;
      continue;
    }
    if (const auto key = parse_name(name)) {
      const bool era_ok = key->v2_name == (parsed.container_version == 2);
      if (!era_ok || parsed.car != key->car || parsed.seed != key->seed ||
          parsed.digest != key->digest) {
        if (quarantine_file(path.string(),
                            "embedded key disagrees with filename key")) {
          ++report.quarantined;
        }
        continue;
      }
    }
    if (parsed.container_version < kCheckpointVersion) {
      ++report.legacy;  // left in place: migrates on first load
    } else {
      ++report.healthy;
    }
  }
  return report;
}

}  // namespace dpr::core
