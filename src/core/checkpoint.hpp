#pragma once
// On-disk checkpoint store for campaign resume (ISSUE 4).
//
// One file per (car-spec digest, seed, options-digest) key. After each
// completed pipeline phase the campaign overwrites its file with the serialized
// state needed to resume at the *next* phase, so a killed process loses
// at most one phase of work. The file format is versioned, carries the
// key (a checkpoint written under different options never resumes a
// mismatched run) and ends in an FNV-1a digest that rejects files
// truncated by a crash; writes are atomic (temp file + rename).

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "util/checkpoint.hpp"

namespace dpr::core {

class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if missing; save() fails soft when the
  /// directory cannot be created.
  explicit CheckpointStore(std::string dir);

  struct Loaded {
    std::uint32_t phase = 0;  ///< index of the last *completed* phase
    util::Bytes payload;      ///< campaign state after that phase
  };

  /// The checkpoint file backing a key (for tests, CI and cleanup).
  /// `car` is the vehicle::spec_digest of the campaign's car, so catalog
  /// and generated cars share one uniform 64-bit key space.
  std::string path_for(std::uint64_t car, std::uint64_t seed,
                       std::uint64_t digest) const;

  /// Persist `payload` as the state after `phase`. Returns false on any
  /// I/O failure — the campaign then simply runs on uncheckpointed.
  bool save(std::uint64_t car, std::uint64_t seed, std::uint64_t digest,
            std::uint32_t phase,
            std::span<const std::uint8_t> payload) const;

  /// Load and validate the checkpoint for a key. nullopt when the file is
  /// missing, truncated, corrupt, from another format version, or written
  /// under a different (car, seed, options) key.
  std::optional<Loaded> load(std::uint64_t car, std::uint64_t seed,
                             std::uint64_t digest) const;

  /// Drop the checkpoint for a key (the campaign ran to completion).
  void remove(std::uint64_t car, std::uint64_t seed,
              std::uint64_t digest) const;

 private:
  std::string dir_;
};

}  // namespace dpr::core
