#pragma once
// On-disk checkpoint store for campaign resume (ISSUE 4; durability,
// schema evolution and self-healing reworked in ISSUE 9).
//
// One file per (car-spec digest, seed, options-digest) key. After each
// completed pipeline phase the campaign overwrites its file with the
// serialized state needed to resume at the *next* phase, so a killed
// process loses at most one phase of work.
//
// Container format v5 is self-describing: a section-tagged list (KEY /
// PHS / STA), each section carrying its own version, wrapped in the
// usual magic + trailing FNV-1a digest. Older containers (v2 u32-CarId
// keys, v3 spec-digest keys, v4 NM-era payloads) still load through
// forward-migration readers and are rewritten as v5 on first use, so
// `--resume` works across builds. Files from a *newer* build (unknown
// container version, unknown section, newer payload schema) are rejected
// cleanly with a reason, never parsed as UB.
//
// The store is also self-healing: heal() scans the directory, quarantines
// torn/corrupt/key-mismatched files into quarantine/ with a logged
// reason, and sweeps temp files orphaned by dead writers. A per-directory
// MANIFEST (generation counter + save/remove/quarantine/migration
// tallies) and a flock(2) advisory lock around every mutating operation
// make the directory safe for a future dpr::serviced to own concurrently
// with CLI runs.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>

#include "util/checkpoint.hpp"

namespace dpr::core {

/// Container-format constants, exported for tests and tools that
/// synthesize or inspect raw checkpoint files.
inline constexpr std::uint32_t kCheckpointMagic = 0x43525044;  // "DPRC"
/// Current container version (the file envelope).
inline constexpr std::uint32_t kCheckpointVersion = 5;
/// Current campaign-state schema carried by the STA section. Matches the
/// v4 monolithic layout: the ISSUE 9 rework changed the envelope, not the
/// campaign payload, so v4 files migrate by re-wrapping alone.
inline constexpr std::uint32_t kCheckpointPayloadSchema = 4;
/// v5 section tags (ASCII in a u32, zero-padded).
inline constexpr std::uint32_t kSectionKey = 0x0059454B;    // "KEY"
inline constexpr std::uint32_t kSectionPhase = 0x00534850;  // "PHS"
inline constexpr std::uint32_t kSectionState = 0x00415453;  // "STA"

class CheckpointStore {
 public:
  /// Creates `dir` (and parents) if missing; save() fails soft when the
  /// directory cannot be created.
  explicit CheckpointStore(std::string dir);

  /// Why a load produced no state (fleet logs print the name so a resume
  /// that falls back to fresh says why).
  enum class LoadError {
    kNone,           ///< success
    kMissing,        ///< no file for this key (fresh run — not a fault)
    kTorn,           ///< truncated / trailing-digest mismatch (torn write)
    kBadMagic,       ///< not a checkpoint file
    kFutureVersion,  ///< container/section/schema from a newer build
    kUnknownSection, ///< v5 container with a section this build lacks
    kKeyMismatch,    ///< file content disagrees with its filename key
    kBadStructure,   ///< parsed but malformed (duplicate/missing section)
  };
  static const char* load_error_name(LoadError error);

  struct Loaded {
    std::uint32_t phase = 0;  ///< index of the last *completed* phase
    util::Bytes payload;      ///< campaign state after that phase
    /// Schema of `payload` (2/3/4): the campaign's restore path switches
    /// on this, so a migrated container still decodes correctly.
    std::uint32_t payload_schema = kCheckpointPayloadSchema;
    /// True when the state came out of a v2/v3/v4 container (and was
    /// rewritten as v5 under the current key) — the campaign counts it
    /// as ckpt_salvaged.
    bool migrated = false;
  };

  /// optional-like load outcome that also carries the failure reason.
  struct LoadResult {
    std::optional<Loaded> loaded;
    LoadError error = LoadError::kNone;
    std::string detail;        ///< human-readable reason ("" on success)
    bool quarantined = false;  ///< offending file moved to quarantine/

    bool has_value() const { return loaded.has_value(); }
    explicit operator bool() const { return has_value(); }
    const Loaded* operator->() const { return &*loaded; }
    const Loaded& operator*() const { return *loaded; }
  };

  /// Alternate keys for files written by older builds: the v2/v3-era
  /// options-digest formula (no NM folds) and, for catalog cars, the u32
  /// CarId that keyed v2 files before spec digests existed.
  struct LegacyKey {
    std::uint64_t options_digest = 0;
    std::optional<std::uint32_t> catalog_car;
  };

  /// The checkpoint file backing a key (for tests, CI and cleanup).
  /// `car` is the vehicle::spec_digest of the campaign's car, so catalog
  /// and generated cars share one uniform 64-bit key space.
  std::string path_for(std::uint64_t car, std::uint64_t seed,
                       std::uint64_t digest) const;
  /// v2-era filename (decimal CarId key) — where a legacy lookup searches.
  std::string legacy_path_for(std::uint32_t car, std::uint64_t seed,
                              std::uint64_t digest) const;

  /// Persist `payload` as the state after `phase`. On failure the result
  /// names the failing stage + errno — the campaign then simply runs on
  /// uncheckpointed.
  util::IoResult save(
      std::uint64_t car, std::uint64_t seed, std::uint64_t digest,
      std::uint32_t phase, std::span<const std::uint8_t> payload,
      std::uint32_t payload_schema = kCheckpointPayloadSchema) const;

  /// Load and validate the checkpoint for a key. Tries the current
  /// filename first; with `legacy` set it then searches the v3-era name
  /// (old digest formula) and the v2-era name (u32 CarId), migrating any
  /// hit to a v5 container under the current key. A file that exists but
  /// cannot be trusted (torn, corrupt, key-mismatched) is quarantined and
  /// reported, never returned.
  LoadResult load(std::uint64_t car, std::uint64_t seed, std::uint64_t digest,
                  const LegacyKey* legacy = nullptr) const;

  /// Drop the checkpoint for a key (the campaign ran to completion).
  void remove(std::uint64_t car, std::uint64_t seed,
              std::uint64_t digest) const;

  /// Move the file backing a key into quarantine/ with `reason` logged.
  /// The campaign uses this when a structurally valid checkpoint carries
  /// a payload its restore path rejects.
  bool quarantine_key(std::uint64_t car, std::uint64_t seed,
                      std::uint64_t digest, const std::string& reason) const;

  /// Per-directory bookkeeping, persisted in MANIFEST and bumped (under
  /// the advisory lock) by every mutating operation.
  struct Manifest {
    std::uint64_t generation = 0;  ///< total mutations of the directory
    std::uint64_t saves = 0;
    std::uint64_t removes = 0;
    std::uint64_t quarantines = 0;
    std::uint64_t migrations = 0;
  };
  /// Read-only snapshot (a corrupt or missing MANIFEST reads as zeros and
  /// is rebuilt by the next mutation).
  Manifest manifest() const;

  struct HealReport {
    std::size_t scanned = 0;      ///< *.ckpt files examined
    std::size_t healthy = 0;      ///< valid v5 files left in place
    std::size_t legacy = 0;       ///< valid v2/v3/v4 files (migrate on load)
    std::size_t quarantined = 0;  ///< torn/corrupt/mismatched files moved
    std::size_t tmp_swept = 0;    ///< temp files of dead writers removed
  };
  /// Scan the directory once and quarantine everything untrustworthy.
  /// FleetRunner calls this before a resume fan-out; it is deliberately
  /// not part of every open so large fleets don't rescan per campaign.
  HealReport heal() const;

  const std::string& dir() const { return dir_; }
  std::string quarantine_dir() const { return dir_ + "/quarantine"; }
  /// Append-only reasons log inside quarantine/ ("<file>: <reason>").
  std::string reasons_log_path() const {
    return quarantine_dir() + "/REASONS.log";
  }

 private:
  LoadResult load_at(const std::string& path, std::uint64_t expect_car,
                     std::uint64_t expect_seed, std::uint64_t expect_digest,
                     bool v2_key) const;
  util::IoResult save_locked(std::uint64_t car, std::uint64_t seed,
                             std::uint64_t digest, std::uint32_t phase,
                             std::span<const std::uint8_t> payload,
                             std::uint32_t payload_schema,
                             bool migration) const;
  bool quarantine_file(const std::string& path,
                       const std::string& reason) const;
  void bump_manifest(const std::function<void(Manifest&)>& apply) const;

  std::string dir_;
};

}  // namespace dpr::core
