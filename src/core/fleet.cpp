#include "core/fleet.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <string>

#include "core/checkpoint.hpp"
#include "util/thread_pool.hpp"

namespace dpr::core {

namespace {

std::size_t sum_over(const std::vector<CampaignReport>& reports,
                     std::size_t (CampaignReport::*fn)() const) {
  std::size_t total = 0;
  for (const auto& report : reports) total += (report.*fn)();
  return total;
}

}  // namespace

std::size_t FleetSummary::total_signals() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.signals.size();
  return total;
}

std::size_t FleetSummary::total_formula_signals() const {
  return sum_over(reports, &CampaignReport::formula_signals);
}

std::size_t FleetSummary::total_enum_signals() const {
  return sum_over(reports, &CampaignReport::enum_signals);
}

std::size_t FleetSummary::total_gp_correct() const {
  return sum_over(reports, &CampaignReport::gp_correct);
}

std::size_t FleetSummary::total_ecrs() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.ecrs.size();
  return total;
}

std::size_t FleetSummary::cars_ok() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.completed ? 1 : 0;
  return total;
}

std::size_t FleetSummary::cars_failed() const {
  return reports.size() - cars_ok();
}

util::TransactStats FleetSummary::total_transactions() const {
  util::TransactStats total;
  for (const auto& report : reports) total += report.transactions;
  return total;
}

FleetRunner::FleetRunner(FleetOptions options)
    : options_(std::move(options)),
      threads_(options_.fleet_threads == 1
                   ? 1
                   : util::ThreadPool::resolve(options_.fleet_threads)) {}

namespace {

/// Degraded quarantine profile: half the capture window (floor 2
/// sim-seconds) and no inference/baselines — the cheapest configuration
/// that still produces a full traffic census, so a car that failed on a
/// deadline or a resource wall gets a real second chance instead of an
/// identical re-run. Watchdog/stall settings are deliberately kept: a
/// deterministically wedged phase must fail the retry too.
CampaignOptions degraded_options(CampaignOptions options) {
  options.live_window =
      std::max<util::SimTime>(2 * util::kSecond, options.live_window / 2);
  options.run_inference = false;
  options.run_baselines = false;
  return options;
}

}  // namespace

FleetSummary FleetRunner::run_impl(
    std::size_t count,
    const std::function<const vehicle::CarSpec*(std::size_t)>& spec_for,
    const std::function<std::string(std::size_t)>& fallback_label) const {
  FleetSummary summary;
  summary.reports.resize(count);
  summary.threads_used = count <= 1 ? 1 : threads_;

  const auto start = std::chrono::steady_clock::now();
  if (options_.campaign.resume && !options_.campaign.checkpoint_dir.empty()) {
    // One self-healing scan before the fan-out (not per campaign — a
    // 1024-car fleet must not rescan the directory 1024 times): torn,
    // corrupt or key-mismatched files are quarantined with a logged
    // reason, so every campaign below either resumes from a trustworthy
    // checkpoint or starts fresh — never fails its car over a bad file.
    const CheckpointStore store(options_.campaign.checkpoint_dir);
    const auto healed = store.heal();
    summary.ckpt_quarantined += healed.quarantined;
  }
  auto run_one = [&](std::size_t i, util::ThreadPool* pool,
                     const CampaignOptions& base_options) {
    CampaignOptions campaign_options = base_options;
    if (pool != nullptr && options_.share_thread_budget) {
      campaign_options.infer_pool = pool;
    }
    // Graceful degradation: one bad vehicle must never kill the fleet (or
    // escape into a ThreadPool worker, which would terminate the process).
    // A throwing campaign becomes a failed per-car report slot.
    const vehicle::CarSpec* spec = nullptr;
    try {
      spec = spec_for(i);
      if (spec == nullptr) throw std::out_of_range("unknown car id");
      Campaign campaign(*spec, campaign_options);
      campaign.run();
      summary.reports[i] = campaign.report();
    } catch (const std::exception& e) {
      summary.reports[i] = CampaignReport{};
      summary.reports[i].spec_digest =
          spec != nullptr ? vehicle::spec_digest(*spec) : 0;
      summary.reports[i].car_label =
          spec != nullptr ? spec->label : fallback_label(i);
      summary.reports[i].completed = false;
      summary.reports[i].failure_reason = e.what();
    } catch (...) {
      summary.reports[i] = CampaignReport{};
      summary.reports[i].spec_digest =
          spec != nullptr ? vehicle::spec_digest(*spec) : 0;
      summary.reports[i].car_label =
          spec != nullptr ? spec->label : fallback_label(i);
      summary.reports[i].completed = false;
      summary.reports[i].failure_reason = "unknown exception";
    }
  };

  if (summary.threads_used <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      run_one(i, nullptr, options_.campaign);
    }
  } else {
    util::ThreadPool pool(summary.threads_used);
    pool.parallel_for(
        count, [&](std::size_t i) { run_one(i, &pool, options_.campaign); });
  }
  if (options_.quarantine_retry) {
    // Supervised quarantine pass: each failed car gets exactly one serial
    // re-run under the degraded profile. Either way the first failure
    // stays on record — "recovered after retry" on success, both reasons
    // on a second failure.
    for (std::size_t i = 0; i < count; ++i) {
      if (summary.reports[i].completed) continue;
      const std::string first_reason = summary.reports[i].failure_reason;
      run_one(i, nullptr, degraded_options(options_.campaign));
      if (summary.reports[i].completed) {
        summary.reports[i].failure_reason =
            first_reason + "; recovered after retry";
      } else {
        summary.reports[i].failure_reason =
            first_reason + "; retry: " + summary.reports[i].failure_reason;
      }
    }
  }
  summary.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  for (const auto& report : summary.reports) {
    summary.phase_totals += report.phases;
    summary.ckpt_salvaged += report.ckpt_salvaged;
    summary.ckpt_quarantined += report.ckpt_quarantined;
  }
  return summary;
}

FleetSummary FleetRunner::run(
    const std::vector<vehicle::CarSpec>& specs) const {
  return run_impl(
      specs.size(), [&](std::size_t i) { return &specs[i]; },
      [](std::size_t i) { return "car#" + std::to_string(i); });
}

FleetSummary FleetRunner::run(const std::vector<vehicle::CarId>& cars) const {
  return run_impl(
      cars.size(),
      [&](std::size_t i) -> const vehicle::CarSpec* {
        for (const auto& spec : vehicle::catalog()) {
          if (spec.id == cars[i]) return &spec;
        }
        return nullptr;
      },
      [&](std::size_t i) {
        return "car#" + std::to_string(static_cast<int>(cars[i]));
      });
}

FleetSummary FleetRunner::run_catalog() const {
  return run(vehicle::catalog());
}

std::string report_signature(const CampaignReport& report) {
  std::ostringstream out;
  out << std::hexfloat;  // doubles round-trip bit-exactly

  out << "car=" << report.car_label << ";census=" << report.census.single_frames
      << ',' << report.census.first_frames << ','
      << report.census.consecutive_frames << ','
      << report.census.flow_control_frames << ','
      << report.census.vwtp_data_last << ',' << report.census.vwtp_data_more
      << ',' << report.census.vwtp_control << ',' << report.census.other
      << ";messages=" << report.messages_assembled
      << ";offset=" << report.alignment_offset
      << ";anchors=" << report.alignment_anchors << '\n';

  for (const auto& s : report.signals) {
    out << "sig " << s.is_kwp << ' ' << s.did << ' '
        << static_cast<int>(s.local_id) << ' ' << s.esv_index << " '"
        << s.semantic_name << "' '" << s.request_message
        << "' enum=" << s.is_enum << " n=" << s.dataset.points.size()
        << " vars=" << s.dataset.n_vars;
    for (const auto& point : s.dataset.points) {
      out << " (";
      for (double x : point.xs) out << x << ',';
      out << point.y << '@' << point.x_time << '/' << point.y_time << ')';
    }
    if (s.gp) {
      out << " gp='" << s.gp->formula << "' fit=" << s.gp->fitness
          << " gen=" << s.gp->generations_run << " conv=" << s.gp->converged;
    }
    const auto fit_sig = [&out](const char* tag,
                                const regress::FitResult& fit) {
      out << ' ' << tag << "='" << fit.formula << "'";
      for (double c : fit.coefficients) out << ' ' << c;
    };
    if (s.linear) fit_sig("lin", *s.linear);
    if (s.polynomial) fit_sig("poly", *s.polynomial);
    out << " truth='" << s.truth_formula << "' tenum=" << s.truth_is_enum
        << " ok=" << s.gp_correct << s.linear_correct << s.polynomial_correct
        << '\n';
  }
  for (const auto& e : report.ecrs) {
    out << "ecr " << e.is_uds << ' ' << e.id << " '" << e.semantic_name
        << "' seq=";
    for (auto p : e.param_sequence) out << static_cast<int>(p) << ',';
    out << " state=" << util::to_hex(e.adjustment_state)
        << " p3=" << e.three_message_pattern << " ok=" << e.matches_truth
        << '\n';
  }
  out << "ocr=" << report.ocr_stats.strings_read << '/'
      << report.ocr_stats.strings_correct << '/'
      << report.ocr_stats.char_errors << '/'
      << report.ocr_stats.decimal_drops << '\n';
  out << "ok=" << report.completed << " reason='" << report.failure_reason
      << "' tx=" << report.transactions.transactions << '/'
      << report.transactions.retries << '/'
      << report.transactions.busy_retries << '/'
      << report.transactions.pending_waits << '/'
      << report.transactions.failures;
  for (const auto& f : report.failed_transactions) {
    out << " fail(" << f.is_kwp << ',' << f.id << ")=" << f.failures;
  }
  out << " bus=" << report.bus_faults.delivered << '/'
      << report.bus_faults.dropped << '/' << report.bus_faults.corrupted
      << '/' << report.bus_faults.duplicated << '/'
      << report.bus_faults.jittered << '/' << report.bus_faults.bursts;
  out << " sess=" << report.session_stats.keepalives << '/'
      << report.session_stats.sessions_lost << '/'
      << report.session_stats.sessions_restored << '/'
      << report.session_stats.reissued_requests << '/'
      << report.session_stats.recovery_failures
      << " resets=" << report.ecu_resets << '/' << report.ecu_s3_expiries;
  if (report.nm_enabled) {
    // Only emitted when NM was armed: NM-off reports stay byte-identical
    // to pre-NM builds (the session_stats sleep counters are zero and
    // unrepresented in that case too).
    out << " nm=1 sleeps=" << report.nm.sleeps << '/' << report.nm.wakeups
        << '/' << report.nm.frames_lost_to_sleep
        << " limps=" << report.nm.limp_episodes << '/'
        << report.nm.ring_repairs << " nmtx=" << report.nm.nm_frames_sent
        << " slrec=" << report.session_stats.bus_sleeps << '/'
        << report.session_stats.sleep_recoveries;
  }
  out << '\n';
  return out.str();
}

std::string fleet_signature(const FleetSummary& summary) {
  std::string signature;
  for (const auto& report : summary.reports) {
    signature += report_signature(report);
  }
  return signature;
}

}  // namespace dpr::core
