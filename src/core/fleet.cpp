#include "core/fleet.hpp"

#include <chrono>
#include <exception>
#include <sstream>
#include <string>

#include "util/thread_pool.hpp"

namespace dpr::core {

namespace {

std::size_t sum_over(const std::vector<CampaignReport>& reports,
                     std::size_t (CampaignReport::*fn)() const) {
  std::size_t total = 0;
  for (const auto& report : reports) total += (report.*fn)();
  return total;
}

}  // namespace

std::size_t FleetSummary::total_signals() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.signals.size();
  return total;
}

std::size_t FleetSummary::total_formula_signals() const {
  return sum_over(reports, &CampaignReport::formula_signals);
}

std::size_t FleetSummary::total_enum_signals() const {
  return sum_over(reports, &CampaignReport::enum_signals);
}

std::size_t FleetSummary::total_gp_correct() const {
  return sum_over(reports, &CampaignReport::gp_correct);
}

std::size_t FleetSummary::total_ecrs() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.ecrs.size();
  return total;
}

std::size_t FleetSummary::cars_ok() const {
  std::size_t total = 0;
  for (const auto& report : reports) total += report.completed ? 1 : 0;
  return total;
}

std::size_t FleetSummary::cars_failed() const {
  return reports.size() - cars_ok();
}

util::TransactStats FleetSummary::total_transactions() const {
  util::TransactStats total;
  for (const auto& report : reports) total += report.transactions;
  return total;
}

FleetRunner::FleetRunner(FleetOptions options)
    : options_(std::move(options)),
      threads_(options_.fleet_threads == 1
                   ? 1
                   : util::ThreadPool::resolve(options_.fleet_threads)) {}

FleetSummary FleetRunner::run(const std::vector<vehicle::CarId>& cars) const {
  FleetSummary summary;
  summary.reports.resize(cars.size());
  summary.threads_used = cars.size() <= 1 ? 1 : threads_;

  const auto start = std::chrono::steady_clock::now();
  auto run_one = [&](std::size_t i, util::ThreadPool* pool) {
    CampaignOptions campaign_options = options_.campaign;
    if (pool != nullptr && options_.share_thread_budget) {
      campaign_options.infer_pool = pool;
    }
    // Graceful degradation: one bad vehicle must never kill the fleet (or
    // escape into a ThreadPool worker, which would terminate the process).
    // A throwing campaign becomes a failed per-car report slot.
    try {
      Campaign campaign(cars[i], campaign_options);
      campaign.run();
      summary.reports[i] = campaign.report();
    } catch (const std::exception& e) {
      summary.reports[i] = CampaignReport{};
      summary.reports[i].car = cars[i];
      summary.reports[i].car_label =
          "car#" + std::to_string(static_cast<int>(cars[i]));
      summary.reports[i].completed = false;
      summary.reports[i].failure_reason = e.what();
    } catch (...) {
      summary.reports[i] = CampaignReport{};
      summary.reports[i].car = cars[i];
      summary.reports[i].car_label =
          "car#" + std::to_string(static_cast<int>(cars[i]));
      summary.reports[i].completed = false;
      summary.reports[i].failure_reason = "unknown exception";
    }
  };

  if (summary.threads_used <= 1) {
    for (std::size_t i = 0; i < cars.size(); ++i) run_one(i, nullptr);
  } else {
    util::ThreadPool pool(summary.threads_used);
    pool.parallel_for(cars.size(),
                      [&](std::size_t i) { run_one(i, &pool); });
  }
  if (options_.quarantine_retry) {
    // Supervised quarantine pass: each failed car gets exactly one serial
    // re-run. With checkpointing enabled the retry resumes from the last
    // completed phase; a second failure preserves both reasons.
    for (std::size_t i = 0; i < cars.size(); ++i) {
      if (summary.reports[i].completed) continue;
      const std::string first_reason = summary.reports[i].failure_reason;
      run_one(i, nullptr);
      if (!summary.reports[i].completed) {
        summary.reports[i].failure_reason =
            first_reason + "; retry: " + summary.reports[i].failure_reason;
      }
    }
  }
  summary.wall_s = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  for (const auto& report : summary.reports) {
    summary.phase_totals += report.phases;
  }
  return summary;
}

FleetSummary FleetRunner::run_catalog() const {
  std::vector<vehicle::CarId> cars;
  cars.reserve(vehicle::catalog().size());
  for (const auto& spec : vehicle::catalog()) cars.push_back(spec.id);
  return run(cars);
}

std::string report_signature(const CampaignReport& report) {
  std::ostringstream out;
  out << std::hexfloat;  // doubles round-trip bit-exactly

  out << "car=" << report.car_label << ";census=" << report.census.single_frames
      << ',' << report.census.first_frames << ','
      << report.census.consecutive_frames << ','
      << report.census.flow_control_frames << ','
      << report.census.vwtp_data_last << ',' << report.census.vwtp_data_more
      << ',' << report.census.vwtp_control << ',' << report.census.other
      << ";messages=" << report.messages_assembled
      << ";offset=" << report.alignment_offset
      << ";anchors=" << report.alignment_anchors << '\n';

  for (const auto& s : report.signals) {
    out << "sig " << s.is_kwp << ' ' << s.did << ' '
        << static_cast<int>(s.local_id) << ' ' << s.esv_index << " '"
        << s.semantic_name << "' '" << s.request_message
        << "' enum=" << s.is_enum << " n=" << s.dataset.points.size()
        << " vars=" << s.dataset.n_vars;
    for (const auto& point : s.dataset.points) {
      out << " (";
      for (double x : point.xs) out << x << ',';
      out << point.y << '@' << point.x_time << '/' << point.y_time << ')';
    }
    if (s.gp) {
      out << " gp='" << s.gp->formula << "' fit=" << s.gp->fitness
          << " gen=" << s.gp->generations_run << " conv=" << s.gp->converged;
    }
    const auto fit_sig = [&out](const char* tag,
                                const regress::FitResult& fit) {
      out << ' ' << tag << "='" << fit.formula << "'";
      for (double c : fit.coefficients) out << ' ' << c;
    };
    if (s.linear) fit_sig("lin", *s.linear);
    if (s.polynomial) fit_sig("poly", *s.polynomial);
    out << " truth='" << s.truth_formula << "' tenum=" << s.truth_is_enum
        << " ok=" << s.gp_correct << s.linear_correct << s.polynomial_correct
        << '\n';
  }
  for (const auto& e : report.ecrs) {
    out << "ecr " << e.is_uds << ' ' << e.id << " '" << e.semantic_name
        << "' seq=";
    for (auto p : e.param_sequence) out << static_cast<int>(p) << ',';
    out << " state=" << util::to_hex(e.adjustment_state)
        << " p3=" << e.three_message_pattern << " ok=" << e.matches_truth
        << '\n';
  }
  out << "ocr=" << report.ocr_stats.strings_read << '/'
      << report.ocr_stats.strings_correct << '/'
      << report.ocr_stats.char_errors << '/'
      << report.ocr_stats.decimal_drops << '\n';
  out << "ok=" << report.completed << " reason='" << report.failure_reason
      << "' tx=" << report.transactions.transactions << '/'
      << report.transactions.retries << '/'
      << report.transactions.busy_retries << '/'
      << report.transactions.pending_waits << '/'
      << report.transactions.failures;
  for (const auto& f : report.failed_transactions) {
    out << " fail(" << f.is_kwp << ',' << f.id << ")=" << f.failures;
  }
  out << " bus=" << report.bus_faults.delivered << '/'
      << report.bus_faults.dropped << '/' << report.bus_faults.corrupted
      << '/' << report.bus_faults.duplicated << '/'
      << report.bus_faults.jittered << '/' << report.bus_faults.bursts;
  out << " sess=" << report.session_stats.keepalives << '/'
      << report.session_stats.sessions_lost << '/'
      << report.session_stats.sessions_restored << '/'
      << report.session_stats.reissued_requests << '/'
      << report.session_stats.recovery_failures
      << " resets=" << report.ecu_resets << '/' << report.ecu_s3_expiries
      << '\n';
  return out.str();
}

std::string fleet_signature(const FleetSummary& summary) {
  std::string signature;
  for (const auto& report : summary.reports) {
    signature += report_signature(report);
  }
  return signature;
}

}  // namespace dpr::core
