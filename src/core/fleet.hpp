#pragma once
// Fleet-level campaign parallelism: every car in the Table 3 catalog is a
// fully independent reverse-engineering problem (own bus, clock, vehicle,
// tool, OCR state, RNG streams), so the 18-campaign reproduction fans out
// over the work-stealing util::ThreadPool one level above the per-signal
// GP batches.
//
// Thread budget: the fleet owns a single pool and, by default, injects it
// into each campaign (CampaignOptions::infer_pool) so inner GP batches
// re-enter the *same* workers instead of spawning their own — one shared
// budget for the whole machine, never fleet_threads x infer_threads
// oversubscription. parallel_for is caller-participating, so the nesting
// is deadlock-free.
//
// Determinism: a campaign's findings depend only on (car, options, seed) —
// never on which worker runs it or how GP jobs interleave — so the fleet
// report list is bit-identical to the plain serial loop for every thread
// count. Results are collected concurrently into a pre-sized slot per car
// and always reported in input (catalog) order.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/campaign.hpp"
#include "vehicle/catalog.hpp"

namespace dpr::core {

struct FleetOptions {
  /// Concurrent campaigns: 0 = hardware concurrency, 1 = serial loop
  /// (no pool at all).
  std::size_t fleet_threads = 0;
  /// Inject the fleet pool into each campaign's GP batch (shared thread
  /// budget). When false, campaigns keep their own
  /// CampaignOptions::infer_threads behavior — only useful for budget
  /// ablations; it can oversubscribe the machine.
  bool share_thread_budget = true;
  /// Per-campaign options (seed, windows, GP config, ...), applied to
  /// every car.
  CampaignOptions campaign;
  /// After the main pass, re-run every failed car once, serially, in
  /// quarantine (no pool — a wedged campaign cannot starve healthy ones)
  /// under a degraded profile: live_window halved (floor 2 sim-seconds),
  /// GP inference and baselines off. A retry that succeeds keeps its
  /// first failure on record ("<first>; recovered after retry"); one that
  /// fails again keeps both reasons ("<first>; retry: <second>").
  /// Everything about the retry is deterministic (serial, fixed option
  /// transform), so fleet signatures stay bit-identical run to run and
  /// across thread counts.
  bool quarantine_retry = true;
};

struct FleetSummary {
  std::vector<CampaignReport> reports;  // one per input car, input order
  std::size_t threads_used = 1;
  double wall_s = 0.0;                  // end-to-end fleet wall clock
  PhaseTimings phase_totals;            // summed over all campaigns
  /// Checkpoint-store health over the whole run (ISSUE 9): checkpoints
  /// recovered via cross-version migration, and files quarantined either
  /// by the pre-resume heal() scan or by individual campaigns. Excluded
  /// from fleet_signature() — self-healing must not change results.
  std::size_t ckpt_salvaged = 0;
  std::size_t ckpt_quarantined = 0;

  // Headline totals (the paper's "570 reverse-engineered messages").
  std::size_t total_signals() const;
  std::size_t total_formula_signals() const;
  std::size_t total_enum_signals() const;
  std::size_t total_gp_correct() const;
  std::size_t total_ecrs() const;

  // Per-car ok/failed status: a campaign that threw is captured into its
  // report slot (completed = false) instead of killing the fleet.
  std::size_t cars_ok() const;
  std::size_t cars_failed() const;
  /// Summed retry/timeout counters over every campaign.
  util::TransactStats total_transactions() const;
};

class FleetRunner {
 public:
  explicit FleetRunner(FleetOptions options = {});

  /// Number of concurrent campaigns a run() will use.
  std::size_t threads() const { return threads_; }

  /// Run one campaign per spec, concurrently up to the thread budget.
  /// Accepts any mix of catalog specs and vehicle::Generator output.
  FleetSummary run(const std::vector<vehicle::CarSpec>& specs) const;

  /// Catalog convenience: resolve each id and run. An id outside the
  /// catalog becomes a failed report slot, never a fleet abort.
  FleetSummary run(const std::vector<vehicle::CarId>& cars) const;

  /// Run the full 18-car catalog.
  FleetSummary run_catalog() const;

 private:
  /// Shared driver: `spec_for(i)` resolves slot i's spec (nullptr when
  /// unresolvable — e.g. an id outside the catalog — which becomes a
  /// failed slot labeled by `fallback_label(i)`).
  FleetSummary run_impl(
      std::size_t count,
      const std::function<const vehicle::CarSpec*(std::size_t)>& spec_for,
      const std::function<std::string(std::size_t)>& fallback_label) const;

  FleetOptions options_;
  std::size_t threads_ = 1;
};

/// Canonical serialization of everything semantically meaningful in a
/// report — census, alignment, every finding (datasets bit-exact via
/// hexfloat), scores, OCR stats — *excluding* wall-clock timings. Two
/// runs produced the same result iff their signatures compare equal;
/// the determinism tests and bench_fleet compare these strings.
std::string report_signature(const CampaignReport& report);

/// Concatenated per-car signatures of a whole fleet run.
std::string fleet_signature(const FleetSummary& summary);

}  // namespace dpr::core
