#include "core/obd_experiment.hpp"

#include <algorithm>
#include <map>

#include "can/sniffer.hpp"
#include "cps/analyzer.hpp"
#include "cps/camera.hpp"
#include "cps/clicker.hpp"
#include "cps/ocr.hpp"
#include "diagtool/tool.hpp"
#include "frames/analysis.hpp"
#include "obd/pid.hpp"
#include "screenshot/extract.hpp"
#include "screenshot/filter.hpp"
#include "vehicle/vehicle.hpp"

namespace dpr::core {

std::size_t ObdExperimentReport::correct_count() const {
  return static_cast<std::size_t>(
      std::count_if(findings.begin(), findings.end(),
                    [](const ObdFinding& f) { return f.correct; }));
}

ObdExperimentReport run_obd_experiment(ObdExperimentOptions options) {
  util::SimClock clock;
  can::CanBus bus(clock);
  // The "vehicle simulator" of §4.2: any ISO-TP vehicle whose engine ECU
  // answers SAE J1979 mode-01 requests.
  vehicle::Vehicle vehicle(vehicle::CarId::kA, bus, clock, options.seed);
  diagtool::DiagnosticTool app(
      diagtool::profile_for(diagtool::ToolKind::kAutel919), vehicle, bus,
      clock);
  can::Sniffer sniffer(bus, util::DeviceClock(-10 * util::kMillisecond, 0));

  util::Rng rng(options.seed ^ 0x0BD);
  cps::OcrEngine ocr(rng.fork(), options.ocr_noise);
  cps::UiAnalyzer analyzer(ocr, rng.fork());
  cps::RoboticClicker clicker(clock);
  cps::Camera camera(app, util::DeviceClock(45 * util::kMillisecond, 20.0),
                     app.profile().value_font_px);

  // Enter the OBD live view and record.
  {
    const auto shot = camera.capture(clock.now());
    const auto point = analyzer.find_button(shot, "OBD");
    if (!point) return {};
    clicker.move_and_click(point->x, point->y);
    app.click(point->x, point->y);
  }
  cps::VideoRecording video;
  const auto frame_period = static_cast<util::SimTime>(
      static_cast<double>(util::kSecond) / options.video_fps);
  const util::SimTime deadline = clock.now() + options.duration;
  while (clock.now() < deadline) {
    app.run_for(frame_period);
    video.frames.push_back(camera.capture(clock.now()));
  }

  // --- Analysis --------------------------------------------------------------
  const auto messages =
      frames::assemble(sniffer.capture(), frames::TransportHint::kIsoTp);

  // X observations: mode-01 positive responses; the data bytes after the
  // PID are the raw operands (single-PID responses).
  struct PidSeries {
    std::vector<correlate::XSample> xs;
  };
  std::vector<std::uint8_t> pid_order;
  std::map<std::uint8_t, PidSeries> by_pid;
  for (const auto& msg : messages) {
    if (msg.payload.size() < 3 || msg.payload[0] != 0x41) continue;
    const std::uint8_t pid = msg.payload[1];
    auto it = by_pid.find(pid);
    if (it == by_pid.end()) {
      pid_order.push_back(pid);
      it = by_pid.emplace(pid, PidSeries{}).first;
    }
    correlate::XSample x;
    x.timestamp = msg.timestamp;
    for (std::size_t i = 2; i < msg.payload.size() && i < 4; ++i) {
      x.xs.push_back(static_cast<double>(msg.payload[i]));
    }
    it->second.xs.push_back(std::move(x));
  }

  // Y observations by layout row.
  auto samples = screenshot::extract_samples(video, ocr);
  samples = screenshot::filter_samples(std::move(samples));
  std::map<int, std::vector<correlate::YSample>> ys_by_row;
  std::map<int, std::vector<std::string>> names_by_row;
  for (const auto& sample : samples) {
    if (!sample.value) continue;
    ys_by_row[sample.row].push_back(
        correlate::YSample{sample.timestamp, *sample.value});
    names_by_row[sample.row].push_back(sample.name);
  }

  // Clock/display-latency offset from value changes (same estimator the
  // campaign uses for NTP-only vehicles).
  util::SimTime offset = 0;
  {
    std::vector<std::pair<std::vector<correlate::XSample>,
                          std::vector<correlate::YSample>>>
        series;
    std::size_t idx = 0;
    for (const auto& [row, ys] : ys_by_row) {
      if (idx >= pid_order.size()) break;
      series.emplace_back(by_pid[pid_order[idx++]].xs, ys);
    }
    if (const auto estimate = correlate::estimate_offset_by_changes(series)) {
      offset = estimate->offset;
    }
  }

  ObdExperimentReport report;
  std::size_t key_index = 0;
  for (const auto& [row, ys] : ys_by_row) {
    if (key_index >= pid_order.size()) break;
    const std::uint8_t pid = pid_order[key_index++];

    ObdFinding finding;
    finding.pid = pid;
    {
      std::map<std::string, int> votes;
      for (const auto& n : names_by_row[row]) ++votes[n];
      int best = 0;
      for (const auto& [n, c] : votes) {
        if (c > best) {
          best = c;
          finding.name = n;
        }
      }
    }
    char buf[16];
    std::snprintf(buf, sizeof buf, "01 %02X", pid);
    finding.request_message = buf;

    const auto spec = obd::find_pid(pid);
    if (spec) finding.truth_formula = "Y = " + spec->formula;

    finding.dataset = correlate::build_dataset(by_pid[pid].xs, ys, offset);
    gp::GpConfig config = options.gp;
    config.seed ^= pid;
    finding.gp = gp::infer_formula(finding.dataset, config);
    if (finding.gp && spec) {
      const auto truth = [&spec](std::span<const double> xs) {
        std::vector<std::uint8_t> bytes;
        for (double x : xs) bytes.push_back(static_cast<std::uint8_t>(x));
        return spec->decode(bytes);
      };
      finding.correct =
          gp::mean_relative_error(*finding.gp, finding.dataset, truth) <
          0.03;
    }
    report.findings.push_back(std::move(finding));
  }
  return report;
}

}  // namespace dpr::core
