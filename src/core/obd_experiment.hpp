#pragma once
// §4.2 experiment: reverse engineer OBD-II formulas and check them against
// the SAE J1979 ground truth (Table 5). A vehicle simulator (the engine
// ECU's OBD service) answers mode-01 requests from an OBD telematics-app
// model (the tool's OBD live view); the pipeline infers each PID's
// formula from sniffed traffic + screen video, exactly as for UDS/KWP.

#include <optional>
#include <string>
#include <vector>

#include "correlate/correlate.hpp"
#include "gp/engine.hpp"

namespace dpr::core {

struct ObdExperimentOptions {
  std::uint64_t seed = 0xB0BD;
  util::SimTime duration = 25 * util::kSecond;
  double video_fps = 8.0;
  bool ocr_noise = true;
  gp::GpConfig gp;
};

struct ObdFinding {
  std::uint8_t pid = 0;
  std::string name;             // semantic info from the app's UI
  std::string request_message;  // e.g. "01 0C"
  std::string truth_formula;    // SAE J1979 ground truth
  correlate::Dataset dataset;
  std::optional<gp::GpResult> gp;
  bool correct = false;
};

struct ObdExperimentReport {
  std::vector<ObdFinding> findings;
  std::size_t correct_count() const;
};

ObdExperimentReport run_obd_experiment(ObdExperimentOptions options = {});

}  // namespace dpr::core
