#include "correlate/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "obd/pid.hpp"
#include "util/stats.hpp"

namespace dpr::correlate {

Dataset build_dataset(const std::vector<XSample>& xs,
                      const std::vector<YSample>& ys, util::SimTime offset,
                      util::SimTime max_gap) {
  Dataset dataset;
  if (xs.empty() || ys.empty()) return dataset;
  // A corrupted frame can truncate (or garble) a sample's field list, so
  // the signal's width is the widest sample seen and ragged samples are
  // dropped below — every emitted point has exactly n_vars xs, which
  // downstream fitters (regress normal equations, gp::SampleMatrix)
  // rely on.
  for (const auto& x : xs) {
    dataset.n_vars = std::max(dataset.n_vars, x.xs.size());
  }

  // Y samples are produced in time order; binary-search the nearest.
  std::vector<YSample> sorted = ys;
  std::sort(sorted.begin(), sorted.end(),
            [](const YSample& a, const YSample& b) {
              return a.timestamp < b.timestamp;
            });

  for (const auto& x : xs) {
    if (x.xs.size() != dataset.n_vars) continue;  // corrupt sample
    const util::SimTime target = x.timestamp + offset;
    const auto it = std::lower_bound(
        sorted.begin(), sorted.end(), target,
        [](const YSample& s, util::SimTime t) { return s.timestamp < t; });
    const YSample* best = nullptr;
    if (it != sorted.end()) best = &*it;
    if (it != sorted.begin()) {
      const YSample* prev = &*(it - 1);
      if (best == nullptr ||
          std::llabs(prev->timestamp - target) <
              std::llabs(best->timestamp - target)) {
        best = prev;
      }
    }
    if (best == nullptr) continue;
    if (std::llabs(best->timestamp - target) > max_gap) continue;
    dataset.points.push_back(
        DataPoint{x.xs, best->y, x.timestamp, best->timestamp});
  }
  return dataset;
}

std::optional<AlignmentResult> align_with_obd(
    const std::vector<frames::DiagMessage>& messages,
    const std::vector<screenshot::UiSample>& samples,
    double value_tolerance) {
  std::vector<double> offsets;
  // Previous decoded value per PID: only value *changes* anchor the
  // alignment — a stale frame can display an unchanged value, but only a
  // post-repaint frame can display a new one.
  std::map<std::uint8_t, double> previous;

  // Index the numeric samples by displayed name, time-sorted, so each
  // anchor binary-searches its first candidate at/after the message
  // instead of rescanning every sample (O((m+s) log s), not O(m*s)).
  // stable_sort keeps the original order among equal timestamps — the
  // legacy scan kept the first-seen sample on ties.
  std::map<std::string, std::vector<const screenshot::UiSample*>> by_name;
  for (const auto& sample : samples) {
    if (!sample.value) continue;
    by_name[sample.name].push_back(&sample);
  }
  for (auto& [name, bucket] : by_name) {
    std::stable_sort(bucket.begin(), bucket.end(),
                     [](const screenshot::UiSample* a,
                        const screenshot::UiSample* b) {
                       return a->timestamp < b->timestamp;
                     });
  }

  for (const auto& msg : messages) {
    // Only positive mode-01 responses anchor the alignment.
    if (msg.payload.size() < 3 || msg.payload[0] != 0x41) continue;
    const auto spec = obd::find_pid(msg.payload[1]);
    if (!spec || msg.payload.size() < 2 + spec->data_bytes) continue;
    const double real_value = spec->decode(std::span<const std::uint8_t>(
        msg.payload.data() + 2, spec->data_bytes));

    const double scale = std::max(1.0, std::abs(real_value));
    const auto prev = previous.find(msg.payload[1]);
    const bool had_prev = prev != previous.end();
    const double prev_value = had_prev ? prev->second : 0.0;
    // Anchor only on *large* changes so a stale frame showing the old
    // value cannot be mistaken for the new one.
    const bool changed =
        had_prev &&
        std::abs(prev_value - real_value) > 6.0 * value_tolerance * scale;
    previous[msg.payload[1]] = real_value;
    if (!changed) continue;

    // First frame at/after the message that shows the *new* value:
    // jump to the message's timestamp, then walk forward to the first
    // value match.
    const auto bucket_it = by_name.find(spec->name);
    if (bucket_it == by_name.end()) continue;
    const auto& bucket = bucket_it->second;
    auto it = std::lower_bound(
        bucket.begin(), bucket.end(), msg.timestamp,
        [](const screenshot::UiSample* s, util::SimTime t) {
          return s->timestamp < t;
        });
    const screenshot::UiSample* best = nullptr;
    for (; it != bucket.end(); ++it) {
      if (std::abs(*(*it)->value - real_value) <= value_tolerance * scale) {
        best = *it;
        break;
      }
    }
    if (best == nullptr) continue;
    offsets.push_back(
        static_cast<double>(best->timestamp - msg.timestamp));
  }

  if (offsets.empty()) return std::nullopt;
  AlignmentResult result;
  result.offset = static_cast<util::SimTime>(util::median(offsets));
  result.matched = offsets.size();
  return result;
}

std::optional<AlignmentResult> estimate_offset_by_changes(
    const std::vector<std::pair<std::vector<XSample>,
                                std::vector<YSample>>>& series,
    util::SimTime max_latency) {
  std::vector<double> deltas;

  for (const auto& [xs, ys] : series) {
    if (xs.size() < 3 || ys.size() < 3) continue;
    // X change instants.
    std::vector<util::SimTime> x_changes;
    for (std::size_t i = 1; i < xs.size(); ++i) {
      if (xs[i].xs != xs[i - 1].xs) x_changes.push_back(xs[i].timestamp);
    }
    if (x_changes.empty()) continue;
    // Y change instants.
    std::vector<YSample> sorted = ys;
    std::sort(sorted.begin(), sorted.end(),
              [](const YSample& a, const YSample& b) {
                return a.timestamp < b.timestamp;
              });
    for (std::size_t i = 1; i < sorted.size(); ++i) {
      if (sorted[i].y == sorted[i - 1].y) continue;
      const util::SimTime y_time = sorted[i].timestamp;
      // Latest X change at/before this repaint.
      const auto it = std::upper_bound(x_changes.begin(), x_changes.end(),
                                       y_time);
      if (it == x_changes.begin()) continue;
      const util::SimTime delta = y_time - *(it - 1);
      if (delta >= 0 && delta <= max_latency) {
        deltas.push_back(static_cast<double>(delta));
      }
    }
  }

  if (deltas.size() < 5) return std::nullopt;
  AlignmentResult result;
  result.offset = static_cast<util::SimTime>(util::median(deltas));
  result.matched = deltas.size();
  return result;
}

}  // namespace dpr::correlate
