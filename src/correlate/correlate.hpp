#pragma once
// Correlation of diagnostic traffic with UI video (§3.5 step 1, §9.4):
//   * clock alignment between the CAN-capture laptop and the video
//     smartphone — either NTP-style (small residual offset) or via the
//     well-documented OBD-II protocol: compute each OBD response's real
//     value from the standard formula, find it on screen, and take the
//     median time offset;
//   * (X, Y) pair construction — for every ESV raw value X (traffic
//     timestamp), find the nearest displayed value Y (video timestamp).

#include <optional>
#include <vector>

#include "frames/analysis.hpp"
#include "screenshot/extract.hpp"
#include "util/clock.hpp"

namespace dpr::correlate {

/// One aligned training pair: X operands (1 or 2 raw bytes / combined
/// value) with the displayed value Y.
struct DataPoint {
  std::vector<double> xs;
  double y = 0.0;
  util::SimTime x_time = 0;  // traffic timestamp (capture clock)
  util::SimTime y_time = 0;  // video timestamp (camera clock)
};

struct Dataset {
  std::size_t n_vars = 1;
  std::vector<DataPoint> points;
};

/// Time-stamped X observation (already sliced per signal).
struct XSample {
  util::SimTime timestamp = 0;
  std::vector<double> xs;
};

/// Time-stamped Y observation (already filtered per signal).
struct YSample {
  util::SimTime timestamp = 0;
  double y = 0.0;
};

/// Pair every X with the nearest-in-time Y under the clock mapping
/// `video_time ~= traffic_time + offset`; pairs farther than `max_gap`
/// are dropped.
Dataset build_dataset(const std::vector<XSample>& xs,
                      const std::vector<YSample>& ys, util::SimTime offset,
                      util::SimTime max_gap = 800 * util::kMillisecond);

struct AlignmentResult {
  util::SimTime offset = 0;   // video = traffic + offset
  std::size_t matched = 0;    // anchor points used
};

/// Latency estimation from value *changes*: whenever a signal's raw value
/// changes in traffic, the display must switch to the new value shortly
/// after; the median delay between an X change and the next Y change
/// estimates (clock offset + display latency) without any protocol
/// knowledge. `series` pairs each signal's X samples with its Y samples.
std::optional<AlignmentResult> estimate_offset_by_changes(
    const std::vector<std::pair<std::vector<XSample>,
                                std::vector<YSample>>>& series,
    util::SimTime max_latency = 1500 * util::kMillisecond);

/// OBD-II-based alignment (§9.4 method 2): `messages` is the assembled
/// traffic of an OBD warm-up phase; `samples` the UI samples of the same
/// window. Returns nullopt if no anchors matched.
std::optional<AlignmentResult> align_with_obd(
    const std::vector<frames::DiagMessage>& messages,
    const std::vector<screenshot::UiSample>& samples,
    double value_tolerance = 0.005);

}  // namespace dpr::correlate
