#include "cps/analyzer.hpp"

#include <algorithm>
#include <cctype>
#include <functional>

namespace dpr::cps {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

}  // namespace

bool contains_keyword(const std::string& text, const std::string& keyword) {
  return lower(text).find(lower(keyword)) != std::string::npos;
}

UiAnalyzer::UiAnalyzer(OcrEngine& ocr, util::Rng rng)
    : ocr_(ocr), rng_(rng) {}

std::vector<RecognizedWidget> UiAnalyzer::recognize(const Screenshot& shot) {
  std::vector<RecognizedWidget> out;
  out.reserve(shot.text_regions.size());
  for (const auto& region : shot.text_regions) {
    RecognizedWidget w;
    w.text = ocr_.read(region.truth, region.font_px);
    w.center = Point{region.bounds.center_x(), region.bounds.center_y()};
    w.clickable = region.clickable;
    w.row = region.row;
    out.push_back(std::move(w));
  }
  return out;
}

std::optional<Point> UiAnalyzer::find_button(
    const Screenshot& shot, const std::string& keyword,
    const std::vector<std::string>& exclude) {
  for (const auto& widget : recognize(shot)) {
    if (!widget.clickable) continue;
    if (!contains_keyword(widget.text, keyword)) continue;
    bool excluded = false;
    for (const auto& bad : exclude) {
      if (contains_keyword(widget.text, bad)) excluded = true;
    }
    if (!excluded) return widget.center;
  }
  return std::nullopt;
}

std::vector<Point> UiAnalyzer::find_selectable_rows(const Screenshot& shot) {
  std::vector<Point> rows;
  for (const auto& widget : recognize(shot)) {
    if (!widget.clickable) continue;
    // Checkbox prefix "[ ]" / "[x]" — tolerate OCR damage to the inner
    // character but require the brackets.
    if (widget.text.size() >= 3 && widget.text[0] == '[' &&
        widget.text.find(']') != std::string::npos) {
      rows.push_back(widget.center);
    }
  }
  return rows;
}

double UiAnalyzer::icon_similarity(const std::string& detected,
                                   const std::string& reference) {
  if (detected == reference) {
    return std::clamp(0.94 + rng_.normal(0.0, 0.02), 0.0, 1.0);
  }
  // Unrelated widgets: mid-low similarity with spread, deterministic per
  // (detected, reference) pair plus sensor noise.
  const std::size_t h =
      std::hash<std::string>{}(detected + "|" + reference);
  const double base = 0.25 + 0.35 * static_cast<double>(h % 1000) / 1000.0;
  return std::clamp(base + rng_.normal(0.0, 0.03), 0.0, 1.0);
}

std::optional<Point> UiAnalyzer::find_icon(const Screenshot& shot,
                                           const std::string& reference,
                                           double threshold) {
  for (const auto& icon : shot.icon_regions) {
    if (icon_similarity(icon.icon_identity, reference) >= threshold) {
      return Point{icon.bounds.center_x(), icon.bounds.center_y()};
    }
  }
  return std::nullopt;
}

}  // namespace dpr::cps
