#pragma once
// UI analyzer (§3.1): consumes camera-a screenshots, runs OCR over the
// detected text regions, filters by keywords, and outputs the (X, Y)
// coordinates the robotic clicker should visit. Buttons without text
// (icon buttons) are recognized by similarity against reference pictures.

#include <optional>
#include <string>
#include <vector>

#include "cps/camera.hpp"
#include "cps/ocr.hpp"
#include "cps/planner.hpp"

namespace dpr::cps {

struct RecognizedWidget {
  std::string text;  // OCR output (may contain recognition errors)
  Point center;
  bool clickable = false;
  int row = -1;
};

class UiAnalyzer {
 public:
  explicit UiAnalyzer(OcrEngine& ocr, util::Rng rng);

  /// OCR every text region of a screenshot ("text detection" + OCR).
  std::vector<RecognizedWidget> recognize(const Screenshot& shot);

  /// Find the clickable widget whose recognized text contains `keyword`
  /// (case-insensitive substring — tolerant of OCR errors elsewhere in
  /// the string). Keywords in `exclude` are filtered out (§3.1 filters
  /// areas like "Clear Trouble Codes").
  std::optional<Point> find_button(
      const Screenshot& shot, const std::string& keyword,
      const std::vector<std::string>& exclude = {});

  /// Selectable ESV rows: clickable regions with a checkbox prefix.
  std::vector<Point> find_selectable_rows(const Screenshot& shot);

  /// Icon button matched against a reference picture id (Canny edges +
  /// template similarity, §3.1). Matches when the similarity score
  /// exceeds `threshold`.
  std::optional<Point> find_icon(const Screenshot& shot,
                                 const std::string& reference,
                                 double threshold = 0.80);

  /// Similarity between a detected icon and a reference picture: near 1
  /// for the same widget, low for others, with small sensor noise.
  double icon_similarity(const std::string& detected,
                         const std::string& reference);

 private:
  OcrEngine& ocr_;
  util::Rng rng_;
};

/// Case-insensitive substring check shared with the keyword filters.
bool contains_keyword(const std::string& text, const std::string& keyword);

}  // namespace dpr::cps
