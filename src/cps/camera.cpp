#include "cps/camera.hpp"

namespace dpr::cps {

Camera::Camera(const diagtool::DiagnosticTool& tool,
               util::DeviceClock device_clock, int value_font_px)
    : tool_(tool), device_clock_(device_clock),
      value_font_px_(value_font_px) {}

Screenshot Camera::capture(util::SimTime global_now) const {
  const auto& screen = tool_.screen();
  Screenshot shot;
  shot.timestamp = device_clock_.local_time(global_now);
  shot.width = screen.width;
  shot.height = screen.height;

  for (const auto& widget : screen.widgets) {
    using K = diagtool::Widget::Kind;
    switch (widget.kind) {
      case K::kButton:
      case K::kLabel:
      case K::kValueText: {
        TextRegion region;
        region.truth = widget.text;
        region.bounds = widget.bounds;
        region.font_px = widget.kind == K::kValueText ? value_font_px_
                                                      : widget.bounds.h / 2;
        region.row = widget.row;
        region.clickable = widget.kind == K::kButton;
        shot.text_regions.push_back(std::move(region));
        break;
      }
      case K::kIconButton: {
        shot.icon_regions.push_back(IconRegion{widget.bounds, widget.icon});
        break;
      }
    }
  }
  return shot;
}

}  // namespace dpr::cps
