#pragma once
// Camera models of the CPS rig (§3.1): camera *a* feeds the UI analyzer
// that steers the robotic clicker; camera *b* records the UI video whose
// text is later extracted for reverse engineering (§3.3).
//
// A Screenshot is the camera-side view of a tool screen: text regions
// with pixel geometry (the output a scene-text detector like EAST would
// produce) plus text-less widget boxes (Canny-edge candidates). The
// regions carry the ground-truth glyphs, which only the OCR engine is
// allowed to look at — everything downstream consumes OCR output.

#include <string>
#include <vector>

#include "diagtool/tool.hpp"
#include "diagtool/ui.hpp"
#include "util/clock.hpp"

namespace dpr::cps {

struct TextRegion {
  std::string truth;   // actual glyphs; consumed by the OCR engine only
  diagtool::Rect bounds;
  int font_px = 24;
  int row = -1;        // layout row (derived from y geometry)
  bool clickable = false;
};

struct IconRegion {
  diagtool::Rect bounds;
  std::string icon_identity;  // matched against reference pictures
};

struct Screenshot {
  util::SimTime timestamp = 0;  // camera device-clock time
  int width = 0, height = 0;
  std::vector<TextRegion> text_regions;
  std::vector<IconRegion> icon_regions;
};

class Camera {
 public:
  /// `device_clock` models the recording device's clock skew (§9.4).
  Camera(const diagtool::DiagnosticTool& tool, util::DeviceClock device_clock,
         int value_font_px);

  /// Take one screenshot of the tool's current screen.
  Screenshot capture(util::SimTime global_now) const;

  const util::DeviceClock& device_clock() const { return device_clock_; }

 private:
  const diagtool::DiagnosticTool& tool_;
  util::DeviceClock device_clock_;
  int value_font_px_;
};

/// A recorded UI video: timestamped frames, as produced by camera b under
/// the "Timestamp Camera" app.
struct VideoRecording {
  std::vector<Screenshot> frames;
};

}  // namespace dpr::cps
