#include "cps/clicker.hpp"

#include <cmath>
#include <cstdlib>

namespace dpr::cps {

RoboticClicker::RoboticClicker(util::SimClock& clock, double speed_px_per_s,
                               util::SimTime dwell)
    : clock_(clock), speed_(speed_px_per_s), dwell_(dwell) {}

util::SimTime RoboticClicker::travel_time(int x, int y) const {
  const double manhattan = std::abs(x - x_) + std::abs(y - y_);
  return static_cast<util::SimTime>(manhattan / speed_ *
                                    static_cast<double>(util::kSecond));
}

ClickEvent RoboticClicker::move_and_click(int x, int y) {
  const util::SimTime travel = travel_time(x, y);
  clock_.advance(travel + dwell_);
  total_travel_ += travel;
  x_ = x;
  y_ = y;
  const ClickEvent event{clock_.now(), x, y};
  log_.push_back(event);
  return event;
}

}  // namespace dpr::cps
