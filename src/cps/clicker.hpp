#pragma once
// Robotic clicker (stylus-pen actuator, §3.1): moves straight along the
// coordinate axes at a fixed speed, so travel time between two targets is
// the Manhattan distance over the pen speed — which is why the planner
// optimizes a travelling-salesman tour over the click targets.

#include <cstdint>
#include <vector>

#include "util/clock.hpp"

namespace dpr::cps {

struct ClickEvent {
  util::SimTime timestamp = 0;  // when the click landed (global time)
  int x = 0, y = 0;
};

class RoboticClicker {
 public:
  /// `speed_px_per_s`: axis-aligned pen speed; `dwell`: press duration.
  RoboticClicker(util::SimClock& clock, double speed_px_per_s = 900.0,
                 util::SimTime dwell = 120 * util::kMillisecond);

  /// Move to (x, y) and click, advancing the clock by travel + dwell.
  ClickEvent move_and_click(int x, int y);

  /// Travel time for a hypothetical move from the current position.
  util::SimTime travel_time(int x, int y) const;

  int x() const { return x_; }
  int y() const { return y_; }

  const std::vector<ClickEvent>& log() const { return log_; }
  util::SimTime total_travel() const { return total_travel_; }

 private:
  util::SimClock& clock_;
  double speed_;
  util::SimTime dwell_;
  int x_ = 0, y_ = 0;
  std::vector<ClickEvent> log_;
  util::SimTime total_travel_ = 0;
};

}  // namespace dpr::cps
