#include "cps/ocr.hpp"

#include <algorithm>

namespace dpr::cps {

double OcrEngine::char_error_rate(int font_px) {
  // Calibration: p = a / font_px^3 with a chosen so that a ~70-character
  // frame (14 value rows x ~5 glyphs) is fully correct with probability
  // 97.6% at 34 px and 85.0% at 18 px (Table 4). See DESIGN.md.
  constexpr double a = 15.0;
  const double px = std::max(6, font_px);
  return std::min(0.25, a / (px * px * px));
}

namespace {

char confuse_digit(char c, util::Rng& rng) {
  // Confusion pairs Tesseract commonly exhibits on seven-segment-ish UI
  // fonts. Fall back to a random digit.
  switch (c) {
    case '8':
      return rng.chance(0.5) ? '3' : '0';
    case '3':
      return '8';
    case '1':
      return '7';
    case '7':
      return '1';
    case '0':
      return rng.chance(0.5) ? '8' : 'O';
    case '5':
      return '6';
    case '6':
      return '5';
    default:
      return static_cast<char>('0' + rng.uniform_int(0, 9));
  }
}

}  // namespace

std::string OcrEngine::read(const std::string& truth, int font_px) {
  if (!noisy_) {
    ++stats_.strings_read;
    ++stats_.strings_correct;
    return truth;
  }
  const double p = std::min(0.3, rate_scale_ * char_error_rate(font_px));
  std::string out;
  out.reserve(truth.size());
  bool any_error = false;

  for (char c : truth) {
    if (!rng_.chance(p)) {
      out.push_back(c);
      continue;
    }
    any_error = true;
    ++stats_.char_errors;
    if (c == '.') {
      // Decimal points are the most fragile glyph: dropped entirely
      // (the paper's "25.00" -> "2500" case).
      ++stats_.decimal_drops;
      continue;
    }
    if (c >= '0' && c <= '9') {
      const double roll = rng_.uniform();
      if (roll < 0.25) continue;  // dropped digit ("11.4" -> "4")
      out.push_back(confuse_digit(c, rng_));
      continue;
    }
    // Letters: substitute a visually close letter (rarely matters for the
    // keyword matching, which is tolerant).
    out.push_back(c == 'l' ? '1' : (c == 'O' ? '0' : c));
  }

  ++stats_.strings_read;
  if (!any_error) ++stats_.strings_correct;
  return out;
}

}  // namespace dpr::cps
