#pragma once
// OCR engine simulation (Tesseract stand-in, §3.3).
//
// The error model is character-level and resolution-dependent: the
// per-character misread probability falls with glyph height, calibrated so
// that whole-frame precision reproduces Table 4 (AUTEL 919 at 34 px glyphs
// -> ~97.6%; LAUNCH X431 at 18 px -> ~85.0%). Error modes mirror the
// paper's observations: dropped decimal points ("25.00" -> "2500"),
// confusable digit substitutions, and dropped characters (§4.4 cause (i)).

#include <string>

#include "util/rng.hpp"

namespace dpr::cps {

struct OcrStats {
  std::size_t strings_read = 0;
  std::size_t strings_correct = 0;
  std::size_t char_errors = 0;
  std::size_t decimal_drops = 0;

  double precision() const {
    return strings_read == 0
               ? 1.0
               : static_cast<double>(strings_correct) /
                     static_cast<double>(strings_read);
  }
};

class OcrEngine {
 public:
  /// `noisy = false` yields a perfect engine (clean-room ablations);
  /// `rate_scale` multiplies the character error rate (stress ablations:
  /// glare, camera shake, worse lenses).
  explicit OcrEngine(util::Rng rng, bool noisy = true,
                     double rate_scale = 1.0)
      : rng_(rng), noisy_(noisy), rate_scale_(rate_scale) {}

  /// Recognize one text region rendered with `font_px`-tall glyphs.
  std::string read(const std::string& truth, int font_px);

  /// Per-character misread probability at a glyph height.
  static double char_error_rate(int font_px);

  const OcrStats& stats() const { return stats_; }
  void reset_stats() { stats_ = OcrStats{}; }

  /// Checkpoint support: the engine's replayable state is its RNG stream
  /// position plus the running stats. Restoring both makes a resumed
  /// campaign's OCR output bit-identical to an uninterrupted run.
  util::Rng::State rng_state() const { return rng_.state(); }
  void restore(const util::Rng::State& rng_state, const OcrStats& stats) {
    rng_.restore(rng_state);
    stats_ = stats;
  }

 private:
  util::Rng rng_;
  bool noisy_ = true;
  double rate_scale_ = 1.0;
  OcrStats stats_;
};

}  // namespace dpr::cps
