#include "cps/planner.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace dpr::cps {

long manhattan(const Point& a, const Point& b) {
  return std::labs(a.x - b.x) + std::labs(a.y - b.y);
}

long tour_length(const Point& start, const std::vector<Point>& points,
                 const std::vector<std::size_t>& order) {
  if (order.empty()) return 0;
  long total = manhattan(start, points[order.front()]);
  for (std::size_t i = 1; i < order.size(); ++i) {
    total += manhattan(points[order[i - 1]], points[order[i]]);
  }
  // Close the tour back to the first visited ESV (§3.1).
  total += manhattan(points[order.back()], points[order.front()]);
  return total;
}

std::vector<std::size_t> plan_nearest_neighbor(
    const Point& start, const std::vector<Point>& points) {
  std::vector<std::size_t> order;
  std::vector<bool> visited(points.size(), false);
  Point current = start;
  for (std::size_t step = 0; step < points.size(); ++step) {
    long best = std::numeric_limits<long>::max();
    std::size_t pick = points.size();
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (visited[i]) continue;
      const long d = manhattan(current, points[i]);
      if (d < best) {
        best = d;
        pick = i;
      }
    }
    visited[pick] = true;
    order.push_back(pick);
    current = points[pick];
  }
  return order;
}

std::vector<std::size_t> plan_random(const std::vector<Point>& points,
                                     util::Rng& rng) {
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Fisher-Yates with the deterministic Rng.
  for (std::size_t i = order.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(order[i - 1], order[j]);
  }
  return order;
}

std::vector<std::size_t> plan_brute_force(
    const Point& start, const std::vector<Point>& points) {
  if (points.size() > 10) {
    throw std::invalid_argument("brute force limited to 10 points");
  }
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<std::size_t> best = order;
  long best_len = tour_length(start, points, order);
  while (std::next_permutation(order.begin(), order.end())) {
    const long len = tour_length(start, points, order);
    if (len < best_len) {
      best_len = len;
      best = order;
    }
  }
  return best;
}

std::vector<std::size_t> refine_two_opt(
    const Point& start, const std::vector<Point>& points,
    std::vector<std::size_t> order) {
  if (order.size() < 3) return order;
  bool improved = true;
  long best_len = tour_length(start, points, order);
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
      for (std::size_t j = i + 1; j < order.size(); ++j) {
        std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                     order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        const long len = tour_length(start, points, order);
        if (len < best_len) {
          best_len = len;
          improved = true;
        } else {
          std::reverse(order.begin() + static_cast<std::ptrdiff_t>(i),
                       order.begin() + static_cast<std::ptrdiff_t>(j) + 1);
        }
      }
    }
  }
  return order;
}

}  // namespace dpr::cps
