#pragma once
// Click-sequence planner (§3.1): the set of ESV coordinates to click is a
// travelling-salesman instance under the Manhattan metric (the stylus
// moves axis-aligned at fixed speed). The paper uses the nearest-neighbor
// heuristic; random order and exact brute force are provided for the
// planner benchmark, plus a 2-opt refinement as an extension.

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace dpr::cps {

struct Point {
  int x = 0;
  int y = 0;
};

/// Manhattan distance (matches the pen kinematics).
long manhattan(const Point& a, const Point& b);

/// Total tour length visiting `order` from `start` and returning to the
/// first visited point (the paper's tour "returns to the origin ESV").
long tour_length(const Point& start, const std::vector<Point>& points,
                 const std::vector<std::size_t>& order);

/// Nearest-neighbor heuristic from `start`; O(n^2).
std::vector<std::size_t> plan_nearest_neighbor(
    const Point& start, const std::vector<Point>& points);

/// Uniformly random order (the baseline the paper compares against).
std::vector<std::size_t> plan_random(const std::vector<Point>& points,
                                     util::Rng& rng);

/// Exact solution by exhaustive permutation; feasible for n <= 10.
std::vector<std::size_t> plan_brute_force(
    const Point& start, const std::vector<Point>& points);

/// 2-opt local improvement of an initial order.
std::vector<std::size_t> refine_two_opt(
    const Point& start, const std::vector<Point>& points,
    std::vector<std::size_t> order);

}  // namespace dpr::cps
