#include "cps/script.hpp"

namespace dpr::cps {

Script make_click_script(const std::vector<Point>& targets,
                         util::SimTime wait_between,
                         util::SimTime final_wait,
                         const std::string& note) {
  Script script;
  for (const auto& target : targets) {
    script.push_back(ScriptStatement{ScriptStatement::Kind::kClick, target,
                                     0, note});
    script.push_back(ScriptStatement{ScriptStatement::Kind::kWait, {},
                                     wait_between, ""});
  }
  if (final_wait > 0) {
    script.push_back(ScriptStatement{ScriptStatement::Kind::kWait, {},
                                     final_wait, "capture window"});
  }
  return script;
}

ScriptExecutor::ScriptExecutor(RoboticClicker& clicker,
                               diagtool::DiagnosticTool& tool)
    : clicker_(clicker), tool_(tool) {}

void ScriptExecutor::run(const Script& script) {
  for (const auto& statement : script) {
    switch (statement.kind) {
      case ScriptStatement::Kind::kClick: {
        const auto event =
            clicker_.move_and_click(statement.target.x, statement.target.y);
        tool_.click(statement.target.x, statement.target.y);
        log_.push_back(ScriptLogEntry{event.timestamp, statement.kind,
                                      statement.target, statement.note});
        break;
      }
      case ScriptStatement::Kind::kWait: {
        tool_.run_for(statement.duration);
        log_.push_back(ScriptLogEntry{0, statement.kind, statement.target,
                                      statement.note});
        break;
      }
    }
  }
}

}  // namespace dpr::cps
