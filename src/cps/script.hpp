#pragma once
// Script generator / executor / logger (§3.1): the planner's click order
// is turned into a script of click and wait statements; the executor
// drives the robotic clicker against the tool and logs each click's
// timestamp (used later to split the CAN capture and the video).

#include <string>
#include <vector>

#include "cps/clicker.hpp"
#include "cps/planner.hpp"
#include "diagtool/tool.hpp"
#include "util/clock.hpp"

namespace dpr::cps {

struct ScriptStatement {
  enum class Kind { kClick, kWait };
  Kind kind = Kind::kClick;
  Point target{};             // for kClick
  util::SimTime duration = 0; // for kWait
  std::string note;
};

using Script = std::vector<ScriptStatement>;

/// Build a script that clicks `targets` in order, inserting a fixed wait
/// after each click so the tool has time to react (§3.1), and a long
/// final wait for live data capture when `final_wait > 0`.
Script make_click_script(const std::vector<Point>& targets,
                         util::SimTime wait_between,
                         util::SimTime final_wait = 0,
                         const std::string& note = "");

struct ScriptLogEntry {
  util::SimTime timestamp = 0;  // when the click/wait completed
  ScriptStatement::Kind kind = ScriptStatement::Kind::kClick;
  Point target{};
  std::string note;
};

class ScriptExecutor {
 public:
  ScriptExecutor(RoboticClicker& clicker, diagtool::DiagnosticTool& tool);

  /// Run every statement; waits let the tool do its periodic work.
  void run(const Script& script);

  const std::vector<ScriptLogEntry>& log() const { return log_; }

 private:
  RoboticClicker& clicker_;
  diagtool::DiagnosticTool& tool_;
  std::vector<ScriptLogEntry> log_;
};

}  // namespace dpr::cps
