#include "diagtool/profile.hpp"

namespace dpr::diagtool {

ToolProfile profile_for(ToolKind kind) {
  ToolProfile p;
  p.kind = kind;
  switch (kind) {
    case ToolKind::kAutel919:
      p.name = "AUTEL 919";
      p.screen_width = 1920;
      p.screen_height = 1200;
      p.value_font_px = 34;
      break;
    case ToolKind::kLaunchX431:
      p.name = "LAUNCH X431";
      p.screen_width = 1024;
      p.screen_height = 600;
      p.value_font_px = 18;
      break;
    case ToolKind::kVcds:
      p.name = "VCDS";
      p.screen_width = 1366;
      p.screen_height = 768;
      p.value_font_px = 24;
      break;
    case ToolKind::kTechstream:
      p.name = "Techstream";
      p.screen_width = 1366;
      p.screen_height = 768;
      p.value_font_px = 24;
      break;
  }
  return p;
}

ToolProfile profile_by_name(const std::string& name) {
  if (name == "AUTEL 919") return profile_for(ToolKind::kAutel919);
  if (name == "LAUNCH X431") return profile_for(ToolKind::kLaunchX431);
  if (name == "VCDS") return profile_for(ToolKind::kVcds);
  return profile_for(ToolKind::kTechstream);
}

}  // namespace dpr::diagtool
