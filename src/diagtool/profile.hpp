#pragma once
// Profiles of the four diagnostic tools used in the paper (Table 3).
// Screen geometry drives the OCR noise model: the AUTEL 919's larger,
// higher-resolution screen yields better OCR than the LAUNCH X431
// (Table 4: 97.6% vs 85.0%).

#include <string>

namespace dpr::diagtool {

enum class ToolKind { kAutel919, kLaunchX431, kVcds, kTechstream };

struct ToolProfile {
  ToolKind kind = ToolKind::kAutel919;
  std::string name;
  int screen_width = 1280;
  int screen_height = 800;
  int value_font_px = 28;       // glyph height of live values
  double poll_period_s = 0.5;   // data-stream request cadence
  double ui_lag_s = 0.15;       // delay between response and UI repaint
};

ToolProfile profile_for(ToolKind kind);

/// The profile the paper pairs with each tool name (Table 3).
ToolProfile profile_by_name(const std::string& name);

}  // namespace dpr::diagtool
