#include "diagtool/tool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "kwp/formulas.hpp"
#include "obd/pid.hpp"

namespace dpr::diagtool {

namespace {

// Magnitude-aware formatting, as real tools render live values: small
// quantities (lambda voltages) get more decimals than large ones (RPM).
std::string fixed1(double v) {
  char buf[32];
  const double magnitude = std::abs(v);
  if (magnitude < 10.0) {
    std::snprintf(buf, sizeof buf, "%.2f", v);
  } else if (magnitude < 1000.0) {
    std::snprintf(buf, sizeof buf, "%.1f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

}  // namespace

DiagnosticTool::DiagnosticTool(ToolProfile profile,
                               vehicle::Vehicle& vehicle, can::CanBus& bus,
                               util::SimClock& clock,
                               util::TransactPolicy policy)
    : profile_(std::move(profile)),
      vehicle_(vehicle),
      bus_(bus),
      clock_(clock),
      policy_(policy) {
  build_screen();
}

util::TransactStats DiagnosticTool::transact_stats() const {
  util::TransactStats total;
  for (const auto& [index, conn] : connections_) {
    if (conn.uds) total += conn.uds->stats();
    if (conn.kwp) total += conn.kwp->stats();
  }
  if (obd_client_) total += obd_client_->stats();
  return total;
}

void DiagnosticTool::record_failure(bool is_kwp, std::uint16_t id) {
  ++failed_reads_[{is_kwp, id}];
}

void DiagnosticTool::send_keepalives() {
  // Suppressed TesterPresent (no response expected) keeps the server's
  // activity timer fresh without adding response traffic to the capture.
  for (auto& [index, conn] : connections_) {
    if (conn.uds) {
      conn.uds->tester_present(/*suppress=*/true);
      ++session_stats_.keepalives;
    } else if (conn.kwp) {
      conn.kwp->tester_present(/*suppress=*/true);
      ++session_stats_.keepalives;
    }
  }
}

bool DiagnosticTool::probe_alive(uds::Client* uds, kwp::Client* kwp) {
  // A rebooting ECU is bus-silent for its boot window; back off and probe
  // with a response-required TesterPresent until it answers (bounded).
  const auto backoff = static_cast<util::SimTime>(
      supervisor_.boot_backoff_s * static_cast<double>(util::kSecond));
  for (int attempt = 0; attempt < supervisor_.max_recovery_attempts;
       ++attempt) {
    clock_.advance(backoff);
    const bool alive = uds != nullptr ? uds->tester_present(false)
                       : kwp != nullptr ? kwp->tester_present(false)
                                        : false;
    if (alive) return true;
  }
  return false;
}

bool DiagnosticTool::recover_session(std::size_t ecu_index) {
  auto& conn = connection(ecu_index);
  const bool had_session = conn.session_started;
  conn.session_started = false;  // reset/expiry wiped the server side
  if (!probe_alive(conn.uds.get(), conn.kwp.get())) return false;
  if (had_session) {
    conn.session_started =
        conn.uds ? conn.uds->start_session(0x03)
                 : conn.kwp->start_session(0x89);
    return conn.session_started;
  }
  return true;
}

void DiagnosticTool::enable_nm(const nm::NmConfig& config,
                               const NmToolConfig& tool,
                               util::CounterRng jitter) {
  nm_enabled_ = true;
  nm_cfg_ = config;
  nm_tool_ = tool;
  next_wakeup_at_ = 0;
  sleep_lost_mark_ = bus_.frames_lost_to_sleep();
  if (tool.mode == NmToolConfig::Mode::kRing) {
    nm_node_ = std::make_unique<nm::NmNode>(bus_, config, tool.address,
                                            std::move(jitter),
                                            /*offline=*/nullptr,
                                            /*allow_sleep=*/false);
    nm_node_->start();
  }
}

void DiagnosticTool::settle(util::SimTime duration) {
  if (!bus_.lifecycle_enabled()) {
    clock_.advance(duration);
    return;
  }
  // With NM armed the ring must keep circulating while the component
  // actuates, or every active test's settle gap would read as a fake
  // limp-home episode (and the limp counters would stop meaning
  // "a node vanished").
  const bool keeps_awake =
      nm_enabled_ && nm_tool_.mode == NmToolConfig::Mode::kWakeup;
  const auto wakeup_period = static_cast<util::SimTime>(
      nm_tool_.wakeup_period_s * static_cast<double>(util::kSecond));
  const util::SimTime deadline = clock_.now() + duration;
  while (clock_.now() < deadline) {
    if (keeps_awake && clock_.now() >= next_wakeup_at_) {
      nm::send_wakeup(bus_, nm_cfg_, nm_tool_.address);
      next_wakeup_at_ = clock_.now() + wakeup_period;
    }
    clock_.advance(std::min<util::SimTime>(25 * util::kMillisecond,
                                           deadline - clock_.now()));
    bus_.deliver_pending();
  }
  // About to resume talking: if the ring still slept through the gap (an
  // aggressive sleep timeout outruns the wakeup cadence), re-wake the bus
  // now rather than sacrificing the next request to find out.
  if (keeps_awake && bus_.asleep()) {
    nm::send_wakeup(bus_, nm_cfg_, nm_tool_.address);
    for (int i = 0; i < 4; ++i) {
      clock_.advance(2 * util::kMillisecond);
      bus_.deliver_pending();
    }
  }
}

bool DiagnosticTool::recover_from_sleep() {
  // A transaction that died against a *sleeping* bus is not a lost
  // session: the frames were swallowed before any ECU could see them.
  // Two tells, either sufficient: the bus is asleep right now, or the
  // bus's lost-frame counter moved since we last looked (the bus napped
  // mid-transaction and a cadenced wakeup already brought it back). In
  // both cases re-wake if needed, settle the NM traffic, and let the
  // caller retry the transaction once.
  if (!nm_enabled_) return false;
  const std::uint64_t lost = bus_.frames_lost_to_sleep();
  const bool slept_on_us = bus_.asleep() || lost != sleep_lost_mark_;
  sleep_lost_mark_ = lost;
  if (!slept_on_us) return false;
  ++session_stats_.bus_sleeps;
  if (bus_.asleep()) {
    nm::send_wakeup(bus_, nm_cfg_, nm_tool_.address);
    for (int i = 0; i < 4; ++i) {
      clock_.advance(2 * util::kMillisecond);
      bus_.deliver_pending();
    }
    sleep_lost_mark_ = bus_.frames_lost_to_sleep();
  }
  return true;
}

std::size_t DiagnosticTool::selected_rows() const {
  return static_cast<std::size_t>(
      std::count_if(rows_.begin(), rows_.end(),
                    [](const Row& r) { return r.selected; }));
}

DiagnosticTool::Connection& DiagnosticTool::connection(
    std::size_t ecu_index) {
  auto it = connections_.find(ecu_index);
  if (it != connections_.end()) return it->second;

  const auto& ecu_spec = vehicle_.spec().ecus.at(ecu_index);
  Connection conn;
  switch (vehicle_.spec().transport) {
    case vehicle::TransportKind::kIsoTp: {
      isotp::EndpointConfig config{can::CanId{ecu_spec.request_id, false},
                                   can::CanId{ecu_spec.response_id, false}};
      // A lost flow control must not wedge the connection for good: let a
      // later request reap the stale transfer (no-op on a lossless bus).
      config.stall_policy = isotp::StallPolicy::kAbortStale;
      conn.link = std::make_unique<isotp::Endpoint>(bus_, config);
      break;
    }
    case vehicle::TransportKind::kVwTp20: {
      // Emit the channel-setup handshake so the sniffed traffic contains
      // the control frames §3.2 step 1 must screen out.
      bus_.send(vwtp::encode_setup_request(
          ecu_spec.address, can::CanId{ecu_spec.response_id, false}));
      bus_.send(vwtp::encode_setup_response(
          ecu_spec.address, can::CanId{ecu_spec.request_id, false},
          can::CanId{ecu_spec.response_id, false}));
      auto channel = std::make_unique<vwtp::Channel>(
          bus_, vwtp::ChannelConfig{
                    can::CanId{ecu_spec.request_id, false},
                    can::CanId{ecu_spec.response_id, false}});
      // Channel-parameter negotiation (0xA0 -> peer answers 0xA1).
      bus_.send(can::CanFrame(can::CanId{ecu_spec.request_id, false},
                              util::Bytes{0xA0, 0x0F, 0x8A, 0xFF, 0x32,
                                          0xFF}));
      bus_.deliver_pending();
      conn.link = std::move(channel);
      break;
    }
    case vehicle::TransportKind::kBmwFraming: {
      conn.link = std::make_unique<oemtp::BmwLink>(
          bus_, oemtp::BmwLinkConfig{
                    can::CanId{ecu_spec.request_id, false},
                    can::CanId{ecu_spec.response_id, false},
                    /*peer_address=*/ecu_spec.address,
                    /*own_address=*/0xF1});
      break;
    }
  }
  auto pump = [this] {
    clock_.advance(2 * util::kMillisecond);  // ECU processing latency
    bus_.deliver_pending();
  };
  if (vehicle_.spec().protocol == vehicle::Protocol::kKwp2000 ||
      vehicle_.spec().io_service == vehicle::IoService::kKwp30) {
    conn.kwp =
        std::make_unique<kwp::Client>(*conn.link, pump, policy_, &clock_);
  }
  if (vehicle_.spec().protocol == vehicle::Protocol::kUds) {
    conn.uds =
        std::make_unique<uds::Client>(*conn.link, pump, policy_, &clock_);
  }
  auto [inserted, ok] = connections_.emplace(ecu_index, std::move(conn));
  return inserted->second;
}

void DiagnosticTool::build_rows(std::size_t ecu_index) {
  rows_.clear();
  const auto& ecu_spec = vehicle_.spec().ecus.at(ecu_index);
  for (const auto& sig : ecu_spec.uds_signals) {
    Row row;
    row.name = sig.name;
    row.unit = sig.unit;
    row.is_enum = sig.formula.is_enum();
    row.is_kwp = false;
    row.ecu_index = ecu_index;
    row.did = sig.did;
    row.data_bytes = sig.data_bytes;
    row.formula = sig.formula;
    rows_.push_back(std::move(row));
  }
  for (const auto& block : ecu_spec.kwp_local_ids) {
    for (std::size_t i = 0; i < block.esvs.size(); ++i) {
      const auto& esv = block.esvs[i];
      Row row;
      row.name = esv.name;
      row.unit = esv.unit;
      row.is_enum = esv.is_enum;
      row.is_kwp = true;
      row.ecu_index = ecu_index;
      row.local_id = block.local_id;
      row.esv_index = i;
      row.kwp_formula_type = esv.formula_type;
      rows_.push_back(std::move(row));
    }
  }
}

std::string DiagnosticTool::format_value(const Row& row,
                                         double physical) const {
  if (row.is_enum) {
    const int state = static_cast<int>(physical);
    if (state == 0) return "OFF";
    if (state == 1) return "ON";
    return "State " + std::to_string(state);
  }
  return fixed1(physical);
}

void DiagnosticTool::note_pending(util::SimTime at) {
  if (next_pending_due_ < 0 || at < next_pending_due_) {
    next_pending_due_ = at;
  }
}

bool DiagnosticTool::apply_pending(util::SimTime now) {
  // Watermark fast path: nothing is due yet, so no row can change. The
  // legacy shim always scans, like the pre-watermark loop did.
  if (!legacy_ui_ && (next_pending_due_ < 0 || now < next_pending_due_)) {
    return false;
  }
  bool changed = false;
  util::SimTime next = -1;
  for (auto& row : rows_) {
    if (row.pending_at >= 0 && row.pending_at <= now) {
      row.value_text = row.pending_text;
      row.pending_at = -1;
      changed = true;
    } else if (row.pending_at >= 0 &&
               (next < 0 || row.pending_at < next)) {
      next = row.pending_at;
    }
  }
  for (auto& row : obd_rows_) {
    if (row.pending_at >= 0 && row.pending_at <= now) {
      row.value_text = row.pending_text;
      row.pending_at = -1;
      changed = true;
    } else if (row.pending_at >= 0 &&
               (next < 0 || row.pending_at < next)) {
      next = row.pending_at;
    }
  }
  next_pending_due_ = next;
  return changed;
}

void DiagnosticTool::poll_live_rows() {
  const util::SimTime lag = static_cast<util::SimTime>(
      profile_.ui_lag_s * static_cast<double>(util::kSecond));

  // Collect the selected rows of the current ECU.
  std::vector<Row*> live;
  for (auto& row : rows_) {
    if (row.selected) live.push_back(&row);
  }
  if (live.empty()) return;
  auto& conn = connection(current_ecu_);

  // UDS rows: short (1-byte) signals are read individually — request and
  // response both fit single frames — while wider signals are batched two
  // DIDs per 0x22 request, whose response spans multiple frames. This is
  // the traffic mix Table 9 measures.
  const auto& ecu_spec = vehicle_.spec().ecus.at(current_ecu_);
  auto length_of = [&ecu_spec](uds::Did did) -> std::optional<std::size_t> {
    for (const auto& sig : ecu_spec.uds_signals) {
      if (sig.did == did) return sig.data_bytes;
    }
    return std::nullopt;
  };
  auto read_batch = [&](std::span<Row* const> rows) {
    if (rows.empty()) return;
    std::vector<uds::Did> dids;
    for (Row* row : rows) dids.push_back(row->did);
    auto records = conn.uds->read_data(dids, length_of);
    if (!records && recover_from_sleep()) {
      records = conn.uds->read_data(dids, length_of);
      if (records) ++session_stats_.sleep_recoveries;
    }
    if (!records && supervisor_.enabled) {
      // Retries already ran their course inside the client, so a dead
      // read means a lost session (reset boot window / S3 expiry), not
      // wire noise. Recover the session and replay the request once.
      ++session_stats_.sessions_lost;
      if (recover_session(current_ecu_)) {
        ++session_stats_.reissued_requests;
        records = conn.uds->read_data(dids, length_of);
      }
      if (records) {
        ++session_stats_.sessions_restored;
      } else {
        ++session_stats_.recovery_failures;
      }
    }
    if (!records) {
      for (uds::Did did : dids) record_failure(false, did);
      return;
    }
    for (std::size_t k = 0; k < rows.size(); ++k) {
      const double physical = rows[k]->formula.eval((*records)[k].data);
      rows[k]->pending_text = format_value(*rows[k], physical);
      rows[k]->pending_at = clock_.now() + lag;
      note_pending(rows[k]->pending_at);
    }
  };
  // Reads happen strictly in row order (the §3.4 association relies on
  // it). Short (1-byte) signals go out as their own single-frame
  // requests; *adjacent* wide signals are batched two per 0x22 request,
  // yielding the multi-frame responses Table 9 measures.
  std::vector<Row*> batch;
  for (Row* row : live) {
    if (row->is_kwp) continue;
    if (row->data_bytes <= 1) {
      read_batch(batch);
      batch.clear();
      read_batch(std::span<Row* const>(&row, 1));
      continue;
    }
    batch.push_back(row);
    if (batch.size() == 2) {
      read_batch(batch);
      batch.clear();
    }
  }
  read_batch(batch);

  // KWP rows: a periodic identification refresh (real VAG tools keep the
  // ECU header data current), then one 0x21 request per local id.
  ++poll_counter_;
  if (conn.kwp && poll_counter_ % 6 == 0) {
    bool any_kwp = false;
    for (Row* row : live) any_kwp |= row->is_kwp;
    if (any_kwp) {
      conn.kwp->transact(util::Bytes{kwp::kReadEcuIdentification, 0x9B});
    }
  }
  std::vector<std::uint8_t> local_ids;
  for (Row* row : live) {
    if (row->is_kwp &&
        std::find(local_ids.begin(), local_ids.end(), row->local_id) ==
            local_ids.end()) {
      local_ids.push_back(row->local_id);
    }
  }
  for (std::uint8_t local_id : local_ids) {
    auto resp = conn.kwp->read_local_id(local_id);
    if (!resp && recover_from_sleep()) {
      resp = conn.kwp->read_local_id(local_id);
      if (resp) ++session_stats_.sleep_recoveries;
    }
    if (!resp && supervisor_.enabled) {
      ++session_stats_.sessions_lost;
      if (recover_session(current_ecu_)) {
        ++session_stats_.reissued_requests;
        resp = conn.kwp->read_local_id(local_id);
      }
      if (resp) {
        ++session_stats_.sessions_restored;
      } else {
        ++session_stats_.recovery_failures;
      }
    }
    if (!resp) {
      record_failure(true, local_id);
      continue;
    }
    for (Row* row : live) {
      if (!row->is_kwp || row->local_id != local_id) continue;
      if (row->esv_index >= resp->records.size()) continue;
      const auto& rec = resp->records[row->esv_index];
      std::string text;
      if (row->is_enum) {
        text = rec.x1 == 0 ? "OFF" : "ON";
      } else if (const auto value =
                     kwp::decode_esv(rec.formula_type, rec.x0, rec.x1)) {
        text = fixed1(*value);
      } else {
        text = "--";
      }
      row->pending_text = std::move(text);
      row->pending_at = clock_.now() + lag;
      note_pending(row->pending_at);
    }
  }
}

void DiagnosticTool::poll_obd() {
  if (!obd_link_) {
    isotp::EndpointConfig config{can::CanId{0x7DF, false},
                                 can::CanId{0x7E8, false}};
    config.stall_policy = isotp::StallPolicy::kAbortStale;
    obd_link_ = std::make_unique<isotp::Endpoint>(bus_, config);
    obd_client_ = std::make_unique<uds::Client>(
        *obd_link_,
        [this] {
          clock_.advance(2 * util::kMillisecond);
          bus_.deliver_pending();
        },
        policy_, &clock_);
  }
  const util::SimTime lag = static_cast<util::SimTime>(
      profile_.ui_lag_s * static_cast<double>(util::kSecond));
  for (auto& row : obd_rows_) {
    auto resp = obd_client_->transact(obd::encode_request(row.pid));
    if (!resp && recover_from_sleep()) {
      resp = obd_client_->transact(obd::encode_request(row.pid));
      if (resp) ++session_stats_.sleep_recoveries;
    }
    if (!resp && supervisor_.enabled) {
      // Functional OBD queries land on the engine ECU's UDS server, so a
      // reset boot window silences them too. Probe, then replay once.
      ++session_stats_.sessions_lost;
      if (probe_alive(obd_client_.get(), nullptr)) {
        ++session_stats_.reissued_requests;
        resp = obd_client_->transact(obd::encode_request(row.pid));
      }
      if (resp) {
        ++session_stats_.sessions_restored;
      } else {
        ++session_stats_.recovery_failures;
      }
    }
    if (!resp) {
      // Mode-01 PIDs mirror to DID 0xF400+pid in ISO 14229 terms.
      record_failure(false, static_cast<std::uint16_t>(0xF400 + row.pid));
      continue;
    }
    if (const auto value = obd::decode_value(*resp)) {
      row.pending_text = fixed1(*value);
      row.pending_at = clock_.now() + lag;
      note_pending(row.pending_at);
    }
  }
}

void DiagnosticTool::run_active_test(std::size_t ecu_index,
                                     std::size_t actuator_index) {
  const auto& ecu_spec = vehicle_.spec().ecus.at(ecu_index);
  const auto& act = ecu_spec.actuators.at(actuator_index);
  auto& conn = connection(ecu_index);

  auto attempt = [&]() -> bool {
    bool ok = false;
    if (vehicle_.spec().io_service == vehicle::IoService::kUds2F) {
      if (!conn.session_started) {
        conn.session_started = conn.uds->start_session(0x03);
      }
      // The three-message pattern of §4.5: freeze, adjust, return.
      ok = conn.uds
               ->io_control(act.id,
                            uds::IoControlParameter::kFreezeCurrentState)
               .has_value();
      ok = ok &&
           conn.uds
               ->io_control(act.id,
                            uds::IoControlParameter::kShortTermAdjustment,
                            act.example_state)
               .has_value();
      settle(1 * util::kSecond);  // let the component actuate
      ok = ok &&
           conn.uds
               ->io_control(act.id,
                            uds::IoControlParameter::kReturnControlToEcu)
               .has_value();
    } else {
      if (!conn.session_started) {
        // UDS vehicles that expose the local-identifier IO service still
        // use UDS session management; pure KWP vehicles use 0x10 0x89.
        conn.session_started =
            vehicle_.spec().protocol == vehicle::Protocol::kUds
                ? conn.uds->start_session(0x03)
                : conn.kwp->start_session(0x89);
      }
      const auto local_id = static_cast<std::uint8_t>(act.id);
      util::Bytes freeze{0x02};
      ok = conn.kwp->io_control_local(local_id, freeze).has_value();
      util::Bytes adjust{0x03};
      adjust.insert(adjust.end(), act.example_state.begin(),
                    act.example_state.end());
      ok = ok && conn.kwp->io_control_local(local_id, adjust).has_value();
      settle(1 * util::kSecond);
      util::Bytes ret{0x00};
      ok = ok && conn.kwp->io_control_local(local_id, ret).has_value();
    }
    return ok;
  };
  bool ok = attempt();
  if (!ok && recover_from_sleep()) {
    ok = attempt();
    if (ok) ++session_stats_.sleep_recoveries;
  }
  if (!ok && supervisor_.enabled) {
    // A broken three-message sequence leaves the actuator in an unknown
    // state; after recovering the session the whole procedure is
    // replayed from the freeze step, exactly as a human operator would.
    ++session_stats_.sessions_lost;
    if (recover_session(ecu_index)) {
      ++session_stats_.reissued_requests;
      ok = attempt();
    }
    if (ok) {
      ++session_stats_.sessions_restored;
    } else {
      ++session_stats_.recovery_failures;
    }
  }
  if (!ok) {
    record_failure(vehicle_.spec().io_service != vehicle::IoService::kUds2F,
                   act.id);
  }
  status_text_ = std::string(ok ? "Test OK: " : "Test FAILED: ") + act.name;
}

namespace {

// SAE-style rendering of a DTC: the top two bits of the first byte pick
// the system letter (P/C/B/U), the rest are hex digits.
std::string dtc_to_string(std::uint32_t code, int bytes) {
  static constexpr char kSystems[] = {'P', 'C', 'B', 'U'};
  const std::uint32_t top = bytes == 3 ? (code >> 16) : (code >> 8);
  char buf[16];
  std::snprintf(buf, sizeof buf, "%c%04X", kSystems[(top >> 6) & 0x3],
                code & (bytes == 3 ? 0x3FFFFF : 0x3FFF));
  return buf;
}

}  // namespace

void DiagnosticTool::read_trouble_codes(std::size_t ecu_index) {
  auto& conn = connection(ecu_index);
  dtc_texts_.clear();
  if (vehicle_.spec().protocol == vehicle::Protocol::kUds) {
    const auto resp = conn.uds->transact(util::Bytes{0x19, 0x02, 0xFF});
    if (resp && !resp->empty() && (*resp)[0] == 0x59) {
      for (std::size_t i = 3; i + 3 < resp->size(); i += 4) {
        const std::uint32_t code = (static_cast<std::uint32_t>((*resp)[i])
                                    << 16) |
                                   ((*resp)[i + 1] << 8) | (*resp)[i + 2];
        dtc_texts_.push_back(dtc_to_string(code, 3) + "  status " +
                             util::to_hex({&(*resp)[i + 3], 1}));
      }
    }
  } else {
    const auto resp =
        conn.kwp->transact(util::Bytes{0x18, 0x00, 0xFF, 0x00});
    if (resp && resp->size() >= 2 && (*resp)[0] == 0x58) {
      for (std::size_t i = 2; i + 2 < resp->size(); i += 3) {
        const std::uint32_t code =
            (static_cast<std::uint32_t>((*resp)[i]) << 8) | (*resp)[i + 1];
        dtc_texts_.push_back(dtc_to_string(code, 2) + "  status " +
                             util::to_hex({&(*resp)[i + 2], 1}));
      }
    }
  }
  if (dtc_texts_.empty()) dtc_texts_.push_back("No trouble codes stored");
  mode_ = Mode::kDtcList;
}

void DiagnosticTool::clear_trouble_codes(std::size_t ecu_index) {
  auto& conn = connection(ecu_index);
  bool ok = false;
  if (vehicle_.spec().protocol == vehicle::Protocol::kUds) {
    const auto resp =
        conn.uds->transact(util::Bytes{0x14, 0xFF, 0xFF, 0xFF});
    ok = resp && !resp->empty() && (*resp)[0] == 0x54;
  } else {
    const auto resp = conn.kwp->transact(util::Bytes{0x14, 0xFF, 0x00});
    ok = resp && !resp->empty() && (*resp)[0] == 0x54;
  }
  status_text_ = ok ? "Trouble codes cleared" : "Clear FAILED";
}

void DiagnosticTool::run_for(util::SimTime duration) {
  const auto poll = static_cast<util::SimTime>(
      profile_.poll_period_s * static_cast<double>(util::kSecond));
  const util::SimTime deadline = clock_.now() + duration;
  // Fine-grained stepping: polls fire on their own cadence, and pending
  // UI repaints land at their exact due time (the camera must be able to
  // observe the screen *between* polls, or every frame would show the
  // previous poll's values).
  constexpr util::SimTime kStep = 25 * util::kMillisecond;
  const auto keepalive = static_cast<util::SimTime>(
      supervisor_.keepalive_period_s * static_cast<double>(util::kSecond));
  const auto wakeup_period = static_cast<util::SimTime>(
      nm_tool_.wakeup_period_s * static_cast<double>(util::kSecond));
  while (clock_.now() < deadline) {
    if (nm_enabled_ && nm_tool_.mode == NmToolConfig::Mode::kWakeup &&
        clock_.now() >= next_wakeup_at_) {
      // Proactive wakeup cadence: bounds the length of any sleep window
      // even when no diagnostic traffic is pending.
      nm::send_wakeup(bus_, nm_cfg_, nm_tool_.address);
      next_wakeup_at_ = clock_.now() + wakeup_period;
    }
    if (supervisor_.enabled && clock_.now() >= next_keepalive_at_) {
      send_keepalives();
      next_keepalive_at_ = clock_.now() + keepalive;
    }
    if (clock_.now() >= next_poll_at_) {
      if (mode_ == Mode::kDataLive) {
        poll_live_rows();
      } else if (mode_ == Mode::kObdLive) {
        poll_obd();
      }
      next_poll_at_ = clock_.now() + poll;
    }
    const util::SimTime step =
        std::min<util::SimTime>(kStep, deadline - clock_.now());
    clock_.advance(step);
    // When a bus lifecycle is armed the NM state machines only advance
    // inside deliver_pending(); pump it every step so ring timers fire
    // even while the tool itself is idle. Gated on the *bus*, not the
    // tool's own NM participation: an NM-oblivious tool on an NM vehicle
    // must still let the ECUs ring (and fall asleep underneath it).
    if (bus_.lifecycle_enabled()) bus_.deliver_pending();
    // The screen is a pure function of tool state, and inside this loop
    // the only state that can change between steps is a repaint landing —
    // clicks and mode changes rebuild on their own. So rebuild exactly
    // when apply_pending changed something (legacy shim: every step).
    const bool repainted = apply_pending(clock_.now());
    if (repainted || legacy_ui_) build_screen();
  }
}

bool DiagnosticTool::click(int x, int y) {
  const Widget* widget = screen_.hit_test(x, y);
  if (widget == nullptr) return false;
  const std::string& action = widget->action;

  if (action == "menu:diagnostics") {
    mode_ = Mode::kEcuList;
  } else if (action == "menu:obd") {
    obd_rows_.clear();
    // The well-documented PIDs a telematics-style OBD view shows.
    for (const auto& spec : obd::pid_table()) {
      obd_rows_.push_back(ObdRow{spec.pid, spec.name, "--"});
      if (obd_rows_.size() >= kRowsPerPage) break;
    }
    mode_ = Mode::kObdLive;
  } else if (action.rfind("ecu:", 0) == 0) {
    enter_ecu(static_cast<std::size_t>(std::stoul(action.substr(4))));
  } else if (action == "ecu_menu:data") {
    build_rows(current_ecu_);
    page_ = 0;
    mode_ = Mode::kDataSelect;
  } else if (action == "ecu_menu:active") {
    mode_ = Mode::kActiveTest;
  } else if (action == "ecu_menu:read_dtc") {
    read_trouble_codes(current_ecu_);
  } else if (action == "ecu_menu:clear_dtc") {
    clear_trouble_codes(current_ecu_);
  } else if (action.rfind("row:", 0) == 0) {
    const auto index = static_cast<std::size_t>(std::stoul(action.substr(4)));
    if (index < rows_.size()) rows_[index].selected = !rows_[index].selected;
  } else if (action == "page:next") {
    if ((page_ + 1) * kRowsPerPage < rows_.size()) ++page_;
  } else if (action == "page:prev") {
    if (page_ > 0) --page_;
  } else if (action == "start") {
    mode_ = Mode::kDataLive;
  } else if (action == "stop") {
    mode_ = Mode::kDataSelect;
  } else if (action.rfind("act:", 0) == 0) {
    run_active_test(current_ecu_,
                    static_cast<std::size_t>(std::stoul(action.substr(4))));
  } else if (action == "back") {
    switch (mode_) {
      case Mode::kEcuList:
      case Mode::kObdLive:
        mode_ = Mode::kMainMenu;
        break;
      case Mode::kEcuMenu:
        mode_ = Mode::kEcuList;
        break;
      case Mode::kDataSelect:
      case Mode::kActiveTest:
      case Mode::kDtcList:
        mode_ = Mode::kEcuMenu;
        break;
      case Mode::kDataLive:
        mode_ = Mode::kDataSelect;
        break;
      default:
        break;
    }
  }
  build_screen();
  return true;
}

void DiagnosticTool::enter_ecu(std::size_t index) {
  current_ecu_ = index;
  mode_ = Mode::kEcuMenu;
  connection(index);  // open the transport (handshake traffic, if any)
}

void DiagnosticTool::build_screen() {
  Screen s;
  s.width = profile_.screen_width;
  s.height = profile_.screen_height;

  const int margin = s.width / 24;
  const int button_h = s.height / 14;
  auto add_title = [&](const std::string& text) {
    s.title = text;
    s.widgets.push_back(Widget{Widget::Kind::kLabel, text,
                               Rect{margin, 10, s.width - 2 * margin, 40},
                               "", "", -1});
  };
  auto add_button = [&](const std::string& text, int index,
                        const std::string& action) {
    s.widgets.push_back(
        Widget{Widget::Kind::kButton, text,
               Rect{margin, 70 + (button_h + 12) * index,
                    s.width - 2 * margin, button_h},
               action, "", -1});
  };
  auto add_back_icon = [&] {
    // Icon-only button (no text): the UI analyzer must recognize it by
    // widget similarity (§3.1).
    s.widgets.push_back(Widget{Widget::Kind::kIconButton, "",
                               Rect{8, 8, 40, 40}, "back", "back_arrow",
                               -1});
  };

  switch (mode_) {
    case Mode::kMainMenu: {
      add_title(profile_.name + " - " + vehicle_.spec().model);
      add_button("Local Diagnostics", 0, "menu:diagnostics");
      add_button("OBD-II Scan", 1, "menu:obd");
      add_button("Settings", 2, "noop");
      add_button("Software Update", 3, "noop");
      add_button("Data Playback", 4, "noop");
      break;
    }
    case Mode::kEcuList: {
      add_title("Select Control Unit");
      add_back_icon();
      const auto& ecus = vehicle_.spec().ecus;
      for (std::size_t i = 0; i < ecus.size(); ++i) {
        add_button(ecus[i].name, static_cast<int>(i),
                   "ecu:" + std::to_string(i));
      }
      break;
    }
    case Mode::kEcuMenu: {
      add_title(vehicle_.spec().ecus.at(current_ecu_).name);
      add_back_icon();
      add_button("Read Data Stream", 0, "ecu_menu:data");
      add_button("Active Test", 1, "ecu_menu:active");
      add_button("Read Trouble Codes", 2, "ecu_menu:read_dtc");
      add_button("Clear Trouble Codes", 3, "ecu_menu:clear_dtc");
      if (!status_text_.empty()) {
        s.widgets.push_back(Widget{Widget::Kind::kLabel, status_text_,
                                   Rect{margin, s.height - 60,
                                        s.width - 2 * margin, 40},
                                   "", "", -1});
      }
      break;
    }
    case Mode::kDataSelect:
    case Mode::kDataLive: {
      const bool live = mode_ == Mode::kDataLive;
      add_title(live ? "Data Stream (live)" : "Select Data Stream Items");
      add_back_icon();
      const int row_h = (s.height - 170) / static_cast<int>(kRowsPerPage);
      const std::size_t begin = page_ * kRowsPerPage;
      const std::size_t end =
          std::min(rows_.size(), begin + kRowsPerPage);
      for (std::size_t i = begin; i < end; ++i) {
        const auto& row = rows_[i];
        const int ry = 60 + row_h * static_cast<int>(i - begin);
        std::string label = row.name;
        if (!row.unit.empty()) label += " (" + row.unit + ")";
        if (!live) {
          s.widgets.push_back(
              Widget{Widget::Kind::kButton,
                     (row.selected ? "[x] " : "[ ] ") + label,
                     Rect{margin, ry, s.width * 6 / 10, row_h - 4},
                     "row:" + std::to_string(i), "", static_cast<int>(i)});
        } else {
          s.widgets.push_back(Widget{
              Widget::Kind::kLabel, label,
              Rect{margin, ry, s.width * 5 / 10, row_h - 4}, "", "",
              static_cast<int>(i)});
          if (row.selected) {
            s.widgets.push_back(Widget{
                Widget::Kind::kValueText, row.value_text,
                Rect{s.width * 6 / 10, ry, s.width * 2 / 10,
                     profile_.value_font_px},
                "", "", static_cast<int>(i)});
          }
        }
      }
      const int controls_y = s.height - 70;
      s.widgets.push_back(Widget{
          Widget::Kind::kButton, live ? "Stop" : "Start",
          Rect{margin, controls_y, s.width / 5, button_h},
          live ? "stop" : "start", "", -1});
      s.widgets.push_back(Widget{Widget::Kind::kButton, "Prev Page",
                                 Rect{margin + s.width / 4, controls_y,
                                      s.width / 6, button_h},
                                 "page:prev", "", -1});
      s.widgets.push_back(Widget{Widget::Kind::kButton, "Next Page",
                                 Rect{margin + s.width * 5 / 12, controls_y,
                                      s.width / 6, button_h},
                                 "page:next", "", -1});
      break;
    }
    case Mode::kActiveTest: {
      add_title("Active Test - " +
                vehicle_.spec().ecus.at(current_ecu_).name);
      add_back_icon();
      const auto& acts = vehicle_.spec().ecus.at(current_ecu_).actuators;
      for (std::size_t i = 0; i < acts.size(); ++i) {
        add_button(acts[i].name, static_cast<int>(i),
                   "act:" + std::to_string(i));
      }
      if (!status_text_.empty()) {
        s.widgets.push_back(Widget{Widget::Kind::kLabel, status_text_,
                                   Rect{margin, s.height - 60,
                                        s.width - 2 * margin, 40},
                                   "", "", -1});
      }
      break;
    }
    case Mode::kDtcList: {
      add_title("Trouble Codes - " +
                vehicle_.spec().ecus.at(current_ecu_).name);
      add_back_icon();
      const int row_h = 42;
      for (std::size_t i = 0; i < dtc_texts_.size(); ++i) {
        s.widgets.push_back(Widget{
            Widget::Kind::kLabel, dtc_texts_[i],
            Rect{margin, 60 + row_h * static_cast<int>(i),
                 s.width - 2 * margin, row_h - 4},
            "", "", -1});
      }
      break;
    }
    case Mode::kObdLive: {
      add_title("OBD-II Live Data");
      add_back_icon();
      const int row_h = (s.height - 170) / static_cast<int>(kRowsPerPage);
      for (std::size_t i = 0; i < obd_rows_.size(); ++i) {
        const int ry = 60 + row_h * static_cast<int>(i);
        s.widgets.push_back(Widget{Widget::Kind::kLabel, obd_rows_[i].name,
                                   Rect{margin, ry, s.width * 5 / 10,
                                        row_h - 4},
                                   "", "", static_cast<int>(i)});
        s.widgets.push_back(Widget{
            Widget::Kind::kValueText, obd_rows_[i].value_text,
            Rect{s.width * 6 / 10, ry, s.width * 2 / 10,
                 profile_.value_font_px},
            "", "", static_cast<int>(i)});
      }
      break;
    }
  }
  screen_ = std::move(s);
}

}  // namespace dpr::diagtool
