#pragma once
// Simulated professional diagnostic tool (AUTEL 919 / LAUNCH X431 / VCDS /
// Techstream). The tool embeds the manufacturer's proprietary knowledge
// (DID tables, formulas, actuator procedures — taken from the vehicle
// catalog, exactly as a real tool ships with the manufacturer's database)
// and exposes only two surfaces to the outside world:
//   * its UI (a Screen of widgets) — observed by the CPS cameras, and
//   * its CAN traffic — observed by the OBD-port sniffer.
// DP-Reverser reverse engineers the protocol from those two surfaces only.

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "can/bus.hpp"
#include "diagtool/profile.hpp"
#include "diagtool/ui.hpp"
#include "isotp/endpoint.hpp"
#include "kwp/client.hpp"
#include "nm/nm.hpp"
#include "oemtp/link.hpp"
#include "uds/client.hpp"
#include "util/clock.hpp"
#include "util/transact.hpp"
#include "vehicle/vehicle.hpp"
#include "vwtp/channel.hpp"

namespace dpr::diagtool {

/// Session supervision knobs. When enabled the tool behaves like a real
/// scan tool on a flaky car: it schedules suppressed TesterPresent
/// keepalives against the ECU's S3 timer and, when a request dies (S3
/// expiry, spontaneous ECU reset), probes until the ECU answers again,
/// re-enters the diagnostic session and re-issues the failed request.
struct SupervisorConfig {
  bool enabled = false;
  double keepalive_period_s = 2.5;  // must undercut the server S3 timeout
  double boot_backoff_s = 0.05;     // wait between recovery probes
  int max_recovery_attempts = 8;    // bounded: spans one ECU boot window
};

/// Counters for everything the supervisor did. Deterministic for a fixed
/// (seed, fault config): recovery uses only SimClock time, no RNG.
struct SessionStats {
  std::uint64_t keepalives = 0;         // suppressed TesterPresent sent
  std::uint64_t sessions_lost = 0;      // failed request attributed to loss
  std::uint64_t sessions_restored = 0;  // re-issue succeeded after recovery
  std::uint64_t reissued_requests = 0;  // in-flight requests replayed
  std::uint64_t recovery_failures = 0;  // probe loop or re-issue gave up
  std::uint64_t bus_sleeps = 0;         // failed request found the bus asleep
  std::uint64_t sleep_recoveries = 0;   // retry succeeded after re-waking

  SessionStats& operator+=(const SessionStats& o) {
    keepalives += o.keepalives;
    sessions_lost += o.sessions_lost;
    sessions_restored += o.sessions_restored;
    reissued_requests += o.reissued_requests;
    recovery_failures += o.recovery_failures;
    bus_sleeps += o.bus_sleeps;
    sleep_recoveries += o.sleep_recoveries;
    return *this;
  }
};

/// How the tool participates in OSEK network management when the vehicle
/// runs an NM ring. kRing joins the ring as a full member that never
/// agrees to sleep (the preventive strategy: the bus stays awake as long
/// as the tool is attached). kWakeup stays outside the ring and sends
/// periodic wakeup frames instead — the bus still sleeps during long
/// quiet gaps, and the tool re-wakes it reactively when a transaction
/// dies against a sleeping bus (the recovery strategy).
struct NmToolConfig {
  enum class Mode { kRing, kWakeup };
  Mode mode = Mode::kWakeup;
  double wakeup_period_s = 1.0;   // kWakeup: proactive wakeup cadence
  std::uint8_t address = 0x3E;    // tester NM node address
};

class DiagnosticTool {
 public:
  /// `policy` governs every protocol client the tool creates; the default
  /// single-shot policy reproduces the legacy lossless-bus behaviour,
  /// campaigns pass TransactPolicy::resilient() when faults are enabled.
  DiagnosticTool(ToolProfile profile, vehicle::Vehicle& vehicle,
                 can::CanBus& bus, util::SimClock& clock,
                 util::TransactPolicy policy = {});

  DiagnosticTool(const DiagnosticTool&) = delete;
  DiagnosticTool& operator=(const DiagnosticTool&) = delete;

  const ToolProfile& profile() const { return profile_; }

  /// The currently displayed screen (camera a / camera b view).
  const Screen& screen() const { return screen_; }

  /// Robotic-clicker entry point: click at pixel coordinates.
  /// Returns true if a widget was hit.
  bool click(int x, int y);

  /// Let simulated time pass while the tool performs its periodic work
  /// (polling ESVs in a live data-stream view).
  void run_for(util::SimTime duration);

  /// Names of the modes, for tests/examples.
  enum class Mode {
    kMainMenu,
    kEcuList,
    kEcuMenu,
    kDataSelect,
    kDataLive,
    kActiveTest,
    kDtcList,
    kObdLive,
  };
  Mode mode() const { return mode_; }

  /// Number of data-stream rows currently selected for live view.
  std::size_t selected_rows() const;

  /// Retry/timeout counters summed over every protocol client the tool
  /// has opened (per-ECU UDS/KWP clients plus the OBD scanner).
  util::TransactStats transact_stats() const;

  /// Identifiers whose reads/controls exhausted all retries, with the
  /// number of failed transactions each. OBD PIDs are keyed under their
  /// ISO 14229 mirror DID 0xF400+pid.
  const std::map<std::pair<bool, std::uint16_t>, std::size_t>&
  failed_reads() const {
    return failed_reads_;
  }

  /// Arm session supervision (keepalives + automatic session recovery).
  /// Campaigns enable this exactly when stateful faults are configured,
  /// so lossless runs keep their legacy traffic bit-identical.
  void enable_supervision(const SupervisorConfig& config) {
    supervisor_ = config;
    next_keepalive_at_ = 0;
  }
  const SessionStats& session_stats() const { return session_stats_; }

  /// Arm NM participation. In kRing mode the tool immediately joins the
  /// OSEK ring as a non-sleeping member (jitter stream salts its alive
  /// stagger); in kWakeup mode it sends periodic wakeup frames and
  /// re-wakes the bus reactively whenever a transaction finds it asleep.
  /// Campaigns call this exactly when FaultConfig::nm is set, so NM-off
  /// runs keep their traffic bit-identical.
  void enable_nm(const nm::NmConfig& config, const NmToolConfig& tool,
                 util::CounterRng jitter);
  bool nm_enabled() const { return nm_enabled_; }

  /// Reference shim for the run_for() hot loop: rebuild the screen and
  /// scan every row's repaint timer on every 25 ms step, as the tool did
  /// before the dirty-tracking fast path. The displayed screens are
  /// identical either way (build_screen is a pure function of tool state,
  /// and the fast path rebuilds whenever a repaint lands); kept for
  /// equivalence tests and old-vs-new benchmarks.
  void set_legacy_ui(bool legacy) { legacy_ui_ = legacy; }
  bool legacy_ui() const { return legacy_ui_; }

 private:
  /// One displayed signal.
  struct Row {
    std::string name;
    std::string unit;
    bool is_enum = false;
    bool is_kwp = false;
    std::size_t ecu_index = 0;
    uds::Did did = 0;               // UDS source
    std::uint8_t local_id = 0;      // KWP source
    std::size_t esv_index = 0;
    std::size_t data_bytes = 1;
    vehicle::PropFormula formula;   // tool's proprietary decode knowledge
    std::uint8_t kwp_formula_type = 0;
    bool selected = false;
    // Live value, with repaint lag modeling (§4.3 error cause (i)).
    std::string value_text = "--";
    std::string pending_text;
    util::SimTime pending_at = -1;
  };

  struct Connection {
    std::unique_ptr<util::MessageLink> link;
    std::unique_ptr<uds::Client> uds;
    std::unique_ptr<kwp::Client> kwp;
    bool session_started = false;
  };

  void build_screen();
  void enter_ecu(std::size_t index);
  void build_rows(std::size_t ecu_index);
  Connection& connection(std::size_t ecu_index);
  void poll_live_rows();
  /// Land due repaints; returns whether any value text changed (i.e. the
  /// screen needs a rebuild). O(1) when no repaint is due yet, via the
  /// next_pending_due_ watermark.
  bool apply_pending(util::SimTime now);
  /// Fold a newly scheduled repaint time into the watermark.
  void note_pending(util::SimTime at);
  void run_active_test(std::size_t ecu_index, std::size_t actuator_index);
  void read_trouble_codes(std::size_t ecu_index);
  void clear_trouble_codes(std::size_t ecu_index);
  void poll_obd();
  std::string format_value(const Row& row, double physical) const;
  void record_failure(bool is_kwp, std::uint16_t id);
  void send_keepalives();
  bool probe_alive(uds::Client* uds, kwp::Client* kwp);
  bool recover_session(std::size_t ecu_index);
  /// True when a dead transaction should be retried because the bus was
  /// found asleep; re-wakes the bus and settles NM traffic first.
  bool recover_from_sleep();
  /// Advance sim time; with a bus lifecycle armed, in small pumped steps
  /// so the NM ring keeps circulating across the gap.
  void settle(util::SimTime duration);

  ToolProfile profile_;
  vehicle::Vehicle& vehicle_;
  can::CanBus& bus_;
  util::SimClock& clock_;
  util::TransactPolicy policy_;
  std::map<std::pair<bool, std::uint16_t>, std::size_t> failed_reads_;
  SupervisorConfig supervisor_;
  SessionStats session_stats_;
  util::SimTime next_keepalive_at_ = 0;

  // NM participation (enable_nm).
  bool nm_enabled_ = false;
  nm::NmConfig nm_cfg_;
  NmToolConfig nm_tool_;
  std::unique_ptr<nm::NmNode> nm_node_;  // kRing mode only
  util::SimTime next_wakeup_at_ = 0;     // kWakeup mode only
  std::uint64_t sleep_lost_mark_ = 0;    // bus frames_lost_to_sleep() watermark

  Mode mode_ = Mode::kMainMenu;
  bool legacy_ui_ = false;
  /// Earliest pending_at across rows_ and obd_rows_, or -1 when none is
  /// scheduled. May be conservative (too early) after rows are rebuilt —
  /// apply_pending then scans once, finds nothing due, and re-tightens.
  util::SimTime next_pending_due_ = -1;
  util::SimTime next_poll_at_ = 0;
  std::size_t poll_counter_ = 0;
  Screen screen_;
  std::size_t current_ecu_ = 0;
  std::size_t page_ = 0;
  std::vector<Row> rows_;
  std::vector<std::string> dtc_texts_;
  std::string status_text_;
  std::map<std::size_t, Connection> connections_;

  // OBD live view state (main-menu "OBD-II Scan").
  struct ObdRow {
    std::uint8_t pid = 0;
    std::string name;
    std::string value_text = "--";
    std::string pending_text;
    util::SimTime pending_at = -1;
  };
  std::vector<ObdRow> obd_rows_;
  std::unique_ptr<isotp::Endpoint> obd_link_;
  std::unique_ptr<uds::Client> obd_client_;  // reused as raw transport

  static constexpr std::size_t kRowsPerPage = 14;
};

}  // namespace dpr::diagtool
