#include "diagtool/ui.hpp"

namespace dpr::diagtool {

const Widget* Screen::hit_test(int x, int y) const {
  for (auto it = widgets.rbegin(); it != widgets.rend(); ++it) {
    if ((it->kind == Widget::Kind::kButton ||
         it->kind == Widget::Kind::kIconButton) &&
        it->bounds.contains(x, y)) {
      return &*it;
    }
  }
  return nullptr;
}

std::vector<const Widget*> Screen::of_kind(Widget::Kind kind) const {
  std::vector<const Widget*> out;
  for (const auto& widget : widgets) {
    if (widget.kind == kind) out.push_back(&widget);
  }
  return out;
}

}  // namespace dpr::diagtool
