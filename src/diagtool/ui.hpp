#pragma once
// UI surface of a diagnostic tool: what the cameras of the CPS rig see.
//
// A Screen is a set of positioned widgets. The UI analyzer (cps module)
// only ever consumes this surface — never the tool's internal state — so
// DP-Reverser's "tool as a black box" assumption holds in simulation.

#include <optional>
#include <string>
#include <vector>

namespace dpr::diagtool {

struct Rect {
  int x = 0, y = 0, w = 0, h = 0;

  bool contains(int px, int py) const {
    return px >= x && px < x + w && py >= y && py < y + h;
  }
  int center_x() const { return x + w / 2; }
  int center_y() const { return y + h / 2; }
};

struct Widget {
  enum class Kind {
    kButton,      // clickable, with text
    kIconButton,  // clickable, no text (recognized by shape similarity)
    kLabel,       // static text
    kValueText,   // live value text (the OCR target for ESVs)
  };

  Kind kind = Kind::kLabel;
  std::string text;
  Rect bounds;
  /// Internal action token consumed by the tool when clicked; opaque to
  /// the CPS side (which only sees geometry + text).
  std::string action;
  /// Icon identity for icon buttons (matched against reference pictures
  /// by the UI analyzer, §3.1). Empty otherwise.
  std::string icon;
  /// For value texts: index of the sibling label naming the signal.
  int row = -1;
};

struct Screen {
  std::string title;
  int width = 0, height = 0;
  std::vector<Widget> widgets;

  /// Topmost clickable widget at a point, if any.
  const Widget* hit_test(int x, int y) const;

  /// All widgets of one kind.
  std::vector<const Widget*> of_kind(Widget::Kind kind) const;
};

}  // namespace dpr::diagtool
