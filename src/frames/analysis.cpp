#include "frames/analysis.hpp"

#include <map>

#include "isotp/isotp.hpp"
#include "oemtp/bmw_framing.hpp"
#include "vwtp/vwtp.hpp"

namespace dpr::frames {

FrameCensus census(const std::vector<can::TimestampedFrame>& capture,
                   TransportHint hint) {
  FrameCensus c;
  for (const auto& rec : capture) {
    switch (hint) {
      case TransportHint::kIsoTp: {
        const auto type = isotp::classify(rec.frame);
        if (!type) {
          ++c.other;
          break;
        }
        switch (*type) {
          case isotp::FrameType::kSingle:
            ++c.single_frames;
            break;
          case isotp::FrameType::kFirst:
            ++c.first_frames;
            break;
          case isotp::FrameType::kConsecutive:
            ++c.consecutive_frames;
            break;
          case isotp::FrameType::kFlowControl:
            ++c.flow_control_frames;
            break;
        }
        break;
      }
      case TransportHint::kVwTp20: {
        const auto kind = vwtp::classify(rec.frame);
        if (!kind) {
          ++c.other;
          break;
        }
        if (*kind == vwtp::FrameKind::kData) {
          const auto info = vwtp::decode_data(rec.frame);
          if (info && vwtp::is_last(info->op)) {
            ++c.vwtp_data_last;
          } else {
            ++c.vwtp_data_more;
          }
        } else {
          ++c.vwtp_control;
        }
        break;
      }
      case TransportHint::kBmwFraming: {
        const auto inner = oemtp::strip_address(rec.frame);
        const auto type =
            inner ? isotp::classify(*inner) : std::nullopt;
        if (!type) {
          ++c.other;
          break;
        }
        switch (*type) {
          case isotp::FrameType::kSingle:
            ++c.single_frames;
            break;
          case isotp::FrameType::kFirst:
            ++c.first_frames;
            break;
          case isotp::FrameType::kConsecutive:
            ++c.consecutive_frames;
            break;
          case isotp::FrameType::kFlowControl:
            ++c.flow_control_frames;
            break;
        }
        break;
      }
    }
  }
  return c;
}

std::vector<DiagMessage> assemble(
    const std::vector<can::TimestampedFrame>& capture, TransportHint hint) {
  std::vector<DiagMessage> messages;

  switch (hint) {
    case TransportHint::kIsoTp: {
      std::map<std::uint32_t, isotp::Reassembler> reassemblers;
      for (const auto& rec : capture) {
        auto& r = reassemblers[rec.frame.id().value];
        if (auto payload = r.feed(rec.frame)) {
          messages.push_back(DiagMessage{rec.timestamp,
                                         rec.frame.id().value,
                                         std::move(*payload)});
        }
      }
      break;
    }
    case TransportHint::kVwTp20: {
      std::map<std::uint32_t, vwtp::Reassembler> reassemblers;
      for (const auto& rec : capture) {
        // Screening: TP 2.0 control frames carry no payload (§3.2 step 1).
        const auto kind = vwtp::classify(rec.frame);
        if (!kind || vwtp::is_control_frame(*kind)) continue;
        auto& r = reassemblers[rec.frame.id().value];
        if (auto payload = r.feed(rec.frame)) {
          messages.push_back(DiagMessage{rec.timestamp,
                                         rec.frame.id().value,
                                         std::move(*payload)});
        }
      }
      break;
    }
    case TransportHint::kBmwFraming: {
      // "Ignore the first byte and put the remaining bytes together":
      // reassemble per (CAN id, address byte) so interleaved targets on a
      // shared tester id do not corrupt each other.
      std::map<std::pair<std::uint32_t, std::uint8_t>, isotp::Reassembler>
          reassemblers;
      for (const auto& rec : capture) {
        const auto address = oemtp::bmw_target_ecu(rec.frame);
        const auto inner = oemtp::strip_address(rec.frame);
        if (!address || !inner) continue;
        auto& r = reassemblers[{rec.frame.id().value, *address}];
        if (auto payload = r.feed(*inner)) {
          messages.push_back(DiagMessage{rec.timestamp,
                                         rec.frame.id().value,
                                         std::move(*payload)});
        }
      }
      break;
    }
  }
  return messages;
}

}  // namespace dpr::frames
