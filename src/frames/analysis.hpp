#pragma once
// Diagnostic frames analysis, steps 1-2 (§3.2): screen out frames that
// carry no diagnostic payload (flow control, TP 2.0 channel management),
// then assemble the raw payload of each diagnostic message from the
// sniffed frame stream — per transport flavor.

#include <vector>

#include "can/frame.hpp"
#include "util/hex.hpp"

namespace dpr::frames {

/// Transport layer the capture used. The analyst knows this per vehicle
/// (§6 limitation 4: recovering payloads requires the standard as domain
/// knowledge).
enum class TransportHint { kIsoTp, kVwTp20, kBmwFraming };

/// Frame-type census over a capture (Table 9).
struct FrameCensus {
  std::size_t single_frames = 0;
  std::size_t first_frames = 0;
  std::size_t consecutive_frames = 0;
  std::size_t flow_control_frames = 0;
  std::size_t vwtp_data_last = 0;      // TP 2.0 last data frames
  std::size_t vwtp_data_more = 0;      // TP 2.0 data frames awaiting more
  std::size_t vwtp_control = 0;        // setup/params/ACK/disconnect
  std::size_t other = 0;

  std::size_t total() const {
    return single_frames + first_frames + consecutive_frames +
           flow_control_frames + vwtp_data_last + vwtp_data_more +
           vwtp_control + other;
  }
  std::size_t multi_frames() const {
    return first_frames + consecutive_frames;
  }
};

FrameCensus census(const std::vector<can::TimestampedFrame>& capture,
                   TransportHint hint);

/// One assembled diagnostic message.
struct DiagMessage {
  util::SimTime timestamp = 0;   // completion time (last frame's stamp)
  std::uint32_t can_id = 0;      // id the message was carried on
  util::Bytes payload;
};

/// Steps 1+2: screen and assemble every message in the capture. Messages
/// are reassembled per CAN id (one in-flight message per direction).
std::vector<DiagMessage> assemble(
    const std::vector<can::TimestampedFrame>& capture, TransportHint hint);

}  // namespace dpr::frames
