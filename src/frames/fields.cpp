#include "frames/fields.hpp"

#include <algorithm>
#include <map>

namespace dpr::frames {

namespace {

/// Locate each requested DID in the response and slice the data between
/// consecutive DIDs (the §3.2 step 3 reference algorithm).
std::vector<EsvObservation> slice_uds_response(
    const util::Bytes& response, const std::vector<std::uint16_t>& dids,
    util::SimTime timestamp) {
  std::vector<EsvObservation> out;
  std::size_t pos = 1;  // skip the 0x62 service byte
  for (std::size_t k = 0; k < dids.size(); ++k) {
    // Find this DID at/after pos.
    std::size_t found = response.size();
    for (std::size_t i = pos; i + 1 < response.size(); ++i) {
      if (response[i] == (dids[k] >> 8) &&
          response[i + 1] == (dids[k] & 0xFF)) {
        found = i;
        break;
      }
    }
    if (found == response.size()) return {};  // malformed pairing
    const std::size_t data_begin = found + 2;
    // Data runs until the next requested DID (or the end).
    std::size_t data_end = response.size();
    if (k + 1 < dids.size()) {
      for (std::size_t i = data_begin; i + 1 < response.size(); ++i) {
        if (response[i] == (dids[k + 1] >> 8) &&
            response[i + 1] == (dids[k + 1] & 0xFF)) {
          data_end = i;
          break;
        }
      }
    }
    if (data_end <= data_begin) return {};
    EsvObservation esv;
    esv.timestamp = timestamp;
    esv.is_kwp = false;
    esv.did = dids[k];
    esv.data.assign(response.begin() + static_cast<std::ptrdiff_t>(data_begin),
                    response.begin() + static_cast<std::ptrdiff_t>(data_end));
    out.push_back(std::move(esv));
    pos = data_end;
  }
  return out;
}

}  // namespace

ExtractionResult extract_fields(const std::vector<DiagMessage>& messages) {
  ExtractionResult result;

  // The diagnostic tool is strictly request/response sequential, so the
  // last pending request is the reference for the next response (§3.2).
  std::optional<std::vector<std::uint16_t>> pending_read_dids;   // 0x22
  std::optional<std::uint8_t> pending_local_id;                  // 0x21
  std::optional<EcrObservation> pending_ecr;                     // 0x2F/0x30

  for (const auto& msg : messages) {
    const auto& p = msg.payload;
    if (p.empty()) continue;
    const std::uint8_t first = p[0];

    switch (first) {
      case 0x22: {  // UDS ReadDataByIdentifier request
        if (p.size() < 3 || (p.size() - 1) % 2 != 0) break;
        std::vector<std::uint16_t> dids;
        for (std::size_t i = 1; i + 1 < p.size(); i += 2) {
          dids.push_back(
              static_cast<std::uint16_t>((p[i] << 8) | p[i + 1]));
        }
        pending_read_dids = std::move(dids);
        break;
      }
      case 0x62: {  // positive 0x22 response
        if (!pending_read_dids) {
          ++result.unmatched_responses;
          break;
        }
        auto esvs = slice_uds_response(p, *pending_read_dids, msg.timestamp);
        result.esvs.insert(result.esvs.end(), esvs.begin(), esvs.end());
        pending_read_dids.reset();
        break;
      }
      case 0x21: {  // KWP readDataByLocalIdentifier request
        if (p.size() == 2) pending_local_id = p[1];
        break;
      }
      case 0x61: {  // positive 0x21 response: local id + 3-byte records
        if (p.size() < 5 || (p.size() - 2) % 3 != 0) break;
        const std::uint8_t local_id = p[1];
        std::size_t index = 0;
        for (std::size_t i = 2; i + 2 < p.size(); i += 3) {
          EsvObservation esv;
          esv.timestamp = msg.timestamp;
          esv.is_kwp = true;
          esv.local_id = local_id;
          esv.esv_index = index++;
          esv.formula_type = p[i];
          esv.x0 = p[i + 1];
          esv.x1 = p[i + 2];
          result.esvs.push_back(std::move(esv));
        }
        pending_local_id.reset();
        break;
      }
      case 0x2F: {  // UDS IO control request
        if (p.size() < 4) break;
        EcrObservation ecr;
        ecr.timestamp = msg.timestamp;
        ecr.is_uds = true;
        ecr.id = static_cast<std::uint16_t>((p[1] << 8) | p[2]);
        ecr.io_param = p[3];
        ecr.control_state.assign(p.begin() + 4, p.end());
        pending_ecr = std::move(ecr);
        break;
      }
      case 0x30: {  // KWP IO control by local identifier request
        if (p.size() < 3) break;
        EcrObservation ecr;
        ecr.timestamp = msg.timestamp;
        ecr.is_uds = false;
        ecr.id = p[1];
        ecr.io_param = p[2];
        ecr.control_state.assign(p.begin() + 3, p.end());
        pending_ecr = std::move(ecr);
        break;
      }
      case 0x6F:   // positive 0x2F response
      case 0x70: { // positive 0x30 response
        if (pending_ecr) {
          result.ecrs.push_back(*pending_ecr);
          pending_ecr.reset();
        } else {
          ++result.unmatched_responses;
        }
        break;
      }
      case 0x7F: {  // negative response voids the pending request
        pending_read_dids.reset();
        pending_local_id.reset();
        pending_ecr.reset();
        break;
      }
      default:
        break;
    }
  }
  return result;
}

bool ControlProcedure::matches_three_message_pattern() const {
  // Look for freeze (0x02) followed by adjustment (0x03) followed by
  // return control (0x00), possibly with repetitions in between.
  const auto freeze =
      std::find(param_sequence.begin(), param_sequence.end(), 0x02);
  if (freeze == param_sequence.end()) return false;
  const auto adjust = std::find(freeze, param_sequence.end(), 0x03);
  if (adjust == param_sequence.end()) return false;
  const auto ret = std::find(adjust, param_sequence.end(), 0x00);
  return ret != param_sequence.end();
}

std::vector<ControlProcedure> extract_procedures(
    const std::vector<EcrObservation>& ecrs) {
  std::map<std::pair<bool, std::uint16_t>, ControlProcedure> by_component;
  for (const auto& ecr : ecrs) {
    auto& proc = by_component[{ecr.is_uds, ecr.id}];
    if (proc.param_sequence.empty()) proc.first_seen = ecr.timestamp;
    proc.is_uds = ecr.is_uds;
    proc.id = ecr.id;
    proc.param_sequence.push_back(ecr.io_param);
    if (ecr.io_param == 0x03) proc.adjustment_state = ecr.control_state;
  }
  std::vector<ControlProcedure> out;
  out.reserve(by_component.size());
  for (auto& [key, proc] : by_component) out.push_back(std::move(proc));
  std::sort(out.begin(), out.end(),
            [](const ControlProcedure& a, const ControlProcedure& b) {
              return a.first_seen < b.first_seen;
            });
  return out;
}

}  // namespace dpr::frames
