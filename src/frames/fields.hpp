#pragma once
// Diagnostic frames analysis, step 3 (§3.2): extract the manufacturer-
// defined fields from assembled request/response messages — DIDs, local
// identifiers, ESVs and ECRs. ESV boundaries inside a UDS 0x62 response
// are found with the request-reference algorithm: "the list of DIDs in
// the request message also appear in the corresponding response message
// in the same order, and the field value after each DID is just the
// corresponding ESV".

#include <cstdint>
#include <optional>
#include <vector>

#include "frames/analysis.hpp"
#include "util/hex.hpp"

namespace dpr::frames {

/// One observed ESV instance.
struct EsvObservation {
  util::SimTime timestamp = 0;
  bool is_kwp = false;
  // UDS form: the DID and its raw data bytes.
  std::uint16_t did = 0;
  util::Bytes data;
  // KWP form: local id, ESV index inside the block, and the record bytes.
  std::uint8_t local_id = 0;
  std::size_t esv_index = 0;
  std::uint8_t formula_type = 0;
  std::uint8_t x0 = 0;
  std::uint8_t x1 = 0;
};

/// One observed ECU-control record (request that got a positive reply).
struct EcrObservation {
  util::SimTime timestamp = 0;
  bool is_uds = false;          // service 0x2F (true) vs 0x30 (false)
  std::uint16_t id = 0;         // DID or local identifier
  std::uint8_t io_param = 0;    // first ECR byte (0x00/0x02/0x03/...)
  util::Bytes control_state;
};

struct ExtractionResult {
  std::vector<EsvObservation> esvs;
  std::vector<EcrObservation> ecrs;
  std::size_t unmatched_responses = 0;  // responses without a request
};

/// Walk the assembled message stream in time order, pair requests with
/// their responses, and extract every field.
ExtractionResult extract_fields(const std::vector<DiagMessage>& messages);

/// The recovered IO-control procedure of one component (§4.5): the
/// io-control parameters observed for a given id, in order.
struct ControlProcedure {
  bool is_uds = false;
  std::uint16_t id = 0;
  util::SimTime first_seen = 0;              // first ECR of this component
  std::vector<std::uint8_t> param_sequence;  // e.g. {0x02, 0x03, 0x00}
  util::Bytes adjustment_state;              // state of the 0x03 message

  /// True when the sequence matches the paper's freeze -> short-term
  /// adjustment -> return-control pattern.
  bool matches_three_message_pattern() const;
};

/// Group ECR observations into per-component control procedures.
std::vector<ControlProcedure> extract_procedures(
    const std::vector<EcrObservation>& ecrs);

}  // namespace dpr::frames
