#include "gp/batch.hpp"

#include "util/thread_pool.hpp"

namespace dpr::gp {

BatchRunner::BatchRunner(std::size_t n_threads)
    : n_threads_(util::ThreadPool::resolve(n_threads)) {}

BatchRunner::BatchRunner(util::ThreadPool& pool)
    : n_threads_(pool.size()), shared_pool_(&pool) {}

std::vector<std::optional<GpResult>> BatchRunner::run(
    const std::vector<BatchJob>& jobs) const {
  std::vector<std::optional<GpResult>> results(jobs.size());
  auto infer_one = [&jobs, &results](std::size_t i) {
    if (jobs[i].dataset == nullptr) return;
    results[i] = infer_formula(*jobs[i].dataset, jobs[i].config);
  };
  if (shared_pool_ != nullptr && jobs.size() > 1) {
    shared_pool_->parallel_for(jobs.size(), infer_one);
    return results;
  }
  if (n_threads_ <= 1 || jobs.size() <= 1) {
    for (std::size_t i = 0; i < jobs.size(); ++i) infer_one(i);
    return results;
  }
  util::ThreadPool pool(n_threads_);
  pool.parallel_for(jobs.size(), infer_one);
  return results;
}

}  // namespace dpr::gp
