#pragma once
// Fleet-level GP fan-out: each (vehicle, DID) dataset is an independent
// inference problem, so the Table 6/7/8 sweeps and the CLI scatter them
// across a work-stealing pool instead of inferring one formula at a time.
// Each job carries its own GpConfig (seed, thread knob), so a batch run
// produces exactly the results the equivalent serial loop would.

#include <optional>
#include <vector>

#include "correlate/correlate.hpp"
#include "gp/engine.hpp"

namespace dpr::util {
class ThreadPool;
}

namespace dpr::gp {

/// One unit of work: a dataset plus the fully-resolved config (including
/// the per-signal seed perturbation) to infer it with.
struct BatchJob {
  const correlate::Dataset* dataset = nullptr;
  GpConfig config;
};

class BatchRunner {
 public:
  /// `n_threads`: 0 = hardware concurrency, 1 = serial (no pool spawned).
  explicit BatchRunner(std::size_t n_threads = 0);

  /// Fan jobs over an existing pool instead of spawning one (non-owning;
  /// `pool` must outlive the runner). This is the shared-thread-budget
  /// mode: when campaigns themselves run as tasks of a fleet pool, their
  /// inner batches re-enter the same pool — parallel_for is
  /// caller-participating, so the nesting cannot deadlock and the machine
  /// never runs more workers than the fleet budget.
  explicit BatchRunner(util::ThreadPool& pool);

  std::size_t n_threads() const { return n_threads_; }

  /// Infer every job; results[i] corresponds to jobs[i]. Independent of
  /// the thread count — jobs never share state.
  std::vector<std::optional<GpResult>> run(
      const std::vector<BatchJob>& jobs) const;

 private:
  std::size_t n_threads_ = 1;
  util::ThreadPool* shared_pool_ = nullptr;
};

}  // namespace dpr::gp
