#include "gp/engine.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cmath>
#include <memory>

#include "gp/program.hpp"
#include "regress/regress.hpp"
#include "util/thread_pool.hpp"

namespace dpr::gp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Offspring per breeding chunk. Fixed (never derived from the worker
/// count) so that the chunk -> RNG-stream mapping, and therefore the
/// evolved population, is identical for every n_threads.
constexpr std::size_t kBreedChunk = 32;

/// Runs chunked loops either inline or on a work-stealing pool. The
/// chunk decomposition is shared between both paths, so results do not
/// depend on which one executes.
class Runner {
 public:
  explicit Runner(std::size_t n_threads) {
    if (util::ThreadPool::resolve(n_threads) > 1) {
      pool_ = std::make_unique<util::ThreadPool>(n_threads);
    }
  }

  void chunks(std::size_t n, std::size_t n_chunks,
              const std::function<void(std::size_t, std::size_t,
                                       std::size_t)>& body) {
    if (n == 0 || n_chunks == 0) return;
    n_chunks = std::min(n_chunks, n);
    if (pool_) {
      pool_->parallel_chunks(n, n_chunks, body);
      return;
    }
    for (std::size_t c = 0; c < n_chunks; ++c) {
      body(c, c * n / n_chunks, (c + 1) * n / n_chunks);
    }
  }

  void for_each(std::size_t n,
                const std::function<void(std::size_t)>& body) {
    chunks(n, n, [&body](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) body(i);
    });
  }

 private:
  std::unique_ptr<util::ThreadPool> pool_;
};

struct Individual {
  Expr expr;
  double fitness = 1e300;    // raw MAE
  double penalized = 1e300;  // MAE + parsimony
};

/// Everything fitness evaluation reads, fixed for one infer_formula run.
/// `rows` is the row-major dataset (legacy walker + OLS seeds); `matrix`
/// mirrors it column-major for the tape interpreter's streaming loops.
struct FitnessData {
  const std::vector<std::vector<double>>* rows = nullptr;
  const std::vector<double>* ys = nullptr;
  SampleMatrix matrix;
  std::size_t n_vars = 1;
  double trim_fraction = 0.9;
  double parsimony = 0.0;
  bool use_tape = true;
  FitnessCache* cache = nullptr;  // tape mode only; null = disabled
};

/// Per-worker evaluation state: a reusable tape plus the batch buffers.
/// One instance per chunk keeps the hot path allocation-free without any
/// cross-thread sharing.
struct WorkerScratch {
  Program program;
  EvalScratch eval;
};

/// Trimmed mean over `residuals` (partitioned in place): ignore the
/// worst (1 - trim) fraction so surviving OCR outliers cannot steer the
/// search.
double trimmed_mean(std::vector<double>& residuals, double trim_fraction) {
  const std::size_t keep = std::max<std::size_t>(
      1, static_cast<std::size_t>(trim_fraction *
                                  static_cast<double>(residuals.size())));
  std::nth_element(residuals.begin(),
                   residuals.begin() + static_cast<std::ptrdiff_t>(keep - 1),
                   residuals.end());
  double total = 0.0;
  for (std::size_t i = 0; i < keep; ++i) total += residuals[i];
  return total / static_cast<double>(keep);
}

/// Reference path: recursive tree walk, one sample at a time.
double tree_mae(const Expr& expr, const FitnessData& data,
                EvalScratch& scratch) {
  const auto& xs = *data.rows;
  const auto& ys = *data.ys;
  auto& residuals = scratch.residuals;
  residuals.clear();
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double predicted = expr.eval(xs[i]);
    if (!std::isfinite(predicted)) return 1e300;
    residuals.push_back(std::abs(predicted - ys[i]));
  }
  return trimmed_mean(residuals, data.trim_fraction);
}

/// Fast path: one batched tape pass over the column-major samples. The
/// per-sample arithmetic order matches tree_mae exactly, so the two
/// paths return bit-identical doubles.
double tape_mae(const Program& program, const FitnessData& data,
                EvalScratch& scratch) {
  program.eval_batch(data.matrix, scratch);
  const auto& ys = *data.ys;
  auto& residuals = scratch.residuals;
  residuals.clear();
  for (std::size_t i = 0; i < scratch.predictions.size(); ++i) {
    const double predicted = scratch.predictions[i];
    if (!std::isfinite(predicted)) return 1e300;
    residuals.push_back(std::abs(predicted - ys[i]));
  }
  return trimmed_mean(residuals, data.trim_fraction);
}

/// Score an individual. Returns true when a fresh evaluation ran, false
/// when the structural cache already knew this shape's fitness (the
/// cached value is what the evaluation would have produced, so hit/miss
/// patterns can never change the evolution).
bool score(Individual& ind, const FitnessData& data, WorkerScratch& scratch) {
  if (!data.use_tape) {
    ind.fitness = tree_mae(ind.expr, data, scratch.eval);
    ind.penalized =
        ind.fitness + data.parsimony * static_cast<double>(ind.expr.size());
    return true;
  }
  // Two-stage lowering keeps the cache hit path minimal: analyze() walks
  // the tree once and serializes the probe key; the tape itself is
  // emitted only when the fitness actually has to be computed.
  bool evaluated = true;
  if (data.cache != nullptr) {
    scratch.program.analyze(ind.expr, data.n_vars, &scratch.eval.key);
    if (const auto cached = data.cache->lookup(scratch.eval.key)) {
      ind.fitness = *cached;
      evaluated = false;
    } else {
      scratch.program.emit();
      ind.fitness = tape_mae(scratch.program, data, scratch.eval);
      data.cache->insert(scratch.eval.key, ind.fitness);
    }
  } else {
    scratch.program.recompile(ind.expr, data.n_vars);
    ind.fitness = tape_mae(scratch.program, data, scratch.eval);
  }
  // Program::size() is the node count, so the parsimony term needs no
  // extra tree walk.
  ind.penalized = ind.fitness + data.parsimony *
                                    static_cast<double>(scratch.program.size());
  return evaluated;
}

const Individual& tournament(const std::vector<Individual>& pop,
                             util::Rng& rng, std::size_t k) {
  const Individual* best = nullptr;
  for (std::size_t i = 0; i < k; ++i) {
    const auto& candidate = pop[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1))];
    if (best == nullptr || candidate.penalized < best->penalized) {
      best = &candidate;
    }
  }
  return *best;
}

/// Swap a random subtree of `a` with a random subtree of `b`. Returns
/// nullopt when the offspring exceeds the depth bound — the caller keeps
/// the parent *and its already-known fitness* instead of rescoring.
std::optional<Expr> crossover(const Expr& a, const Expr& b, util::Rng& rng,
                              int max_depth) {
  Expr child = a;
  auto child_nodes = child.nodes();
  Expr donor = b;
  auto donor_nodes = donor.nodes();
  Node* target = child_nodes[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(child_nodes.size()) - 1))];
  const Node* source = donor_nodes[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(donor_nodes.size()) - 1))];
  auto cloned = source->clone();
  *target = std::move(*cloned);
  if (child.depth() > max_depth) return std::nullopt;  // oversized
  return child;
}

std::optional<Expr> subtree_mutation(const Expr& a, util::Rng& rng,
                                     std::size_t n_vars, int max_depth) {
  Expr child = a;
  auto nodes = child.nodes();
  Node* target = nodes[static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(nodes.size()) - 1))];
  Expr replacement = random_expr(rng, n_vars, 2, false);
  auto cloned = replacement.root()->clone();
  *target = std::move(*cloned);
  if (child.depth() > max_depth) return std::nullopt;
  return child;
}

/// Returns nullopt when no node was mutated (the parent's fitness still
/// holds).
std::optional<Expr> point_mutation(const Expr& a, util::Rng& rng,
                                   std::size_t n_vars) {
  Expr child = a;
  bool mutated = false;
  for (Node* node : child.nodes()) {
    if (!rng.chance(0.15)) continue;
    mutated = true;
    switch (arity(node->op)) {
      case 0:
        if (node->op == Op::kConst) {
          // Gaussian constant perturbation.
          node->value += rng.normal(0.0, 0.3 + 0.1 * std::abs(node->value));
        } else if (n_vars > 1) {
          node->var = static_cast<int>(
              rng.uniform_int(0, static_cast<std::int64_t>(n_vars) - 1));
        }
        break;
      case 1: {
        static const Op unary[] = {Op::kSqrt, Op::kLog, Op::kAbs, Op::kNeg,
                                   Op::kSin, Op::kCos, Op::kTan, Op::kInv};
        node->op = unary[rng.uniform_int(0, std::size(unary) - 1)];
        break;
      }
      case 2: {
        static const Op binary[] = {Op::kAdd, Op::kSub, Op::kMul, Op::kDiv,
                                    Op::kMin, Op::kMax};
        node->op = binary[rng.uniform_int(0, std::size(binary) - 1)];
        break;
      }
    }
  }
  if (!mutated) return std::nullopt;
  return child;
}

/// Coordinate-descent refinement of an individual's constants — part of
/// the "improved" GP: evolution finds the shape, refinement nails the
/// coefficients. Returns the number of MAE evaluations performed. The
/// tape path compiles once and patches the constant pool in lockstep
/// with the tree nodes, so the line search never recompiles; the visit
/// order (pre-order constants, identical step schedule) matches the
/// legacy walker step for step.
std::size_t tune_constants(Individual& ind, const FitnessData& data,
                           WorkerScratch& scratch) {
  auto constants = ind.expr.constant_nodes();
  if (constants.empty()) return 0;
  std::vector<std::size_t> pool_index;
  if (data.use_tape) {
    scratch.program.recompile(ind.expr, data.n_vars);
    // Map each pre-order tree constant to its pool slot (the pool is in
    // postfix order); constant counts are tiny, linear scan is fine.
    pool_index.assign(constants.size(), 0);
    for (std::size_t k = 0; k < constants.size(); ++k) {
      for (std::size_t j = 0; j < scratch.program.n_constants(); ++j) {
        if (scratch.program.const_node(j) == constants[k]) {
          pool_index[k] = j;
          break;
        }
      }
    }
  }
  const auto current_mae = [&data, &ind, &scratch]() {
    return data.use_tape ? tape_mae(scratch.program, data, scratch.eval)
                         : tree_mae(ind.expr, data, scratch.eval);
  };
  const auto nudge = [&](std::size_t k, double delta) {
    constants[k]->value += delta;
    if (data.use_tape) {
      scratch.program.set_constant(pool_index[k], constants[k]->value);
    }
  };
  std::size_t evaluations = 0;
  bool improved_any = true;
  for (int pass = 0; improved_any && pass < 6; ++pass) {
    improved_any = false;
    for (std::size_t k = 0; k < constants.size(); ++k) {
      const double magnitude =
          std::max(0.001, std::abs(constants[k]->value));
      for (double step : {magnitude, magnitude * 0.1, magnitude * 0.01,
                          magnitude * 0.001}) {
        for (double direction : {+1.0, -1.0}) {
          // Line search: keep stepping while the fit keeps improving.
          for (int walk = 0; walk < 64; ++walk) {
            nudge(k, direction * step);
            const double mae = current_mae();
            ++evaluations;
            if (mae + 1e-15 < ind.fitness) {
              ind.fitness = mae;
              improved_any = true;
            } else {
              nudge(k, -direction * step);
              break;
            }
          }
        }
      }
    }
  }
  ind.penalized =
      ind.fitness + data.parsimony * static_cast<double>(ind.expr.size());
  return evaluations;
}

/// Affine / product seed templates (improved-GP ingredient): cheap
/// skeletons matching the shapes manufacturer formulas overwhelmingly
/// take. Evolution is free to discard them.
std::vector<Expr> seed_templates(util::Rng& rng, std::size_t n_vars) {
  std::vector<Expr> seeds;
  auto c = [&rng] { return Expr::constant(rng.uniform(-5.0, 5.0)); };
  for (std::size_t v = 0; v < n_vars; ++v) {
    seeds.push_back(Expr::variable(static_cast<int>(v)));
    seeds.push_back(Expr::binary(Op::kMul, c(),
                                 Expr::variable(static_cast<int>(v))));
    seeds.push_back(Expr::binary(
        Op::kAdd,
        Expr::binary(Op::kMul, c(), Expr::variable(static_cast<int>(v))),
        c()));
  }
  if (n_vars >= 2) {
    seeds.push_back(Expr::binary(Op::kMul, Expr::variable(0),
                                 Expr::variable(1)));
    seeds.push_back(Expr::binary(
        Op::kMul, c(),
        Expr::binary(Op::kMul, Expr::variable(0), Expr::variable(1))));
    seeds.push_back(Expr::binary(
        Op::kAdd, Expr::binary(Op::kMul, c(), Expr::variable(0)),
        Expr::binary(Op::kMul, c(), Expr::variable(1))));
    seeds.push_back(Expr::binary(
        Op::kAdd,
        Expr::binary(Op::kAdd, Expr::binary(Op::kMul, c(),
                                            Expr::variable(0)),
                     Expr::binary(Op::kMul, c(), Expr::variable(1))),
        c()));
  }
  // Quadratic skeleton.
  seeds.push_back(Expr::binary(
      Op::kMul, c(), Expr::binary(Op::kMul, Expr::variable(0),
                                  Expr::variable(0))));
  return seeds;
}

/// Ordinary-least-squares seeds (improved-GP ingredient): solve the
/// affine and degree-2 bases directly on the (scaled) data and inject the
/// solutions into the initial population. Evolution keeps them only if
/// they actually fit — nonlinear targets still require search.
std::vector<Expr> least_squares_seeds(
    const std::vector<std::vector<double>>& xs,
    const std::vector<double>& ys, std::size_t n_vars) {
  std::vector<Expr> seeds;
  auto emit = [&seeds](const std::vector<double>& coeffs,
                       const std::vector<Expr>& basis) {
    Expr sum = Expr::constant(coeffs[0]);
    for (std::size_t i = 1; i < coeffs.size() && i - 1 < basis.size();
         ++i) {
      if (std::abs(coeffs[i]) < 1e-12) continue;
      sum = Expr::binary(Op::kAdd, std::move(sum),
                         Expr::binary(Op::kMul, Expr::constant(coeffs[i]),
                                      basis[i - 1]));
    }
    seeds.push_back(std::move(sum));
  };

  // Solve, then re-solve once excluding gross-residual rows (OCR
  // outliers): a one-step robust refit.
  auto solve_robust = [&ys](const std::vector<std::vector<double>>& rows)
      -> std::vector<std::vector<double>> {
    std::vector<std::vector<double>> solutions;
    const auto first = regress::solve_least_squares(rows, ys);
    if (!first) return solutions;
    solutions.push_back(*first);

    std::vector<double> residuals(rows.size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
      double predicted = 0.0;
      for (std::size_t c = 0; c < rows[r].size(); ++c) {
        predicted += (*first)[c] * rows[r][c];
      }
      residuals[r] = std::abs(predicted - ys[r]);
    }
    std::vector<double> sorted = residuals;
    std::nth_element(sorted.begin(), sorted.begin() +
                         static_cast<std::ptrdiff_t>(sorted.size() / 2),
                     sorted.end());
    const double cut = std::max(1e-9, 3.0 * sorted[sorted.size() / 2]);
    std::vector<std::vector<double>> kept_rows;
    std::vector<double> kept_ys;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      if (residuals[r] <= cut) {
        kept_rows.push_back(rows[r]);
        kept_ys.push_back(ys[r]);
      }
    }
    if (kept_rows.size() >= rows.size() * 2 / 3 &&
        kept_rows.size() < rows.size()) {
      if (const auto second =
              regress::solve_least_squares(kept_rows, kept_ys)) {
        solutions.push_back(*second);
      }
    }
    return solutions;
  };

  // Affine basis: X0 (, X1).
  {
    std::vector<std::vector<double>> rows;
    rows.reserve(xs.size());
    for (const auto& x : xs) {
      std::vector<double> row{1.0};
      row.insert(row.end(), x.begin(), x.end());
      rows.push_back(std::move(row));
    }
    std::vector<Expr> basis;
    for (std::size_t v = 0; v < n_vars; ++v) {
      basis.push_back(Expr::variable(static_cast<int>(v)));
    }
    for (const auto& sol : solve_robust(rows)) emit(sol, basis);
  }
  // Degree-2 basis: X0 (, X1), X0^2, X0*X1, X1^2.
  {
    std::vector<std::vector<double>> rows;
    std::vector<Expr> basis;
    for (std::size_t v = 0; v < n_vars; ++v) {
      basis.push_back(Expr::variable(static_cast<int>(v)));
    }
    for (std::size_t i = 0; i < n_vars; ++i) {
      for (std::size_t j = i; j < n_vars; ++j) {
        basis.push_back(Expr::binary(Op::kMul,
                                     Expr::variable(static_cast<int>(i)),
                                     Expr::variable(static_cast<int>(j))));
      }
    }
    rows.reserve(xs.size());
    for (const auto& x : xs) {
      std::vector<double> row{1.0};
      row.insert(row.end(), x.begin(), x.end());
      for (std::size_t i = 0; i < n_vars; ++i) {
        for (std::size_t j = i; j < n_vars; ++j) {
          row.push_back(x[i] * x[j]);
        }
      }
      rows.push_back(std::move(row));
    }
    for (const auto& sol : solve_robust(rows)) emit(sol, basis);
  }
  return seeds;
}

}  // namespace

double GpResult::predict(std::span<const double> raw_xs) const {
  std::vector<double> scaled(raw_xs.size());
  for (std::size_t i = 0; i < raw_xs.size(); ++i) {
    const double factor =
        i < x_scales.size() ? x_scales[i].factor : 1.0;
    scaled[i] = raw_xs[i] / factor;
  }
  return best.eval(scaled) * y_scale.factor;
}

std::optional<GpResult> infer_formula(const correlate::Dataset& dataset,
                                      const GpConfig& config) {
  if (dataset.points.size() < 6) return std::nullopt;
  const std::size_t n_vars = dataset.n_vars;
  const auto wall_start = Clock::now();
  Runner runner(config.n_threads);

  // --- Table 2 pre-processing ---------------------------------------------
  GpResult result;
  result.n_vars = n_vars;
  result.x_scales.assign(n_vars, SeriesScale{});
  if (config.use_scaling) {
    for (std::size_t v = 0; v < n_vars; ++v) {
      std::vector<double> column;
      column.reserve(dataset.points.size());
      for (const auto& p : dataset.points) column.push_back(p.xs[v]);
      result.x_scales[v] = choose_scale(column, /*allow_enlarge=*/false);
    }
    std::vector<double> targets;
    targets.reserve(dataset.points.size());
    for (const auto& p : dataset.points) targets.push_back(p.y);
    result.y_scale = choose_scale(targets, /*allow_enlarge=*/true);
  }

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  xs.reserve(dataset.points.size());
  ys.reserve(dataset.points.size());
  for (const auto& p : dataset.points) {
    std::vector<double> row(n_vars);
    for (std::size_t v = 0; v < n_vars; ++v) {
      row[v] = p.xs[v] / result.x_scales[v].factor;
    }
    xs.push_back(std::move(row));
    ys.push_back(p.y / result.y_scale.factor);
  }

  // --- Fitness machinery ---------------------------------------------------
  // Tape mode mirrors the samples into a column-major matrix once and
  // shares one structural fitness cache across every worker of this run.
  FitnessData data;
  data.rows = &xs;
  data.ys = &ys;
  data.n_vars = n_vars;
  data.trim_fraction = config.trim_fraction;
  data.parsimony = config.parsimony;
  data.use_tape = config.use_tape;
  if (config.use_tape) data.matrix = SampleMatrix::from_rows(xs, n_vars);
  FitnessCache cache(config.fitness_cache_capacity);
  if (config.use_tape && config.fitness_cache) data.cache = &cache;

  // --- Initial population ----------------------------------------------------
  util::Rng rng(config.seed);
  std::vector<Individual> population;
  population.reserve(config.population);
  if (config.seed_templates) {
    for (auto& seed : seed_templates(rng, n_vars)) {
      Individual ind;
      ind.expr = std::move(seed);
      population.push_back(std::move(ind));
    }
  }
  if (config.seed_least_squares) {
    for (auto& seed : least_squares_seeds(xs, ys, n_vars)) {
      Individual ind;
      ind.expr = std::move(seed);
      population.push_back(std::move(ind));
    }
  }
  const std::size_t seed_count = population.size();
  while (population.size() < config.population) {
    // Ramped half-and-half.
    const int depth = static_cast<int>(rng.uniform_int(
        config.init_depth_min, config.init_depth_max));
    Individual ind;
    ind.expr = random_expr(rng, n_vars, depth, rng.chance(0.5));
    population.push_back(std::move(ind));
  }
  GpStageTimings timings;
  {
    // Initial scoring, fanned over the pool in fixed-size chunks so each
    // chunk reuses one scratch (tape + buffers) across its individuals.
    // Per-chunk slots keep the accounting race-free.
    const std::size_t n = population.size();
    const std::size_t n_chunks = (n + kBreedChunk - 1) / kBreedChunk;
    std::vector<double> slot_s(n_chunks, 0.0);
    std::vector<std::size_t> slot_evals(n_chunks, 0);
    runner.chunks(n, n_chunks, [&](std::size_t c, std::size_t begin,
                                   std::size_t end) {
      WorkerScratch scratch;
      const auto t0 = Clock::now();
      for (std::size_t i = begin; i < end; ++i) {
        if (score(population[i], data, scratch)) ++slot_evals[c];
      }
      slot_s[c] = seconds_since(t0);
    });
    for (double s : slot_s) timings.scoring_s += s;
    for (std::size_t e : slot_evals) timings.evaluations += e;
  }
  if (config.constant_tuning && seed_count > 0) {
    // Refine the seed skeletons once up front: the template *shapes* are
    // right, their random constants are not.
    std::vector<double> slot_s(seed_count, 0.0);
    std::vector<std::size_t> slot_evals(seed_count, 0);
    runner.chunks(seed_count, seed_count, [&](std::size_t, std::size_t begin,
                                              std::size_t end) {
      WorkerScratch scratch;
      for (std::size_t i = begin; i < end; ++i) {
        const auto t0 = Clock::now();
        slot_evals[i] = tune_constants(population[i], data, scratch);
        slot_s[i] = seconds_since(t0);
      }
    });
    for (double s : slot_s) timings.tuning_s += s;
    for (std::size_t e : slot_evals) timings.evaluations += e;
  }

  auto best_it = std::min_element(
      population.begin(), population.end(),
      [](const Individual& a, const Individual& b) {
        return a.penalized < b.penalized;
      });
  Individual best = *best_it;

  // --- Evolution ---------------------------------------------------------------
  // Absolute form of stopping criterion (ii), anchored to the scaled
  // target's magnitude.
  double mean_abs_y = 0.0;
  for (double y : ys) mean_abs_y += std::abs(y);
  mean_abs_y /= static_cast<double>(ys.size());
  const double stop_below =
      config.fitness_threshold * std::max(1e-6, mean_abs_y);

  std::size_t generation = 0;
  for (; generation < config.max_generations; ++generation) {
    if (best.fitness <= stop_below) break;  // criterion (ii)
    // Cooperative cancellation (phase watchdog): stop evolving and return
    // the best-so-far instead of wedging a worker past its deadline.
    if (config.cancel != nullptr && config.cancel->expired()) break;

    const std::size_t offspring =
        config.population > 0 ? config.population - 1 : 0;
    const std::size_t n_chunks =
        std::max<std::size_t>(1, (offspring + kBreedChunk - 1) / kBreedChunk);

    // Fork one RNG stream per breeding chunk *serially* from the master:
    // the stream a chunk sees is a function of (seed, generation, chunk)
    // only, so any worker may run any chunk and the evolved population is
    // still bit-identical for every n_threads.
    std::vector<util::Rng> chunk_rngs;
    chunk_rngs.reserve(n_chunks);
    for (std::size_t c = 0; c < n_chunks; ++c) chunk_rngs.push_back(rng.fork());

    std::vector<Individual> next(std::max<std::size_t>(1, config.population));
    next[0] = best;  // elitism: cached fitness, never rescored

    std::vector<double> breed_s(n_chunks, 0.0), score_s(n_chunks, 0.0);
    std::vector<std::size_t> chunk_evals(n_chunks, 0);
    runner.chunks(offspring, n_chunks, [&](std::size_t c, std::size_t begin,
                                           std::size_t end) {
      util::Rng& crng = chunk_rngs[c];
      WorkerScratch scratch;
      for (std::size_t i = begin; i < end; ++i) {
        const auto t0 = Clock::now();
        const double roll = crng.uniform();
        Individual child;
        bool fresh = false;  // does the child need scoring?
        if (roll < config.crossover_rate) {
          const Individual& pa = tournament(population, crng, config.tournament);
          const Individual& pb = tournament(population, crng, config.tournament);
          if (auto expr = crossover(pa.expr, pb.expr, crng, config.max_depth)) {
            child.expr = std::move(*expr);
            fresh = true;
          } else {
            child = pa;  // rejected oversize: parent's fitness carries over
          }
        } else if (roll <
                   config.crossover_rate + config.subtree_mutation_rate) {
          const Individual& pa = tournament(population, crng, config.tournament);
          if (auto expr =
                  subtree_mutation(pa.expr, crng, n_vars, config.max_depth)) {
            child.expr = std::move(*expr);
            fresh = true;
          } else {
            child = pa;
          }
        } else if (roll < config.crossover_rate +
                              config.subtree_mutation_rate +
                              config.point_mutation_rate) {
          const Individual& pa = tournament(population, crng, config.tournament);
          if (auto expr = point_mutation(pa.expr, crng, n_vars)) {
            child.expr = std::move(*expr);
            fresh = true;
          } else {
            child = pa;  // no site mutated: fitness unchanged
          }
        } else {
          child = tournament(population, crng, config.tournament);  // reproduce
        }
        breed_s[c] += seconds_since(t0);
        if (fresh) {
          const auto s0 = Clock::now();
          if (score(child, data, scratch)) ++chunk_evals[c];
          score_s[c] += seconds_since(s0);
        }
        next[1 + i] = std::move(child);
      }
    });
    for (std::size_t c = 0; c < n_chunks; ++c) {
      timings.breeding_s += breed_s[c];
      timings.scoring_s += score_s[c];
      timings.evaluations += chunk_evals[c];
    }
    population = std::move(next);

    // Refine the constants of the few fittest individuals, then promote
    // the overall champion.
    if (config.constant_tuning) {
      const std::size_t top = std::min<std::size_t>(3, population.size());
      std::partial_sort(population.begin(),
                        population.begin() + static_cast<std::ptrdiff_t>(top),
                        population.end(),
                        [](const Individual& a, const Individual& b) {
                          return a.penalized < b.penalized;
                        });
      std::vector<double> tune_s(top, 0.0);
      std::vector<std::size_t> tune_evals(top, 0);
      runner.chunks(top, top, [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
        WorkerScratch scratch;
        for (std::size_t k = begin; k < end; ++k) {
          const auto t0 = Clock::now();
          tune_evals[k] = tune_constants(population[k], data, scratch);
          tune_s[k] = seconds_since(t0);
        }
      });
      for (std::size_t k = 0; k < top; ++k) {
        timings.tuning_s += tune_s[k];
        timings.evaluations += tune_evals[k];
      }
    }
    auto it = std::min_element(population.begin(), population.end(),
                               [](const Individual& a, const Individual& b) {
                                 return a.penalized < b.penalized;
                               });
    if (it->penalized < best.penalized) best = *it;
  }

  best.expr.simplify();
  result.best = best.expr;
  result.fitness = best.fitness;
  result.generations_run = generation;
  result.converged = best.fitness <= stop_below;
  timings.total_s = seconds_since(wall_start);
  timings.cache_hits = static_cast<std::size_t>(cache.hits());
  timings.cache_misses = static_cast<std::size_t>(cache.misses());
  result.timings = timings;

  // --- Table 2 post-processing: substitute the scale factors back ------------
  std::string body = result.best.to_string(n_vars);
  for (std::size_t v = 0; v < n_vars; ++v) {
    if (result.x_scales[v].identity()) continue;
    const std::string symbol = n_vars <= 1 ? "X" : "X" + std::to_string(v);
    const std::string substituted =
        "(" + scaled_symbol(symbol, result.x_scales[v]) + ")";
    std::size_t pos = 0;
    while ((pos = body.find(symbol, pos)) != std::string::npos) {
      // Avoid replacing "X1" inside "X10"-like tokens (n_vars <= 2 keeps
      // this simple: symbols are "X", "X0", "X1").
      const std::size_t after = pos + symbol.size();
      if (after < body.size() && std::isdigit(static_cast<unsigned char>(
                                     body[after]))) {
        pos = after;
        continue;
      }
      body.replace(pos, symbol.size(), substituted);
      pos += substituted.size();
    }
  }
  result.formula = scaled_symbol("Y", result.y_scale) + " = " + body;
  return result;
}

double mean_relative_error(
    const GpResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth) {
  if (dataset.points.empty()) return 1e300;
  // Error scale: pointwise magnitude with a floor at 5% of the signal's
  // mean magnitude (so near-zero crossings don't explode the ratio and
  // tiny-valued signals aren't trivially "correct").
  double mean_abs = 0.0;
  for (const auto& p : dataset.points) mean_abs += std::abs(truth(p.xs));
  mean_abs /= static_cast<double>(dataset.points.size());
  const double floor_scale = std::max(1e-9, 0.05 * mean_abs);
  double total = 0.0;
  for (const auto& p : dataset.points) {
    const double predicted = result.predict(p.xs);
    const double expected = truth(p.xs);
    const double scale = std::max(floor_scale, std::abs(expected));
    total += std::abs(predicted - expected) / scale;
  }
  return total / static_cast<double>(dataset.points.size());
}

double max_relative_error(
    const GpResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth) {
  if (dataset.points.empty()) return 1e300;
  // Error scale: pointwise magnitude with a floor at 5% of the signal's
  // mean magnitude (so near-zero crossings don't explode the ratio and
  // tiny-valued signals aren't trivially "correct").
  double mean_abs = 0.0;
  for (const auto& p : dataset.points) mean_abs += std::abs(truth(p.xs));
  mean_abs /= static_cast<double>(dataset.points.size());
  const double floor_scale = std::max(1e-9, 0.05 * mean_abs);
  double worst = 0.0;
  for (const auto& p : dataset.points) {
    const double predicted = result.predict(p.xs);
    const double expected = truth(p.xs);
    const double scale = std::max(floor_scale, std::abs(expected));
    worst = std::max(worst, std::abs(predicted - expected) / scale);
  }
  return worst;
}

}  // namespace dpr::gp
