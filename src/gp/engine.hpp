#pragma once
// The improved genetic-programming symbolic-regression engine of §3.5:
// tournament selection, subtree crossover, subtree/point mutation, MAE
// fitness, the paper's two stopping criteria (max generations / fitness
// threshold), Table-2 pre/post scaling, plus the "improved" ingredients —
// affine seed templates and per-generation constant refinement — that let
// the search recover manufacturer formulas reliably at small populations.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "correlate/correlate.hpp"
#include "gp/expr.hpp"
#include "gp/scaling.hpp"
#include "util/watchdog.hpp"

namespace dpr::gp {

struct GpConfig {
  std::size_t population = 256;
  std::size_t max_generations = 30;   // the paper's cap (§4.3)
  /// Stopping criterion (ii): stop when the trimmed MAE falls below this
  /// fraction of the mean |target| (relative, so it is meaningful at
  /// every Table-2 scale).
  double fitness_threshold = 0.005;
  int init_depth_min = 2;
  int init_depth_max = 4;
  int max_depth = 6;
  std::size_t tournament = 7;
  double crossover_rate = 0.65;
  double subtree_mutation_rate = 0.15;
  double point_mutation_rate = 0.12;  // remainder reproduces
  double parsimony = 0.0004;          // fitness penalty per node
  /// Fraction of residuals kept by the trimmed-MAE fitness. OCR errors
  /// that survive the §3.3 filter appear as gross outliers; trimming is
  /// what makes GP "robust to outliers/noise" (§4.4) where plain
  /// least-squares baselines are not.
  double trim_fraction = 0.9;
  bool seed_templates = true;         // affine/product starting points
  bool seed_least_squares = true;     // OLS-initialized affine/poly seeds
  bool constant_tuning = true;        // per-generation constant refinement
  bool use_scaling = true;            // Table 2 pre/post processing
  /// Score fitness by compiling each expression to a gp::Program postfix
  /// tape executed over a column-major gp::SampleMatrix (one dispatch per
  /// node per *population batch* instead of per node per sample). The
  /// tape replays the tree evaluator's operation order exactly, so every
  /// result is bit-identical to the legacy walker; `false` keeps the
  /// recursive Expr::eval path as the equivalence/ablation reference.
  bool use_tape = true;
  /// Structural fitness cache (tape mode only): offspring whose canonical
  /// tape matches an already-scored shape reuse that trimmed MAE instead
  /// of being rescored. Cached values are pure functions of the shape and
  /// the dataset, so the cache cannot change any result — only skip work.
  bool fitness_cache = true;
  std::size_t fitness_cache_capacity = 1 << 15;  // entries before eviction
  std::uint64_t seed = 0x6B5;
  /// Worker threads for fitness scoring, constant tuning and offspring
  /// breeding. 0 = hardware concurrency, 1 = fully serial. The evolved
  /// population is decomposed into fixed chunks with per-chunk forked RNG
  /// streams, so the result is bit-identical for every thread count.
  std::size_t n_threads = 1;
  /// Cooperative cancellation: checked once per generation. When the token
  /// expires (phase watchdog deadline) the search stops early and returns
  /// the best expression found so far. null = never cancelled.
  const util::CancelToken* cancel = nullptr;
};

/// Where the inference time went. The per-stage fields are CPU-seconds
/// summed across workers (so they can exceed total_s when n_threads > 1);
/// total_s is the wall clock for the whole call.
struct GpStageTimings {
  double scoring_s = 0.0;   // fitness evaluation of fresh offspring
  double tuning_s = 0.0;    // coordinate-descent constant refinement
  double breeding_s = 0.0;  // selection + crossover/mutation
  double total_s = 0.0;     // wall clock, end to end
  std::size_t evaluations = 0;  // trimmed-MAE evaluations performed
  /// Structural-cache traffic during offspring scoring (tape mode only;
  /// a hit replaces one evaluation). Observational, like the stage
  /// timings: excluded from report signatures.
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
};

struct GpResult {
  Expr best;                      // over the *scaled* variables
  std::size_t n_vars = 1;
  double fitness = 1e300;         // MAE on the scaled target
  std::size_t generations_run = 0;
  bool converged = false;         // stopped by the fitness criterion
  std::vector<SeriesScale> x_scales;
  SeriesScale y_scale;
  std::string formula;            // substituted form, e.g. "Y/1000 = X/100"
  GpStageTimings timings;

  /// Predict the displayed value from raw operands (applies scaling).
  double predict(std::span<const double> raw_xs) const;
};

/// Run symbolic regression on an aligned dataset. Returns nullopt when
/// the dataset is too small to constrain a formula.
std::optional<GpResult> infer_formula(const correlate::Dataset& dataset,
                                      const GpConfig& config = {});

/// Mean relative deviation between a result's predictions and a ground
/// truth function over the dataset's X points — the §4.2/§4.3 criterion
/// ("the outputs of the two formulas are almost the same").
double mean_relative_error(
    const GpResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth);

/// Worst-case relative deviation over the dataset's X points. A formula
/// with the right structure is uniformly close to the ground truth; a
/// locally-fitted wrong structure (e.g. a line through a product surface)
/// shows large pointwise errors even when the mean is small.
double max_relative_error(
    const GpResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth);

}  // namespace dpr::gp
