#include "gp/expr.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "gp/vmath.hpp"

namespace dpr::gp {

Node::~Node() {
  // Steal the whole subtree into a flat worklist before anything dies:
  // every node then destructs with empty children, so teardown depth is
  // constant no matter how deep the tree was.
  std::vector<std::unique_ptr<Node>> queue;
  if (lhs) queue.push_back(std::move(lhs));
  if (rhs) queue.push_back(std::move(rhs));
  while (!queue.empty()) {
    auto node = std::move(queue.back());
    queue.pop_back();
    if (node->lhs) queue.push_back(std::move(node->lhs));
    if (node->rhs) queue.push_back(std::move(node->rhs));
  }
}

std::unique_ptr<Node> Node::clone() const {
  auto root = std::make_unique<Node>();
  std::vector<std::pair<const Node*, Node*>> stack{{this, root.get()}};
  while (!stack.empty()) {
    const auto [src, dst] = stack.back();
    stack.pop_back();
    dst->op = src->op;
    dst->value = src->value;
    dst->var = src->var;
    if (src->lhs) {
      dst->lhs = std::make_unique<Node>();
      stack.push_back({src->lhs.get(), dst->lhs.get()});
    }
    if (src->rhs) {
      dst->rhs = std::make_unique<Node>();
      stack.push_back({src->rhs.get(), dst->rhs.get()});
    }
  }
  return root;
}

Expr Expr::constant(double v) {
  auto node = std::make_unique<Node>();
  node->op = Op::kConst;
  node->value = v;
  return Expr(std::move(node));
}

Expr Expr::variable(int index) {
  auto node = std::make_unique<Node>();
  node->op = Op::kVar;
  node->var = index;
  return Expr(std::move(node));
}

Expr Expr::unary(Op op, Expr operand) {
  auto node = std::make_unique<Node>();
  node->op = op;
  node->lhs = std::move(operand.root_);
  return Expr(std::move(node));
}

Expr Expr::binary(Op op, Expr lhs, Expr rhs) {
  auto node = std::make_unique<Node>();
  node->op = op;
  node->lhs = std::move(lhs.root_);
  node->rhs = std::move(rhs.root_);
  return Expr(std::move(node));
}

namespace {

double eval_node(const Node* node, std::span<const double> vars) {
  switch (node->op) {
    case Op::kConst:
      return node->value;
    case Op::kVar:
      // A reference outside the operand vector means the tree is invalid
      // for this dataset — surface it instead of masking it as 0.
      if (node->var < 0 || node->var >= static_cast<int>(vars.size())) {
        throw std::out_of_range("gp: variable index out of range");
      }
      return vars[node->var];
    case Op::kAdd:
      return eval_node(node->lhs.get(), vars) +
             eval_node(node->rhs.get(), vars);
    case Op::kSub:
      return eval_node(node->lhs.get(), vars) -
             eval_node(node->rhs.get(), vars);
    case Op::kMul:
      return eval_node(node->lhs.get(), vars) *
             eval_node(node->rhs.get(), vars);
    case Op::kDiv: {
      const double d = eval_node(node->rhs.get(), vars);
      if (std::abs(d) < 1e-9) return 1.0;
      return eval_node(node->lhs.get(), vars) / d;
    }
    case Op::kMin:
      return std::min(eval_node(node->lhs.get(), vars),
                      eval_node(node->rhs.get(), vars));
    case Op::kMax:
      return std::max(eval_node(node->lhs.get(), vars),
                      eval_node(node->rhs.get(), vars));
    case Op::kSqrt:
      return std::sqrt(std::abs(eval_node(node->lhs.get(), vars)));
    case Op::kLog:
      return vm_log(eval_node(node->lhs.get(), vars));
    case Op::kAbs:
      return std::abs(eval_node(node->lhs.get(), vars));
    case Op::kNeg:
      return -eval_node(node->lhs.get(), vars);
    case Op::kSin:
      return vm_sin(eval_node(node->lhs.get(), vars));
    case Op::kCos:
      return vm_cos(eval_node(node->lhs.get(), vars));
    case Op::kTan:
      return vm_tan(eval_node(node->lhs.get(), vars));
    case Op::kInv: {
      const double v = eval_node(node->lhs.get(), vars);
      return std::abs(v) < 1e-9 ? 0.0 : 1.0 / v;
    }
  }
  return 0.0;
}

std::size_t size_node(const Node* node) {
  std::size_t n = 0;
  std::vector<const Node*> stack{node};
  while (!stack.empty()) {
    const Node* cur = stack.back();
    stack.pop_back();
    ++n;
    if (cur->lhs) stack.push_back(cur->lhs.get());
    if (cur->rhs) stack.push_back(cur->rhs.get());
  }
  return n;
}

int depth_node(const Node* node) {
  int d = 0;
  if (node->lhs) d = std::max(d, depth_node(node->lhs.get()));
  if (node->rhs) d = std::max(d, depth_node(node->rhs.get()));
  return d + 1;
}

std::string format_const(double v) {
  std::ostringstream out;
  out.precision(4);
  out << v;
  return out.str();
}

std::string print_node(const Node* node, std::size_t n_vars) {
  switch (node->op) {
    case Op::kConst:
      return format_const(node->value);
    case Op::kVar:
      return n_vars <= 1 ? "X" : "X" + std::to_string(node->var);
    case Op::kAdd:
      return "(" + print_node(node->lhs.get(), n_vars) + " + " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kSub:
      return "(" + print_node(node->lhs.get(), n_vars) + " - " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kMul:
      return "(" + print_node(node->lhs.get(), n_vars) + " * " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kDiv:
      return "(" + print_node(node->lhs.get(), n_vars) + " / " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kMin:
      return "min(" + print_node(node->lhs.get(), n_vars) + ", " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kMax:
      return "max(" + print_node(node->lhs.get(), n_vars) + ", " +
             print_node(node->rhs.get(), n_vars) + ")";
    case Op::kSqrt:
      return "sqrt(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kLog:
      return "log(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kAbs:
      return "abs(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kNeg:
      return "(-" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kSin:
      return "sin(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kCos:
      return "cos(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kTan:
      return "tan(" + print_node(node->lhs.get(), n_vars) + ")";
    case Op::kInv:
      return "(1/" + print_node(node->lhs.get(), n_vars) + ")";
  }
  return "?";
}

bool is_const(const Node* node, double v) {
  return node->op == Op::kConst && node->value == v;
}

/// Returns true if the subtree contains no variables.
bool constant_subtree(const Node* node) {
  if (node->op == Op::kVar) return false;
  if (node->lhs && !constant_subtree(node->lhs.get())) return false;
  if (node->rhs && !constant_subtree(node->rhs.get())) return false;
  return true;
}

void simplify_node(std::unique_ptr<Node>& node) {
  if (node->lhs) simplify_node(node->lhs);
  if (node->rhs) simplify_node(node->rhs);

  // Fold fully-constant subtrees.
  if (node->op != Op::kConst && constant_subtree(node.get())) {
    const double v = eval_node(node.get(), {});
    if (std::isfinite(v)) {
      auto folded = std::make_unique<Node>();
      folded->op = Op::kConst;
      folded->value = v;
      node = std::move(folded);
      return;
    }
  }

  // Identity cleanups.
  switch (node->op) {
    case Op::kAdd:
      if (is_const(node->lhs.get(), 0.0)) node = std::move(node->rhs);
      else if (is_const(node->rhs.get(), 0.0)) node = std::move(node->lhs);
      break;
    case Op::kSub:
      if (is_const(node->rhs.get(), 0.0)) node = std::move(node->lhs);
      break;
    case Op::kMul:
      if (is_const(node->lhs.get(), 1.0)) node = std::move(node->rhs);
      else if (is_const(node->rhs.get(), 1.0)) node = std::move(node->lhs);
      else if (is_const(node->lhs.get(), 0.0) ||
               is_const(node->rhs.get(), 0.0)) {
        auto zero = std::make_unique<Node>();
        zero->op = Op::kConst;
        zero->value = 0.0;
        node = std::move(zero);
      }
      break;
    case Op::kDiv:
      if (is_const(node->rhs.get(), 1.0)) node = std::move(node->lhs);
      break;
    default:
      break;
  }
}

void collect_nodes(Node* node, std::vector<Node*>& out) {
  // Iterative pre-order (rhs pushed first so lhs pops first) — the same
  // node order the old recursion produced, which crossover/mutation site
  // selection depends on for deterministic replay.
  std::vector<Node*> stack{node};
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    out.push_back(cur);
    if (cur->rhs) stack.push_back(cur->rhs.get());
    if (cur->lhs) stack.push_back(cur->lhs.get());
  }
}

}  // namespace

double Expr::eval(std::span<const double> vars) const {
  return eval_node(root_.get(), vars);
}

std::size_t Expr::size() const { return size_node(root_.get()); }

int Expr::depth() const { return depth_node(root_.get()); }

std::string Expr::to_string(std::size_t n_vars) const {
  return print_node(root_.get(), n_vars);
}

void Expr::simplify() { simplify_node(root_); }

std::vector<Node*> Expr::nodes() {
  std::vector<Node*> out;
  collect_nodes(root_.get(), out);
  return out;
}

std::vector<Node*> Expr::constant_nodes() {
  std::vector<Node*> out;
  for (Node* node : nodes()) {
    if (node->op == Op::kConst) out.push_back(node);
  }
  return out;
}

namespace {

Op random_function(util::Rng& rng) {
  // Arithmetic-weighted function choice: real ECU formulas are mostly
  // affine/products, but the full 14-function set stays reachable.
  static const Op weighted[] = {
      Op::kAdd, Op::kAdd, Op::kAdd, Op::kSub, Op::kSub, Op::kMul, Op::kMul,
      Op::kMul, Op::kDiv, Op::kDiv, Op::kSqrt, Op::kLog, Op::kAbs,
      Op::kNeg, Op::kMin, Op::kMax, Op::kSin, Op::kCos, Op::kTan,
      Op::kInv};
  return weighted[rng.uniform_int(0, std::size(weighted) - 1)];
}

std::unique_ptr<Node> random_node(util::Rng& rng, std::size_t n_vars,
                                  int depth, bool full) {
  const bool make_leaf =
      depth <= 0 || (!full && rng.chance(0.3));
  auto node = std::make_unique<Node>();
  if (make_leaf) {
    if (rng.chance(0.6)) {
      node->op = Op::kVar;
      node->var = static_cast<int>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_vars) - 1));
    } else {
      node->op = Op::kConst;
      node->value = rng.uniform(-10.0, 10.0);
    }
    return node;
  }
  node->op = random_function(rng);
  node->lhs = random_node(rng, n_vars, depth - 1, full);
  if (arity(node->op) == 2) {
    node->rhs = random_node(rng, n_vars, depth - 1, full);
  }
  return node;
}

}  // namespace

Expr random_expr(util::Rng& rng, std::size_t n_vars, int depth, bool full) {
  // Generation recurses once per level; cap the requested depth so a
  // pathological argument cannot overflow the C stack (full trees also
  // double per level, hence the tighter bound).
  depth = std::min(depth, full ? kMaxFullDepth : kMaxGrowDepth);
  return Expr(random_node(rng, n_vars, depth, full));
}

}  // namespace dpr::gp
