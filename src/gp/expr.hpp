#pragma once
// Expression trees for genetic-programming symbolic regression (§3.5):
// interior nodes are functions, leaves are variables or constants. The
// function set matches the paper's 14 supported functions (§6): addition,
// subtraction, multiplication, division, square root, log, absolute
// value, negation, maximum, minimum, sine, cosine, tangent, inverse.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dpr::gp {

enum class Op : std::uint8_t {
  kConst,
  kVar,
  // Binary functions.
  kAdd,
  kSub,
  kMul,
  kDiv,   // protected: |denominator| < 1e-9 evaluates to 1
  kMin,
  kMax,
  // Unary functions.
  kSqrt,  // protected: sqrt(|x|)
  kLog,   // protected: log(|x|), 0 at 0
  kAbs,
  kNeg,
  kSin,
  kCos,
  kTan,   // clamped to [-1e6, 1e6]
  kInv,   // protected: 1/x, 0 when |x| < 1e-9
};

constexpr int arity(Op op) {
  switch (op) {
    case Op::kConst:
    case Op::kVar:
      return 0;
    case Op::kSqrt:
    case Op::kLog:
    case Op::kAbs:
    case Op::kNeg:
    case Op::kSin:
    case Op::kCos:
    case Op::kTan:
    case Op::kInv:
      return 1;
    default:
      return 2;
  }
}

struct Node {
  Op op = Op::kConst;
  double value = 0.0;  // for kConst
  int var = 0;         // for kVar
  std::unique_ptr<Node> lhs;
  std::unique_ptr<Node> rhs;

  Node() = default;
  /// Iterative teardown: steals the children into an explicit worklist so
  /// destroying a pathologically deep tree never recurses down the C
  /// stack.
  ~Node();
  Node(Node&&) = default;
  Node& operator=(Node&&) = default;

  /// Deep copy via an explicit stack (never recursive).
  std::unique_ptr<Node> clone() const;
};

/// Owning expression handle with evaluation, printing and editing helpers.
class Expr {
 public:
  Expr() : root_(std::make_unique<Node>()) {}
  explicit Expr(std::unique_ptr<Node> root) : root_(std::move(root)) {}
  Expr(const Expr& other) : root_(other.root_->clone()) {}
  Expr& operator=(const Expr& other) {
    if (this != &other) root_ = other.root_->clone();
    return *this;
  }
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  static Expr constant(double v);
  static Expr variable(int index);
  static Expr unary(Op op, Expr operand);
  static Expr binary(Op op, Expr lhs, Expr rhs);

  /// Recursive tree evaluation (the gp::Program tape is the batched fast
  /// path; this is the reference semantics). Throws std::out_of_range if
  /// the tree references a variable index outside `vars` — a bad tree is
  /// a hard error, never a silent 0.
  double eval(std::span<const double> vars) const;
  std::size_t size() const;
  int depth() const;

  /// Render with variable names "X" (single variable) or "X0"/"X1".
  std::string to_string(std::size_t n_vars) const;

  /// Constant folding + algebraic identity cleanup (x*1, x+0, ...).
  void simplify();

  Node* root() { return root_.get(); }
  const Node* root() const { return root_.get(); }

  /// Pointers to every node (pre-order); used by crossover/mutation.
  std::vector<Node*> nodes();
  std::vector<Node*> constant_nodes();

 private:
  std::unique_ptr<Node> root_;
};

/// Random tree generation ("grow" when `full` is false) up to `depth`.
/// The requested depth is clamped to kMaxGrowDepth (grow) or
/// kMaxFullDepth (full trees double per level, so the cap also bounds
/// the node count) — generation can never recurse past either.
inline constexpr int kMaxGrowDepth = 64;
inline constexpr int kMaxFullDepth = 16;
Expr random_expr(util::Rng& rng, std::size_t n_vars, int depth, bool full);

}  // namespace dpr::gp
