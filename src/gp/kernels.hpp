#pragma once
// Per-op batch kernels for the GP tape interpreter.
//
// Program::eval_batch dispatches one instruction at a time; the inner
// per-sample loop is one of four shapes (column∘column, column∘constant,
// constant∘column, unary column). This header names those shapes as a
// table of function pointers so the interpreter can swap implementations
// at runtime: a portable scalar table (kernels_scalar.cpp) and an AVX2
// table (kernels_avx2.cpp, compiled only when DPR_ENABLE_AVX2 and the
// target is x86-64) that runs each instruction 8 samples per iteration.
//
// Bit-exactness contract: every kernel must produce, lane for lane, the
// exact bits of apply_unary/apply_binary below — which are themselves the
// verbatim protected-op formulas of Expr::eval. The AVX2 kernels achieve
// this with correctly-rounded IEEE vector arithmetic plus masked blends
// for the protected ops (compiled with contraction off so no FMA sneaks
// in); log/sin/cos/tan use the function set's own vmath.hpp definitions,
// whose scalar sequence the vector kernels mirror operation for
// operation — no libm call sits on any batch path. report_signature
// equality across {scalar, SIMD} rests on this contract.

#include <algorithm>
#include <cmath>
#include <cstddef>

#include "gp/expr.hpp"
#include "gp/vmath.hpp"

namespace dpr::gp {

/// The protected operators, shared verbatim between the tree walker's
/// semantics, the scalar tape, and the SIMD tails so every path matches
/// Expr::eval exactly.
inline double apply_unary(Op op, double x) {
  switch (op) {
    case Op::kSqrt:
      return std::sqrt(std::abs(x));
    case Op::kLog:
      return vm_log(x);
    case Op::kAbs:
      return std::abs(x);
    case Op::kNeg:
      return -x;
    case Op::kSin:
      return vm_sin(x);
    case Op::kCos:
      return vm_cos(x);
    case Op::kTan:
      return vm_tan(x);
    case Op::kInv:
      return std::abs(x) < 1e-9 ? 0.0 : 1.0 / x;
    default:
      return x;
  }
}

inline double apply_binary(Op op, double a, double b) {
  switch (op) {
    case Op::kAdd:
      return a + b;
    case Op::kSub:
      return a - b;
    case Op::kMul:
      return a * b;
    case Op::kDiv:
      return std::abs(b) < 1e-9 ? 1.0 : a / b;
    case Op::kMin:
      return std::min(a, b);
    case Op::kMax:
      return std::max(a, b);
    default:
      return a;
  }
}

/// One batch-loop implementation per operand shape. `dst` may alias `a`
/// or `b` only *exactly* (same pointer, the tape's write-what-you-read
/// slot reuse) — never partially overlap — so a kernel may load a full
/// block before storing it.
struct KernelTable {
  /// dst[i] = apply_unary(op, a[i])
  void (*unary)(Op op, double* dst, const double* a, std::size_t n);
  /// dst[i] = apply_binary(op, a[i], b[i])
  void (*binary)(Op op, double* dst, const double* a, const double* b,
                 std::size_t n);
  /// dst[i] = apply_binary(op, a[i], k)
  void (*binary_ak)(Op op, double* dst, const double* a, double k,
                    std::size_t n);
  /// dst[i] = apply_binary(op, k, b[i])
  void (*binary_kb)(Op op, double* dst, double k, const double* b,
                    std::size_t n);
};

/// Portable scalar kernels; always available, the bit-exact reference.
const KernelTable& scalar_kernels();

/// AVX2 kernels, or nullptr when the build carries no AVX2 code path.
const KernelTable* avx2_kernels();

/// Was an AVX2 code path compiled into this binary (DPR_ENABLE_AVX2 on an
/// x86-64 target)?
bool simd_compiled();

/// simd_compiled() and the running CPU reports AVX2.
bool simd_supported();

/// Process-wide switch (default on): `--scalar-tape` forces the scalar
/// table even on AVX2 hardware, for A/B timing and equality audits.
void set_simd_enabled(bool enabled);
bool simd_enabled();

/// The table eval_batch should use right now: AVX2 when compiled,
/// supported, and enabled; scalar otherwise.
const KernelTable& active_kernels();

}  // namespace dpr::gp
