// AVX2 kernel table for the GP tape: each instruction runs 8 samples per
// iteration (two 4-lane blocks), with a 4-lane loop and a scalar tail for
// the remainder. This TU is compiled with `-mavx2 -ffp-contract=off`
// (CMake sets both) — contraction MUST stay off, an FMA would change the
// rounding of a*b+c chains and break the bit-exactness contract.
//
// How each op stays bit-identical to apply_unary/apply_binary:
//  * add/sub/mul/div/sqrt are correctly-rounded IEEE ops — vector and
//    scalar produce the same bits by definition.
//  * abs is a sign-bit mask, neg a sign-bit xor — exact bit operations.
//  * protected div/inv compute the quotient everywhere, then blend in the
//    fallback where |denominator| < 1e-9. The compare uses _CMP_LT_OQ:
//    false for NaN denominators, so a NaN quotient passes through exactly
//    like the scalar ternary.
//  * min/max use the operand-order trick: std::min(a,b) keeps `a` when
//    the lanes compare unordered (NaN) or equal (±0), which is
//    _mm256_min_pd(b, a) — the minpd instruction returns its *second*
//    operand in those cases. Same for max.
//  * log/sin/cos/tan are the function set's own definitions (vmath.hpp):
//    the vector bodies below repeat the scalar specification operation
//    for operation — same constants, same Horner order, same blend
//    order — so every lane matches the scalar result bit for bit.

#include "gp/kernels.hpp"

#if defined(DPR_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

namespace dpr::gp {

namespace {

inline __m256d vabs(__m256d x) {
  return _mm256_and_pd(x, _mm256_castsi256_pd(_mm256_set1_epi64x(
                              0x7FFFFFFFFFFFFFFFLL)));
}

inline __m256d vneg(__m256d x) {
  return _mm256_xor_pd(x, _mm256_castsi256_pd(_mm256_set1_epi64x(
                              static_cast<long long>(0x8000000000000000ULL))));
}

/// a / b, with lanes where |b| < 1e-9 blended to `fallback`.
inline __m256d vdiv_protected(__m256d a, __m256d b, __m256d fallback) {
  const __m256d quotient = _mm256_div_pd(a, b);
  const __m256d small =
      _mm256_cmp_pd(vabs(b), _mm256_set1_pd(1e-9), _CMP_LT_OQ);
  return _mm256_blendv_pd(quotient, fallback, small);
}

// ---- vmath mirrors -------------------------------------------------
// Operation-for-operation transcriptions of vm_log/vm_sin/vm_cos/vm_tan
// (vmath.hpp). Any deviation in constants, Horner order, or blend order
// breaks the bit-exactness contract — edit both sides together.

inline __m256d vset(double k) { return _mm256_set1_pd(k); }

inline __m256d veq(__m256d a, double k) {
  return _mm256_cmp_pd(a, vset(k), _CMP_EQ_OQ);
}

/// sin_poly: r + (z*r)*(S1 + z*(S2 + z*(S3 + z*(S4 + z*(S5 + z*S6)))))
inline __m256d vpoly_sin(__m256d r) {
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d p = _mm256_add_pd(vset(vmath::kS5),
                            _mm256_mul_pd(z, vset(vmath::kS6)));
  p = _mm256_add_pd(vset(vmath::kS4), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(vset(vmath::kS3), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(vset(vmath::kS2), _mm256_mul_pd(z, p));
  const __m256d q = _mm256_add_pd(vset(vmath::kS1), _mm256_mul_pd(z, p));
  return _mm256_add_pd(r, _mm256_mul_pd(_mm256_mul_pd(z, r), q));
}

/// cos_poly: (1 - 0.5*z) + (z*z)*(C1 + z*(C2 + ... + z*C6))
inline __m256d vpoly_cos(__m256d r) {
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d p = _mm256_add_pd(vset(vmath::kC5),
                            _mm256_mul_pd(z, vset(vmath::kC6)));
  p = _mm256_add_pd(vset(vmath::kC4), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(vset(vmath::kC3), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(vset(vmath::kC2), _mm256_mul_pd(z, p));
  p = _mm256_add_pd(vset(vmath::kC1), _mm256_mul_pd(z, p));
  const __m256d base =
      _mm256_sub_pd(vset(1.0), _mm256_mul_pd(vset(0.5), z));
  return _mm256_add_pd(base, _mm256_mul_pd(_mm256_mul_pd(z, z), p));
}

/// reduce_pio2: nearbyint is _mm256_round_pd's ties-to-even mode.
inline void vreduce_pio2(__m256d x, __m256d& r, __m256d& qf) {
  const __m256d n =
      _mm256_round_pd(_mm256_mul_pd(x, vset(vmath::kInvPio2)),
                      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d r1 =
      _mm256_sub_pd(x, _mm256_mul_pd(n, vset(vmath::kPio2Hi)));
  r = _mm256_sub_pd(r1, _mm256_mul_pd(n, vset(vmath::kPio2Lo)));
  const __m256d j = _mm256_mul_pd(n, vset(0.25));
  qf = _mm256_sub_pd(n, _mm256_mul_pd(vset(4.0), _mm256_floor_pd(j)));
}

inline __m256d vlog_protected(__m256d x) {
  const __m256d v = vabs(x);
  const __m256i u = _mm256_castpd_si256(v);
  const __m256i ebits = _mm256_srli_epi64(u, 52);
  const __m256d m0 = _mm256_castsi256_pd(_mm256_or_si256(
      _mm256_and_si256(u, _mm256_set1_epi64x(0x000FFFFFFFFFFFFFLL)),
      _mm256_set1_epi64x(0x3FF0000000000000LL)));
  const __m256d e0 = _mm256_sub_pd(
      _mm256_castsi256_pd(_mm256_or_si256(
          ebits, _mm256_set1_epi64x(0x4330000000000000LL))),
      vset(vmath::kExpMagic));
  const __m256d fold = _mm256_cmp_pd(m0, vset(vmath::kSqrt2), _CMP_GT_OQ);
  const __m256d m =
      _mm256_blendv_pd(m0, _mm256_mul_pd(m0, vset(0.5)), fold);
  const __m256d e =
      _mm256_blendv_pd(e0, _mm256_add_pd(e0, vset(1.0)), fold);
  const __m256d f = _mm256_sub_pd(m, vset(1.0));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(vset(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  __m256d t1 = _mm256_add_pd(vset(vmath::kLg4),
                             _mm256_mul_pd(w, vset(vmath::kLg6)));
  t1 = _mm256_mul_pd(
      w, _mm256_add_pd(vset(vmath::kLg2), _mm256_mul_pd(w, t1)));
  __m256d t2 = _mm256_add_pd(vset(vmath::kLg5),
                             _mm256_mul_pd(w, vset(vmath::kLg7)));
  t2 = _mm256_add_pd(vset(vmath::kLg3), _mm256_mul_pd(w, t2));
  t2 = _mm256_mul_pd(
      z, _mm256_add_pd(vset(vmath::kLg1), _mm256_mul_pd(w, t2)));
  const __m256d big_r = _mm256_add_pd(t2, t1);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_mul_pd(vset(0.5), f), f);
  const __m256d inner =
      _mm256_add_pd(_mm256_mul_pd(s, _mm256_add_pd(hfsq, big_r)),
                    _mm256_mul_pd(e, vset(vmath::kLn2Lo)));
  const __m256d res0 = _mm256_sub_pd(
      _mm256_mul_pd(e, vset(vmath::kLn2Hi)),
      _mm256_sub_pd(_mm256_sub_pd(hfsq, inner), f));
  // Restore inf/NaN (the mantissa split maps them to finite garbage),
  // then the protection threshold — same order as the scalar spec.
  __m256d res = _mm256_blendv_pd(
      res0, v,
      _mm256_cmp_pd(v, vset(std::numeric_limits<double>::infinity()),
                    _CMP_EQ_OQ));
  res = _mm256_blendv_pd(res, v, _mm256_cmp_pd(v, v, _CMP_UNORD_Q));
  res = _mm256_blendv_pd(res, _mm256_setzero_pd(),
                         _mm256_cmp_pd(v, vset(1e-9), _CMP_LT_OQ));
  return res;
}

inline __m256d vsin(__m256d x) {
  __m256d r, qf;
  vreduce_pio2(x, r, qf);
  const __m256d s = vpoly_sin(r);
  const __m256d c = vpoly_cos(r);
  __m256d v = s;
  v = _mm256_blendv_pd(v, c, veq(qf, 1.0));
  v = _mm256_blendv_pd(v, vneg(s), veq(qf, 2.0));
  v = _mm256_blendv_pd(v, vneg(c), veq(qf, 3.0));
  return v;
}

inline __m256d vcos(__m256d x) {
  __m256d r, qf;
  vreduce_pio2(x, r, qf);
  const __m256d s = vpoly_sin(r);
  const __m256d c = vpoly_cos(r);
  __m256d v = c;
  v = _mm256_blendv_pd(v, vneg(s), veq(qf, 1.0));
  v = _mm256_blendv_pd(v, vneg(c), veq(qf, 2.0));
  v = _mm256_blendv_pd(v, s, veq(qf, 3.0));
  return v;
}

inline __m256d vtan(__m256d x) {
  __m256d r, qf;
  vreduce_pio2(x, r, qf);
  const __m256d s = vpoly_sin(r);
  const __m256d c = vpoly_cos(r);
  const __m256d odd = _mm256_or_pd(veq(qf, 1.0), veq(qf, 3.0));
  const __m256d num = _mm256_blendv_pd(s, vneg(c), odd);
  const __m256d den = _mm256_blendv_pd(c, s, odd);
  __m256d v = _mm256_div_pd(num, den);
  // Clamp mirrors the scalar ternaries; NaN misses both compares.
  v = _mm256_blendv_pd(v, vset(-1e6),
                       _mm256_cmp_pd(v, vset(-1e6), _CMP_LT_OQ));
  v = _mm256_blendv_pd(v, vset(1e6),
                       _mm256_cmp_pd(v, vset(1e6), _CMP_GT_OQ));
  return v;
}

/// Unary driver: 8 lanes per iteration, then 4, then a scalar tail that
/// reuses apply_unary so the remainder matches by construction. `dst` may
/// equal `a` exactly (the tape reuses stack slots); every block is fully
/// loaded before it is stored.
template <class VF>
inline void uloop(Op op, double* dst, const double* a, std::size_t n,
                  VF vf) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d x0 = _mm256_loadu_pd(a + i);
    const __m256d x1 = _mm256_loadu_pd(a + i + 4);
    _mm256_storeu_pd(dst + i, vf(x0));
    _mm256_storeu_pd(dst + i + 4, vf(x1));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, vf(_mm256_loadu_pd(a + i)));
  }
  for (; i < n; ++i) dst[i] = apply_unary(op, a[i]);
}

template <class VF>
inline void bloop_vv(Op op, double* dst, const double* a, const double* b,
                     std::size_t n, VF vf) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(a + i);
    const __m256d a1 = _mm256_loadu_pd(a + i + 4);
    const __m256d b0 = _mm256_loadu_pd(b + i);
    const __m256d b1 = _mm256_loadu_pd(b + i + 4);
    _mm256_storeu_pd(dst + i, vf(a0, b0));
    _mm256_storeu_pd(dst + i + 4, vf(a1, b1));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i,
                     vf(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = apply_binary(op, a[i], b[i]);
}

template <class VF>
inline void bloop_vk(Op op, double* dst, const double* a, double k,
                     std::size_t n, VF vf) {
  const __m256d vk = _mm256_set1_pd(k);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d a0 = _mm256_loadu_pd(a + i);
    const __m256d a1 = _mm256_loadu_pd(a + i + 4);
    _mm256_storeu_pd(dst + i, vf(a0, vk));
    _mm256_storeu_pd(dst + i + 4, vf(a1, vk));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, vf(_mm256_loadu_pd(a + i), vk));
  }
  for (; i < n; ++i) dst[i] = apply_binary(op, a[i], k);
}

template <class VF>
inline void bloop_kv(Op op, double* dst, double k, const double* b,
                     std::size_t n, VF vf) {
  const __m256d vk = _mm256_set1_pd(k);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256d b0 = _mm256_loadu_pd(b + i);
    const __m256d b1 = _mm256_loadu_pd(b + i + 4);
    _mm256_storeu_pd(dst + i, vf(vk, b0));
    _mm256_storeu_pd(dst + i + 4, vf(vk, b1));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, vf(vk, _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = apply_binary(op, k, b[i]);
}

void avx2_unary(Op op, double* dst, const double* a, std::size_t n) {
  switch (op) {
    case Op::kSqrt:
      uloop(op, dst, a, n,
            [](__m256d x) { return _mm256_sqrt_pd(vabs(x)); });
      break;
    case Op::kAbs:
      uloop(op, dst, a, n, [](__m256d x) { return vabs(x); });
      break;
    case Op::kNeg:
      uloop(op, dst, a, n, [](__m256d x) { return vneg(x); });
      break;
    case Op::kInv:
      uloop(op, dst, a, n, [](__m256d x) {
        return vdiv_protected(_mm256_set1_pd(1.0), x, _mm256_setzero_pd());
      });
      break;
    case Op::kLog:
      uloop(op, dst, a, n, [](__m256d x) { return vlog_protected(x); });
      break;
    case Op::kSin:
      uloop(op, dst, a, n, [](__m256d x) { return vsin(x); });
      break;
    case Op::kCos:
      uloop(op, dst, a, n, [](__m256d x) { return vcos(x); });
      break;
    case Op::kTan:
      uloop(op, dst, a, n, [](__m256d x) { return vtan(x); });
      break;
    default:
      // Identity fallthrough only.
      scalar_kernels().unary(op, dst, a, n);
      break;
  }
}

void avx2_binary(Op op, double* dst, const double* a, const double* b,
                 std::size_t n) {
  switch (op) {
    case Op::kAdd:
      bloop_vv(op, dst, a, b, n,
               [](__m256d x, __m256d y) { return _mm256_add_pd(x, y); });
      break;
    case Op::kSub:
      bloop_vv(op, dst, a, b, n,
               [](__m256d x, __m256d y) { return _mm256_sub_pd(x, y); });
      break;
    case Op::kMul:
      bloop_vv(op, dst, a, b, n,
               [](__m256d x, __m256d y) { return _mm256_mul_pd(x, y); });
      break;
    case Op::kDiv:
      bloop_vv(op, dst, a, b, n, [](__m256d x, __m256d y) {
        return vdiv_protected(x, y, _mm256_set1_pd(1.0));
      });
      break;
    case Op::kMin:
      bloop_vv(op, dst, a, b, n,
               [](__m256d x, __m256d y) { return _mm256_min_pd(y, x); });
      break;
    case Op::kMax:
      bloop_vv(op, dst, a, b, n,
               [](__m256d x, __m256d y) { return _mm256_max_pd(y, x); });
      break;
    default:
      scalar_kernels().binary(op, dst, a, b, n);
      break;
  }
}

void avx2_binary_ak(Op op, double* dst, const double* a, double k,
                    std::size_t n) {
  switch (op) {
    case Op::kAdd:
      bloop_vk(op, dst, a, k, n,
               [](__m256d x, __m256d y) { return _mm256_add_pd(x, y); });
      break;
    case Op::kSub:
      bloop_vk(op, dst, a, k, n,
               [](__m256d x, __m256d y) { return _mm256_sub_pd(x, y); });
      break;
    case Op::kMul:
      bloop_vk(op, dst, a, k, n,
               [](__m256d x, __m256d y) { return _mm256_mul_pd(x, y); });
      break;
    case Op::kDiv:
      bloop_vk(op, dst, a, k, n, [](__m256d x, __m256d y) {
        return vdiv_protected(x, y, _mm256_set1_pd(1.0));
      });
      break;
    case Op::kMin:
      bloop_vk(op, dst, a, k, n,
               [](__m256d x, __m256d y) { return _mm256_min_pd(y, x); });
      break;
    case Op::kMax:
      bloop_vk(op, dst, a, k, n,
               [](__m256d x, __m256d y) { return _mm256_max_pd(y, x); });
      break;
    default:
      scalar_kernels().binary_ak(op, dst, a, k, n);
      break;
  }
}

void avx2_binary_kb(Op op, double* dst, double k, const double* b,
                    std::size_t n) {
  switch (op) {
    case Op::kAdd:
      bloop_kv(op, dst, k, b, n,
               [](__m256d x, __m256d y) { return _mm256_add_pd(x, y); });
      break;
    case Op::kSub:
      bloop_kv(op, dst, k, b, n,
               [](__m256d x, __m256d y) { return _mm256_sub_pd(x, y); });
      break;
    case Op::kMul:
      bloop_kv(op, dst, k, b, n,
               [](__m256d x, __m256d y) { return _mm256_mul_pd(x, y); });
      break;
    case Op::kDiv:
      bloop_kv(op, dst, k, b, n, [](__m256d x, __m256d y) {
        return vdiv_protected(x, y, _mm256_set1_pd(1.0));
      });
      break;
    case Op::kMin:
      bloop_kv(op, dst, k, b, n,
               [](__m256d x, __m256d y) { return _mm256_min_pd(y, x); });
      break;
    case Op::kMax:
      bloop_kv(op, dst, k, b, n,
               [](__m256d x, __m256d y) { return _mm256_max_pd(y, x); });
      break;
    default:
      scalar_kernels().binary_kb(op, dst, k, b, n);
      break;
  }
}

constexpr KernelTable kAvx2Table{avx2_unary, avx2_binary, avx2_binary_ak,
                                 avx2_binary_kb};

}  // namespace

const KernelTable* avx2_kernels() { return &kAvx2Table; }

}  // namespace dpr::gp

#else  // no AVX2 code path in this build

namespace dpr::gp {

const KernelTable* avx2_kernels() { return nullptr; }

}  // namespace dpr::gp

#endif
