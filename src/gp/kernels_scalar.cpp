#include <atomic>

#include "gp/kernels.hpp"

// Portable scalar kernel table + the runtime dispatch state. The loops
// mirror the old in-interpreter switch: one op dispatch per instruction,
// then a tight per-element loop the compiler may auto-vectorize — but
// correctness never depends on it doing so.

namespace dpr::gp {

namespace {

void scalar_unary(Op op, double* dst, const double* a, std::size_t n) {
  switch (op) {
    case Op::kSqrt:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::sqrt(std::abs(a[i]));
      break;
    case Op::kLog:
      for (std::size_t i = 0; i < n; ++i) dst[i] = vm_log(a[i]);
      break;
    case Op::kAbs:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::abs(a[i]);
      break;
    case Op::kNeg:
      for (std::size_t i = 0; i < n; ++i) dst[i] = -a[i];
      break;
    case Op::kSin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = vm_sin(a[i]);
      break;
    case Op::kCos:
      for (std::size_t i = 0; i < n; ++i) dst[i] = vm_cos(a[i]);
      break;
    case Op::kTan:
      for (std::size_t i = 0; i < n; ++i) dst[i] = vm_tan(a[i]);
      break;
    case Op::kInv:
      for (std::size_t i = 0; i < n; ++i) {
        const double v = a[i];
        dst[i] = std::abs(v) < 1e-9 ? 0.0 : 1.0 / v;
      }
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i];
      break;
  }
}

void scalar_binary(Op op, double* dst, const double* a, const double* b,
                   std::size_t n) {
  switch (op) {
    case Op::kAdd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + b[i];
      break;
    case Op::kSub:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - b[i];
      break;
    case Op::kMul:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * b[i];
      break;
    case Op::kDiv:
      for (std::size_t i = 0; i < n; ++i) {
        const double bv = b[i];
        dst[i] = std::abs(bv) < 1e-9 ? 1.0 : a[i] / bv;
      }
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(a[i], b[i]);
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(a[i], b[i]);
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i];
      break;
  }
}

void scalar_binary_ak(Op op, double* dst, const double* a, double k,
                      std::size_t n) {
  switch (op) {
    case Op::kAdd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] + k;
      break;
    case Op::kSub:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] - k;
      break;
    case Op::kMul:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] * k;
      break;
    case Op::kDiv:
      if (std::abs(k) < 1e-9) {
        for (std::size_t i = 0; i < n; ++i) dst[i] = 1.0;
      } else {
        for (std::size_t i = 0; i < n; ++i) dst[i] = a[i] / k;
      }
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(a[i], k);
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(a[i], k);
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a[i];
      break;
  }
}

void scalar_binary_kb(Op op, double* dst, double k, const double* b,
                      std::size_t n) {
  switch (op) {
    case Op::kAdd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = k + b[i];
      break;
    case Op::kSub:
      for (std::size_t i = 0; i < n; ++i) dst[i] = k - b[i];
      break;
    case Op::kMul:
      for (std::size_t i = 0; i < n; ++i) dst[i] = k * b[i];
      break;
    case Op::kDiv:
      for (std::size_t i = 0; i < n; ++i) {
        const double bv = b[i];
        dst[i] = std::abs(bv) < 1e-9 ? 1.0 : k / bv;
      }
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(k, b[i]);
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(k, b[i]);
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = k;
      break;
  }
}

constexpr KernelTable kScalarTable{scalar_unary, scalar_binary,
                                   scalar_binary_ak, scalar_binary_kb};

std::atomic<bool> g_simd_enabled{true};

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

const KernelTable& scalar_kernels() { return kScalarTable; }

bool simd_compiled() { return avx2_kernels() != nullptr; }

bool simd_supported() { return simd_compiled() && cpu_has_avx2(); }

void set_simd_enabled(bool enabled) {
  g_simd_enabled.store(enabled, std::memory_order_relaxed);
}

bool simd_enabled() {
  return g_simd_enabled.load(std::memory_order_relaxed);
}

const KernelTable& active_kernels() {
  if (simd_enabled() && simd_supported()) return *avx2_kernels();
  return kScalarTable;
}

}  // namespace dpr::gp
