#include "gp/program.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace dpr::gp {

SampleMatrix SampleMatrix::from_rows(
    const std::vector<std::vector<double>>& rows, std::size_t n_vars) {
  SampleMatrix matrix(rows.size(), n_vars);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != n_vars) {
      throw std::invalid_argument("gp: sample row width != n_vars");
    }
    for (std::size_t v = 0; v < n_vars; ++v) matrix.at(i, v) = rows[i][v];
  }
  return matrix;
}

Program Program::compile(const Expr& expr, std::size_t n_vars) {
  Program program;
  program.recompile(expr, n_vars);
  return program;
}

namespace {

inline void append_raw(std::string& out, const void* data,
                       std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

}  // namespace

void Program::analyze(const Expr& expr, std::size_t n_vars,
                      std::string* key) {
  // Iterative traversal "node, rhs subtree, lhs subtree", reversed at the
  // end: that yields lhs, rhs, node — the completion order of the
  // recursive evaluator — so the tape replays Expr::eval's operation
  // sequence bit for bit. Everything emit() and the key serializer need
  // is captured into contiguous records; the heap-scattered tree is
  // walked exactly once.
  recs_.clear();
  dfs_.clear();
  dfs_.push_back(expr.root());
  while (!dfs_.empty()) {
    const Node* node = dfs_.back();
    dfs_.pop_back();
    if (node->op == Op::kVar &&
        (node->var < 0 || static_cast<std::size_t>(node->var) >= n_vars)) {
      throw std::invalid_argument(
          "gp: variable index out of range for this dataset");
    }
    recs_.push_back({node, node->op, node->var, node->value});
    if (node->lhs) dfs_.push_back(node->lhs.get());
    if (node->rhs) dfs_.push_back(node->rhs.get());
  }
  std::reverse(recs_.begin(), recs_.end());
  if (key != nullptr) append_key(*key);
}

void Program::emit() {
  code_.clear();
  constants_.clear();
  const_nodes_.clear();
  vstack_.clear();
  stack_need_ = 0;

  // Simulate the operand stack over the postfix records. Leaves push a
  // descriptor (variable column / constant-pool slot) without emitting
  // anything; operators consume descriptors and emit one fused
  // instruction whose result occupies stack column `depth`. Live stack
  // operands always sit in columns 0..depth-1, so dense slot assignment
  // never clobbers a live value (an instruction may write the column it
  // reads — element i is fully read before element i is written).
  std::size_t depth = 0;
  const auto pop = [this, &depth]() {
    const Operand operand = vstack_.back();
    vstack_.pop_back();
    if (operand.src == Src::kStack) --depth;
    return operand;
  };
  for (const NodeRec& rec : recs_) {
    switch (arity(rec.op)) {
      case 0:
        if (rec.op == Op::kVar) {
          vstack_.push_back(
              {Src::kVar, static_cast<std::uint32_t>(rec.var)});
        } else {
          vstack_.push_back(
              {Src::kConst, static_cast<std::uint32_t>(constants_.size())});
          constants_.push_back(rec.value);
          const_nodes_.push_back(rec.node);
        }
        break;
      case 1: {
        const Operand a = pop();
        const auto dst = static_cast<std::uint32_t>(depth);
        code_.push_back({rec.op, a, {Src::kStack, 0}, dst});
        vstack_.push_back({Src::kStack, dst});
        stack_need_ = std::max(stack_need_, ++depth);
        break;
      }
      case 2: {
        const Operand b = pop();
        const Operand a = pop();
        const auto dst = static_cast<std::uint32_t>(depth);
        code_.push_back({rec.op, a, b, dst});
        vstack_.push_back({Src::kStack, dst});
        stack_need_ = std::max(stack_need_, ++depth);
        break;
      }
    }
  }
  result_ = vstack_.empty() ? Operand{Src::kStack, 0} : vstack_.back();
}

void Program::recompile(const Expr& expr, std::size_t n_vars,
                        std::string* key) {
  analyze(expr, n_vars, key);
  emit();
}

namespace {

/// The protected operators, shared verbatim between the scalar and the
/// batched interpreter so both match Expr::eval exactly.
inline double apply_unary(Op op, double x) {
  switch (op) {
    case Op::kSqrt:
      return std::sqrt(std::abs(x));
    case Op::kLog: {
      const double v = std::abs(x);
      return v < 1e-9 ? 0.0 : std::log(v);
    }
    case Op::kAbs:
      return std::abs(x);
    case Op::kNeg:
      return -x;
    case Op::kSin:
      return std::sin(x);
    case Op::kCos:
      return std::cos(x);
    case Op::kTan:
      return std::clamp(std::tan(x), -1e6, 1e6);
    case Op::kInv:
      return std::abs(x) < 1e-9 ? 0.0 : 1.0 / x;
    default:
      return x;
  }
}

inline double apply_binary(Op op, double a, double b) {
  switch (op) {
    case Op::kAdd:
      return a + b;
    case Op::kSub:
      return a - b;
    case Op::kMul:
      return a * b;
    case Op::kDiv:
      return std::abs(b) < 1e-9 ? 1.0 : a / b;
    case Op::kMin:
      return std::min(a, b);
    case Op::kMax:
      return std::max(a, b);
    default:
      return a;
  }
}

/// Batched per-op loops. The operator is dispatched once per
/// instruction, outside the element loop, so every case below is a
/// tight loop the compiler can vectorize. Each case applies the exact
/// per-element formula of apply_unary/apply_binary — the operand
/// accessors (column read or constant immediate) are the only thing
/// that varies between specializations, never the arithmetic.
template <class A>
inline void unary_loop(Op op, double* dst, std::size_t n, A a) {
  switch (op) {
    case Op::kSqrt:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::sqrt(std::abs(a(i)));
      break;
    case Op::kLog:
      for (std::size_t i = 0; i < n; ++i) {
        const double v = std::abs(a(i));
        dst[i] = v < 1e-9 ? 0.0 : std::log(v);
      }
      break;
    case Op::kAbs:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::abs(a(i));
      break;
    case Op::kNeg:
      for (std::size_t i = 0; i < n; ++i) dst[i] = -a(i);
      break;
    case Op::kSin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::sin(a(i));
      break;
    case Op::kCos:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::cos(a(i));
      break;
    case Op::kTan:
      for (std::size_t i = 0; i < n; ++i) {
        dst[i] = std::clamp(std::tan(a(i)), -1e6, 1e6);
      }
      break;
    case Op::kInv:
      for (std::size_t i = 0; i < n; ++i) {
        const double v = a(i);
        dst[i] = std::abs(v) < 1e-9 ? 0.0 : 1.0 / v;
      }
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a(i);
      break;
  }
}

template <class A, class B>
inline void binary_loop(Op op, double* dst, std::size_t n, A a, B b) {
  switch (op) {
    case Op::kAdd:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a(i) + b(i);
      break;
    case Op::kSub:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a(i) - b(i);
      break;
    case Op::kMul:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a(i) * b(i);
      break;
    case Op::kDiv:
      for (std::size_t i = 0; i < n; ++i) {
        const double bv = b(i);
        dst[i] = std::abs(bv) < 1e-9 ? 1.0 : a(i) / bv;
      }
      break;
    case Op::kMin:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::min(a(i), b(i));
      break;
    case Op::kMax:
      for (std::size_t i = 0; i < n; ++i) dst[i] = std::max(a(i), b(i));
      break;
    default:
      for (std::size_t i = 0; i < n; ++i) dst[i] = a(i);
      break;
  }
}

}  // namespace

double Program::eval_scalar(std::span<const double> vars,
                            EvalScratch& scratch) const {
  scratch.stack.resize(std::max<std::size_t>(1, stack_need_));
  double* st = scratch.stack.data();
  const auto value = [&](Operand operand) {
    switch (operand.src) {
      case Src::kStack:
        return st[operand.index];
      case Src::kVar:
        return vars[operand.index];
      default:
        return constants_[operand.index];
    }
  };
  for (const Instr& ins : code_) {
    st[ins.dst] = arity(ins.op) == 1
                      ? apply_unary(ins.op, value(ins.a))
                      : apply_binary(ins.op, value(ins.a), value(ins.b));
  }
  return value(result_);
}

void Program::eval_batch(const SampleMatrix& samples,
                         EvalScratch& scratch) const {
  const std::size_t n = samples.n_samples();
  scratch.predictions.resize(n);
  if (n == 0) return;
  scratch.stack.resize(std::max<std::size_t>(1, stack_need_) * n);
  double* stack = scratch.stack.data();
  // A fused operand is either a column pointer (stack slot or sample
  // column) or a constant immediate; the four pointer/immediate loop
  // shapes below keep the inner loops branch-free.
  const auto column_of = [&](Operand operand) -> const double* {
    switch (operand.src) {
      case Src::kStack:
        return stack + operand.index * n;
      case Src::kVar:
        return samples.column(operand.index).data();
      default:
        return nullptr;  // constant immediate
    }
  };
  for (const Instr& ins : code_) {
    double* dst = stack + ins.dst * n;
    const double* a = column_of(ins.a);
    if (arity(ins.op) == 1) {
      if (a != nullptr) {
        unary_loop(ins.op, dst, n, [a](std::size_t i) { return a[i]; });
      } else {
        // Constant operand: apply_unary is pure, so computing it once
        // and broadcasting produces the same bits as computing it per
        // sample.
        const double v = apply_unary(ins.op, constants_[ins.a.index]);
        for (std::size_t i = 0; i < n; ++i) dst[i] = v;
      }
      continue;
    }
    const double* b = column_of(ins.b);
    if (a != nullptr && b != nullptr) {
      binary_loop(ins.op, dst, n, [a](std::size_t i) { return a[i]; },
                  [b](std::size_t i) { return b[i]; });
    } else if (a != nullptr) {
      const double bc = constants_[ins.b.index];
      binary_loop(ins.op, dst, n, [a](std::size_t i) { return a[i]; },
                  [bc](std::size_t) { return bc; });
    } else if (b != nullptr) {
      const double ac = constants_[ins.a.index];
      binary_loop(ins.op, dst, n, [ac](std::size_t) { return ac; },
                  [b](std::size_t i) { return b[i]; });
    } else {
      const double v = apply_binary(ins.op, constants_[ins.a.index],
                                    constants_[ins.b.index]);
      for (std::size_t i = 0; i < n; ++i) dst[i] = v;
    }
  }
  switch (result_.src) {
    case Src::kStack:
      std::memcpy(scratch.predictions.data(), stack + result_.index * n,
                  n * sizeof(double));
      break;
    case Src::kVar: {
      const auto column = samples.column(result_.index);
      std::memcpy(scratch.predictions.data(), column.data(),
                  n * sizeof(double));
      break;
    }
    default: {
      const double v = constants_[result_.index];
      for (std::size_t i = 0; i < n; ++i) scratch.predictions[i] = v;
      break;
    }
  }
}

void Program::append_key(std::string& out) const {
  // Interleaved record layout: node count, then op byte + payload per
  // node in postfix order. The count prefix plus the per-op payload
  // sizes keep the stream unambiguous.
  out.clear();
  const std::uint32_t count = static_cast<std::uint32_t>(recs_.size());
  append_raw(out, &count, sizeof count);
  for (const NodeRec& rec : recs_) {
    out.push_back(static_cast<char>(rec.op));
    if (rec.op == Op::kVar) {
      const auto var = static_cast<std::uint32_t>(rec.var);
      append_raw(out, &var, sizeof var);
    } else if (rec.op == Op::kConst) {
      // Raw bit pattern: constants that differ only in sign of zero or
      // NaN payload still get distinct keys.
      append_raw(out, &rec.value, sizeof rec.value);
    }
  }
}

void Program::structural_key(std::string& out) const { append_key(out); }

FitnessCache::FitnessCache(std::size_t capacity)
    : shard_capacity_(std::max<std::size_t>(1, capacity / kShards)) {
  // Power-of-two slot count at ≤ 0.5 max load, so linear probes always
  // terminate quickly.
  std::size_t slots = 2;
  while (slots < shard_capacity_ * 2) slots <<= 1;
  slot_mask_ = slots - 1;
  for (auto& shard : shards_) shard.slots.resize(slots);
}

std::uint64_t FitnessCache::hash_key(const std::string& key) {
  // Chunked xor-multiply mix (8 bytes per step). Quality only matters
  // for shard choice and probe placement — equality is always decided by
  // comparing full keys, so a colliding pair can share a slot chain but
  // never a value.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.size();
  const char* p = key.data();
  std::size_t remaining = key.size();
  while (remaining >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    p += 8;
    remaining -= 8;
  }
  std::uint64_t tail = 0;
  std::memcpy(&tail, p, remaining);
  h = (h ^ tail) * 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h | 1;  // 0 is the empty-slot sentinel
}

bool FitnessCache::slot_matches(const Shard& shard, const Slot& slot,
                                const std::string& key) {
  if (slot.len != key.size()) return false;
  if (slot.len <= kInlineKey) {
    return std::memcmp(slot.key, key.data(), slot.len) == 0;
  }
  std::uint32_t index;
  std::memcpy(&index, slot.key, sizeof index);
  return shard.overflow[index] == key;
}

std::optional<double> FitnessCache::lookup(const std::string& key) {
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (std::size_t i = hash & slot_mask_;; i = (i + 1) & slot_mask_) {
    const Slot& slot = shard.slots[i];
    if (slot.hash == 0) break;
    if (slot.hash == hash && slot_matches(shard, slot, key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return slot.fitness;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void FitnessCache::insert(const std::string& key, double fitness) {
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.count >= shard_capacity_) {
    // Epoch eviction: drop the whole shard. Cached values are pure
    // functions of the key, so eviction affects hit rate, never results.
    for (auto& slot : shard.slots) slot.hash = 0;
    shard.overflow.clear();
    shard.count = 0;
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t i = hash & slot_mask_;; i = (i + 1) & slot_mask_) {
    Slot& slot = shard.slots[i];
    if (slot.hash == 0) {
      slot.hash = hash;
      slot.fitness = fitness;
      slot.len = static_cast<std::uint32_t>(key.size());
      if (key.size() <= kInlineKey) {
        std::memcpy(slot.key, key.data(), key.size());
      } else {
        const auto index = static_cast<std::uint32_t>(shard.overflow.size());
        shard.overflow.push_back(key);
        std::memcpy(slot.key, &index, sizeof index);
      }
      ++shard.count;
      return;
    }
    if (slot.hash == hash && slot_matches(shard, slot, key)) {
      return;  // another worker inserted the same shape first
    }
  }
}

}  // namespace dpr::gp
