#include "gp/program.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <new>
#include <stdexcept>

#include "gp/kernels.hpp"

namespace dpr::gp {

void AlignedBuffer::grow(std::size_t n) {
  // Geometric growth so a worker scanning programs of increasing depth
  // reallocates O(log) times; memory is left uninitialized on purpose.
  const std::size_t target = std::max(n, capacity_ * 2);
  release();
  data_ = static_cast<double*>(
      ::operator new(target * sizeof(double), std::align_val_t{64}));
  capacity_ = target;
}

void AlignedBuffer::release() {
  if (data_ != nullptr) {
    ::operator delete(data_, std::align_val_t{64});
    data_ = nullptr;
  }
  capacity_ = 0;
}

SampleMatrix SampleMatrix::from_rows(
    const std::vector<std::vector<double>>& rows, std::size_t n_vars) {
  SampleMatrix matrix(rows.size(), n_vars);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].size() != n_vars) {
      throw std::invalid_argument("gp: sample row width != n_vars");
    }
    for (std::size_t v = 0; v < n_vars; ++v) matrix.at(i, v) = rows[i][v];
  }
  return matrix;
}

Program Program::compile(const Expr& expr, std::size_t n_vars) {
  Program program;
  program.recompile(expr, n_vars);
  return program;
}

namespace {

inline void append_raw(std::string& out, const void* data,
                       std::size_t bytes) {
  out.append(static_cast<const char*>(data), bytes);
}

}  // namespace

void Program::analyze(const Expr& expr, std::size_t n_vars,
                      std::string* key) {
  // Iterative traversal "node, rhs subtree, lhs subtree", reversed at the
  // end: that yields lhs, rhs, node — the completion order of the
  // recursive evaluator — so the tape replays Expr::eval's operation
  // sequence bit for bit. Everything emit() and the key serializer need
  // is captured into contiguous records; the heap-scattered tree is
  // walked exactly once.
  recs_.clear();
  dfs_.clear();
  dfs_.push_back(expr.root());
  while (!dfs_.empty()) {
    const Node* node = dfs_.back();
    dfs_.pop_back();
    if (node->op == Op::kVar &&
        (node->var < 0 || static_cast<std::size_t>(node->var) >= n_vars)) {
      throw std::invalid_argument(
          "gp: variable index out of range for this dataset");
    }
    recs_.push_back({node, node->op, node->var, node->value});
    if (node->lhs) dfs_.push_back(node->lhs.get());
    if (node->rhs) dfs_.push_back(node->rhs.get());
  }
  std::reverse(recs_.begin(), recs_.end());
  if (key != nullptr) append_key(*key);
}

void Program::emit() {
  code_.clear();
  constants_.clear();
  const_nodes_.clear();
  vstack_.clear();
  stack_need_ = 0;

  // Simulate the operand stack over the postfix records. Leaves push a
  // descriptor (variable column / constant-pool slot) without emitting
  // anything; operators consume descriptors and emit one fused
  // instruction whose result occupies stack column `depth`. Live stack
  // operands always sit in columns 0..depth-1, so dense slot assignment
  // never clobbers a live value (an instruction may write the column it
  // reads — element i is fully read before element i is written).
  std::size_t depth = 0;
  const auto pop = [this, &depth]() {
    const Operand operand = vstack_.back();
    vstack_.pop_back();
    if (operand.src == Src::kStack) --depth;
    return operand;
  };
  for (const NodeRec& rec : recs_) {
    switch (arity(rec.op)) {
      case 0:
        if (rec.op == Op::kVar) {
          vstack_.push_back(
              {Src::kVar, static_cast<std::uint32_t>(rec.var)});
        } else {
          vstack_.push_back(
              {Src::kConst, static_cast<std::uint32_t>(constants_.size())});
          constants_.push_back(rec.value);
          const_nodes_.push_back(rec.node);
        }
        break;
      case 1: {
        const Operand a = pop();
        const auto dst = static_cast<std::uint32_t>(depth);
        code_.push_back({rec.op, a, {Src::kStack, 0}, dst});
        vstack_.push_back({Src::kStack, dst});
        stack_need_ = std::max(stack_need_, ++depth);
        break;
      }
      case 2: {
        const Operand b = pop();
        const Operand a = pop();
        const auto dst = static_cast<std::uint32_t>(depth);
        code_.push_back({rec.op, a, b, dst});
        vstack_.push_back({Src::kStack, dst});
        stack_need_ = std::max(stack_need_, ++depth);
        break;
      }
    }
  }
  result_ = vstack_.empty() ? Operand{Src::kStack, 0} : vstack_.back();
}

void Program::recompile(const Expr& expr, std::size_t n_vars,
                        std::string* key) {
  analyze(expr, n_vars, key);
  emit();
}

double Program::eval_scalar(std::span<const double> vars,
                            EvalScratch& scratch) const {
  scratch.stack.ensure(std::max<std::size_t>(1, stack_need_));
  double* st = scratch.stack.data();
  const auto value = [&](Operand operand) {
    switch (operand.src) {
      case Src::kStack:
        return st[operand.index];
      case Src::kVar:
        return vars[operand.index];
      default:
        return constants_[operand.index];
    }
  };
  for (const Instr& ins : code_) {
    st[ins.dst] = arity(ins.op) == 1
                      ? apply_unary(ins.op, value(ins.a))
                      : apply_binary(ins.op, value(ins.a), value(ins.b));
  }
  return value(result_);
}

void Program::eval_batch(const SampleMatrix& samples,
                         EvalScratch& scratch) const {
  const std::size_t n = samples.n_samples();
  scratch.predictions.resize(n);
  if (n == 0) return;
  // Stack columns are padded to a multiple of 8 doubles so every column
  // starts on a 64-byte boundary of the aligned scratch base (sample
  // columns stay unpadded — the kernels use unaligned loads for those).
  const std::size_t stride = (n + 7) & ~std::size_t{7};
  scratch.stack.ensure(std::max<std::size_t>(1, stack_need_) * stride);
  double* stack = scratch.stack.data();
  double* preds = scratch.predictions.data();
  const KernelTable& kernels = active_kernels();
  // A fused operand is either a column pointer (stack slot or sample
  // column) or a constant immediate; the four pointer/immediate kernel
  // shapes keep the inner loops branch-free.
  const auto column_of = [&](Operand operand) -> const double* {
    switch (operand.src) {
      case Src::kStack:
        return stack + operand.index * stride;
      case Src::kVar:
        return samples.column(operand.index).data();
      default:
        return nullptr;  // constant immediate
    }
  };
  // When the final instruction produces the result column (always the
  // case for an operator-rooted tree), it writes straight into the
  // predictions buffer — the closing memcpy disappears.
  const std::size_t n_code = code_.size();
  const bool last_writes_result = n_code > 0 &&
                                  result_.src == Src::kStack &&
                                  code_[n_code - 1].dst == result_.index;
  for (std::size_t pc = 0; pc < n_code; ++pc) {
    const Instr& ins = code_[pc];
    double* dst = (last_writes_result && pc + 1 == n_code)
                      ? preds
                      : stack + ins.dst * stride;
    const double* a = column_of(ins.a);
    if (arity(ins.op) == 1) {
      if (a != nullptr) {
        kernels.unary(ins.op, dst, a, n);
      } else {
        // Constant operand: apply_unary is pure, so computing it once
        // and broadcasting produces the same bits as computing it per
        // sample.
        const double v = apply_unary(ins.op, constants_[ins.a.index]);
        for (std::size_t i = 0; i < n; ++i) dst[i] = v;
      }
      continue;
    }
    const double* b = column_of(ins.b);
    if (a != nullptr && b != nullptr) {
      kernels.binary(ins.op, dst, a, b, n);
    } else if (a != nullptr) {
      kernels.binary_ak(ins.op, dst, a, constants_[ins.b.index], n);
    } else if (b != nullptr) {
      kernels.binary_kb(ins.op, dst, constants_[ins.a.index], b, n);
    } else {
      const double v = apply_binary(ins.op, constants_[ins.a.index],
                                    constants_[ins.b.index]);
      for (std::size_t i = 0; i < n; ++i) dst[i] = v;
    }
  }
  if (last_writes_result) return;
  switch (result_.src) {
    case Src::kStack:
      std::memcpy(preds, stack + result_.index * stride, n * sizeof(double));
      break;
    case Src::kVar: {
      const auto column = samples.column(result_.index);
      std::memcpy(preds, column.data(), n * sizeof(double));
      break;
    }
    default: {
      const double v = constants_[result_.index];
      for (std::size_t i = 0; i < n; ++i) preds[i] = v;
      break;
    }
  }
}

void Program::append_key(std::string& out) const {
  // Interleaved record layout: node count, then op byte + payload per
  // node in postfix order. The count prefix plus the per-op payload
  // sizes keep the stream unambiguous.
  out.clear();
  const std::uint32_t count = static_cast<std::uint32_t>(recs_.size());
  append_raw(out, &count, sizeof count);
  for (const NodeRec& rec : recs_) {
    out.push_back(static_cast<char>(rec.op));
    if (rec.op == Op::kVar) {
      const auto var = static_cast<std::uint32_t>(rec.var);
      append_raw(out, &var, sizeof var);
    } else if (rec.op == Op::kConst) {
      // Raw bit pattern: constants that differ only in sign of zero or
      // NaN payload still get distinct keys.
      append_raw(out, &rec.value, sizeof rec.value);
    }
  }
}

void Program::structural_key(std::string& out) const { append_key(out); }

FitnessCache::FitnessCache(std::size_t capacity)
    : shard_capacity_(std::max<std::size_t>(1, capacity / kShards)) {
  // Power-of-two slot count at ≤ 0.5 max load, so linear probes always
  // terminate quickly.
  std::size_t slots = 2;
  while (slots < shard_capacity_ * 2) slots <<= 1;
  slot_mask_ = slots - 1;
  for (auto& shard : shards_) shard.slots.resize(slots);
}

std::uint64_t FitnessCache::hash_key(const std::string& key) {
  // Chunked xor-multiply mix (8 bytes per step). Quality only matters
  // for shard choice and probe placement — equality is always decided by
  // comparing full keys, so a colliding pair can share a slot chain but
  // never a value.
  std::uint64_t h = 0x9E3779B97F4A7C15ULL ^ key.size();
  const char* p = key.data();
  std::size_t remaining = key.size();
  while (remaining >= 8) {
    std::uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    h = (h ^ chunk) * 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    p += 8;
    remaining -= 8;
  }
  std::uint64_t tail = 0;
  std::memcpy(&tail, p, remaining);
  h = (h ^ tail) * 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return h | 1;  // 0 is the empty-slot sentinel
}

bool FitnessCache::slot_matches(const Shard& shard, const Slot& slot,
                                const std::string& key) {
  if (slot.len != key.size()) return false;
  if (slot.len <= kInlineKey) {
    return std::memcmp(slot.key, key.data(), slot.len) == 0;
  }
  std::uint32_t index;
  std::memcpy(&index, slot.key, sizeof index);
  return shard.overflow[index] == key;
}

std::optional<double> FitnessCache::lookup(const std::string& key) {
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (std::size_t i = hash & slot_mask_;; i = (i + 1) & slot_mask_) {
    const Slot& slot = shard.slots[i];
    if (slot.hash == 0) break;
    if (slot.hash == hash && slot_matches(shard, slot, key)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return slot.fitness;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

void FitnessCache::insert(const std::string& key, double fitness) {
  const std::uint64_t hash = hash_key(key);
  Shard& shard = shard_for(hash);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.count >= shard_capacity_) {
    // Epoch eviction: drop the whole shard. Cached values are pure
    // functions of the key, so eviction affects hit rate, never results.
    for (auto& slot : shard.slots) slot.hash = 0;
    shard.overflow.clear();
    shard.count = 0;
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  for (std::size_t i = hash & slot_mask_;; i = (i + 1) & slot_mask_) {
    Slot& slot = shard.slots[i];
    if (slot.hash == 0) {
      slot.hash = hash;
      slot.fitness = fitness;
      slot.len = static_cast<std::uint32_t>(key.size());
      if (key.size() <= kInlineKey) {
        std::memcpy(slot.key, key.data(), key.size());
      } else {
        const auto index = static_cast<std::uint32_t>(shard.overflow.size());
        shard.overflow.push_back(key);
        std::memcpy(slot.key, &index, sizeof index);
      }
      ++shard.count;
      return;
    }
    if (slot.hash == hash && slot_matches(shard, slot, key)) {
      return;  // another worker inserted the same shape first
    }
  }
}

}  // namespace dpr::gp
