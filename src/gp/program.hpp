#pragma once
// Flat bytecode execution engine for GP expression trees. Expr::eval
// chases unique_ptr children once per sample per individual per
// generation — the dominant cost of every campaign (Table 8). Program
// lowers a tree to a postfix tape and executes it with an iterative
// stack machine over a column-major SampleMatrix: the operator dispatch
// runs once per *node* instead of once per (node, sample), the inner
// loops stream over contiguous columns, and a scoring pass performs
// zero allocations once the scratch buffers are warm. The tape applies
// the exact operation sequence tree evaluation would (postfix = the
// recursive evaluator's completion order, protected-op semantics
// included), so every sample's result is bit-identical to Expr::eval —
// the property the fleet's report_signature determinism gates rely on.
//
// Lowering is split into two stages so the fitness cache's hot path
// stays minimal: analyze() makes a single walk over the tree and emits
// the canonical structural key (all a cache hit needs), and emit()
// lowers the analyzed nodes into executable instructions — paid only on
// a cache miss. Instructions use fused operands: an operator reads leaf
// arguments straight from the sample columns or the constant pool
// instead of first materializing them as stack columns, which removes
// roughly half the memory traffic of a typical small tree.
//
// FitnessCache rides on top: the analyze() byte stream is a canonical
// structural key for the expression, so crossover/mutation offspring
// that reproduce an already-seen shape can skip rescoring entirely.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gp/expr.hpp"

namespace dpr::gp {

/// Column-major (structure-of-arrays) sample storage: column v holds
/// variable v of every sample contiguously, so a tape instruction that
/// touches one variable streams over adjacent memory.
class SampleMatrix {
 public:
  SampleMatrix() = default;
  SampleMatrix(std::size_t n_samples, std::size_t n_vars)
      : n_samples_(n_samples),
        n_vars_(n_vars),
        data_(n_samples * n_vars, 0.0) {}

  /// Transpose row-major points (the correlate::Dataset layout) into
  /// columns. Every row must have exactly `n_vars` entries.
  static SampleMatrix from_rows(const std::vector<std::vector<double>>& rows,
                                std::size_t n_vars);

  std::size_t n_samples() const { return n_samples_; }
  std::size_t n_vars() const { return n_vars_; }

  double& at(std::size_t sample, std::size_t var) {
    return data_[var * n_samples_ + sample];
  }
  double at(std::size_t sample, std::size_t var) const {
    return data_[var * n_samples_ + sample];
  }
  std::span<const double> column(std::size_t var) const {
    return {data_.data() + var * n_samples_, n_samples_};
  }

 private:
  std::size_t n_samples_ = 0;
  std::size_t n_vars_ = 0;
  std::vector<double> data_;  // data_[var * n_samples + sample]
};

/// Growable 64-byte-aligned double buffer for the evaluation stack.
/// Unlike std::vector, ensure() never value-initializes: the tape writes
/// every stack column before reading it, so zero-filling was pure waste —
/// the old vector::resize cleared the whole stack's growth on every call
/// instead of only tracking the live watermark. Capacity only grows
/// (watermark semantics); contents are scratch and survive nothing.
class AlignedBuffer {
 public:
  AlignedBuffer() = default;
  ~AlignedBuffer() { release(); }
  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(other.data_), capacity_(other.capacity_) {
    other.data_ = nullptr;
    other.capacity_ = 0;
  }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      release();
      data_ = other.data_;
      capacity_ = other.capacity_;
      other.data_ = nullptr;
      other.capacity_ = 0;
    }
    return *this;
  }
  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  /// Grow capacity to at least `n` doubles (geometric, uninitialized).
  void ensure(std::size_t n) {
    if (n > capacity_) grow(n);
  }
  double* data() { return data_; }
  std::size_t capacity() const { return capacity_; }

 private:
  void grow(std::size_t n);
  void release();

  double* data_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Reusable buffers for batched evaluation. Owned by the caller (one per
/// worker/chunk) so the hot loop never allocates once the buffers have
/// grown to the workload's size.
struct EvalScratch {
  AlignedBuffer stack;              // stack_need padded column slots
  std::vector<double> predictions;  // one prediction per sample
  std::vector<double> residuals;    // trimmed-MAE scratch
  std::string key;                  // structural cache key buffer
};

/// A compiled expression: postfix tape with fused leaf operands.
class Program {
 public:
  Program() = default;

  /// Lower `expr` to a tape. Iterative (explicit stack), so pathologically
  /// deep trees cannot overflow the C stack. Throws std::invalid_argument
  /// if the tree references a variable index outside [0, n_vars) — bad
  /// trees surface here instead of silently evaluating to 0.
  static Program compile(const Expr& expr, std::size_t n_vars);

  /// Stage 1: walk `expr` once (iteratively), validate variable indices
  /// against n_vars, and — when `key` is non-null — serialize the
  /// canonical structural key into it (identical bytes to
  /// structural_key()). After analyze(), size() is valid but the tape is
  /// stale; call emit() before evaluating. This is the cache-hit fast
  /// path: a hit costs one tree walk and one probe, no lowering.
  void analyze(const Expr& expr, std::size_t n_vars,
               std::string* key = nullptr);

  /// Stage 2: lower the nodes collected by the last analyze() into
  /// executable instructions, reusing this program's buffers (no
  /// allocation once capacities are warm).
  void emit();

  /// analyze() + emit(): full lowering in one call.
  void recompile(const Expr& expr, std::size_t n_vars,
                 std::string* key = nullptr);

  /// Node count of the last analyzed/compiled tree. (Fused instructions
  /// cover several nodes each, so this is intentionally *not* the
  /// instruction count — parsimony pressure keys off tree size.)
  std::size_t size() const { return recs_.size(); }
  bool empty() const { return recs_.empty(); }
  /// Peak operand-stack columns of one tape pass (leaf operands are
  /// fused into their consumers and never occupy a column).
  std::size_t stack_need() const { return stack_need_; }
  std::size_t n_constants() const { return constants_.size(); }

  /// Constant pool access for coordinate-descent tuning: `const_node(i)`
  /// is the tree node the pool entry was lowered from (postfix order), so
  /// a tuner can patch tree and tape in lockstep without recompiling.
  double constant(std::size_t pool_index) const {
    return constants_[pool_index];
  }
  void set_constant(std::size_t pool_index, double value) {
    constants_[pool_index] = value;
  }
  const Node* const_node(std::size_t pool_index) const {
    return const_nodes_[pool_index];
  }

  /// Evaluate one sample. Iterative; bit-identical to Expr::eval.
  double eval_scalar(std::span<const double> vars,
                     EvalScratch& scratch) const;

  /// Evaluate every sample in one tape pass, writing predictions[i] for
  /// sample i. One dispatch per instruction; the per-instruction loops
  /// run through the active kernel table (AVX2 when compiled + supported
  /// + enabled, scalar otherwise — see gp/kernels.hpp), streaming over
  /// contiguous stack columns padded to 64-byte-aligned strides. The
  /// final instruction writes straight into `predictions` when it
  /// produces the result column. Bit-identical to Expr::eval under every
  /// kernel table.
  void eval_batch(const SampleMatrix& samples, EvalScratch& scratch) const;

  /// Serialize the structural key into `out` (cleared first): an
  /// instruction-count prefix, then per tree node (postfix order) the op
  /// byte followed by its payload (variable index for kVar, raw constant
  /// bits for kConst). Two expressions get equal keys iff their trees
  /// are structurally identical, which makes the key safe to cache
  /// fitness under — no hash collisions, exact byte equality.
  void structural_key(std::string& out) const;

 private:
  /// One tree node, captured during analyze() so emit() and the key
  /// serializer stream over contiguous memory instead of re-chasing
  /// child pointers.
  struct NodeRec {
    const Node* node;
    Op op;
    std::int32_t var;
    double value;
  };
  /// Where an instruction operand lives.
  enum class Src : std::uint8_t { kStack, kVar, kConst };
  struct Operand {
    Src src;
    std::uint32_t index;  // stack slot / variable column / pool index
  };
  /// A fused instruction: always an operator; leaf arguments are read
  /// through the operand descriptors, results land in stack column dst.
  struct Instr {
    Op op;
    Operand a;
    Operand b;  // unused for unary ops
    std::uint32_t dst;
  };

  void append_key(std::string& out) const;

  std::vector<NodeRec> recs_;        // postfix node records (analyze)
  std::vector<Instr> code_;          // fused instructions (emit)
  Operand result_{Src::kStack, 0};   // where the final value lives
  std::vector<double> constants_;    // constant pool, postfix order
  std::vector<const Node*> const_nodes_;  // pool entry -> source tree node
  std::vector<const Node*> dfs_;     // traversal stack, reused
  std::vector<Operand> vstack_;      // emit-time virtual stack, reused
  std::size_t stack_need_ = 0;
};

/// Bounded, sharded map from structural key to trimmed-MAE fitness,
/// shared by every worker of one infer_formula() run. Lookups compare
/// full keys (never hashes alone), and a cached value is a pure function
/// of (key, dataset), so hit/miss patterns — and therefore thread
/// scheduling and eviction — can never change a result, only how fast it
/// is reached. Eviction is a deterministic epoch clear: a shard that
/// reaches its capacity is emptied before the next insert.
///
/// Storage is an open-addressed slot array per shard (linear probing at
/// ≤ 0.5 load, key hashed once per operation). A slot is one cache line
/// with the key bytes stored inline — a probe never chases a string
/// pointer — and keys longer than the inline capacity (rare, deep
/// trees) fall back to a per-shard overflow pool. Equality is always
/// decided on full key bytes, never the hash alone.
class FitnessCache {
 public:
  explicit FitnessCache(std::size_t capacity = 1 << 15);

  std::optional<double> lookup(const std::string& key);
  void insert(const std::string& key, double fitness);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;
  static constexpr std::size_t kInlineKey = 44;
  struct alignas(64) Slot {
    std::uint64_t hash = 0;  // 0 = empty (hash_key never returns 0)
    double fitness = 0.0;
    std::uint32_t len = 0;   // key byte length; > kInlineKey -> overflow
    char key[kInlineKey] = {};  // inline key bytes, or a u32 overflow index
  };
  struct Shard {
    std::mutex mutex;
    std::vector<Slot> slots;  // power-of-two size, ≥ 2x shard capacity
    std::vector<std::string> overflow;  // keys longer than kInlineKey
    std::size_t count = 0;
  };
  static bool slot_matches(const Shard& shard, const Slot& slot,
                           const std::string& key);
  static std::uint64_t hash_key(const std::string& key);
  Shard& shard_for(std::uint64_t hash) {
    return shards_[(hash >> 56) % kShards];
  }

  std::array<Shard, kShards> shards_;
  std::size_t shard_capacity_;
  std::size_t slot_mask_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace dpr::gp
