#include "gp/scaling.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace dpr::gp {

SeriesScale choose_scale(std::span<const double> values, bool allow_enlarge) {
  if (values.empty()) return {};
  std::vector<double> magnitudes;
  magnitudes.reserve(values.size());
  for (double v : values) magnitudes.push_back(std::abs(v));
  std::sort(magnitudes.begin(), magnitudes.end());
  const double median = magnitudes[magnitudes.size() / 2];

  std::size_t outside_high = 0;
  std::size_t outside_low = 0;
  for (double m : magnitudes) {
    if (m >= 10.0) ++outside_high;
    if (m < 1.0) ++outside_low;
  }
  const std::size_t half = values.size() / 2;

  SeriesScale scale;
  if (outside_high > half && median >= 10.0) {
    // Reduce: divide by the power of ten putting the median into [1,10).
    scale.factor = std::pow(10.0, std::floor(std::log10(median)));
  } else if (allow_enlarge && outside_low > half && median > 0.0 &&
             median < 1.0) {
    // Enlarge: multiply (factor < 1).
    scale.factor = std::pow(10.0, std::floor(std::log10(median)));
  }
  return scale;
}

std::string scaled_symbol(const std::string& symbol, const SeriesScale& s) {
  if (s.identity()) return symbol;
  std::ostringstream out;
  if (s.factor > 1.0) {
    out << symbol << "/" << s.factor;
  } else {
    out << symbol << "*" << 1.0 / s.factor;
  }
  return out.str();
}

}  // namespace dpr::gp
