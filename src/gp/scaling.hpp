#pragma once
// Table 2 pre-processing / post-processing: GP converges best when most
// absolute values of both the operands X and the target Y lie in
// [1.0, 10.0). Each series is scaled by a power of ten before inference,
// and the factor is substituted back into the reported formula afterwards
// ("Replace(Y', Y/10^3)" etc.).

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace dpr::gp {

struct SeriesScale {
  double factor = 1.0;  // scaled = raw / factor

  bool identity() const { return factor == 1.0; }
};

/// Choose the Table-2 factor: if more than half of the absolute values
/// fall outside [1, 10), scale by the power of ten that moves the median
/// magnitude into that band. X series (integers >= 0) are only ever
/// reduced; Y series can be reduced or enlarged.
SeriesScale choose_scale(std::span<const double> values, bool allow_enlarge);

/// Render the substituted variable, e.g. "X0/100" or "Y*1000".
std::string scaled_symbol(const std::string& symbol, const SeriesScale& s);

}  // namespace dpr::gp
