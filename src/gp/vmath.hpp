#pragma once
// The GP function set's own log/sin/cos/tan.
//
// No vector libm matches glibc bit for bit, so routing kLog/kSin/kCos/
// kTan through std:: calls forced every kernel table to run them one
// scalar lane at a time — and they dominate tape runtime (a single
// scalar log costs ~8x a whole vectorized add column). Instead the
// function set defines these four operators as a fixed sequence of
// correctly-rounded IEEE operations (fdlibm-style polynomial cores,
// Cody-Waite pi/2 reduction, branch-free quadrant selection). The
// scalar definitions below ARE the specification; kernels_avx2.cpp
// mirrors them operation for operation with masked blends. Because
// every step is correctly rounded per lane and contraction is off in
// the vector TU, scalar and vector disagree in no lane — the tree
// walker, scalar tape, and SIMD tape all produce identical bits.
//
// Accuracy (vs true math): log within ~1 ulp on [1e-9, inf); sin/cos/
// tan use a two-term reduction, good to ~1e-15 absolute for |x| up to
// ~1e6 and degrading — deterministically — for astronomically large
// arguments, which GP fitness treats as noise anyway. These are GP
// operator semantics, not a libm replacement.

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

namespace dpr::gp {

namespace vmath {

// log core: atanh series on s = f/(2+f) (fdlibm e_log.c coefficients).
inline constexpr double kLg1 = 6.666666666666735130e-01;
inline constexpr double kLg2 = 3.999999999940941908e-01;
inline constexpr double kLg3 = 2.857142874366239149e-01;
inline constexpr double kLg4 = 2.222219843214978396e-01;
inline constexpr double kLg5 = 1.818357216161805012e-01;
inline constexpr double kLg6 = 1.531383769920937332e-01;
inline constexpr double kLg7 = 1.479819860511658591e-01;
inline constexpr double kLn2Hi = 6.93147180369123816490e-01;
inline constexpr double kLn2Lo = 1.90821492927058770002e-10;
inline constexpr double kSqrt2 = 1.41421356237309514547e+00;
// 2^52 + 1023: subtracting it from (exponent bits | 2^52-magic) turns a
// biased exponent into an unbiased double in one exact operation.
inline constexpr double kExpMagic = 4503599627371519.0;

// sin/cos polynomial cores (fdlibm k_sin.c / k_cos.c coefficients).
inline constexpr double kS1 = -1.66666666666666324348e-01;
inline constexpr double kS2 = 8.33333333332248946124e-03;
inline constexpr double kS3 = -1.98412698298579493134e-04;
inline constexpr double kS4 = 2.75573137070700676789e-06;
inline constexpr double kS5 = -2.50507602534068634195e-08;
inline constexpr double kS6 = 1.58969099521155010221e-10;
inline constexpr double kC1 = 4.16666666666666019037e-02;
inline constexpr double kC2 = -1.38888888888741095749e-03;
inline constexpr double kC3 = 2.48015872894767294178e-05;
inline constexpr double kC4 = -2.75573143513906633035e-07;
inline constexpr double kC5 = 2.08757232129817482790e-09;
inline constexpr double kC6 = -1.13596475577881948265e-11;

// Two-term Cody-Waite pi/2 (fdlibm pio2_1 / pio2_1t) and 2/pi.
inline constexpr double kInvPio2 = 6.36619772367581382433e-01;
inline constexpr double kPio2Hi = 1.57079632673412561417e+00;
inline constexpr double kPio2Lo = 6.07710050650619224932e-11;

/// sin(r) for a reduced |r| <= pi/4 (NaN/garbage r propagates).
inline double sin_poly(double r) {
  const double z = r * r;
  const double p = kS2 + z * (kS3 + z * (kS4 + z * (kS5 + z * kS6)));
  return r + (z * r) * (kS1 + z * p);
}

/// cos(r) for a reduced |r| <= pi/4 (NaN/garbage r propagates).
inline double cos_poly(double r) {
  const double z = r * r;
  const double p =
      kC1 + z * (kC2 + z * (kC3 + z * (kC4 + z * (kC5 + z * kC6))));
  return (1.0 - 0.5 * z) + (z * z) * p;
}

/// Reduce x to r with x = r + q*(pi/2), |r| <= ~pi/4, and qf = q mod 4
/// as a double in {0,1,2,3}. Non-finite x yields NaN r and NaN qf (every
/// qf comparison then misses, so callers fall through to their default
/// lane value — which is itself NaN). The qf arithmetic is exact for
/// every finite n: n*0.25 is a power-of-two scale, floor is exact, and
/// the final subtraction of two nearby integers is exact.
inline void reduce_pio2(double x, double& r, double& qf) {
  const double n = std::nearbyint(x * kInvPio2);  // ties-to-even, like
                                                  // _mm256_round_pd
  const double r1 = x - n * kPio2Hi;
  r = r1 - n * kPio2Lo;
  const double j = n * 0.25;
  qf = n - 4.0 * std::floor(j);
}

}  // namespace vmath

/// Protected log: log(|x|), 0 when |x| < 1e-9 (so the core never sees
/// zero or a subnormal), +inf at +-inf, NaN propagated with the sign
/// bit cleared.
inline double vm_log(double x) {
  const double v = std::abs(x);
  if (v < 1e-9) return 0.0;
  // Split v = m * 2^e with m in [1,2); exponent via the 2^52 magic-bias
  // trick because the vector ISA has no int64->double convert and the
  // scalar spec must take the identical route.
  const std::uint64_t u = std::bit_cast<std::uint64_t>(v);
  const std::uint64_t ebits = u >> 52;  // sign bit is clear, no mask
  double m = std::bit_cast<double>((u & 0x000FFFFFFFFFFFFFull) |
                                   0x3FF0000000000000ull);
  double e = std::bit_cast<double>(ebits | 0x4330000000000000ull) -
             vmath::kExpMagic;
  // Fold m into [sqrt2/2, sqrt2] so f = m-1 stays small.
  const bool fold = m > vmath::kSqrt2;
  m = fold ? m * 0.5 : m;
  e = fold ? e + 1.0 : e;
  const double f = m - 1.0;
  const double s = f / (2.0 + f);
  const double z = s * s;
  const double w = z * z;
  const double t1 = w * (vmath::kLg2 + w * (vmath::kLg4 + w * vmath::kLg6));
  const double t2 =
      z * (vmath::kLg1 +
           w * (vmath::kLg3 + w * (vmath::kLg5 + w * vmath::kLg7)));
  const double big_r = t2 + t1;
  const double hfsq = 0.5 * f * f;
  double r = e * vmath::kLn2Hi -
             ((hfsq - (s * (hfsq + big_r) + e * vmath::kLn2Lo)) - f);
  // The mantissa-splitting core maps inf/NaN to finite garbage; restore
  // them in the same blend order the vector kernel uses.
  r = (v == std::numeric_limits<double>::infinity()) ? v : r;
  r = (v != v) ? v : r;
  return r;
}

inline double vm_sin(double x) {
  double r, qf;
  vmath::reduce_pio2(x, r, qf);
  const double s = vmath::sin_poly(r);
  const double c = vmath::cos_poly(r);
  double v = s;
  v = (qf == 1.0) ? c : v;
  v = (qf == 2.0) ? -s : v;
  v = (qf == 3.0) ? -c : v;
  return v;
}

inline double vm_cos(double x) {
  double r, qf;
  vmath::reduce_pio2(x, r, qf);
  const double s = vmath::sin_poly(r);
  const double c = vmath::cos_poly(r);
  double v = c;
  v = (qf == 1.0) ? -s : v;
  v = (qf == 2.0) ? -c : v;
  v = (qf == 3.0) ? s : v;
  return v;
}

/// tan clamped to [-1e6, 1e6] (the function set's historical clamp);
/// computed as sin/cos off one shared reduction, with the odd quadrants
/// folded into the operands so there is a single division.
inline double vm_tan(double x) {
  double r, qf;
  vmath::reduce_pio2(x, r, qf);
  const double s = vmath::sin_poly(r);
  const double c = vmath::cos_poly(r);
  const bool odd = (qf == 1.0) || (qf == 3.0);
  const double num = odd ? -c : s;
  const double den = odd ? s : c;
  double v = num / den;
  v = (v < -1e6) ? -1e6 : v;
  v = (v > 1e6) ? 1e6 : v;
  return v;
}

}  // namespace dpr::gp
