#include "isotp/endpoint.hpp"

#include <stdexcept>

namespace dpr::isotp {

Endpoint::Endpoint(can::CanBus& bus, EndpointConfig config)
    : bus_(bus), config_(config) {
  // Exact-id subscription: the bus only routes rx_id frames here. The
  // id check stays — it also compares the extended flag, which the
  // value-based filter does not, and it keeps the legacy full-fan-out
  // path equivalent.
  bus_.attach(
      [this](const can::CanFrame& frame, util::SimTime) {
        if (frame.id() == config_.rx_id) on_frame(frame);
      },
      can::IdFilter::exact(config_.rx_id));
}

void Endpoint::send(std::span<const std::uint8_t> payload) {
  if (tx_.active) {
    if (config_.stall_policy == StallPolicy::kThrow) {
      throw std::logic_error("ISO-TP send while previous message in flight");
    }
    if (tx_.awaiting_fc && bus_.clock().now() >= tx_.fc_deadline) {
      // The peer's flow control never arrived (N_Bs expired): reap the
      // stale transfer so this transaction can proceed.
      ++stats_.tx_aborted;
      tx_ = TxState{};
    } else {
      // Still legitimately in flight; refuse and let the transaction
      // layer retry after its own timeout.
      ++stats_.tx_rejected;
      return;
    }
  }
  if (payload.empty() || payload.size() > kMaxMessageLength) {
    throw std::invalid_argument("ISO-TP payload must be 1..4095 bytes");
  }
  if (payload.size() <= kMaxSingleFramePayload) {
    bus_.send(encode_single(config_.tx_id, payload, config_.pad_frames));
    ++stats_.messages_sent;
    return;
  }
  tx_.active = true;
  tx_.awaiting_fc = true;
  tx_.payload.assign(payload.begin(), payload.end());
  tx_.offset = 6;
  tx_.sequence = 1;
  tx_.frames_in_block = 0;
  tx_.fc_deadline = bus_.clock().now() + config_.n_bs_timeout;
  bus_.send(encode_first(config_.tx_id, payload));
}

void Endpoint::handle_flow_control(const FlowControl& fc) {
  if (!tx_.active) return;
  switch (fc.status) {
    case FlowStatus::kOverflow:
      ++stats_.overflows;
      tx_ = TxState{};
      return;
    case FlowStatus::kWait:
      ++stats_.fc_wait_received;
      tx_.awaiting_fc = true;
      tx_.fc_deadline = bus_.clock().now() + config_.n_bs_timeout;
      return;
    case FlowStatus::kContinueToSend:
      tx_.awaiting_fc = false;
      tx_.block_size = fc.block_size;
      tx_.st_min_ms = fc.st_min;
      tx_.frames_in_block = 0;
      stream_block();
      return;
  }
}

void Endpoint::stream_block() {
  while (tx_.active && !tx_.awaiting_fc && tx_.offset < tx_.payload.size()) {
    // STmin pacing: the bus clock advances by the mandated gap before each
    // consecutive frame is queued.
    if (tx_.st_min_ms != 0 && tx_.st_min_ms <= 0x7F) {
      bus_.clock().advance(static_cast<util::SimTime>(tx_.st_min_ms) *
                           util::kMillisecond);
    }
    bus_.send(encode_consecutive(config_.tx_id, tx_.payload, tx_.offset,
                                 tx_.sequence, config_.pad_frames));
    tx_.offset += 7;
    tx_.sequence = static_cast<std::uint8_t>((tx_.sequence + 1) & 0x0F);
    if (tx_.block_size != 0 && ++tx_.frames_in_block >= tx_.block_size) {
      tx_.awaiting_fc = true;  // peer must re-authorize with another FC
      tx_.fc_deadline = bus_.clock().now() + config_.n_bs_timeout;
    }
  }
  if (tx_.offset >= tx_.payload.size()) {
    tx_ = TxState{};
    ++stats_.messages_sent;
  }
}

void Endpoint::on_frame(const can::CanFrame& frame) {
  const auto type = classify(frame);
  if (!type) return;

  switch (*type) {
    case FrameType::kFlowControl: {
      if (auto fc = decode_flow_control(frame)) handle_flow_control(*fc);
      return;
    }
    case FrameType::kSingle: {
      if (auto payload = decode_single(frame)) {
        ++stats_.messages_received;
        if (handler_) handler_(*payload);
      }
      return;
    }
    case FrameType::kFirst: {
      auto info = decode_first(frame);
      if (!info) return;
      if (info->total_length > config_.max_rx_length) {
        ++stats_.overflows;
        bus_.send(encode_flow_control(
            config_.tx_id, FlowControl{FlowStatus::kOverflow, 0, 0},
            config_.pad_frames));
        ++stats_.fc_sent;
        return;
      }
      rx_.active = true;
      rx_.total_length = info->total_length;
      rx_.buffer = std::move(info->initial_payload);
      rx_.next_sequence = 1;
      rx_.frames_since_fc = 0;
      bus_.send(encode_flow_control(
          config_.tx_id,
          FlowControl{FlowStatus::kContinueToSend, config_.block_size,
                      config_.st_min_ms},
          config_.pad_frames));
      ++stats_.fc_sent;
      return;
    }
    case FrameType::kConsecutive: {
      if (!rx_.active) return;
      auto info = decode_consecutive(frame);
      if (!info) return;
      if (info->sequence != rx_.next_sequence) {
        // A retransmitted copy of the CF we just consumed is harmless —
        // ignore it instead of tearing the transfer down.
        const std::uint8_t prev_sequence =
            static_cast<std::uint8_t>((rx_.next_sequence + 15) & 0x0F);
        if (rx_.any_cf && info->sequence == prev_sequence) {
          ++stats_.duplicate_frames;
          return;
        }
        ++stats_.sequence_errors;
        rx_ = RxState{};
        return;
      }
      rx_.any_cf = true;
      rx_.next_sequence =
          static_cast<std::uint8_t>((rx_.next_sequence + 1) & 0x0F);
      const std::size_t remaining = rx_.total_length - rx_.buffer.size();
      const std::size_t take = std::min(remaining, info->payload.size());
      rx_.buffer.insert(
          rx_.buffer.end(), info->payload.begin(),
          info->payload.begin() + static_cast<std::ptrdiff_t>(take));
      if (rx_.buffer.size() >= rx_.total_length) {
        util::Bytes message = std::move(rx_.buffer);
        rx_ = RxState{};
        ++stats_.messages_received;
        if (handler_) handler_(message);
        return;
      }
      if (config_.block_size != 0 &&
          ++rx_.frames_since_fc >= config_.block_size) {
        rx_.frames_since_fc = 0;
        bus_.send(encode_flow_control(
            config_.tx_id,
            FlowControl{FlowStatus::kContinueToSend, config_.block_size,
                        config_.st_min_ms},
            config_.pad_frames));
        ++stats_.fc_sent;
      }
      return;
    }
  }
}

}  // namespace dpr::isotp
