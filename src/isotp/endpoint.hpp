#pragma once
// Active ISO-TP endpoint: participates in the flow-control handshake.
//
// The diagnostic tool and every ECU own one Endpoint each. An endpoint is
// bound to a (tx id, rx id) pair on a shared CanBus: it segments outgoing
// messages, waits for the peer's flow control before streaming consecutive
// frames (honoring block size and STmin), answers incoming first frames
// with flow control, and reassembles incoming messages.

#include <functional>
#include <string>

#include "can/bus.hpp"
#include "isotp/isotp.hpp"
#include "util/hex.hpp"
#include "util/link.hpp"

namespace dpr::isotp {

/// Invoked with each fully reassembled incoming message.
using MessageHandler = util::MessageLink::Handler;

/// What send() does when a previous segmented send is still waiting for
/// flow control that never arrived (e.g. the FC frame was dropped).
enum class StallPolicy {
  kThrow,       ///< legacy: logic_error — a stuck tx is a programming bug
  kAbortStale,  ///< abort the stale tx once N_Bs expired; reject otherwise
};

struct EndpointConfig {
  can::CanId tx_id;        // id this endpoint transmits on
  can::CanId rx_id;        // id this endpoint listens to
  std::uint8_t block_size = 8;   // advertised in our FC frames
  std::uint8_t st_min_ms = 0;    // advertised separation time
  std::size_t max_rx_length = kMaxMessageLength;  // overflow above this
  bool pad_frames = true;
  StallPolicy stall_policy = StallPolicy::kThrow;
  /// N_Bs: how long a segmented send may wait for the peer's FC before a
  /// later send() may abort it (only with StallPolicy::kAbortStale).
  util::SimTime n_bs_timeout = util::kSecond;
};

class Endpoint : public util::MessageLink {
 public:
  Endpoint(can::CanBus& bus, EndpointConfig config);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  void set_message_handler(MessageHandler handler) override {
    handler_ = std::move(handler);
  }

  /// Queue a message for transmission. Single-frame messages go out
  /// immediately; longer messages emit FF and then stream CFs as flow
  /// control arrives. Throws if a previous send is still in flight.
  void send(std::span<const std::uint8_t> payload) override;

  bool send_in_progress() const { return tx_.active; }

  struct Stats {
    std::size_t messages_sent = 0;
    std::size_t messages_received = 0;
    std::size_t fc_sent = 0;
    std::size_t fc_wait_received = 0;
    std::size_t overflows = 0;
    std::size_t sequence_errors = 0;
    std::size_t duplicate_frames = 0;  // retransmitted CFs ignored
    std::size_t tx_aborted = 0;        // stale sends reaped after N_Bs
    std::size_t tx_rejected = 0;       // sends refused while tx in flight
  };
  const Stats& stats() const { return stats_; }

 private:
  void on_frame(const can::CanFrame& frame);
  void handle_flow_control(const FlowControl& fc);
  void stream_block();

  can::CanBus& bus_;
  EndpointConfig config_;
  MessageHandler handler_;
  Stats stats_;

  // Transmit state.
  struct TxState {
    bool active = false;
    bool awaiting_fc = false;
    util::Bytes payload;
    std::size_t offset = 0;
    std::uint8_t sequence = 1;
    std::uint8_t block_size = 0;     // from peer FC; 0 = unlimited
    std::uint8_t st_min_ms = 0;      // from peer FC
    std::size_t frames_in_block = 0;
    util::SimTime fc_deadline = 0;   // N_Bs expiry while awaiting FC
  } tx_;

  // Receive state.
  struct RxState {
    bool active = false;
    std::size_t total_length = 0;
    std::uint8_t next_sequence = 1;
    std::size_t frames_since_fc = 0;
    bool any_cf = false;  // a retransmitted CF is only recognizable after 1
    util::Bytes buffer;
  } rx_;
};

}  // namespace dpr::isotp
