#include "isotp/isotp.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpr::isotp {

std::optional<FrameType> classify(const can::CanFrame& frame) {
  if (frame.dlc() == 0) return std::nullopt;
  const std::uint8_t pci = frame.byte(0) >> 4;
  if (pci > 0x3) return std::nullopt;
  return static_cast<FrameType>(pci);
}

can::CanFrame encode_single(can::CanId id,
                            std::span<const std::uint8_t> payload,
                            bool pad) {
  if (payload.size() > kMaxSingleFramePayload) {
    throw std::invalid_argument("single frame payload exceeds 7 bytes");
  }
  util::Bytes data;
  data.push_back(static_cast<std::uint8_t>(payload.size()));
  data.insert(data.end(), payload.begin(), payload.end());
  can::CanFrame frame(id, data);
  if (pad) frame.pad_to_8();
  return frame;
}

can::CanFrame encode_first(can::CanId id,
                           std::span<const std::uint8_t> payload) {
  if (payload.size() <= kMaxSingleFramePayload ||
      payload.size() > kMaxMessageLength) {
    throw std::invalid_argument("first frame requires payload of 8..4095");
  }
  util::Bytes data;
  data.push_back(static_cast<std::uint8_t>(0x10 | (payload.size() >> 8)));
  data.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
  data.insert(data.end(), payload.begin(), payload.begin() + 6);
  return can::CanFrame(id, data);
}

can::CanFrame encode_consecutive(can::CanId id,
                                 std::span<const std::uint8_t> payload,
                                 std::size_t offset, std::uint8_t sequence,
                                 bool pad) {
  if (offset >= payload.size()) {
    throw std::invalid_argument("consecutive frame offset past payload end");
  }
  util::Bytes data;
  data.push_back(static_cast<std::uint8_t>(0x20 | (sequence & 0x0F)));
  const std::size_t n = std::min<std::size_t>(7, payload.size() - offset);
  data.insert(data.end(), payload.begin() + static_cast<std::ptrdiff_t>(offset),
              payload.begin() + static_cast<std::ptrdiff_t>(offset + n));
  can::CanFrame frame(id, data);
  if (pad) frame.pad_to_8();
  return frame;
}

can::CanFrame encode_flow_control(can::CanId id, const FlowControl& fc,
                                  bool pad) {
  util::Bytes data{
      static_cast<std::uint8_t>(0x30 | static_cast<std::uint8_t>(fc.status)),
      fc.block_size, fc.st_min};
  can::CanFrame frame(id, data);
  if (pad) frame.pad_to_8();
  return frame;
}

std::optional<util::Bytes> decode_single(const can::CanFrame& frame) {
  if (classify(frame) != FrameType::kSingle) return std::nullopt;
  const std::size_t len = frame.byte(0) & 0x0F;
  if (len == 0 || len > kMaxSingleFramePayload || len + 1 > frame.dlc()) {
    return std::nullopt;
  }
  auto data = frame.data();
  return util::Bytes(data.begin() + 1, data.begin() + 1 + len);
}

std::optional<FirstFrameInfo> decode_first(const can::CanFrame& frame) {
  if (classify(frame) != FrameType::kFirst) return std::nullopt;
  // A classical-CAN FF is 8 bytes, but extended-addressed variants (BMW,
  // §3.2) yield 7-byte inner slices after the address byte is stripped.
  if (frame.dlc() < 3) return std::nullopt;
  FirstFrameInfo info;
  info.total_length =
      (static_cast<std::size_t>(frame.byte(0) & 0x0F) << 8) | frame.byte(1);
  // Standard ISO-TP first frames carry > 7 bytes; the BMW extended-
  // addressing variant (§3.2) segments from 7 bytes up, since its single
  // frames hold at most 6. Accept both.
  if (info.total_length < 7) return std::nullopt;
  auto data = frame.data();
  info.initial_payload.assign(data.begin() + 2, data.end());
  return info;
}

std::optional<ConsecutiveFrameInfo> decode_consecutive(
    const can::CanFrame& frame) {
  if (classify(frame) != FrameType::kConsecutive) return std::nullopt;
  if (frame.dlc() < 2) return std::nullopt;
  ConsecutiveFrameInfo info;
  info.sequence = frame.byte(0) & 0x0F;
  auto data = frame.data();
  info.payload.assign(data.begin() + 1, data.end());
  return info;
}

std::optional<FlowControl> decode_flow_control(const can::CanFrame& frame) {
  if (classify(frame) != FrameType::kFlowControl) return std::nullopt;
  if (frame.dlc() < 3) return std::nullopt;
  const std::uint8_t status = frame.byte(0) & 0x0F;
  if (status > 0x2) return std::nullopt;
  return FlowControl{static_cast<FlowStatus>(status), frame.byte(1),
                     frame.byte(2)};
}

std::vector<can::CanFrame> segment_message(
    can::CanId id, std::span<const std::uint8_t> payload, bool pad) {
  std::vector<can::CanFrame> frames;
  if (payload.size() <= kMaxSingleFramePayload) {
    frames.push_back(encode_single(id, payload, pad));
    return frames;
  }
  frames.push_back(encode_first(id, payload));
  std::uint8_t sequence = 1;
  for (std::size_t offset = 6; offset < payload.size(); offset += 7) {
    frames.push_back(encode_consecutive(id, payload, offset, sequence, pad));
    sequence = static_cast<std::uint8_t>((sequence + 1) & 0x0F);
  }
  return frames;
}

void Reassembler::fail(Error e) {
  last_error_ = e;
  ++error_count_;
  expecting_ = false;
  any_consecutive_ = false;
  buffer_.clear();
}

void Reassembler::reset() {
  expecting_ = false;
  total_length_ = 0;
  next_sequence_ = 0;
  any_consecutive_ = false;
  buffer_.clear();
  last_error_ = Error::kNone;
}

std::optional<util::Bytes> Reassembler::feed(const can::CanFrame& frame) {
  const auto type = classify(frame);
  if (!type) return std::nullopt;

  switch (*type) {
    case FrameType::kSingle: {
      if (expecting_) fail(Error::kInterruptedFirstFrame);
      return decode_single(frame);
    }
    case FrameType::kFirst: {
      if (expecting_) fail(Error::kInterruptedFirstFrame);
      auto info = decode_first(frame);
      if (!info) return std::nullopt;
      expecting_ = true;
      total_length_ = info->total_length;
      buffer_ = std::move(info->initial_payload);
      next_sequence_ = 1;
      any_consecutive_ = false;
      return std::nullopt;
    }
    case FrameType::kConsecutive: {
      auto info = decode_consecutive(frame);
      if (!info) return std::nullopt;
      // Tolerate a retransmitted copy of the CF just consumed (a bus
      // duplicating frames must not cost the sniffer the message); this
      // also covers a duplicated final CF arriving after completion.
      const std::uint8_t prev_sequence =
          static_cast<std::uint8_t>((next_sequence_ + 15) & 0x0F);
      if (any_consecutive_ && info->sequence == prev_sequence) {
        ++duplicate_frames_;
        return std::nullopt;
      }
      if (!expecting_) {
        fail(Error::kUnexpectedConsecutive);
        return std::nullopt;
      }
      if (info->sequence != next_sequence_) {
        fail(Error::kSequenceMismatch);
        return std::nullopt;
      }
      any_consecutive_ = true;
      next_sequence_ = static_cast<std::uint8_t>((next_sequence_ + 1) & 0x0F);
      const std::size_t remaining = total_length_ - buffer_.size();
      const std::size_t take = std::min(remaining, info->payload.size());
      buffer_.insert(buffer_.end(), info->payload.begin(),
                     info->payload.begin() + static_cast<std::ptrdiff_t>(take));
      if (buffer_.size() >= total_length_) {
        expecting_ = false;
        return std::move(buffer_);
      }
      return std::nullopt;
    }
    case FrameType::kFlowControl:
      // Passive observer: FC frames carry no payload (§3.2 step 1 drops
      // them before assembly).
      return std::nullopt;
  }
  return std::nullopt;
}

}  // namespace dpr::isotp
