#pragma once
// ISO 15765-2 (ISO-TP) framing: single frames, first frames, consecutive
// frames and flow-control frames (Fig. 7 of the paper).
//
// This header provides the *stateless* pieces: frame classification,
// encoding of each frame type, message segmentation, and a passive
// Reassembler that rebuilds long messages from a frame stream. The active
// endpoint (which participates in the flow-control handshake) lives in
// endpoint.hpp.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "can/frame.hpp"
#include "util/hex.hpp"

namespace dpr::isotp {

/// Protocol control information (high nibble of byte 0).
enum class FrameType : std::uint8_t {
  kSingle = 0x0,
  kFirst = 0x1,
  kConsecutive = 0x2,
  kFlowControl = 0x3,
};

/// Flow-control status (low nibble of byte 0 of an FC frame).
enum class FlowStatus : std::uint8_t {
  kContinueToSend = 0x0,
  kWait = 0x1,
  kOverflow = 0x2,
};

struct FlowControl {
  FlowStatus status = FlowStatus::kContinueToSend;
  std::uint8_t block_size = 0;  // 0 = no further FC required
  std::uint8_t st_min = 0;      // ms (values <= 0x7F)
};

/// Largest payload that fits a single frame on classical CAN.
constexpr std::size_t kMaxSingleFramePayload = 7;
/// Largest message ISO-TP can carry with a 12-bit FF length field.
constexpr std::size_t kMaxMessageLength = 4095;

/// Classify a CAN frame by its PCI nibble. Returns nullopt for frames that
/// cannot be ISO-TP (empty payload or reserved PCI).
std::optional<FrameType> classify(const can::CanFrame& frame);

/// --- Frame encoders -----------------------------------------------------

can::CanFrame encode_single(can::CanId id,
                            std::span<const std::uint8_t> payload,
                            bool pad = true);

/// First frame of a segmented message; copies the first 6 payload bytes.
can::CanFrame encode_first(can::CanId id,
                           std::span<const std::uint8_t> payload);

/// Consecutive frame carrying up to 7 bytes starting at `offset`;
/// `sequence` is the 4-bit sequence number (1..15 wrapping to 0).
can::CanFrame encode_consecutive(can::CanId id,
                                 std::span<const std::uint8_t> payload,
                                 std::size_t offset, std::uint8_t sequence,
                                 bool pad = true);

can::CanFrame encode_flow_control(can::CanId id, const FlowControl& fc,
                                  bool pad = true);

/// --- Frame decoders -----------------------------------------------------

/// Payload of a single frame (nullopt if malformed).
std::optional<util::Bytes> decode_single(const can::CanFrame& frame);

struct FirstFrameInfo {
  std::size_t total_length = 0;
  util::Bytes initial_payload;  // the first 6 bytes
};
std::optional<FirstFrameInfo> decode_first(const can::CanFrame& frame);

struct ConsecutiveFrameInfo {
  std::uint8_t sequence = 0;
  util::Bytes payload;  // up to 7 bytes (may include padding at the tail)
};
std::optional<ConsecutiveFrameInfo> decode_consecutive(
    const can::CanFrame& frame);

std::optional<FlowControl> decode_flow_control(const can::CanFrame& frame);

/// Segment `payload` into the frame sequence a sender transmits (SF, or
/// FF followed by CFs). Flow-control pacing is the endpoint's concern.
std::vector<can::CanFrame> segment_message(
    can::CanId id, std::span<const std::uint8_t> payload, bool pad = true);

/// --- Passive reassembly --------------------------------------------------
//
// Rebuilds messages from an observed frame stream for one direction (one
// CAN id). This is exactly what the frames-analysis module does with
// sniffed traffic: it never sends FC frames, it only watches (§3.2 step 2).

class Reassembler {
 public:
  enum class Error {
    kNone,
    kUnexpectedConsecutive,   // CF with no FF in progress
    kSequenceMismatch,        // CF sequence number out of order
    kInterruptedFirstFrame,   // new SF/FF while a message was in progress
  };

  /// Feed one frame; returns a completed message payload when the frame
  /// finishes a message (single frames complete immediately).
  std::optional<util::Bytes> feed(const can::CanFrame& frame);

  bool in_progress() const { return expecting_; }
  Error last_error() const { return last_error_; }
  std::size_t errors() const { return error_count_; }
  /// Retransmitted copies of the just-consumed CF, ignored without error.
  std::size_t duplicate_frames() const { return duplicate_frames_; }
  void reset();

 private:
  bool expecting_ = false;
  std::size_t total_length_ = 0;
  std::uint8_t next_sequence_ = 0;
  bool any_consecutive_ = false;
  std::size_t duplicate_frames_ = 0;
  util::Bytes buffer_;
  Error last_error_ = Error::kNone;
  std::size_t error_count_ = 0;

  void fail(Error e);
};

}  // namespace dpr::isotp
