#include "kline/bus.hpp"

#include <algorithm>

namespace dpr::kline {

KLineBus::KLineBus(util::SimClock& clock, std::uint32_t baud)
    : clock_(clock), baud_(baud) {}

void KLineBus::attach(ByteListener listener) {
  listeners_.push_back(std::move(listener));
}

void KLineBus::attach_wakeup(WakeupListener listener) {
  wakeup_listeners_.push_back(std::move(listener));
}

void KLineBus::send(const std::vector<std::uint8_t>& bytes) {
  for (std::uint8_t b : bytes) send_byte(b);
}

void KLineBus::send_byte(std::uint8_t byte) {
  queue_.push_back(Item{false, Wakeup::kFastInit, byte});
}

void KLineBus::send_wakeup(Wakeup kind) {
  queue_.push_back(Item{true, kind, 0});
}

void KLineBus::set_faults(const util::FaultPlan& plan,
                          util::CounterRng stream) {
  injector_.emplace(plan, stream);
}

util::SimTime KLineBus::byte_time() const {
  // 10 UART bits per byte.
  return static_cast<util::SimTime>(10.0 / static_cast<double>(baud_) *
                                    static_cast<double>(util::kSecond));
}

std::size_t KLineBus::deliver_pending() {
  std::size_t delivered = 0;
  while (!queue_.empty()) {
    const Item item = queue_.front();
    queue_.pop_front();
    if (item.is_wakeup) {
      // Fast init: 25 ms low + 25 ms high. 5-baud init: 8 address bits
      // at 5 bit/s plus start/stop = 2 s.
      clock_.advance(item.wakeup == Wakeup::kFastInit
                         ? 50 * util::kMillisecond
                         : 2 * util::kSecond);
      for (const auto& listener : wakeup_listeners_) {
        listener(item.wakeup, clock_.now());
      }
      continue;
    }
    std::uint8_t byte = item.byte;
    std::size_t copies = 1;
    if (injector_ && injector_->enabled()) {
      // Same SIMD-batched window pre-compute as can::CanBus — K-Line and
      // CAN share one decide_batch implementation (no-op while the
      // prefetched window still covers the cursor).
      injector_->prefetch(
          std::min(queue_.size() + 1, util::FaultInjector::kPrefetchMax));
      const auto decision = injector_->decide(clock_.now());
      if (decision.drop) {
        // The byte still occupied the line before being lost.
        clock_.advance(byte_time());
        continue;
      }
      if (decision.extra_delay > 0) clock_.advance(decision.extra_delay);
      if (decision.corrupt) {
        byte ^= static_cast<std::uint8_t>(1u << (decision.corrupt_bit % 8));
      }
      if (decision.duplicate) copies = 2;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      clock_.advance(byte_time());
      // P4 inter-byte spacing (tester side) is folded into the byte time.
      for (const auto& listener : listeners_) {
        listener(byte, clock_.now());
      }
      ++delivered;
    }
  }
  return delivered;
}

}  // namespace dpr::kline
