#pragma once
// K-Line physical layer (ISO 14230-1 / ISO 9141-2): a single-wire,
// byte-oriented serial bus at 10.4 kbaud. KWP 2000's original carrier
// (Table 1) — older vehicles speak KWP over K-Line rather than CAN.
//
// The model mirrors can::CanBus: single-threaded, deterministic, shared
// SimClock; each transmitted byte advances time by its UART frame time.

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "util/clock.hpp"
#include "util/fault.hpp"

namespace dpr::kline {

/// Receives every byte on the wire with its completion timestamp.
using ByteListener = std::function<void(std::uint8_t, util::SimTime)>;

/// A wakeup pattern (fast init / 5-baud init) observed on the line.
enum class Wakeup { kFastInit, kFiveBaudInit };
using WakeupListener = std::function<void(Wakeup, util::SimTime)>;

class KLineBus {
 public:
  explicit KLineBus(util::SimClock& clock, std::uint32_t baud = 10'400);

  void attach(ByteListener listener);
  void attach_wakeup(WakeupListener listener);

  /// Queue bytes for transmission (the line is half duplex; bytes are
  /// delivered strictly in queue order).
  void send(const std::vector<std::uint8_t>& bytes);
  void send_byte(std::uint8_t byte);

  /// Issue a wakeup pattern. Fast init holds the line low 25 ms and high
  /// 25 ms (ISO 14230-2); 5-baud init clocks the target address out at
  /// 5 bit/s (~2 s). Time advances accordingly on delivery.
  void send_wakeup(Wakeup kind);

  /// Deliver everything queued; returns bytes delivered.
  std::size_t deliver_pending();

  bool idle() const { return queue_.empty(); }
  util::SimClock& clock() { return clock_; }

  /// Install a fault injector consulted once per data byte in delivery
  /// order (wakeup patterns are never faulted — they model line levels,
  /// not payload); byte n draws from event n of the counter stream.
  /// Without an injector delivery is lossless.
  void set_faults(const util::FaultPlan& plan, util::CounterRng stream);
  void clear_faults() { injector_.reset(); }

  /// Accumulated fault counters, or nullptr when no injector is installed.
  const util::FaultStats* fault_stats() const {
    return injector_ ? &injector_->stats() : nullptr;
  }

  /// UART frame time for one byte (start + 8 data + stop bits).
  util::SimTime byte_time() const;

 private:
  struct Item {
    bool is_wakeup = false;
    Wakeup wakeup = Wakeup::kFastInit;
    std::uint8_t byte = 0;
  };

  util::SimClock& clock_;
  std::uint32_t baud_;
  std::vector<ByteListener> listeners_;
  std::vector<WakeupListener> wakeup_listeners_;
  std::deque<Item> queue_;
  std::optional<util::FaultInjector> injector_;
};

}  // namespace dpr::kline
