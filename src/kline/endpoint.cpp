#include "kline/endpoint.hpp"

namespace dpr::kline {

Endpoint::Endpoint(KLineBus& bus, EndpointConfig config)
    : bus_(bus), config_(config) {
  bus_.attach([this](std::uint8_t byte, util::SimTime) { on_byte(byte); });
  bus_.attach_wakeup([this](Wakeup kind, util::SimTime) { on_wakeup(kind); });
}

void Endpoint::on_wakeup(Wakeup) {
  if (!config_.is_tester) {
    awake_ = true;
    needs_wakeup_ = false;
  }
}

void Endpoint::on_byte(std::uint8_t byte) {
  const auto frame = decoder_.feed(byte);
  if (!frame) return;
  if (frame->with_address && frame->target != config_.own_address) return;

  // An ECU rebooted via require_wakeup() forgot it ever saw the
  // fast-init/5-baud pattern: it is fully deaf (not just handshake-deaf)
  // until the tester wakes it again.
  if (!config_.is_tester && needs_wakeup_) return;

  if (!config_.is_tester && awake_ && !frame->payload.empty() &&
      frame->payload[0] == 0x81) {
    // StartCommunication: reply with the key bytes.
    communication_started_ = true;
    bus_.send(encode(start_communication_response(frame->source,
                                                  config_.own_address)));
    return;
  }
  if (config_.is_tester && is_start_communication_response(*frame)) {
    communication_started_ = true;
    return;
  }
  if (handler_) handler_(frame->payload);
}

void Endpoint::send(std::span<const std::uint8_t> payload) {
  if (config_.is_tester && !communication_started_) {
    bus_.send_wakeup(Wakeup::kFastInit);
    bus_.send(encode(start_communication_request(config_.peer_address,
                                                 config_.own_address)));
    bus_.deliver_pending();  // handshake completes before the request
  }
  Frame frame;
  frame.target = config_.peer_address;
  frame.source = config_.own_address;
  frame.payload.assign(payload.begin(), payload.end());
  bus_.send(encode(frame));
}

}  // namespace dpr::kline
