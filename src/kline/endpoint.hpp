#pragma once
// K-Line endpoint: a util::MessageLink carrying KWP 2000 over ISO 14230.
// The tester performs fast init + StartCommunication before the first
// application message; the ECU side answers the handshake automatically.

#include "kline/bus.hpp"
#include "kline/message.hpp"
#include "util/link.hpp"

namespace dpr::kline {

struct EndpointConfig {
  std::uint8_t own_address = 0xF1;    // tester 0xF1; ECUs e.g. 0x33/0x10
  std::uint8_t peer_address = 0x33;
  bool is_tester = true;              // testers initiate fast init
};

class Endpoint : public util::MessageLink {
 public:
  Endpoint(KLineBus& bus, EndpointConfig config);

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Send one KWP message; a tester that has not yet connected performs
  /// the fast-init + StartCommunication handshake first.
  void send(std::span<const std::uint8_t> payload) override;

  void set_message_handler(Handler handler) override {
    handler_ = std::move(handler);
  }

  /// Tester side: forget the handshake so the next send() re-issues
  /// fast-init + StartCommunication (used after an ECU reboot).
  void reconnect() override {
    if (config_.is_tester) communication_started_ = false;
  }

  /// ECU side: drop the wakeup state (a rebooting ECU forgets it saw the
  /// fast-init/5-baud pattern); until the next wakeup every byte on the
  /// line is ignored and no session can start.
  void require_wakeup() {
    if (!config_.is_tester) {
      awake_ = false;
      communication_started_ = false;
      needs_wakeup_ = true;
    }
  }

  bool awake() const { return awake_; }
  bool communication_started() const { return communication_started_; }
  std::size_t checksum_errors() const { return decoder_.checksum_errors(); }

 private:
  void on_byte(std::uint8_t byte);
  void on_wakeup(Wakeup kind);

  KLineBus& bus_;
  EndpointConfig config_;
  Handler handler_;
  Decoder decoder_;
  bool communication_started_ = false;
  bool awake_ = false;
  bool needs_wakeup_ = false;  ///< set by require_wakeup(); full deafness
};

}  // namespace dpr::kline
