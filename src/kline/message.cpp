#include "kline/message.hpp"

#include <numeric>
#include <stdexcept>

namespace dpr::kline {

std::uint8_t checksum(std::span<const std::uint8_t> bytes) {
  unsigned sum = 0;
  for (std::uint8_t b : bytes) sum += b;
  return static_cast<std::uint8_t>(sum & 0xFF);
}

std::vector<std::uint8_t> encode(const Frame& frame) {
  if (frame.payload.empty() || frame.payload.size() > 255) {
    throw std::invalid_argument("K-Line payload must be 1..255 bytes");
  }
  std::vector<std::uint8_t> out;
  const bool short_length = frame.payload.size() <= 0x3F;
  std::uint8_t fmt = frame.with_address ? 0x80 : 0x00;
  if (short_length) fmt |= static_cast<std::uint8_t>(frame.payload.size());
  out.push_back(fmt);
  if (frame.with_address) {
    out.push_back(frame.target);
    out.push_back(frame.source);
  }
  if (!short_length) {
    out.push_back(static_cast<std::uint8_t>(frame.payload.size()));
  }
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  out.push_back(checksum(out));
  return out;
}

void Decoder::reset() {
  state_ = State::kFormat;
  frame_ = Frame{};
  raw_.clear();
  expected_length_ = 0;
}

std::optional<Frame> Decoder::feed(std::uint8_t byte) {
  raw_.push_back(byte);
  switch (state_) {
    case State::kFormat: {
      frame_.with_address = (byte & 0xC0) == 0x80;
      expected_length_ = byte & 0x3F;
      state_ = frame_.with_address
                   ? State::kTarget
                   : (expected_length_ == 0 ? State::kLength : State::kData);
      return std::nullopt;
    }
    case State::kTarget:
      frame_.target = byte;
      state_ = State::kSource;
      return std::nullopt;
    case State::kSource:
      frame_.source = byte;
      state_ = expected_length_ == 0 ? State::kLength : State::kData;
      return std::nullopt;
    case State::kLength:
      expected_length_ = byte;
      state_ = State::kData;
      return std::nullopt;
    case State::kData:
      frame_.payload.push_back(byte);
      if (frame_.payload.size() >= expected_length_) {
        state_ = State::kChecksum;
      }
      return std::nullopt;
    case State::kChecksum: {
      const std::uint8_t expected = checksum(
          std::span<const std::uint8_t>(raw_.data(), raw_.size() - 1));
      Frame complete = std::move(frame_);
      const bool ok = byte == expected;
      if (!ok) ++checksum_errors_;
      reset();
      if (ok) return complete;
      return std::nullopt;
    }
  }
  return std::nullopt;
}

Frame start_communication_request(std::uint8_t target,
                                  std::uint8_t source) {
  Frame frame;
  frame.target = target;
  frame.source = source;
  frame.payload = {0x81};
  return frame;
}

Frame start_communication_response(std::uint8_t target,
                                   std::uint8_t source) {
  Frame frame;
  frame.target = target;
  frame.source = source;
  // Key bytes 0x8F 0xE9: "timing per ISO 14230, normal addressing".
  frame.payload = {0xC1, 0xE9, 0x8F};
  return frame;
}

bool is_start_communication_response(const Frame& frame) {
  return !frame.payload.empty() && frame.payload[0] == 0xC1;
}

}  // namespace dpr::kline
