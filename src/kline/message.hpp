#pragma once
// ISO 14230-2 data-link framing for KWP 2000 over K-Line:
//   Fmt [Tgt] [Src] [Len] Data... Checksum
// Fmt's top two bits select the addressing mode; its low 6 bits carry the
// payload length (0 => a separate Len byte follows the addresses). The
// checksum is the modulo-256 sum of all preceding bytes.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace dpr::kline {

struct Frame {
  bool with_address = true;     // physical addressing (Tgt+Src present)
  std::uint8_t target = 0x33;   // ECU address
  std::uint8_t source = 0xF1;   // tester address
  std::vector<std::uint8_t> payload;
};

/// Serialize a frame to the wire bytes (including checksum).
std::vector<std::uint8_t> encode(const Frame& frame);

/// Modulo-256 checksum over a byte span.
std::uint8_t checksum(std::span<const std::uint8_t> bytes);

/// Incremental decoder: feed wire bytes one at a time; a completed,
/// checksum-valid frame is returned from the finishing byte.
class Decoder {
 public:
  std::optional<Frame> feed(std::uint8_t byte);

  std::size_t checksum_errors() const { return checksum_errors_; }
  void reset();

 private:
  enum class State { kFormat, kTarget, kSource, kLength, kData, kChecksum };
  State state_ = State::kFormat;
  Frame frame_;
  std::vector<std::uint8_t> raw_;
  std::size_t expected_length_ = 0;
  std::size_t checksum_errors_ = 0;
};

/// Fast-init StartCommunication request/response (ISO 14230-2 §5.2.4.2):
/// request payload {0x81}; positive response {0xC1, keyByte1, keyByte2}.
Frame start_communication_request(std::uint8_t target,
                                  std::uint8_t source = 0xF1);
Frame start_communication_response(std::uint8_t target,
                                   std::uint8_t source);
bool is_start_communication_response(const Frame& frame);

}  // namespace dpr::kline
