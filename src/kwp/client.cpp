#include "kwp/client.hpp"

namespace dpr::kwp {

Client::Client(util::MessageLink& link, std::function<void()> pump)
    : link_(link), pump_(std::move(pump)) {}

std::optional<util::Bytes> Client::transact(
    std::span<const std::uint8_t> request) {
  // (Re-)claim the link: a UDS client may share this transport on
  // vehicles that mix 0x22 reads with 0x30 IO control.
  link_.set_message_handler(
      [this](const util::Bytes& message) { inbox_ = message; });
  inbox_.reset();
  link_.send(request);
  pump_();
  return inbox_;
}

bool Client::start_session(std::uint8_t session_type) {
  const auto resp = transact(encode_start_session(session_type));
  return resp && is_positive_response(*resp, kStartDiagnosticSession);
}

std::optional<ReadResponse> Client::read_local_id(std::uint8_t local_id) {
  const auto resp = transact(encode_read_by_local_id(local_id));
  if (!resp) return std::nullopt;
  return decode_read_response(*resp);
}

std::optional<util::Bytes> Client::io_control_local(
    std::uint8_t local_id, std::span<const std::uint8_t> ecr) {
  const auto resp = transact(encode_io_control_local(local_id, ecr));
  if (!resp || !is_positive_response(*resp, kIoControlByLocalId)) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 2, resp->end());
}

std::optional<util::Bytes> Client::io_control_common(
    std::uint16_t common_id, std::span<const std::uint8_t> ecr) {
  const auto resp = transact(encode_io_control_common(common_id, ecr));
  if (!resp || !is_positive_response(*resp, kIoControlByCommonId)) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 3, resp->end());
}

}  // namespace dpr::kwp
