#include "kwp/client.hpp"

namespace dpr::kwp {

Client::Client(util::MessageLink& link, std::function<void()> pump,
               util::TransactPolicy policy, util::SimClock* clock)
    : link_(link), pump_(std::move(pump)), policy_(policy), clock_(clock) {}

void Client::backoff(util::SimTime delay) {
  if (clock_ != nullptr && delay > 0) clock_->advance(delay);
}

std::optional<util::Bytes> Client::transact(
    std::span<const std::uint8_t> request) {
  // (Re-)claim the link: a UDS client may share this transport on
  // vehicles that mix 0x22 reads with 0x30 IO control.
  link_.set_message_handler(
      [this](const util::Bytes& message) { inbox_.push_back(message); });
  last_nrc_.reset();
  ++stats_.transactions;

  for (int attempt = 0;; ++attempt) {
    inbox_.clear();  // stale answers from a previous attempt are void
    link_.send(request);
    pump_();

    bool busy = false;
    int pending = 0;
    std::optional<util::Bytes> final;
    for (auto& message : inbox_) {
      const auto neg = decode_negative_response(message);
      if (neg && neg->code == kNrcResponsePending) {
        ++stats_.pending_waits;
        if (++pending <= policy_.max_pending_waits) continue;
      }
      busy = neg && neg->code == kNrcBusyRepeatRequest;
      final = std::move(message);
    }
    inbox_.clear();

    if (final && !busy) {
      last_nrc_ = decode_negative_response(*final);
      return final;
    }
    if (attempt >= policy_.max_retries) {
      ++stats_.failures;
      if (final) last_nrc_ = decode_negative_response(*final);
      // Total silence across every retry can mean the peer lost its link
      // state (a K-Line ECU rebooted and is deaf until the next wakeup).
      // Drop our side of the handshake so the next send re-establishes it;
      // links without a handshake ignore this.
      if (!final) link_.reconnect();
      return busy ? std::move(final) : std::nullopt;
    }
    if (busy) {
      ++stats_.busy_retries;
      backoff(policy_.p2_star);
    } else {
      ++stats_.retries;
      backoff(policy_.p2);
    }
  }
}

bool Client::start_session(std::uint8_t session_type) {
  const auto resp = transact(encode_start_session(session_type));
  return resp && is_positive_response(*resp, kStartDiagnosticSession);
}

bool Client::tester_present(bool suppress) {
  if (suppress) {
    // No response is coming for the suppressed form; send and drain.
    link_.set_message_handler(
        [this](const util::Bytes& message) { inbox_.push_back(message); });
    link_.send(encode_tester_present(true));
    pump_();
    inbox_.clear();
    return true;
  }
  const auto resp = transact(encode_tester_present(false));
  return resp && is_positive_response(*resp, kTesterPresent);
}

std::optional<ReadResponse> Client::read_local_id(std::uint8_t local_id) {
  const auto resp = transact(encode_read_by_local_id(local_id));
  if (!resp) return std::nullopt;
  return decode_read_response(*resp);
}

std::optional<util::Bytes> Client::io_control_local(
    std::uint8_t local_id, std::span<const std::uint8_t> ecr) {
  const auto resp = transact(encode_io_control_local(local_id, ecr));
  // Positive format is [0x70, local id, status...]; never slice a
  // truncated (corrupted) response past its end.
  if (!resp || !is_positive_response(*resp, kIoControlByLocalId) ||
      resp->size() < 2) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 2, resp->end());
}

std::optional<util::Bytes> Client::io_control_common(
    std::uint16_t common_id, std::span<const std::uint8_t> ecr) {
  const auto resp = transact(encode_io_control_common(common_id, ecr));
  // Positive format is [0x6F, id hi, id lo, status...].
  if (!resp || !is_positive_response(*resp, kIoControlByCommonId) ||
      resp->size() < 3) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 3, resp->end());
}

}  // namespace dpr::kwp
