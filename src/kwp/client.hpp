#pragma once
// KWP 2000 client (tester side), mirroring uds::Client — including the
// bounded retry/timeout/pending-wait loop of util::TransactPolicy. The
// default policy is the legacy single send-and-pump.

#include <deque>
#include <functional>
#include <optional>

#include "kwp/message.hpp"
#include "util/clock.hpp"
#include "util/link.hpp"
#include "util/transact.hpp"

namespace dpr::kwp {

class Client {
 public:
  Client(util::MessageLink& link, std::function<void()> pump,
         util::TransactPolicy policy = {}, util::SimClock* clock = nullptr);

  std::optional<util::Bytes> transact(std::span<const std::uint8_t> request);

  bool start_session(std::uint8_t session_type = 0x89);

  /// 0x3E keepalive, mirroring uds::Client::tester_present: the suppressed
  /// form sends without waiting for a response, the required form probes
  /// ECU liveness.
  bool tester_present(bool suppress = false);

  /// 0x21: read the ESV records of a local identifier.
  std::optional<ReadResponse> read_local_id(std::uint8_t local_id);

  /// 0x30: control via local identifier; returns the control status.
  std::optional<util::Bytes> io_control_local(
      std::uint8_t local_id, std::span<const std::uint8_t> ecr);

  /// 0x2F: control via common identifier.
  std::optional<util::Bytes> io_control_common(
      std::uint16_t common_id, std::span<const std::uint8_t> ecr);

  /// Last negative response seen (if the latest transact got a 0x7F).
  std::optional<NegativeResponse> last_negative() const { return last_nrc_; }

  const util::TransactStats& stats() const { return stats_; }

 private:
  void backoff(util::SimTime delay);

  util::MessageLink& link_;
  std::function<void()> pump_;
  util::TransactPolicy policy_;
  util::SimClock* clock_ = nullptr;
  std::deque<util::Bytes> inbox_;
  std::optional<NegativeResponse> last_nrc_;
  util::TransactStats stats_;
};

}  // namespace dpr::kwp
