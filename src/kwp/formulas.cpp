#include "kwp/formulas.hpp"

#include <cmath>

namespace dpr::kwp {

const std::vector<FormulaSpec>& formula_table() {
  static const std::vector<FormulaSpec> table = {
      // The paper's worked example (§2.3.1): engine RPM, "01 F1 10" -> 771.2.
      {0x01, FormulaKind::kNumeric, "X0*X1/5", "rpm",
       [](double x0, double x1) { return x0 * x1 / 5.0; }},
      {0x02, FormulaKind::kNumeric, "X0*X1*0.002", "%",
       [](double x0, double x1) { return x0 * x1 * 0.002; }},
      {0x03, FormulaKind::kNumeric, "X0*X1*0.002", "deg",
       [](double x0, double x1) { return x0 * x1 * 0.002; }},
      {0x05, FormulaKind::kNumeric, "X0*(X1-100)*0.1", "degC",
       [](double x0, double x1) { return x0 * (x1 - 100.0) * 0.1; }},
      {0x06, FormulaKind::kNumeric, "X0*X1*0.001", "V",
       [](double x0, double x1) { return x0 * x1 * 0.001; }},
      // Vehicle speed: the paper notes ground truth has two variables but
      // X0 is pinned to 0x64 (100) in traffic, collapsing to Y = X1.
      {0x07, FormulaKind::kNumeric, "X0*X1*0.01", "km/h",
       [](double x0, double x1) { return x0 * x1 * 0.01; }},
      {0x08, FormulaKind::kNumeric, "X0*X1*0.1", "",
       [](double x0, double x1) { return x0 * x1 * 0.1; }},
      {0x0A, FormulaKind::kNumeric, "(X1-X0)*0.1", "kPa",
       [](double x0, double x1) { return (x1 - x0) * 0.1; }},
      {0x0F, FormulaKind::kNumeric, "X0*X1*0.01", "ms",
       [](double x0, double x1) { return x0 * x1 * 0.01; }},
      {0x11, FormulaKind::kEnum, "", "",  // ASCII/status pair
       [](double, double) { return 0.0; }},
      {0x12, FormulaKind::kNumeric, "X0*X1*0.04", "mbar",
       [](double x0, double x1) { return x0 * x1 * 0.04; }},
      {0x13, FormulaKind::kNumeric, "X0*X1*0.01", "l",
       [](double x0, double x1) { return x0 * x1 * 0.01; }},
      {0x15, FormulaKind::kNumeric, "X0*X1*0.001", "V",
       [](double x0, double x1) { return x0 * x1 * 0.001; }},
      {0x16, FormulaKind::kNumeric, "X0*X1*0.001", "ms",
       [](double x0, double x1) { return x0 * x1 * 0.001; }},
      // Torque assistance (§4.3): sign selected by X1 around 0x80.
      {0x17, FormulaKind::kNumeric, "X0*(X1-128)*0.001", "Nm",
       [](double x0, double x1) { return x0 * (x1 - 128.0) * 0.001; }},
      {0x19, FormulaKind::kNumeric, "X0*X1/182", "g/s",
       [](double x0, double x1) { return x0 * x1 / 182.0; }},
      {0x1A, FormulaKind::kNumeric, "X1-X0", "degC",
       [](double x0, double x1) { return x1 - x0; }},
      {0x1B, FormulaKind::kNumeric, "X0*(X1-128)*0.01", "deg",
       [](double x0, double x1) { return x0 * (x1 - 128.0) * 0.01; }},
      {0x1F, FormulaKind::kEnum, "", "",  // bitfield
       [](double, double) { return 0.0; }},
      {0x21, FormulaKind::kNumeric, "X0*X1/100 (X0=0 -> X1)", "%",
       [](double x0, double x1) { return x0 == 0.0 ? x1 : x0 * x1 / 100.0; }},
      {0x22, FormulaKind::kNumeric, "(X1-128)*X0/100", "kW",
       [](double x0, double x1) { return (x1 - 128.0) * x0 / 100.0; }},
      {0x23, FormulaKind::kNumeric, "X0*X1/100", "l/h",
       [](double x0, double x1) { return x0 * x1 / 100.0; }},
      {0x24, FormulaKind::kNumeric, "X0*2560 + X1*10", "km",
       [](double x0, double x1) { return x0 * 2560.0 + x1 * 10.0; }},
      {0x2F, FormulaKind::kNumeric, "X1-128", "min",
       [](double, double x1) { return x1 - 128.0; }},
      {0x31, FormulaKind::kNumeric, "X0*X1/40", "mg/h",
       [](double x0, double x1) { return x0 * x1 / 40.0; }},
  };
  return table;
}

std::optional<FormulaSpec> find_formula(std::uint8_t type) {
  for (const auto& spec : formula_table()) {
    if (spec.type == type) return spec;
  }
  return std::nullopt;
}

std::optional<double> decode_esv(std::uint8_t type, std::uint8_t x0,
                                 std::uint8_t x1) {
  const auto spec = find_formula(type);
  if (!spec || spec->kind != FormulaKind::kNumeric) return std::nullopt;
  return spec->eval(x0, x1);
}

std::optional<std::uint8_t> encode_esv_x1(std::uint8_t type, std::uint8_t x0,
                                          double value) {
  const auto spec = find_formula(type);
  if (!spec || spec->kind != FormulaKind::kNumeric) return std::nullopt;
  // Search the 256 possible X1 bytes for the closest encoding — exact
  // inversion is formula-specific, and 256 evaluations are cheap.
  int best = -1;
  double best_err = 1e300;
  for (int x1 = 0; x1 < 256; ++x1) {
    const double err =
        std::abs(spec->eval(x0, static_cast<double>(x1)) - value);
    if (err < best_err) {
      best_err = err;
      best = x1;
    }
  }
  if (best < 0) return std::nullopt;
  return static_cast<std::uint8_t>(best);
}

}  // namespace dpr::kwp
