#pragma once
// Proprietary KWP 2000 formula-type table (the first byte of each 3-byte
// ESV record selects the formula applied to X0, X1 — §2.3.1).
//
// These mappings are not in the ISO standard; real tables ship inside VAG
// diagnostic tools. This registry plays the role of the "document
// containing the formulas ... provided by an experienced vehicle
// researcher" the paper uses as KWP ground truth (§4.3). The entries are
// modeled on the well-known VAG measuring-block types, including the
// paper's own example (type 0x01: X0*X1/5 -> engine RPM).

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace dpr::kwp {

enum class FormulaKind {
  kNumeric,   // real-valued formula over X0, X1
  kEnum,      // status / bitfield: no formula to infer (§4.3 "#ESV (Enum)")
};

struct FormulaSpec {
  std::uint8_t type = 0;
  FormulaKind kind = FormulaKind::kNumeric;
  std::string expression;  // human-readable ground truth, e.g. "X0*X1/5"
  std::string unit;
  std::function<double(double x0, double x1)> eval;
};

/// Full registry of modeled formula types.
const std::vector<FormulaSpec>& formula_table();

/// Look up a formula type byte; nullopt for unknown types.
std::optional<FormulaSpec> find_formula(std::uint8_t type);

/// Decode one ESV record to its physical value (nullopt for enum kinds or
/// unknown types).
std::optional<double> decode_esv(std::uint8_t type, std::uint8_t x0,
                                 std::uint8_t x1);

/// Invert a formula for simulation: given a physical value and a fixed X0
/// (the per-signal scaling byte a real ECU uses), compute the X1 byte that
/// encodes it. Returns nullopt when the type is unknown/enum or the value
/// is out of the encodable range.
std::optional<std::uint8_t> encode_esv_x1(std::uint8_t type, std::uint8_t x0,
                                          double value);

}  // namespace dpr::kwp
