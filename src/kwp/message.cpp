#include "kwp/message.hpp"

namespace dpr::kwp {

util::Bytes encode_start_session(std::uint8_t session_type) {
  return {kStartDiagnosticSession, session_type};
}

util::Bytes encode_read_by_local_id(std::uint8_t local_id) {
  return {kReadDataByLocalId, local_id};
}

util::Bytes encode_tester_present(bool suppress) {
  return {kTesterPresent, suppress ? kResponseSuppressed : kResponseRequired};
}

util::Bytes encode_io_control_local(std::uint8_t local_id,
                                    std::span<const std::uint8_t> ecr) {
  util::Bytes out{kIoControlByLocalId, local_id};
  out.insert(out.end(), ecr.begin(), ecr.end());
  return out;
}

util::Bytes encode_io_control_common(std::uint16_t common_id,
                                     std::span<const std::uint8_t> ecr) {
  util::Bytes out{kIoControlByCommonId};
  util::append_u16(out, common_id);
  out.insert(out.end(), ecr.begin(), ecr.end());
  return out;
}

util::Bytes encode_negative_response(std::uint8_t requested_sid,
                                     std::uint8_t code) {
  return {kNegativeResponseSid, requested_sid, code};
}

util::Bytes encode_read_response(std::uint8_t local_id,
                                 std::span<const EsvRecord> records) {
  util::Bytes out{static_cast<std::uint8_t>(kReadDataByLocalId +
                                            kPositiveOffset),
                  local_id};
  for (const auto& rec : records) {
    out.push_back(rec.formula_type);
    out.push_back(rec.x0);
    out.push_back(rec.x1);
  }
  return out;
}

util::Bytes encode_io_local_response(std::uint8_t local_id,
                                     std::span<const std::uint8_t> status) {
  util::Bytes out{static_cast<std::uint8_t>(kIoControlByLocalId +
                                            kPositiveOffset),
                  local_id};
  out.insert(out.end(), status.begin(), status.end());
  return out;
}

util::Bytes encode_io_common_response(std::uint16_t common_id,
                                      std::span<const std::uint8_t> status) {
  util::Bytes out{
      static_cast<std::uint8_t>(kIoControlByCommonId + kPositiveOffset)};
  util::append_u16(out, common_id);
  out.insert(out.end(), status.begin(), status.end());
  return out;
}

std::optional<ReadRequest> decode_read_request(
    std::span<const std::uint8_t> payload) {
  if (payload.size() != 2 || payload[0] != kReadDataByLocalId) {
    return std::nullopt;
  }
  return ReadRequest{payload[1]};
}

std::optional<ReadResponse> decode_read_response(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 5 ||
      payload[0] != kReadDataByLocalId + kPositiveOffset) {
    return std::nullopt;
  }
  if ((payload.size() - 2) % 3 != 0) return std::nullopt;
  ReadResponse resp;
  resp.local_id = payload[1];
  for (std::size_t i = 2; i + 2 < payload.size(); i += 3) {
    resp.records.push_back(
        EsvRecord{payload[i], payload[i + 1], payload[i + 2]});
  }
  return resp;
}

std::optional<IoLocalRequest> decode_io_local_request(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 3 || payload[0] != kIoControlByLocalId) {
    return std::nullopt;
  }
  IoLocalRequest req;
  req.local_id = payload[1];
  req.ecr.assign(payload.begin() + 2, payload.end());
  return req;
}

std::optional<IoCommonRequest> decode_io_common_request(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4 || payload[0] != kIoControlByCommonId) {
    return std::nullopt;
  }
  IoCommonRequest req;
  req.common_id = util::read_u16(payload, 1);
  req.ecr.assign(payload.begin() + 3, payload.end());
  return req;
}

std::optional<NegativeResponse> decode_negative_response(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 3 || payload[0] != kNegativeResponseSid) {
    return std::nullopt;
  }
  return NegativeResponse{payload[1], payload[2]};
}

bool is_positive_response(std::span<const std::uint8_t> payload,
                          std::uint8_t request_sid) {
  return !payload.empty() &&
         payload[0] == static_cast<std::uint8_t>(request_sid +
                                                 kPositiveOffset);
}

}  // namespace dpr::kwp
