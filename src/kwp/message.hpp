#pragma once
// KWP 2000 (ISO 14230-3) message encoding/decoding for the services
// DP-Reverser targets (§2.3.1, Figs. 2-3):
//   0x21 readDataByLocalIdentifier      -> 3-byte ESV records (Ftype,X0,X1)
//   0x30 inputOutputControlByLocalIdentifier
//   0x2F inputOutputControlByCommonIdentifier
// plus startDiagnosticSession and negative responses.

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "util/hex.hpp"

namespace dpr::kwp {

constexpr std::uint8_t kStartDiagnosticSession = 0x10;
constexpr std::uint8_t kClearDiagnosticInformation = 0x14;
constexpr std::uint8_t kReadDtcsByStatus = 0x18;
constexpr std::uint8_t kReadEcuIdentification = 0x1A;
constexpr std::uint8_t kReadDataByLocalId = 0x21;
constexpr std::uint8_t kSecurityAccess = 0x27;
constexpr std::uint8_t kIoControlByCommonId = 0x2F;
constexpr std::uint8_t kIoControlByLocalId = 0x30;
constexpr std::uint8_t kTesterPresent = 0x3E;
constexpr std::uint8_t kNegativeResponseSid = 0x7F;
constexpr std::uint8_t kPositiveOffset = 0x40;

/// TesterPresent responseRequired sub-parameter values (ISO 14230-3).
constexpr std::uint8_t kResponseRequired = 0x01;
constexpr std::uint8_t kResponseSuppressed = 0x02;

/// Negative response codes shared with ISO 14229 (same byte values).
constexpr std::uint8_t kNrcBusyRepeatRequest = 0x21;
constexpr std::uint8_t kNrcRequestSequenceError = 0x24;
constexpr std::uint8_t kNrcInvalidKey = 0x35;
constexpr std::uint8_t kNrcExceedNumberOfAttempts = 0x36;
constexpr std::uint8_t kNrcRequiredTimeDelayNotExpired = 0x37;
constexpr std::uint8_t kNrcResponsePending = 0x78;
constexpr std::uint8_t kNrcServiceNotSupportedInActiveSession = 0x7F;

/// One ECU signal value record of a 0x61 response (Fig. 3): the formula
/// type byte and the two operand bytes.
struct EsvRecord {
  std::uint8_t formula_type = 0;
  std::uint8_t x0 = 0;
  std::uint8_t x1 = 0;
};

/// --- Requests --------------------------------------------------------------

util::Bytes encode_start_session(std::uint8_t session_type = 0x89);

util::Bytes encode_read_by_local_id(std::uint8_t local_id);

/// 0x3E keepalive; `suppress` selects responseRequired = 0x02 (no reply).
util::Bytes encode_tester_present(bool suppress = false);

/// 0x30: local id + ECU control record (Fig. 2 top).
util::Bytes encode_io_control_local(std::uint8_t local_id,
                                    std::span<const std::uint8_t> ecr);

/// 0x2F: two-byte common identifier + ECR (Fig. 2 bottom).
util::Bytes encode_io_control_common(std::uint16_t common_id,
                                     std::span<const std::uint8_t> ecr);

/// --- Responses --------------------------------------------------------------

util::Bytes encode_negative_response(std::uint8_t requested_sid,
                                     std::uint8_t code);

/// 0x61 positive response carrying 1..m ESV records.
util::Bytes encode_read_response(std::uint8_t local_id,
                                 std::span<const EsvRecord> records);

/// 0x70 / 0x6F positive IO-control responses with a control status byte.
util::Bytes encode_io_local_response(std::uint8_t local_id,
                                     std::span<const std::uint8_t> status);
util::Bytes encode_io_common_response(std::uint16_t common_id,
                                      std::span<const std::uint8_t> status);

/// --- Decoders ---------------------------------------------------------------

struct ReadRequest {
  std::uint8_t local_id = 0;
};
std::optional<ReadRequest> decode_read_request(
    std::span<const std::uint8_t> payload);

struct ReadResponse {
  std::uint8_t local_id = 0;
  std::vector<EsvRecord> records;
};
std::optional<ReadResponse> decode_read_response(
    std::span<const std::uint8_t> payload);

struct IoLocalRequest {
  std::uint8_t local_id = 0;
  util::Bytes ecr;
};
std::optional<IoLocalRequest> decode_io_local_request(
    std::span<const std::uint8_t> payload);

struct IoCommonRequest {
  std::uint16_t common_id = 0;
  util::Bytes ecr;
};
std::optional<IoCommonRequest> decode_io_common_request(
    std::span<const std::uint8_t> payload);

struct NegativeResponse {
  std::uint8_t requested_sid = 0;
  std::uint8_t code = 0;
};
std::optional<NegativeResponse> decode_negative_response(
    std::span<const std::uint8_t> payload);

bool is_positive_response(std::span<const std::uint8_t> payload,
                          std::uint8_t request_sid);

}  // namespace dpr::kwp
