#include "kwp/server.hpp"

#include <algorithm>

namespace dpr::kwp {

namespace {
// ISO 14230-3 response codes.
constexpr std::uint8_t kServiceNotSupported = 0x11;
constexpr std::uint8_t kSubFunctionNotSupported = 0x12;
constexpr std::uint8_t kRequestOutOfRange = 0x31;
}  // namespace

void Server::add_local_id(std::uint8_t local_id, LocalIdReader reader) {
  local_ids_[local_id] = std::move(reader);
}

void Server::add_io_local(std::uint8_t local_id, IoHandler handler) {
  io_local_[local_id] = std::move(handler);
}

void Server::add_io_common(std::uint16_t common_id, IoHandler handler) {
  io_common_[common_id] = std::move(handler);
}

void Server::add_dtc(std::uint16_t code, std::uint8_t status) {
  dtcs_.push_back(Dtc{code, status});
}

void Server::enable_security(
    std::function<util::Bytes(const util::Bytes&)> key_fn) {
  key_fn_ = std::move(key_fn);
  unlocked_ = false;
}

bool Server::locked_out() const {
  return sessions_armed_ && clock_->now() < lockout_until_;
}

void Server::bind(util::MessageLink& link) {
  link.set_message_handler([this, &link](const util::Bytes& request) {
    for (const util::Bytes& response : respond(request)) {
      link.send(response);
    }
  });
}

void Server::enable_faults(const FaultProfile& profile, util::Rng rng) {
  faults_ = profile;
  fault_rng_ = rng;
}

void Server::enable_sessions(const SessionProfile& profile,
                             const util::SimClock& clock) {
  session_profile_ = profile;
  clock_ = &clock;
  sessions_armed_ = true;
  last_activity_ = clock.now();
}

void Server::enable_resets(const ResetProfile& profile,
                           const util::SimClock& clock,
                           util::CounterRng stream) {
  if (!profile.enabled()) return;  // zero rate: stay draw-free
  reset_profile_ = profile;
  clock_ = &clock;
  reset_stream_ = stream;
  resets_armed_ = true;
}

std::vector<util::Bytes> Server::respond(
    std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  if (resets_armed_) {
    // Same draw order as uds::Server: reboot draw first, silence window
    // swallows requests without a draw.
    const util::SimTime now = clock_->now();
    if (now < silent_until_) return {};
    if (reset_stream_.at(reset_events_++).chance(reset_profile_.reset_rate)) {
      session_started_ = false;
      unlocked_ = false;
      pending_seed_.clear();
      key_attempts_ = 0;
      lockout_until_ = -1;
      silent_until_ = now + reset_profile_.boot_time;
      ++resets_;
      // A rebooting K-Line ECU also loses its wakeup state; the endpoint
      // hook makes the tester re-issue fast-init before the next session.
      if (reset_hook_) reset_hook_();
      return {};
    }
  }
  std::vector<util::Bytes> responses;
  if (faults_.enabled()) {
    if (faults_.busy_rate > 0.0 && fault_rng_.chance(faults_.busy_rate)) {
      // Busy ECUs refuse without processing; the tester must resend.
      responses.push_back(
          encode_negative_response(request[0], kNrcBusyRepeatRequest));
      return responses;
    }
    if (faults_.pending_rate > 0.0 &&
        fault_rng_.chance(faults_.pending_rate)) {
      const auto n = fault_rng_.uniform_int(
          1, std::max(1, faults_.max_pending));
      for (std::int64_t i = 0; i < n; ++i) {
        responses.push_back(
            encode_negative_response(request[0], kNrcResponsePending));
      }
    }
  }
  util::Bytes answer = handle(request);
  if (!answer.empty()) responses.push_back(std::move(answer));
  return responses;
}

util::Bytes Server::handle(std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  if (sessions_armed_) {
    const util::SimTime now = clock_->now();
    if (session_started_ &&
        now - last_activity_ > session_profile_.s3_timeout) {
      session_started_ = false;
      ++s3_expiries_;
    }
    last_activity_ = now;
  }
  switch (request[0]) {
    case kStartDiagnosticSession: {
      if (request.size() != 2) {
        return encode_negative_response(request[0],
                                        kSubFunctionNotSupported);
      }
      session_started_ = true;
      return {static_cast<std::uint8_t>(kStartDiagnosticSession +
                                        kPositiveOffset),
              request[1]};
    }
    case kReadDtcsByStatus: {
      // [0x18, mode, groupHi, groupLo] -> [0x58, count, (code16, status)*].
      if (request.size() != 4) {
        return encode_negative_response(kReadDtcsByStatus,
                                        kSubFunctionNotSupported);
      }
      util::Bytes out{static_cast<std::uint8_t>(kReadDtcsByStatus +
                                                kPositiveOffset),
                      static_cast<std::uint8_t>(dtcs_.size())};
      for (const auto& dtc : dtcs_) {
        util::append_u16(out, dtc.code);
        out.push_back(dtc.status);
      }
      return out;
    }
    case kClearDiagnosticInformation: {
      // [0x14, groupHi, groupLo]; 0xFF00 clears all groups.
      if (request.size() != 3) {
        return encode_negative_response(kClearDiagnosticInformation,
                                        kSubFunctionNotSupported);
      }
      dtcs_.clear();
      return {static_cast<std::uint8_t>(kClearDiagnosticInformation +
                                        kPositiveOffset),
              request[1], request[2]};
    }
    case kReadEcuIdentification: {
      if (request.size() != 2 || identification_.empty()) {
        return encode_negative_response(kReadEcuIdentification,
                                        kRequestOutOfRange);
      }
      util::Bytes out{static_cast<std::uint8_t>(kReadEcuIdentification +
                                                kPositiveOffset),
                      request[1]};
      out.insert(out.end(), identification_.begin(), identification_.end());
      return out;
    }
    case kReadDataByLocalId: {
      const auto req = decode_read_request(request);
      if (!req) {
        return encode_negative_response(kReadDataByLocalId,
                                        kSubFunctionNotSupported);
      }
      const auto it = local_ids_.find(req->local_id);
      if (it == local_ids_.end()) {
        return encode_negative_response(kReadDataByLocalId,
                                        kRequestOutOfRange);
      }
      return encode_read_response(req->local_id, it->second());
    }
    case kSecurityAccess:
      return handle_security_access(request);
    case kTesterPresent: {
      // [0x3E, responseRequired]: 0x01 answers {0x7E}, 0x02 suppresses
      // the positive response. Either form refreshed the S3 timer above.
      if (request.size() != 2 || (request[1] != kResponseRequired &&
                                  request[1] != kResponseSuppressed)) {
        return encode_negative_response(kTesterPresent,
                                        kSubFunctionNotSupported);
      }
      if (request[1] == kResponseSuppressed) return {};
      return {static_cast<std::uint8_t>(kTesterPresent + kPositiveOffset)};
    }
    case kIoControlByLocalId: {
      const auto req = decode_io_local_request(request);
      if (!req) {
        return encode_negative_response(kIoControlByLocalId,
                                        kSubFunctionNotSupported);
      }
      if (sessions_armed_ && !session_started_) {
        return encode_negative_response(
            kIoControlByLocalId, kNrcServiceNotSupportedInActiveSession);
      }
      const auto it = io_local_.find(req->local_id);
      if (it == io_local_.end()) {
        return encode_negative_response(kIoControlByLocalId,
                                        kRequestOutOfRange);
      }
      const auto status = it->second(req->ecr);
      if (!status) {
        return encode_negative_response(kIoControlByLocalId,
                                        kRequestOutOfRange);
      }
      return encode_io_local_response(req->local_id, *status);
    }
    case kIoControlByCommonId: {
      const auto req = decode_io_common_request(request);
      if (!req) {
        return encode_negative_response(kIoControlByCommonId,
                                        kSubFunctionNotSupported);
      }
      if (sessions_armed_ && !session_started_) {
        return encode_negative_response(
            kIoControlByCommonId, kNrcServiceNotSupportedInActiveSession);
      }
      const auto it = io_common_.find(req->common_id);
      if (it == io_common_.end()) {
        return encode_negative_response(kIoControlByCommonId,
                                        kRequestOutOfRange);
      }
      const auto status = it->second(req->ecr);
      if (!status) {
        return encode_negative_response(kIoControlByCommonId,
                                        kRequestOutOfRange);
      }
      return encode_io_common_response(req->common_id, *status);
    }
    default:
      return encode_negative_response(request[0], kServiceNotSupported);
  }
}

util::Bytes Server::handle_security_access(
    std::span<const std::uint8_t> req) {
  // Mirrors uds::Server::handle_security_access byte for byte (KWP 2000
  // shares the ISO 14229 NRC values): odd level requests a seed, even level
  // sends the key, and with sessions armed the attempt counter trips a
  // 0x36/0x37 delay-timer lockout.
  if (!key_fn_) {
    return encode_negative_response(kSecurityAccess, kServiceNotSupported);
  }
  if (req.size() < 2) {
    return encode_negative_response(kSecurityAccess,
                                    kSubFunctionNotSupported);
  }
  if (locked_out()) {
    return encode_negative_response(kSecurityAccess,
                                    kNrcRequiredTimeDelayNotExpired);
  }
  const std::uint8_t level = req[1];
  if (level % 2 == 1) {  // requestSeed
    pending_seed_ = {0x12, 0x34, 0x56, 0x78};
    util::Bytes out{static_cast<std::uint8_t>(kSecurityAccess +
                                              kPositiveOffset),
                    level};
    out.insert(out.end(), pending_seed_.begin(), pending_seed_.end());
    return out;
  }
  // sendKey
  if (pending_seed_.empty()) {
    return encode_negative_response(kSecurityAccess,
                                    kNrcRequestSequenceError);
  }
  const util::Bytes expected = key_fn_(pending_seed_);
  const util::Bytes provided(req.begin() + 2, req.end());
  pending_seed_.clear();
  if (provided != expected) {
    if (sessions_armed_ &&
        ++key_attempts_ >= session_profile_.max_key_attempts) {
      key_attempts_ = 0;
      lockout_until_ = clock_->now() + session_profile_.lockout_delay;
      return encode_negative_response(kSecurityAccess,
                                      kNrcExceedNumberOfAttempts);
    }
    return encode_negative_response(kSecurityAccess, kNrcInvalidKey);
  }
  key_attempts_ = 0;
  unlocked_ = true;
  return {static_cast<std::uint8_t>(kSecurityAccess + kPositiveOffset),
          level};
}

}  // namespace dpr::kwp
