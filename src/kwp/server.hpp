#pragma once
// KWP 2000 server: application layer of a KWP ECU. Holds the local-id
// registry (each local id yields 1..m 3-byte ESV records per Fig. 3) and
// the IO-control registries for local and common identifiers.

#include <functional>
#include <map>
#include <optional>

#include "kwp/message.hpp"
#include "util/clock.hpp"
#include "util/counter_rng.hpp"
#include "util/link.hpp"
#include "util/rng.hpp"

namespace dpr::kwp {

/// Produces the current ESV records for one local identifier.
using LocalIdReader = std::function<std::vector<EsvRecord>()>;

/// Handles an ECU-control record; returns the control status bytes for the
/// positive response, or nullopt to reject with requestOutOfRange.
using IoHandler =
    std::function<std::optional<util::Bytes>(std::span<const std::uint8_t>)>;

class Server {
 public:
  void add_local_id(std::uint8_t local_id, LocalIdReader reader);
  void add_io_local(std::uint8_t local_id, IoHandler handler);
  void add_io_common(std::uint16_t common_id, IoHandler handler);

  /// Security-access seed/key (ISO 14230-3 0x27), mirroring
  /// uds::Server::enable_security: the key function maps seed -> expected
  /// key; wrong keys count toward the attempt lockout when sessions are
  /// armed (same 0x35/0x36/0x37 byte values as ISO 14229).
  void enable_security(std::function<util::Bytes(const util::Bytes&)> key_fn);

  /// ECU identification data returned by readEcuIdentification (0x1A) —
  /// part numbers / VIN / coding, typically a long multi-frame response.
  void set_identification(util::Bytes data) {
    identification_ = std::move(data);
  }

  /// Stored DTC (ISO 14230-3 0x18 readDTCsByStatus / 0x14 clear).
  struct Dtc {
    std::uint16_t code = 0;
    std::uint8_t status = 0xE0;
  };
  void add_dtc(std::uint16_t code, std::uint8_t status = 0xE0);
  const std::vector<Dtc>& dtcs() const { return dtcs_; }

  /// Process one request, producing exactly one response message.
  util::Bytes handle(std::span<const std::uint8_t> request);

  /// Server-side fault behaviour, mirroring uds::Server::FaultProfile:
  /// 0x78 responsePending stalls before the answer, 0x21 busyRepeatRequest
  /// refusals instead of it (same ISO 14230 byte values).
  struct FaultProfile {
    double pending_rate = 0.0;
    int max_pending = 2;
    double busy_rate = 0.0;

    bool enabled() const { return pending_rate > 0.0 || busy_rate > 0.0; }
  };
  void enable_faults(const FaultProfile& profile, util::Rng rng);

  /// S3 session timer, mirroring uds::Server::enable_sessions: the started
  /// diagnostic session expires after `s3_timeout` of inactivity, and with
  /// the timer armed the IO-control services demand a running session (NRC
  /// 0x7F), which is what the diagtool supervisor keys recovery on. The
  /// armed timer also activates the security-access attempt lockout:
  /// `max_key_attempts` wrong keys answer NRC 0x36 and refuse further 0x27
  /// requests with NRC 0x37 until `lockout_delay` expires.
  struct SessionProfile {
    util::SimTime s3_timeout = 5 * util::kSecond;
    int max_key_attempts = 3;
    util::SimTime lockout_delay = 10 * util::kSecond;
  };
  void enable_sessions(const SessionProfile& profile,
                       const util::SimClock& clock);

  /// Deterministic ECU reboots, mirroring uds::Server::enable_resets: the
  /// n-th non-silent request draws event n of the counter stream.
  struct ResetProfile {
    double reset_rate = 0.0;
    util::SimTime boot_time = 300 * util::kMillisecond;

    bool enabled() const { return reset_rate > 0.0; }
  };
  void enable_resets(const ResetProfile& profile, const util::SimClock& clock,
                     util::CounterRng stream);

  std::uint64_t resets() const { return resets_; }
  std::uint64_t s3_expiries() const { return s3_expiries_; }
  /// Security lockout currently in force (for tests).
  bool locked_out() const;
  /// Exclusive end of the current reboot silence window, or -1 when the
  /// ECU is up (see uds::Server::silent_until).
  util::SimTime silent_until() const { return silent_until_; }

  /// Invoked at the moment a spontaneous reboot starts. K-Line ECUs hook
  /// this to drop their wakeup state: after the boot the tester must issue
  /// a fresh fast-init/5-baud wakeup before any session restarts.
  void set_reset_hook(std::function<void()> hook) {
    reset_hook_ = std::move(hook);
  }

  /// Full response sequence for one request; exactly {handle(request)}
  /// unless faults are enabled.
  std::vector<util::Bytes> respond(std::span<const std::uint8_t> request);

  /// Bind to a transport (request in, responses out on the same link).
  void bind(util::MessageLink& link);

  bool session_started() const { return session_started_; }
  bool unlocked() const { return unlocked_; }

 private:
  util::Bytes handle_security_access(std::span<const std::uint8_t> req);

  std::map<std::uint8_t, LocalIdReader> local_ids_;
  std::map<std::uint8_t, IoHandler> io_local_;
  std::map<std::uint16_t, IoHandler> io_common_;
  util::Bytes identification_;
  std::vector<Dtc> dtcs_;
  bool session_started_ = false;
  std::function<util::Bytes(const util::Bytes&)> key_fn_;
  util::Bytes pending_seed_;
  bool unlocked_ = false;
  std::function<void()> reset_hook_;
  FaultProfile faults_;
  util::Rng fault_rng_;

  // Stateful-failure machinery; inert until enable_sessions/enable_resets.
  const util::SimClock* clock_ = nullptr;
  SessionProfile session_profile_;
  bool sessions_armed_ = false;
  ResetProfile reset_profile_;
  util::CounterRng reset_stream_;
  std::uint64_t reset_events_ = 0;  ///< non-silent requests seen so far
  bool resets_armed_ = false;
  util::SimTime last_activity_ = 0;
  util::SimTime silent_until_ = -1;
  util::SimTime lockout_until_ = -1;  ///< security lockout delay timer
  int key_attempts_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t s3_expiries_ = 0;
};

}  // namespace dpr::kwp
