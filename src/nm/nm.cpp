#include "nm/nm.hpp"

#include <bit>

namespace dpr::nm {

NmNode::NmNode(can::CanBus& bus, const NmConfig& config, std::uint8_t address,
               util::CounterRng jitter, OfflineFn offline, bool allow_sleep)
    : bus_(bus),
      config_(config),
      address_(address),
      jitter_(jitter),
      offline_(std::move(offline)),
      allow_sleep_(allow_sleep) {}

void NmNode::start() {
  if (started_) return;
  started_ = true;
  const util::SimTime now = bus_.clock().now();
  members_ = 1ull << address_;
  last_app_at_ = now;
  last_ring_at_ = now;
  // Alive announcements stagger by address (arbitration already orders NM
  // ids by address, but the stagger keeps startup traffic from one burst)
  // plus a sub-millisecond jitter draw from this node's counter stream.
  alive_at_ = now + address_ * util::kMillisecond +
              static_cast<util::SimTime>(jitter_.at(jitter_events_++)() %
                                         util::kMillisecond);
  // Deliberately match-all, NOT a filter on the NM id range: on_frame
  // treats every non-NM frame as application traffic that resets the
  // sleep countdown (last_app_at_ / sleep intent). A narrow filter would
  // blind the node to app activity and make the ring sleep under load.
  bus_.attach(
      [this](const can::CanFrame& frame, util::SimTime ts) {
        on_frame(frame, ts);
      },
      can::IdFilter::all());
  bus_.add_service([this](util::SimTime now) { service(now); });
}

std::uint8_t NmNode::successor() const {
  // Smallest member address strictly greater than ours; wraps to the
  // lowest member (possibly ourselves when we are the sole member).
  const std::uint64_t higher =
      address_ >= 63 ? 0 : members_ & ~((2ull << address_) - 1);
  const std::uint64_t pool = higher ? higher : members_;
  return static_cast<std::uint8_t>(std::countr_zero(pool));
}

std::uint8_t NmNode::lowest_member(std::uint64_t exclude_mask) const {
  const std::uint64_t pool = members_ & ~exclude_mask;
  if (pool == 0) return address_;
  return static_cast<std::uint8_t>(std::countr_zero(pool));
}

bool NmNode::want_sleep(util::SimTime now) const {
  return allow_sleep_ && !limp_ &&
         now - last_app_at_ >= config_.sleep_timeout;
}

void NmNode::send_nm(std::uint8_t dest, std::uint8_t opcode) {
  bus_.send(can::CanFrame(config_.base_id + address_, {dest, opcode}));
}

void NmNode::reset_ring() {
  holding_ = false;
  ring_started_ = false;
  sleep_armed_ = false;
  sleep_ind_ = 0;
  limp_ = false;
  alive_at_ = kNever;
  origin_at_ = kNever;
  token_release_at_ = kNever;
  next_limp_at_ = kNever;
  sleep_at_ = kNever;
}

void NmNode::wake(util::SimTime now) {
  asleep_ = false;
  reset_ring();
  members_ = 1ull << address_;
  last_app_at_ = now;
  last_ring_at_ = now;
  alive_at_ = now + address_ * util::kMillisecond +
              static_cast<util::SimTime>(jitter_.at(jitter_events_++)() %
                                         util::kMillisecond);
}

void NmNode::rejoin(util::SimTime now) {
  // Back from a reboot: state is factory-fresh; announce immediately so
  // the limp-home survivors can splice us back in and repair the ring.
  reset_ring();
  members_ = 1ull << address_;
  last_app_at_ = now;
  last_ring_at_ = now;
  alive_at_ = now;
}

void NmNode::service(util::SimTime now) {
  if (bus_.asleep()) {
    if (!asleep_) {
      asleep_ = true;
      reset_ring();
    }
    return;
  }
  if (asleep_) wake(now);
  if (offline_ && offline_(now)) {
    if (!was_offline_) {
      was_offline_ = true;
      reset_ring();
    }
    return;
  }
  if (was_offline_) {
    was_offline_ = false;
    rejoin(now);
  }

  if (alive_at_ != kNever && now >= alive_at_) {
    alive_at_ = kNever;
    send_nm(successor(), kOpAlive);
    ++stats_.alive_sent;
    // If nobody starts the token within ring_max, the lowest member does.
    origin_at_ = now + config_.ring_max;
  }
  if (origin_at_ != kNever && now >= origin_at_) {
    origin_at_ = kNever;
    if (!ring_started_ && lowest_member(0) == address_) {
      send_nm(successor(),
              static_cast<std::uint8_t>(
                  kOpRing | (want_sleep(now) ? kOpSleepInd : 0)));
      ++stats_.ring_sent;
    }
  }
  if (holding_ && now >= token_release_at_) {
    holding_ = false;
    token_release_at_ = kNever;
    send_nm(successor(),
            static_cast<std::uint8_t>(
                kOpRing | (want_sleep(now) ? kOpSleepInd : 0)));
    ++stats_.ring_sent;
  }
  if (ring_started_ && !limp_ && now - last_ring_at_ > config_.ring_max) {
    // The token holder vanished: limp-home until the ring is repaired.
    limp_ = true;
    holding_ = false;
    token_release_at_ = kNever;
    ++stats_.limp_episodes;
    next_limp_at_ = now;
  }
  if (limp_ && now >= next_limp_at_) {
    next_limp_at_ = now + config_.limp_period;
    send_nm(address_, kOpLimp);
    ++stats_.limp_sent;
  }
  if (want_sleep(now)) {
    sleep_ind_ |= 1ull << address_;
    if (!sleep_armed_ && (sleep_ind_ & members_) == members_) {
      // Every ring member indicated sleep: acknowledge and start the
      // countdown. Several nodes may ack in the same tick; arming is
      // idempotent on both the send and the receive side.
      sleep_armed_ = true;
      sleep_at_ = now + config_.sleep_countdown;
      send_nm(address_, kOpSleepAck);
      ++stats_.acks_sent;
    }
  } else {
    sleep_ind_ &= ~(1ull << address_);
  }
  if (sleep_armed_ && now >= sleep_at_) {
    bus_.sleep();
    asleep_ = true;
    reset_ring();
  }
}

void NmNode::on_frame(const can::CanFrame& frame, util::SimTime ts) {
  const std::uint32_t id = frame.id().value;
  const bool is_nm =
      id >= config_.base_id && id < config_.base_id + config_.id_span;
  if (!is_nm) {
    // Application traffic: the bus is in use, so cancel any sleep intent.
    last_app_at_ = ts;
    sleep_ind_ = 0;
    sleep_armed_ = false;
    sleep_at_ = kNever;
    return;
  }
  if (asleep_) wake(ts);  // any NM frame on a woken bus restarts us
  if (offline_ && offline_(ts)) return;  // rebooting ⇒ deaf
  if (frame.dlc() < 2) return;
  const auto sender = static_cast<std::uint8_t>(id - config_.base_id);
  const std::uint8_t dest = frame.byte(0);
  const std::uint8_t opcode = frame.byte(1);

  if (opcode & kOpWakeup) {
    // A wakeup announces that somebody (the tester) needs the bus: besides
    // waking a sleeping node (above), it restarts the quiet-bus timer so
    // the ring does not re-arm sleep for another sleep_timeout. The sender
    // is never enrolled as a ring member.
    last_app_at_ = ts;
    sleep_ind_ = 0;
    sleep_armed_ = false;
    sleep_at_ = kNever;
    return;
  }

  if (opcode & (kOpAlive | kOpRing | kOpLimp)) {
    members_ |= 1ull << sender;
    if (opcode & kOpSleepInd) {
      sleep_ind_ |= 1ull << sender;
    } else {
      sleep_ind_ &= ~(1ull << sender);
    }
  }
  if (opcode & kOpRing) {
    last_ring_at_ = ts;
    ring_started_ = true;
    origin_at_ = kNever;
    if (limp_) {
      limp_ = false;
      next_limp_at_ = kNever;
      ++stats_.ring_repairs;
    }
    if (dest == address_ && (sender != address_ || successor() == address_)) {
      // Token received (a sole member keeps passing to itself). A duplicate
      // token (two repairs raced) merges here: we are already holding, so
      // only one pass leaves.
      holding_ = true;
      token_release_at_ = ts + config_.ring_typ;
    }
  }
  if ((opcode & kOpAlive) && limp_ && sender != address_) {
    // A vanished member is back. The lowest surviving member (everyone
    // computes the same one from the shared members_ view) re-originates
    // the token deterministically.
    if (lowest_member(1ull << sender) == address_) {
      send_nm(successor(), kOpRing);
      ++stats_.ring_sent;
    }
  }
  if ((opcode & kOpSleepAck) && allow_sleep_ && !sleep_armed_) {
    sleep_armed_ = true;
    sleep_at_ = ts + config_.sleep_countdown;
  }
}

NmManager::NmManager(can::CanBus& bus, NmConfig config)
    : bus_(bus), config_(config) {
  bus_.enable_lifecycle(config_.base_id, config_.id_span);
}

NmNode& NmManager::add_node(std::uint8_t address, util::CounterRng jitter,
                            NmNode::OfflineFn offline, bool allow_sleep) {
  nodes_.push_back(std::make_unique<NmNode>(
      bus_, config_, address, jitter, std::move(offline), allow_sleep));
  nodes_.back()->start();
  return *nodes_.back();
}

NmStats NmManager::stats() const {
  NmStats total;
  total.sleeps = bus_.sleeps();
  total.wakeups = bus_.wakeups();
  total.frames_lost_to_sleep = bus_.frames_lost_to_sleep();
  for (const auto& node : nodes_) {
    const NmNodeStats& s = node->stats();
    total.limp_episodes += s.limp_episodes;
    total.ring_repairs += s.ring_repairs;
    total.nm_frames_sent +=
        s.alive_sent + s.ring_sent + s.limp_sent + s.acks_sent;
  }
  return total;
}

void send_wakeup(can::CanBus& bus, const NmConfig& config,
                 std::uint8_t address) {
  bus.send(can::CanFrame(config.base_id + address,
                         {0, kOpWakeup}));
}

}  // namespace dpr::nm
