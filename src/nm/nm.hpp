#pragma once
// OSEK/VDX direct network management on the simulated CAN bus.
//
// Real VW-family buses do not stay awake for free: every node runs an NM
// state machine, the nodes form a logical token ring in address order, and
// once every ring member has indicated "ready to sleep" the whole bus powers
// down until a wakeup frame arrives. A node that vanishes mid-ring (an ECU
// rebooting under a ResetProfile) drives the survivors into limp-home until
// it re-announces itself. The norly/revag-nm reverse engineering of the VW
// Golf gateway is the shape reference: NM frames live on their own id range
// (base + node address, so arbitration orders them by address), and carry
// [successor, opcode] payloads.
//
// Everything here is deterministic: timing runs on util::SimClock, the only
// nondeterminism (initial alive stagger jitter) draws from a salted
// util::CounterRng stream, and nodes act exclusively from CanBus service
// ticks and delivered frames — so a fleet campaign with NM armed replays
// bit-identically at any thread count and across interrupt/resume.

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "can/bus.hpp"
#include "util/clock.hpp"
#include "util/counter_rng.hpp"

namespace dpr::nm {

/// NM protocol timing and addressing. All times are sim-time.
struct NmConfig {
  std::uint32_t base_id = 0x420;  ///< NM CAN id = base + node address
  std::uint32_t id_span = 0x40;   ///< 6-bit NM address space
  util::SimTime ring_typ = 40 * util::kMillisecond;   ///< token hold time
  util::SimTime ring_max = 260 * util::kMillisecond;  ///< silence → limp-home
  util::SimTime limp_period = 100 * util::kMillisecond;  ///< limp re-announce
  util::SimTime sleep_timeout = 3 * util::kSecond;  ///< quiet bus → sleep.ind
  util::SimTime sleep_countdown = 500 * util::kMillisecond;  ///< ack → sleep
};

// NM payload layout: data[0] = destination/successor address,
// data[1] = opcode bits. A frame's sender is its CAN id minus base_id.
constexpr std::uint8_t kOpAlive = 0x01;     ///< node (re-)announces itself
constexpr std::uint8_t kOpRing = 0x02;      ///< token pass to data[0]
constexpr std::uint8_t kOpLimp = 0x04;      ///< limp-home heartbeat
constexpr std::uint8_t kOpSleepInd = 0x10;  ///< piggybacked "ready to sleep"
constexpr std::uint8_t kOpSleepAck = 0x20;  ///< ring agreed; countdown starts
constexpr std::uint8_t kOpWakeup = 0x40;    ///< pure wakeup, never a member

/// Per-node NM counters, all deterministic.
struct NmNodeStats {
  std::uint64_t alive_sent = 0;
  std::uint64_t ring_sent = 0;
  std::uint64_t limp_sent = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t limp_episodes = 0;  ///< normal → limp-home transitions
  std::uint64_t ring_repairs = 0;   ///< limp-home → normal transitions
};

/// One NM state machine. ECUs get one each (with an `offline` predicate
/// wired to their reboot window); a ring-mode diagnostic tool gets one with
/// `allow_sleep = false`, which vetoes the sleep agreement and keeps the
/// bus awake. start() attaches the node to the bus as a listener and a
/// service; all behavior happens from those two callbacks.
class NmNode {
 public:
  /// Returns true while the owning ECU is rebooting (deaf and mute).
  using OfflineFn = std::function<bool(util::SimTime now)>;

  NmNode(can::CanBus& bus, const NmConfig& config, std::uint8_t address,
         util::CounterRng jitter, OfflineFn offline = nullptr,
         bool allow_sleep = true);

  /// Attach to the bus and schedule the initial alive announcement
  /// (staggered by address plus a sub-millisecond jitter draw).
  void start();

  std::uint8_t address() const { return address_; }
  bool in_limp_home() const { return limp_; }
  bool asleep() const { return asleep_; }
  std::uint64_t members() const { return members_; }
  const NmNodeStats& stats() const { return stats_; }

  // Exposed for tests; production callers go through start().
  void service(util::SimTime now);
  void on_frame(const can::CanFrame& frame, util::SimTime ts);

 private:
  static constexpr util::SimTime kNever =
      std::numeric_limits<util::SimTime>::max();

  std::uint8_t successor() const;
  std::uint8_t lowest_member(std::uint64_t exclude_mask) const;
  bool want_sleep(util::SimTime now) const;
  void send_nm(std::uint8_t dest, std::uint8_t opcode);
  void wake(util::SimTime now);
  void rejoin(util::SimTime now);
  void reset_ring();

  can::CanBus& bus_;
  NmConfig config_;
  std::uint8_t address_;
  util::CounterRng jitter_;
  std::uint64_t jitter_events_ = 0;
  OfflineFn offline_;
  bool allow_sleep_;

  std::uint64_t members_ = 0;    ///< bit n set ⇔ address n known alive
  std::uint64_t sleep_ind_ = 0;  ///< members currently indicating sleep
  bool started_ = false;
  bool asleep_ = false;
  bool was_offline_ = false;
  bool limp_ = false;
  bool holding_ = false;       ///< we hold the ring token
  bool ring_started_ = false;  ///< any ring frame seen since (re)start
  bool sleep_armed_ = false;   ///< sleep.ack seen; countdown running
  util::SimTime alive_at_ = kNever;   ///< pending alive announcement
  util::SimTime origin_at_ = kNever;  ///< deadline to originate the token
  util::SimTime token_release_at_ = kNever;
  util::SimTime next_limp_at_ = kNever;
  util::SimTime sleep_at_ = kNever;
  util::SimTime last_ring_at_ = 0;
  util::SimTime last_app_at_ = 0;  ///< last non-NM frame on the bus
  NmNodeStats stats_;
};

/// Aggregated NM statistics for one campaign (vehicle nodes + bus).
struct NmStats {
  std::uint64_t sleeps = 0;               ///< coordinated bus sleeps
  std::uint64_t wakeups = 0;              ///< sleeping → awake transitions
  std::uint64_t frames_lost_to_sleep = 0;  ///< frames swallowed while asleep
  std::uint64_t limp_episodes = 0;
  std::uint64_t ring_repairs = 0;
  std::uint64_t nm_frames_sent = 0;
};

/// Owns the per-ECU NM nodes of one vehicle, arms the bus lifecycle, and
/// aggregates stats. The diagnostic tool's own node (ring mode) is owned by
/// the tool, not the manager.
class NmManager {
 public:
  NmManager(can::CanBus& bus, NmConfig config);

  /// Create and start a node. `jitter` must be a salted stream unique to
  /// this node (salt by address) so stagger draws never collide.
  NmNode& add_node(std::uint8_t address, util::CounterRng jitter,
                   NmNode::OfflineFn offline = nullptr,
                   bool allow_sleep = true);

  const NmConfig& config() const { return config_; }
  const std::vector<std::unique_ptr<NmNode>>& nodes() const { return nodes_; }
  NmStats stats() const;

 private:
  can::CanBus& bus_;
  NmConfig config_;
  std::vector<std::unique_ptr<NmNode>> nodes_;
};

/// Transmit a pure wakeup frame from `address`. The send itself wakes a
/// sleeping bus (see CanBus::send); receivers treat kOpWakeup as a wakeup
/// event only and never add the sender to the ring.
void send_wakeup(can::CanBus& bus, const NmConfig& config,
                 std::uint8_t address);

/// Salt base for per-node NM jitter streams: stream id is
/// kNmStreamSalt + node address (distinct from the 0x0D..0x0F server/reset
/// salt spaces and the bus-injector car salts).
constexpr std::uint64_t kNmStreamSalt = 0x1D000000ULL;

}  // namespace dpr::nm
