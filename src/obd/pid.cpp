#include "obd/pid.hpp"

#include <algorithm>
#include <cmath>

namespace dpr::obd {

namespace {

std::uint8_t clamp_byte(double v) {
  return static_cast<std::uint8_t>(
      std::clamp(std::llround(v), 0LL, 255LL));
}

PidSpec one_byte(std::uint8_t pid, std::string name, std::string unit,
                 std::string formula, double scale, double offset,
                 double min_v, double max_v) {
  PidSpec spec;
  spec.pid = pid;
  spec.name = std::move(name);
  spec.unit = std::move(unit);
  spec.data_bytes = 1;
  spec.formula = std::move(formula);
  spec.min_value = min_v;
  spec.max_value = max_v;
  spec.decode = [scale, offset](std::span<const std::uint8_t> d) {
    return static_cast<double>(d[0]) * scale + offset;
  };
  spec.encode = [scale, offset](double v) {
    return util::Bytes{clamp_byte((v - offset) / scale)};
  };
  return spec;
}

}  // namespace

const std::vector<PidSpec>& pid_table() {
  static const std::vector<PidSpec> table = [] {
    std::vector<PidSpec> t;

    // Table 5 row 1: absolute throttle position, Y = X / 2.55 (%).
    t.push_back(one_byte(0x11, "Absolute Throttle Position", "%", "X/2.55",
                         1.0 / 2.55, 0.0, 0.0, 100.0));
    // Table 5 row 2: calculated engine load, Y = X / 2.55 (%).
    t.push_back(one_byte(0x04, "Calculated Engine Load", "%", "X/2.55",
                         1.0 / 2.55, 0.0, 0.0, 100.0));
    // Table 5 row 3: fuel tank level input, Y = 100/255 * X (%).
    t.push_back(one_byte(0x2F, "Fuel Tank Level Input", "%", "0.392*X",
                         100.0 / 255.0, 0.0, 0.0, 100.0));
    // Table 5 row 4: engine RPM, Y = (256*X0 + X1) / 4.
    {
      PidSpec spec;
      spec.pid = 0x0C;
      spec.name = "Engine Speed";
      spec.unit = "rpm";
      spec.data_bytes = 2;
      spec.formula = "(256*X0+X1)/4";
      spec.min_value = 0.0;
      spec.max_value = 16383.75;
      spec.decode = [](std::span<const std::uint8_t> d) {
        return (256.0 * d[0] + d[1]) / 4.0;
      };
      spec.encode = [](double v) {
        const long long raw = std::clamp(std::llround(v * 4.0), 0LL, 65535LL);
        return util::Bytes{static_cast<std::uint8_t>(raw >> 8),
                           static_cast<std::uint8_t>(raw & 0xFF)};
      };
      t.push_back(spec);
    }
    // Table 5 row 5: vehicle speed, Y = X (km/h).
    t.push_back(one_byte(0x0D, "Vehicle Speed", "km/h", "X", 1.0, 0.0, 0.0,
                         255.0));
    // Table 5 row 6: engine coolant temperature, Y = X - 40 (degC).
    t.push_back(one_byte(0x05, "Engine Coolant Temperature", "degC", "X-40",
                         1.0, -40.0, -40.0, 215.0));
    // Table 5 row 7: intake manifold absolute pressure, Y = X (kPa).
    t.push_back(one_byte(0x0B, "Intake Manifold Absolute Pressure", "kPa",
                         "X", 1.0, 0.0, 0.0, 255.0));

    // Additional common mode-01 PIDs (used by the OBD-II app corpus and
    // the §9.4 alignment).
    t.push_back(one_byte(0x0F, "Intake Air Temperature", "degC", "X-40", 1.0,
                         -40.0, -40.0, 215.0));
    t.push_back(one_byte(0x0A, "Fuel Pressure", "kPa", "3*X", 3.0, 0.0, 0.0,
                         765.0));
    t.push_back(one_byte(0x33, "Absolute Barometric Pressure", "kPa", "X",
                         1.0, 0.0, 0.0, 255.0));
    t.push_back(one_byte(0x46, "Ambient Air Temperature", "degC", "X-40",
                         1.0, -40.0, -40.0, 215.0));
    t.push_back(one_byte(0x5C, "Engine Oil Temperature", "degC", "X-40", 1.0,
                         -40.0, -40.0, 215.0));
    {
      PidSpec spec;
      spec.pid = 0x10;
      spec.name = "MAF Air Flow Rate";
      spec.unit = "g/s";
      spec.data_bytes = 2;
      spec.formula = "(256*X0+X1)/100";
      spec.min_value = 0.0;
      spec.max_value = 655.35;
      spec.decode = [](std::span<const std::uint8_t> d) {
        return (256.0 * d[0] + d[1]) / 100.0;
      };
      spec.encode = [](double v) {
        const long long raw =
            std::clamp(std::llround(v * 100.0), 0LL, 65535LL);
        return util::Bytes{static_cast<std::uint8_t>(raw >> 8),
                           static_cast<std::uint8_t>(raw & 0xFF)};
      };
      t.push_back(spec);
    }
    {
      PidSpec spec;
      spec.pid = 0x42;
      spec.name = "Control Module Voltage";
      spec.unit = "V";
      spec.data_bytes = 2;
      spec.formula = "(256*X0+X1)/1000";
      spec.min_value = 0.0;
      spec.max_value = 65.535;
      spec.decode = [](std::span<const std::uint8_t> d) {
        return (256.0 * d[0] + d[1]) / 1000.0;
      };
      spec.encode = [](double v) {
        const long long raw =
            std::clamp(std::llround(v * 1000.0), 0LL, 65535LL);
        return util::Bytes{static_cast<std::uint8_t>(raw >> 8),
                           static_cast<std::uint8_t>(raw & 0xFF)};
      };
      t.push_back(spec);
    }
    t.push_back(one_byte(0x2C, "Commanded EGR", "%", "X/2.55", 1.0 / 2.55,
                         0.0, 0.0, 100.0));
    t.push_back(one_byte(0x45, "Relative Throttle Position", "%", "X/2.55",
                         1.0 / 2.55, 0.0, 0.0, 100.0));
    t.push_back(one_byte(0x0E, "Timing Advance", "deg", "X/2-64", 0.5, -64.0,
                         -64.0, 63.5));
    return t;
  }();
  return table;
}

std::optional<PidSpec> find_pid(std::uint8_t pid) {
  for (const auto& spec : pid_table()) {
    if (spec.pid == pid) return spec;
  }
  return std::nullopt;
}

util::Bytes encode_request(std::uint8_t pid) {
  return {kModeCurrentData, pid};
}

util::Bytes encode_response(std::uint8_t pid,
                            std::span<const std::uint8_t> data) {
  util::Bytes out{static_cast<std::uint8_t>(kModeCurrentData +
                                            kPositiveOffset),
                  pid};
  out.insert(out.end(), data.begin(), data.end());
  return out;
}

std::optional<Response> decode_response(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 3 ||
      payload[0] != kModeCurrentData + kPositiveOffset) {
    return std::nullopt;
  }
  Response resp;
  resp.pid = payload[1];
  resp.data.assign(payload.begin() + 2, payload.end());
  return resp;
}

std::optional<double> decode_value(std::span<const std::uint8_t> payload) {
  const auto resp = decode_response(payload);
  if (!resp) return std::nullopt;
  const auto spec = find_pid(resp->pid);
  if (!spec || resp->data.size() < spec->data_bytes) return std::nullopt;
  return spec->decode(
      std::span<const std::uint8_t>(resp->data.data(), spec->data_bytes));
}

}  // namespace dpr::obd
