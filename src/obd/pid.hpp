#pragma once
// OBD-II (SAE J1979) mode-01 parameter ids with their *documented* decode
// formulas. The standard formulas are the ground truth of §4.2 (Table 5)
// and drive the OBD-II-based clock alignment of §9.4.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/hex.hpp"

namespace dpr::obd {

constexpr std::uint8_t kModeCurrentData = 0x01;
constexpr std::uint8_t kPositiveOffset = 0x40;

struct PidSpec {
  std::uint8_t pid = 0;
  std::string name;
  std::string unit;
  std::size_t data_bytes = 1;
  std::string formula;  // human-readable ground truth, e.g. "X/2.55"
  double min_value = 0.0;
  double max_value = 0.0;
  /// raw bytes -> physical value
  std::function<double(std::span<const std::uint8_t>)> decode;
  /// physical value -> raw bytes (inverse, saturating at range edges)
  std::function<util::Bytes(double)> encode;
};

/// The modeled PID registry: includes the seven Table-5 PIDs (throttle
/// position 0x11, engine load 0x04, fuel level 0x2F, RPM 0x0C, vehicle
/// speed 0x0D, coolant temperature 0x05, intake pressure 0x0B) and other
/// common mode-01 PIDs.
const std::vector<PidSpec>& pid_table();

std::optional<PidSpec> find_pid(std::uint8_t pid);

/// Mode-01 request "01 <pid>".
util::Bytes encode_request(std::uint8_t pid);

/// Positive response "41 <pid> <data...>".
util::Bytes encode_response(std::uint8_t pid,
                            std::span<const std::uint8_t> data);

struct Response {
  std::uint8_t pid = 0;
  util::Bytes data;
};
std::optional<Response> decode_response(std::span<const std::uint8_t> payload);

/// Convenience: physical value of a response using the standard formula.
std::optional<double> decode_value(std::span<const std::uint8_t> payload);

}  // namespace dpr::obd
