#include "oemtp/bmw_framing.hpp"

#include <algorithm>
#include <stdexcept>

namespace dpr::oemtp {

std::vector<can::CanFrame> segment_bmw(can::CanId id, std::uint8_t ecu_id,
                                       std::span<const std::uint8_t> payload) {
  if (payload.empty()) {
    throw std::invalid_argument("BMW framing requires non-empty payload");
  }
  std::vector<can::CanFrame> frames;

  // Build the inner ISO-TP slices with a 6-byte budget for single frames
  // (one byte is consumed by the address). We reuse the standard ISO-TP
  // encoders on a 7-byte-wide virtual link, then prepend the address.
  auto wrap = [&](const can::CanFrame& inner) {
    util::Bytes data;
    data.push_back(ecu_id);
    auto span = inner.data();
    // Trim padding so the address + slice still fits 8 bytes.
    const std::size_t n = std::min<std::size_t>(span.size(), 7);
    data.insert(data.end(), span.begin(), span.begin() + static_cast<std::ptrdiff_t>(n));
    frames.push_back(can::CanFrame(id, data));
  };

  if (payload.size() <= 6) {
    wrap(isotp::encode_single(id, payload, /*pad=*/false));
    return frames;
  }

  // First frame carries 5 inner payload bytes (2 PCI + 5 data + address =
  // 8); consecutive frames carry 6 each (1 PCI + 6 data + address = 8).
  util::Bytes ff;
  ff.push_back(static_cast<std::uint8_t>(0x10 | (payload.size() >> 8)));
  ff.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
  ff.insert(ff.end(), payload.begin(), payload.begin() + 5);
  {
    util::Bytes data;
    data.push_back(ecu_id);
    data.insert(data.end(), ff.begin(), ff.end());
    frames.push_back(can::CanFrame(id, data));
  }
  std::uint8_t sequence = 1;
  for (std::size_t offset = 5; offset < payload.size(); offset += 6) {
    util::Bytes data;
    data.push_back(ecu_id);
    data.push_back(static_cast<std::uint8_t>(0x20 | (sequence & 0x0F)));
    const std::size_t n = std::min<std::size_t>(6, payload.size() - offset);
    data.insert(data.end(),
                payload.begin() + static_cast<std::ptrdiff_t>(offset),
                payload.begin() + static_cast<std::ptrdiff_t>(offset + n));
    frames.push_back(can::CanFrame(id, data));
    sequence = static_cast<std::uint8_t>((sequence + 1) & 0x0F);
  }
  return frames;
}

std::optional<std::uint8_t> bmw_target_ecu(const can::CanFrame& frame) {
  if (frame.dlc() < 2) return std::nullopt;
  return frame.byte(0);
}

std::optional<can::CanFrame> strip_address(const can::CanFrame& frame) {
  if (frame.dlc() < 2) return std::nullopt;
  auto data = frame.data();
  return can::CanFrame(frame.id(),
                       std::span<const std::uint8_t>(data.begin() + 1,
                                                     data.size() - 1));
}

std::optional<Reassembler::Message> Reassembler::feed(
    const can::CanFrame& frame) {
  const auto ecu = bmw_target_ecu(frame);
  const auto inner = strip_address(frame);
  if (!ecu || !inner) return std::nullopt;
  if (!inner_.in_progress()) current_ecu_ = *ecu;
  if (auto payload = inner_.feed(*inner)) {
    return Message{current_ecu_, std::move(*payload)};
  }
  return std::nullopt;
}

}  // namespace dpr::oemtp
