#pragma once
// BMW / Mini Cooper framing variant observed in §3.2 step 2: these
// vehicles do not put ISO 15765-2 PCI bytes first — the first byte of each
// CAN frame is the target ECU id, and the *remaining* bytes carry an
// ISO-TP-framed slice of the diagnostic message. Payload recovery must
// strip the address byte before reassembly ("we ignore the first byte and
// put the remaining bytes together").

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "can/frame.hpp"
#include "isotp/isotp.hpp"
#include "util/hex.hpp"

namespace dpr::oemtp {

/// Wrap an ISO-TP-style segmentation in BMW extended addressing: each
/// frame is [ecu_id, pci..., data...] (at most 7 ISO-TP bytes per frame,
/// since the address consumes one byte).
std::vector<can::CanFrame> segment_bmw(can::CanId id, std::uint8_t ecu_id,
                                       std::span<const std::uint8_t> payload);

/// The ECU id of a BMW-framed frame (first byte), if the frame is
/// plausibly BMW-framed (non-empty).
std::optional<std::uint8_t> bmw_target_ecu(const can::CanFrame& frame);

/// Strip the address byte, yielding the inner ISO-TP slice as a pseudo
/// CAN frame on the same id (ready for a standard isotp::Reassembler).
std::optional<can::CanFrame> strip_address(const can::CanFrame& frame);

/// Passive reassembler for BMW-framed traffic on one id: strips the
/// address byte and delegates to ISO-TP reassembly. Also reports the ECU
/// id the completed message was addressed to.
class Reassembler {
 public:
  struct Message {
    std::uint8_t ecu_id = 0;
    util::Bytes payload;
  };

  std::optional<Message> feed(const can::CanFrame& frame);
  void reset() { inner_.reset(); }

 private:
  isotp::Reassembler inner_;
  std::uint8_t current_ecu_ = 0;
};

}  // namespace dpr::oemtp
