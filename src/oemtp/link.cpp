#include "oemtp/link.hpp"

namespace dpr::oemtp {

BmwLink::BmwLink(can::CanBus& bus, BmwLinkConfig config)
    : bus_(bus), config_(config) {
  // Exact-id subscription; the id check stays for the extended flag and
  // the legacy full-fan-out path.
  bus_.attach(
      [this](const can::CanFrame& frame, util::SimTime) {
        if (frame.id() != config_.rx_id) return;
        if (auto message = reassembler_.feed(frame)) {
          if (message->ecu_id != config_.own_address) return;
          if (handler_) handler_(message->payload);
        }
      },
      can::IdFilter::exact(config_.rx_id));
}

void BmwLink::send(std::span<const std::uint8_t> payload) {
  for (auto& frame :
       segment_bmw(config_.tx_id, config_.peer_address, payload)) {
    bus_.send(frame);
  }
}

}  // namespace dpr::oemtp
