#pragma once
// MessageLink over the BMW first-byte-addressing framing: the tester
// transmits on a shared id (e.g. 0x6F1) with the target ECU id in byte 0;
// each ECU answers on its own id with the tester address in byte 0.

#include "can/bus.hpp"
#include "oemtp/bmw_framing.hpp"
#include "util/link.hpp"

namespace dpr::oemtp {

struct BmwLinkConfig {
  can::CanId tx_id;          // id this side transmits on
  can::CanId rx_id;          // id this side listens to
  std::uint8_t peer_address; // address byte written into outgoing frames
  std::uint8_t own_address;  // address byte expected on incoming frames
};

class BmwLink : public util::MessageLink {
 public:
  BmwLink(can::CanBus& bus, BmwLinkConfig config);

  BmwLink(const BmwLink&) = delete;
  BmwLink& operator=(const BmwLink&) = delete;

  void send(std::span<const std::uint8_t> payload) override;
  void set_message_handler(Handler handler) override {
    handler_ = std::move(handler);
  }

 private:
  can::CanBus& bus_;
  BmwLinkConfig config_;
  Handler handler_;
  Reassembler reassembler_;
};

}  // namespace dpr::oemtp
