#include "regress/regress.hpp"

#include <cmath>
#include <sstream>

namespace dpr::regress {

namespace {

/// Design-matrix row for the chosen basis.
std::vector<double> basis_row(std::span<const double> xs, bool polynomial) {
  std::vector<double> row;
  row.push_back(1.0);  // intercept
  for (double x : xs) row.push_back(x);
  if (polynomial) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      for (std::size_t j = i; j < xs.size(); ++j) {
        row.push_back(xs[i] * xs[j]);  // squares and cross terms
      }
    }
  }
  return row;
}

std::string basis_name(std::size_t index, std::size_t n_vars,
                       bool polynomial) {
  auto var = [n_vars](std::size_t v) {
    return n_vars <= 1 ? std::string("X") : "X" + std::to_string(v);
  };
  if (index == 0) return "";
  if (index <= n_vars) return var(index - 1);
  if (!polynomial) return "?";
  std::size_t k = n_vars + 1;
  for (std::size_t i = 0; i < n_vars; ++i) {
    for (std::size_t j = i; j < n_vars; ++j) {
      if (k == index) {
        return i == j ? var(i) + "^2" : var(i) + "*" + var(j);
      }
      ++k;
    }
  }
  return "?";
}

std::string render_formula(const std::vector<double>& coeffs,
                           std::size_t n_vars, bool polynomial) {
  std::ostringstream out;
  out.precision(4);
  out << "Y = ";
  bool first = true;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    const double c = coeffs[i];
    if (std::abs(c) < 1e-10) continue;
    const std::string name = basis_name(i, n_vars, polynomial);
    if (!first) out << (c >= 0 ? " + " : " - ");
    if (first && c < 0) out << "-";
    out << std::abs(c);
    if (!name.empty()) out << "*" << name;
    first = false;
  }
  if (first) out << "0";
  return out.str();
}

}  // namespace

std::optional<std::vector<double>> solve_least_squares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& ys) {
  if (rows.empty() || rows.size() != ys.size()) return std::nullopt;
  const std::size_t n = rows.front().size();
  // Ragged rows would read past the short ones below; reject them.
  for (const auto& row : rows) {
    if (row.size() != n) return std::nullopt;
  }

  // Normal equations: M = A^T A (n x n), v = A^T y.
  std::vector<std::vector<double>> m(n, std::vector<double>(n, 0.0));
  std::vector<double> v(n, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      v[i] += rows[r][i] * ys[r];
      for (std::size_t j = 0; j < n; ++j) {
        m[i][j] += rows[r][i] * rows[r][j];
      }
    }
  }
  // Ridge epsilon guards near-singular systems (constant columns).
  for (std::size_t i = 0; i < n; ++i) m[i][i] += 1e-9;

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(m[r][col]) > std::abs(m[pivot][col])) pivot = r;
    }
    if (std::abs(m[pivot][col]) < 1e-12) return std::nullopt;
    std::swap(m[col], m[pivot]);
    std::swap(v[col], v[pivot]);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = m[r][col] / m[col][col];
      for (std::size_t c = col; c < n; ++c) m[r][c] -= factor * m[col][c];
      v[r] -= factor * v[col];
    }
  }
  std::vector<double> solution(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = v[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= m[i][j] * solution[j];
    solution[i] = sum / m[i][i];
  }
  return solution;
}

namespace {

std::optional<FitResult> fit(const correlate::Dataset& dataset,
                             bool polynomial) {
  if (dataset.points.size() < 4) return std::nullopt;
  std::vector<std::vector<double>> rows;
  std::vector<double> ys;
  rows.reserve(dataset.points.size());
  for (const auto& p : dataset.points) {
    if (p.xs.size() != dataset.n_vars) continue;  // corrupt sample
    rows.push_back(basis_row(p.xs, polynomial));
    ys.push_back(p.y);
  }
  if (rows.size() < 4) return std::nullopt;
  const auto solution = solve_least_squares(rows, ys);
  if (!solution) return std::nullopt;

  FitResult result;
  result.coefficients = *solution;
  result.n_vars = dataset.n_vars;
  result.polynomial = polynomial;
  double total = 0.0;
  for (const auto& p : dataset.points) {
    total += std::abs(result.predict(p.xs) - p.y);
  }
  result.mae = total / static_cast<double>(dataset.points.size());
  result.formula =
      render_formula(result.coefficients, result.n_vars, polynomial);
  return result;
}

}  // namespace

double FitResult::predict(std::span<const double> xs) const {
  const auto row = basis_row(xs, polynomial);
  double y = 0.0;
  for (std::size_t i = 0; i < row.size() && i < coefficients.size(); ++i) {
    y += coefficients[i] * row[i];
  }
  return y;
}

std::optional<FitResult> fit_linear(const correlate::Dataset& dataset) {
  return fit(dataset, /*polynomial=*/false);
}

std::optional<FitResult> fit_polynomial(const correlate::Dataset& dataset) {
  return fit(dataset, /*polynomial=*/true);
}

double mean_relative_error(
    const FitResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth) {
  if (dataset.points.empty()) return 1e300;
  // Error scale: pointwise magnitude with a floor at 5% of the signal's
  // mean magnitude (so near-zero crossings don't explode the ratio and
  // tiny-valued signals aren't trivially "correct").
  double mean_abs = 0.0;
  for (const auto& p : dataset.points) mean_abs += std::abs(truth(p.xs));
  mean_abs /= static_cast<double>(dataset.points.size());
  const double floor_scale = std::max(1e-9, 0.05 * mean_abs);
  double total = 0.0;
  for (const auto& p : dataset.points) {
    const double predicted = result.predict(p.xs);
    const double expected = truth(p.xs);
    const double scale = std::max(floor_scale, std::abs(expected));
    total += std::abs(predicted - expected) / scale;
  }
  return total / static_cast<double>(dataset.points.size());
}

double max_relative_error(
    const FitResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth) {
  if (dataset.points.empty()) return 1e300;
  // Error scale: pointwise magnitude with a floor at 5% of the signal's
  // mean magnitude (so near-zero crossings don't explode the ratio and
  // tiny-valued signals aren't trivially "correct").
  double mean_abs = 0.0;
  for (const auto& p : dataset.points) mean_abs += std::abs(truth(p.xs));
  mean_abs /= static_cast<double>(dataset.points.size());
  const double floor_scale = std::max(1e-9, 0.05 * mean_abs);
  double worst = 0.0;
  for (const auto& p : dataset.points) {
    const double predicted = result.predict(p.xs);
    const double expected = truth(p.xs);
    const double scale = std::max(floor_scale, std::abs(expected));
    worst = std::max(worst, std::abs(predicted - expected) / scale);
  }
  return worst;
}

}  // namespace dpr::regress
