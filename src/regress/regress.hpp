#pragma once
// The alternative formula-inference algorithms of §4.4: multivariate
// linear regression (as used by LibreCAN) and degree-2 polynomial curve
// fitting with cross terms. Both solve ordinary least squares via the
// normal equations; both fail on the non-polynomial / outlier-laden cases
// GP handles, which is precisely Table 10's point.

#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "correlate/correlate.hpp"

namespace dpr::regress {

struct FitResult {
  /// Basis functions over the X operands and their fitted coefficients.
  std::vector<double> coefficients;
  std::size_t n_vars = 1;
  bool polynomial = false;   // false: affine; true: degree-2 with crosses
  double mae = 1e300;        // on the training data
  std::string formula;

  double predict(std::span<const double> xs) const;
};

/// Y = b0 + b1*X0 (+ b2*X1). Returns nullopt for degenerate systems.
std::optional<FitResult> fit_linear(const correlate::Dataset& dataset);

/// Y = b0 + sum bi*Xi + sum bij*Xi*Xj + sum bii*Xi^2.
std::optional<FitResult> fit_polynomial(const correlate::Dataset& dataset);

/// Same acceptance criteria as the gp module's, for Table 10.
double mean_relative_error(
    const FitResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth);

double max_relative_error(
    const FitResult& result, const correlate::Dataset& dataset,
    const std::function<double(std::span<const double>)>& truth);

/// Least-squares solve of (A^T A) b = A^T y with partial pivoting;
/// exposed for tests. Rows of `rows` are the design-matrix rows.
std::optional<std::vector<double>> solve_least_squares(
    const std::vector<std::vector<double>>& rows,
    const std::vector<double>& ys);

}  // namespace dpr::regress
