#include "screenshot/extract.hpp"

#include <cstdlib>
#include <map>

namespace dpr::screenshot {

std::optional<double> parse_value(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return v;
}

std::string strip_unit(const std::string& label) {
  const auto pos = label.rfind(" (");
  if (pos == std::string::npos) return label;
  if (label.back() != ')') return label;
  return label.substr(0, pos);
}

std::vector<UiSample> extract_samples(const cps::VideoRecording& video,
                                      cps::OcrEngine& ocr) {
  std::vector<UiSample> samples;
  for (const auto& frame : video.frames) {
    // Row -> (label text, value text) association by layout geometry.
    std::map<int, std::string> labels;
    std::map<int, std::string> values;
    for (const auto& region : frame.text_regions) {
      if (region.row < 0) continue;
      const std::string text = ocr.read(region.truth, region.font_px);
      // Value regions sit in the right half of the screen; labels left.
      if (region.bounds.x > frame.width / 2) {
        values[region.row] = text;
      } else if (!region.clickable) {
        labels[region.row] = text;
      }
    }
    for (const auto& [row, value_text] : values) {
      const auto label_it = labels.find(row);
      if (label_it == labels.end()) continue;
      UiSample sample;
      sample.timestamp = frame.timestamp;
      sample.row = row;
      sample.name = strip_unit(label_it->second);
      sample.value_text = value_text;
      sample.value = parse_value(value_text);
      samples.push_back(std::move(sample));
    }
  }
  return samples;
}

}  // namespace dpr::screenshot
