#pragma once
// Screenshot analysis, extraction half (§3.3): turn the recorded UI video
// into timestamped (signal name, displayed value) samples by running OCR
// over every frame and pairing label/value regions by layout row.

#include <optional>
#include <string>
#include <vector>

#include "cps/camera.hpp"
#include "cps/ocr.hpp"

namespace dpr::screenshot {

struct UiSample {
  util::SimTime timestamp = 0;      // video (camera-b device) timestamp
  int row = -1;                     // layout row (stable per signal)
  std::string name;                 // OCR'd signal label, unit stripped
  std::string value_text;           // OCR'd value as shown
  std::optional<double> value;      // parsed numeric value, if any
};

/// Extract all samples from a recorded video. Label and value regions are
/// associated by their layout row; the "(unit)" suffix is stripped from
/// names. Non-numeric values (enum states like "ON") yield nullopt.
std::vector<UiSample> extract_samples(const cps::VideoRecording& video,
                                      cps::OcrEngine& ocr);

/// Parse a displayed value; nullopt unless the whole string is numeric.
std::optional<double> parse_value(const std::string& text);

/// Strip a trailing " (unit)" from an OCR'd label.
std::string strip_unit(const std::string& label);

}  // namespace dpr::screenshot
