#include "screenshot/filter.hpp"

#include <cctype>
#include <cmath>
#include <map>

#include "util/stats.hpp"

namespace dpr::screenshot {

namespace {

bool name_has(const std::string& name, const char* keyword) {
  // Case-insensitive substring.
  std::string lower_name;
  lower_name.reserve(name.size());
  for (char c : name) {
    lower_name.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  std::string lower_key(keyword);
  for (char& c : lower_key) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return lower_name.find(lower_key) != std::string::npos;
}

}  // namespace

RangeLimits range_for(const std::string& name) {
  if (name_has(name, "engine speed") || name_has(name, "rpm")) {
    return {0.0, 20000.0};
  }
  if (name_has(name, "wheel speed") || name_has(name, "vehicle speed")) {
    return {0.0, 400.0};
  }
  if (name_has(name, "temperature")) return {-80.0, 1200.0};
  if (name_has(name, "voltage")) return {0.0, 100.0};
  if (name_has(name, "pressure")) return {-10.0, 5000.0};
  if (name_has(name, "angle")) return {-900.0, 900.0};
  if (name_has(name, "position") || name_has(name, "level") ||
      name_has(name, "throttle")) {
    return {-5.0, 150.0};
  }
  if (name_has(name, "torque")) return {-2000.0, 2000.0};
  return {-1e7, 1e7};  // generic guard against catastrophic misreads
}

std::vector<bool> outlier_mask(const std::vector<double>& values, double k) {
  std::vector<bool> keep(values.size(), true);
  if (values.size() < 4) return keep;
  const double med = util::median(values);
  double spread = util::mad(values);
  // Constant (or near-constant) series: allow small relative wiggle.
  if (spread < 1e-9) spread = std::max(1e-6, std::abs(med) * 0.05);
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::abs(values[i] - med) > k * spread) keep[i] = false;
  }
  return keep;
}

std::vector<UiSample> filter_samples(std::vector<UiSample> samples,
                                     FilterStats* stats, double mad_k) {
  FilterStats local;

  // Stage 1: range check on numeric samples.
  std::vector<UiSample> staged;
  staged.reserve(samples.size());
  for (auto& sample : samples) {
    if (!sample.value) {
      staged.push_back(std::move(sample));
      continue;
    }
    ++local.numeric_samples;
    const RangeLimits limits = range_for(sample.name);
    if (*sample.value < limits.lo || *sample.value > limits.hi) {
      ++local.range_rejected;
      continue;
    }
    staged.push_back(std::move(sample));
  }

  // Stage 2: per-signal outlier removal.
  std::map<std::string, std::vector<std::size_t>> by_name;
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (staged[i].value) by_name[staged[i].name].push_back(i);
  }
  std::vector<bool> keep(staged.size(), true);
  for (const auto& [name, indices] : by_name) {
    std::vector<double> values;
    values.reserve(indices.size());
    for (std::size_t i : indices) values.push_back(*staged[i].value);
    const auto mask = outlier_mask(values, mad_k);
    for (std::size_t j = 0; j < indices.size(); ++j) {
      if (!mask[j]) {
        keep[indices[j]] = false;
        ++local.outlier_rejected;
      }
    }
  }

  std::vector<UiSample> out;
  out.reserve(staged.size());
  for (std::size_t i = 0; i < staged.size(); ++i) {
    if (keep[i]) out.push_back(std::move(staged[i]));
  }
  if (stats) *stats = local;
  return out;
}

}  // namespace dpr::screenshot
