#pragma once
// Screenshot analysis, filtering half (§3.3): the two-stage removal of
// incorrect ESV values produced by OCR errors.
//   Stage 1 — a plausible value range per ESV type (keyword-derived, as a
//             stand-in for the per-PID tables the paper cites).
//   Stage 2 — outlier detection over each signal's short time window: the
//             measured ESV cannot change greatly within seconds, so values
//             far from the series median (in MAD units) are OCR artifacts.

#include <string>
#include <vector>

#include "screenshot/extract.hpp"

namespace dpr::screenshot {

struct RangeLimits {
  double lo = -1e9;
  double hi = 1e9;
};

/// Plausible physical range for an ESV, keyed on its (OCR'd) name.
RangeLimits range_for(const std::string& name);

struct FilterStats {
  std::size_t numeric_samples = 0;
  std::size_t range_rejected = 0;
  std::size_t outlier_rejected = 0;
};

/// Apply both stages per signal name. Non-numeric samples (enum states)
/// pass through untouched. `mad_k` is the outlier cut in MAD units.
std::vector<UiSample> filter_samples(std::vector<UiSample> samples,
                                     FilterStats* stats = nullptr,
                                     double mad_k = 10.0);

/// Stage-2 primitive, exposed for tests: keep values within
/// `k` * MAD of the median (with a relative floor for constant series).
std::vector<bool> outlier_mask(const std::vector<double>& values, double k);

}  // namespace dpr::screenshot
