#include "uds/client.hpp"

namespace dpr::uds {

Client::Client(util::MessageLink& link, std::function<void()> pump)
    : link_(link), pump_(std::move(pump)) {}

std::optional<util::Bytes> Client::transact(
    std::span<const std::uint8_t> request) {
  // (Re-)claim the link for this transaction: several protocol clients
  // (UDS + KWP on vehicles that mix 0x22 reads with 0x30 IO control) may
  // share one transport.
  link_.set_message_handler(
      [this](const util::Bytes& message) { inbox_ = message; });
  inbox_.reset();
  last_nrc_.reset();
  link_.send(request);
  pump_();
  if (inbox_) last_nrc_ = decode_negative_response(*inbox_);
  return inbox_;
}

bool Client::start_session(std::uint8_t session_type) {
  const auto resp = transact(encode_session_control(session_type));
  return resp &&
         is_positive_response(*resp, Service::kDiagnosticSessionControl);
}

bool Client::security_unlock(
    std::uint8_t level,
    const std::function<util::Bytes(const util::Bytes&)>& key_fn) {
  const auto seed_resp =
      transact(encode_security_access_seed_request(level));
  if (!seed_resp || !is_positive_response(*seed_resp,
                                          Service::kSecurityAccess)) {
    return false;
  }
  const util::Bytes seed(seed_resp->begin() + 2, seed_resp->end());
  const auto key_resp =
      transact(encode_security_access_send_key(level, key_fn(seed)));
  return key_resp &&
         is_positive_response(*key_resp, Service::kSecurityAccess);
}

std::optional<std::vector<DataRecord>> Client::read_data(
    std::span<const Did> dids,
    const std::function<std::optional<std::size_t>(Did)>& length_of) {
  const auto resp = transact(encode_read_data_by_identifier(dids));
  if (!resp) return std::nullopt;
  return decode_read_data_response(*resp, dids, length_of);
}

std::optional<util::Bytes> Client::io_control(
    Did did, IoControlParameter param,
    std::span<const std::uint8_t> control_state) {
  const auto resp = transact(encode_io_control(did, param, control_state));
  if (!resp || !is_positive_response(*resp, Service::kIoControlByIdentifier)) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 4, resp->end());
}

}  // namespace dpr::uds
