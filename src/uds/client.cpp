#include "uds/client.hpp"

namespace dpr::uds {

Client::Client(util::MessageLink& link, std::function<void()> pump,
               util::TransactPolicy policy, util::SimClock* clock)
    : link_(link), pump_(std::move(pump)), policy_(policy), clock_(clock) {}

void Client::backoff(util::SimTime delay) {
  if (clock_ != nullptr && delay > 0) clock_->advance(delay);
}

std::optional<util::Bytes> Client::transact(
    std::span<const std::uint8_t> request) {
  // (Re-)claim the link for this transaction: several protocol clients
  // (UDS + KWP on vehicles that mix 0x22 reads with 0x30 IO control) may
  // share one transport.
  link_.set_message_handler(
      [this](const util::Bytes& message) { inbox_.push_back(message); });
  last_nrc_.reset();
  ++stats_.transactions;

  for (int attempt = 0;; ++attempt) {
    inbox_.clear();  // stale answers from a previous attempt are void
    link_.send(request);
    pump_();

    // Scan everything the pump delivered: absorb 0x78 responsePending
    // markers (the real answer follows in the same drained queue, or was
    // lost), keep the last substantive message — matching the legacy
    // last-write-wins inbox semantics.
    bool busy = false;
    int pending = 0;
    std::optional<util::Bytes> final;
    for (auto& message : inbox_) {
      const auto neg = decode_negative_response(message);
      if (neg && neg->nrc == Nrc::kResponsePending) {
        ++stats_.pending_waits;
        if (++pending <= policy_.max_pending_waits) continue;
      }
      busy = neg && neg->nrc == Nrc::kBusyRepeatRequest;
      final = std::move(message);
    }
    inbox_.clear();

    if (final && !busy) {
      last_nrc_ = decode_negative_response(*final);
      return final;
    }
    if (attempt >= policy_.max_retries) {
      ++stats_.failures;
      if (final) last_nrc_ = decode_negative_response(*final);
      return busy ? std::move(final) : std::nullopt;
    }
    if (busy) {
      ++stats_.busy_retries;
      backoff(policy_.p2_star);
    } else {
      ++stats_.retries;
      backoff(policy_.p2);
    }
  }
}

bool Client::start_session(std::uint8_t session_type) {
  const auto resp = transact(encode_session_control(session_type));
  return resp &&
         is_positive_response(*resp, Service::kDiagnosticSessionControl);
}

bool Client::tester_present(bool suppress) {
  if (suppress) {
    // Fire-and-forget: no response is coming, so the retry loop would
    // only burn its timeout budget. Claim the link, send, drain.
    link_.set_message_handler(
        [this](const util::Bytes& message) { inbox_.push_back(message); });
    link_.send(encode_tester_present(true));
    pump_();
    inbox_.clear();
    return true;
  }
  const auto resp = transact(encode_tester_present(false));
  return resp && is_positive_response(*resp, Service::kTesterPresent);
}

bool Client::security_unlock(
    std::uint8_t level,
    const std::function<util::Bytes(const util::Bytes&)>& key_fn) {
  const auto seed_resp =
      transact(encode_security_access_seed_request(level));
  if (!seed_resp || !is_positive_response(*seed_resp,
                                          Service::kSecurityAccess)) {
    return false;
  }
  // Positive format is [0x67, level, seed...]; a truncated (corrupted)
  // response must not be sliced past its end.
  if (seed_resp->size() < 3) return false;
  const util::Bytes seed(seed_resp->begin() + 2, seed_resp->end());
  const auto key_resp =
      transact(encode_security_access_send_key(level, key_fn(seed)));
  return key_resp &&
         is_positive_response(*key_resp, Service::kSecurityAccess);
}

std::optional<std::vector<DataRecord>> Client::read_data(
    std::span<const Did> dids,
    const std::function<std::optional<std::size_t>(Did)>& length_of) {
  const auto resp = transact(encode_read_data_by_identifier(dids));
  if (!resp) return std::nullopt;
  return decode_read_data_response(*resp, dids, length_of);
}

std::optional<util::Bytes> Client::io_control(
    Did did, IoControlParameter param,
    std::span<const std::uint8_t> control_state) {
  const auto resp = transact(encode_io_control(did, param, control_state));
  // Positive format is [0x6F, did hi, did lo, param, state...].
  if (!resp || !is_positive_response(*resp, Service::kIoControlByIdentifier) ||
      resp->size() < 4) {
    return std::nullopt;
  }
  return util::Bytes(resp->begin() + 4, resp->end());
}

}  // namespace dpr::uds
