#pragma once
// UDS client: the tester side (professional diagnostic tool). Sends one
// request at a time over a MessageLink and hands back the peer's response.
//
// The simulated bus is drained explicitly by the caller, so `transact`
// takes a pump callback that pushes the bus until the response arrives.
// With a resilient TransactPolicy the client also rides out faults: it
// absorbs NRC 0x78 responsePending, backs off and resends after NRC 0x21
// busyRepeatRequest, and retries a bounded number of times when a request
// or response was lost on the wire. The default policy performs exactly
// one send-and-pump, keeping fault-free runs bit-identical.

#include <deque>
#include <functional>
#include <optional>

#include "uds/message.hpp"
#include "util/clock.hpp"
#include "util/link.hpp"
#include "util/transact.hpp"

namespace dpr::uds {

class Client {
 public:
  /// `pump` must advance the underlying medium until pending traffic has
  /// been delivered (e.g. [&]{ bus.deliver_pending(); }). `clock`, when
  /// given, lets retry backoffs advance simulated time; without it the
  /// retry loop still works but backs off zero time.
  Client(util::MessageLink& link, std::function<void()> pump,
         util::TransactPolicy policy = {}, util::SimClock* clock = nullptr);

  /// Send a raw request and wait for the response (pumping the medium and
  /// retrying per the policy). Returns nullopt if every attempt timed out.
  std::optional<util::Bytes> transact(std::span<const std::uint8_t> request);

  /// --- Convenience wrappers over the §2.3.2 services --------------------

  bool start_session(std::uint8_t session_type);

  /// 0x3E keepalive. The suppressed form (the supervisor's steady-state
  /// keepalive) sends and pumps without expecting any response; the
  /// non-suppressed form doubles as an is-the-ECU-back liveness probe and
  /// reports whether a positive response arrived.
  bool tester_present(bool suppress = false);

  /// 0x27 seed/key handshake with the given key derivation.
  bool security_unlock(
      std::uint8_t level,
      const std::function<util::Bytes(const util::Bytes&)>& key_fn);

  /// 0x22 for several DIDs; parses the response with the tool's knowledge
  /// of each DID's data length.
  std::optional<std::vector<DataRecord>> read_data(
      std::span<const Did> dids,
      const std::function<std::optional<std::size_t>(Did)>& length_of);

  /// 0x2F: returns the control-status bytes of a positive response.
  std::optional<util::Bytes> io_control(
      Did did, IoControlParameter param,
      std::span<const std::uint8_t> control_state = {});

  /// Last negative response seen (if the latest transact got a 0x7F).
  std::optional<NegativeResponse> last_negative() const { return last_nrc_; }

  const util::TransactStats& stats() const { return stats_; }

 private:
  void backoff(util::SimTime delay);

  util::MessageLink& link_;
  std::function<void()> pump_;
  util::TransactPolicy policy_;
  util::SimClock* clock_ = nullptr;
  std::deque<util::Bytes> inbox_;
  std::optional<NegativeResponse> last_nrc_;
  util::TransactStats stats_;
};

}  // namespace dpr::uds
