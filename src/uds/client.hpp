#pragma once
// UDS client: the tester side (professional diagnostic tool). Sends one
// request at a time over a MessageLink and hands back the peer's response.
//
// The simulated bus is drained explicitly by the caller, so `transact`
// takes a pump callback that pushes the bus until the response arrives.

#include <functional>
#include <optional>

#include "uds/message.hpp"
#include "util/link.hpp"

namespace dpr::uds {

class Client {
 public:
  /// `pump` must advance the underlying medium until pending traffic has
  /// been delivered (e.g. [&]{ bus.deliver_pending(); }).
  Client(util::MessageLink& link, std::function<void()> pump);

  /// Send a raw request and wait for the response (pumping the medium).
  /// Returns nullopt if no response arrived.
  std::optional<util::Bytes> transact(std::span<const std::uint8_t> request);

  /// --- Convenience wrappers over the §2.3.2 services --------------------

  bool start_session(std::uint8_t session_type);

  /// 0x27 seed/key handshake with the given key derivation.
  bool security_unlock(
      std::uint8_t level,
      const std::function<util::Bytes(const util::Bytes&)>& key_fn);

  /// 0x22 for several DIDs; parses the response with the tool's knowledge
  /// of each DID's data length.
  std::optional<std::vector<DataRecord>> read_data(
      std::span<const Did> dids,
      const std::function<std::optional<std::size_t>(Did)>& length_of);

  /// 0x2F: returns the control-status bytes of a positive response.
  std::optional<util::Bytes> io_control(
      Did did, IoControlParameter param,
      std::span<const std::uint8_t> control_state = {});

  /// Last negative response seen (if the latest transact got a 0x7F).
  std::optional<NegativeResponse> last_negative() const { return last_nrc_; }

 private:
  util::MessageLink& link_;
  std::function<void()> pump_;
  std::optional<util::Bytes> inbox_;
  std::optional<NegativeResponse> last_nrc_;
};

}  // namespace dpr::uds
