#include "uds/message.hpp"

#include <array>
#include <stdexcept>

namespace dpr::uds {

namespace {
constexpr std::uint8_t sid(Service s) { return static_cast<std::uint8_t>(s); }
}  // namespace

util::Bytes encode_session_control(std::uint8_t session_type) {
  return {sid(Service::kDiagnosticSessionControl), session_type};
}

util::Bytes encode_tester_present(bool suppress) {
  return {sid(Service::kTesterPresent),
          static_cast<std::uint8_t>(suppress ? kSuppressPositiveResponse
                                             : 0x00)};
}

util::Bytes encode_ecu_reset(std::uint8_t reset_type) {
  return {sid(Service::kEcuReset), reset_type};
}

util::Bytes encode_security_access_seed_request(std::uint8_t level) {
  return {sid(Service::kSecurityAccess), level};
}

util::Bytes encode_security_access_send_key(
    std::uint8_t level, std::span<const std::uint8_t> key) {
  util::Bytes out{sid(Service::kSecurityAccess),
                  static_cast<std::uint8_t>(level + 1)};
  out.insert(out.end(), key.begin(), key.end());
  return out;
}

util::Bytes encode_read_data_by_identifier(std::span<const Did> dids) {
  if (dids.empty()) {
    throw std::invalid_argument("0x22 request requires at least one DID");
  }
  util::Bytes out{sid(Service::kReadDataByIdentifier)};
  for (Did did : dids) util::append_u16(out, did);
  return out;
}

util::Bytes encode_io_control(Did did, IoControlParameter param,
                              std::span<const std::uint8_t> control_state) {
  util::Bytes out{sid(Service::kIoControlByIdentifier)};
  util::append_u16(out, did);
  out.push_back(static_cast<std::uint8_t>(param));
  out.insert(out.end(), control_state.begin(), control_state.end());
  return out;
}

util::Bytes encode_negative_response(Service service, Nrc nrc) {
  return {kNegativeResponseSid, sid(service), static_cast<std::uint8_t>(nrc)};
}

util::Bytes encode_read_data_response(std::span<const DataRecord> records) {
  util::Bytes out{static_cast<std::uint8_t>(
      sid(Service::kReadDataByIdentifier) + kPositiveOffset)};
  for (const auto& rec : records) {
    util::append_u16(out, rec.did);
    out.insert(out.end(), rec.data.begin(), rec.data.end());
  }
  return out;
}

util::Bytes encode_io_control_response(Did did, IoControlParameter param,
                                       std::span<const std::uint8_t> state) {
  util::Bytes out{static_cast<std::uint8_t>(
      sid(Service::kIoControlByIdentifier) + kPositiveOffset)};
  util::append_u16(out, did);
  out.push_back(static_cast<std::uint8_t>(param));
  out.insert(out.end(), state.begin(), state.end());
  return out;
}

std::optional<NegativeResponse> decode_negative_response(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 3 || payload[0] != kNegativeResponseSid) {
    return std::nullopt;
  }
  return NegativeResponse{payload[1], static_cast<Nrc>(payload[2])};
}

bool is_positive_response(std::span<const std::uint8_t> payload,
                          Service service) {
  return !payload.empty() &&
         payload[0] == static_cast<std::uint8_t>(sid(service) +
                                                 kPositiveOffset);
}

std::optional<std::vector<Did>> decode_read_data_request(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 3 || payload[0] != sid(Service::kReadDataByIdentifier))
    return std::nullopt;
  if ((payload.size() - 1) % 2 != 0) return std::nullopt;
  std::vector<Did> dids;
  for (std::size_t i = 1; i + 1 < payload.size(); i += 2) {
    dids.push_back(util::read_u16(payload, i));
  }
  return dids;
}

std::optional<std::vector<DataRecord>> decode_read_data_response(
    std::span<const std::uint8_t> payload, std::span<const Did> requested,
    const std::function<std::optional<std::size_t>(Did)>& length_of) {
  if (!is_positive_response(payload, Service::kReadDataByIdentifier)) {
    return std::nullopt;
  }
  std::vector<DataRecord> records;
  std::size_t pos = 1;
  for (Did expected : requested) {
    if (pos + 2 > payload.size()) return std::nullopt;
    const Did did = util::read_u16(payload, pos);
    if (did != expected) return std::nullopt;
    pos += 2;
    const auto len = length_of(did);
    if (!len || pos + *len > payload.size()) return std::nullopt;
    records.push_back(DataRecord{
        did, util::Bytes(payload.begin() + static_cast<std::ptrdiff_t>(pos),
                         payload.begin() +
                             static_cast<std::ptrdiff_t>(pos + *len))});
    pos += *len;
  }
  if (pos != payload.size()) return std::nullopt;
  return records;
}

std::optional<IoControlRequest> decode_io_control_request(
    std::span<const std::uint8_t> payload) {
  if (payload.size() < 4 || payload[0] != sid(Service::kIoControlByIdentifier))
    return std::nullopt;
  if (payload[3] > 0x03) return std::nullopt;
  IoControlRequest req;
  req.did = util::read_u16(payload, 1);
  req.param = static_cast<IoControlParameter>(payload[3]);
  req.control_state.assign(payload.begin() + 4, payload.end());
  return req;
}

std::string service_name(std::uint8_t s) {
  switch (s) {
    case 0x10:
      return "DiagnosticSessionControl";
    case 0x11:
      return "ECUReset";
    case 0x22:
      return "ReadDataByIdentifier";
    case 0x27:
      return "SecurityAccess";
    case 0x2F:
      return "InputOutputControlByIdentifier";
    case 0x31:
      return "RoutineControl";
    case 0x3E:
      return "TesterPresent";
    default:
      return "Service_0x" + util::to_hex(std::array<std::uint8_t, 1>{s});
  }
}

std::string nrc_name(Nrc nrc) {
  switch (nrc) {
    case Nrc::kGeneralReject:
      return "generalReject";
    case Nrc::kServiceNotSupported:
      return "serviceNotSupported";
    case Nrc::kSubFunctionNotSupported:
      return "subFunctionNotSupported";
    case Nrc::kIncorrectMessageLength:
      return "incorrectMessageLengthOrInvalidFormat";
    case Nrc::kConditionsNotCorrect:
      return "conditionsNotCorrect";
    case Nrc::kRequestSequenceError:
      return "requestSequenceError";
    case Nrc::kRequestOutOfRange:
      return "requestOutOfRange";
    case Nrc::kSecurityAccessDenied:
      return "securityAccessDenied";
    case Nrc::kInvalidKey:
      return "invalidKey";
    case Nrc::kExceedNumberOfAttempts:
      return "exceedNumberOfAttempts";
    case Nrc::kRequiredTimeDelayNotExpired:
      return "requiredTimeDelayNotExpired";
    case Nrc::kBusyRepeatRequest:
      return "busyRepeatRequest";
    case Nrc::kResponsePending:
      return "requestCorrectlyReceived-ResponsePending";
    case Nrc::kServiceNotSupportedInActiveSession:
      return "serviceNotSupportedInActiveSession";
  }
  return "unknownNrc";
}

}  // namespace dpr::uds
