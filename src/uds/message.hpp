#pragma once
// UDS (ISO 14229) message encoding/decoding for the services DP-Reverser
// targets (§2.3.2): ReadDataByIdentifier (0x22), InputOutputControlByIdentifier
// (0x2F), plus the session/keep-alive/security services a real diagnostic
// session uses around them.

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/hex.hpp"

namespace dpr::uds {

/// Service identifiers (requests). Positive responses are sid + 0x40.
enum class Service : std::uint8_t {
  kDiagnosticSessionControl = 0x10,
  kEcuReset = 0x11,
  kSecurityAccess = 0x27,
  kTesterPresent = 0x3E,
  kReadDataByIdentifier = 0x22,
  kIoControlByIdentifier = 0x2F,
  kRoutineControl = 0x31,
};

constexpr std::uint8_t kPositiveOffset = 0x40;
constexpr std::uint8_t kNegativeResponseSid = 0x7F;

/// Negative response codes (ISO 14229-1 annex A).
enum class Nrc : std::uint8_t {
  kGeneralReject = 0x10,
  kServiceNotSupported = 0x11,
  kSubFunctionNotSupported = 0x12,
  kIncorrectMessageLength = 0x13,
  kBusyRepeatRequest = 0x21,
  kConditionsNotCorrect = 0x22,
  kRequestSequenceError = 0x24,
  kRequestOutOfRange = 0x31,
  kSecurityAccessDenied = 0x33,
  kInvalidKey = 0x35,
  kExceedNumberOfAttempts = 0x36,
  kRequiredTimeDelayNotExpired = 0x37,
  kResponsePending = 0x78,  // requestCorrectlyReceived-ResponsePending
  kServiceNotSupportedInActiveSession = 0x7F,
};

/// Sub-function bit: the server performs the action but sends no positive
/// response (ISO 14229-1 §8.2.2); TesterPresent keepalives use it.
constexpr std::uint8_t kSuppressPositiveResponse = 0x80;

/// IO-control parameters (first ECR byte, §4.5).
enum class IoControlParameter : std::uint8_t {
  kReturnControlToEcu = 0x00,
  kResetToDefault = 0x01,
  kFreezeCurrentState = 0x02,
  kShortTermAdjustment = 0x03,
};

using Did = std::uint16_t;

/// --- Request encoders -----------------------------------------------------

util::Bytes encode_session_control(std::uint8_t session_type);
/// 0x3E. `suppress` sets the suppressPositiveResponse bit (keepalive form).
util::Bytes encode_tester_present(bool suppress = false);
util::Bytes encode_ecu_reset(std::uint8_t reset_type);
util::Bytes encode_security_access_seed_request(std::uint8_t level);
util::Bytes encode_security_access_send_key(std::uint8_t level,
                                            std::span<const std::uint8_t> key);

/// 0x22 with one or more DIDs (Fig. 5).
util::Bytes encode_read_data_by_identifier(std::span<const Did> dids);

/// 0x2F: DID + IO control parameter + optional control state (Fig. 4).
util::Bytes encode_io_control(Did did, IoControlParameter param,
                              std::span<const std::uint8_t> control_state = {});

/// --- Response encoders (ECU side) ------------------------------------------

util::Bytes encode_negative_response(Service service, Nrc nrc);

/// 0x62 response: each record is (DID, raw ESV bytes), emitted in request
/// order — the property §3.2 step 3 exploits.
struct DataRecord {
  Did did = 0;
  util::Bytes data;
};
util::Bytes encode_read_data_response(std::span<const DataRecord> records);

util::Bytes encode_io_control_response(Did did, IoControlParameter param,
                                       std::span<const std::uint8_t> state = {});

/// --- Decoders ---------------------------------------------------------------

struct NegativeResponse {
  std::uint8_t requested_sid = 0;
  Nrc nrc = Nrc::kGeneralReject;
};
std::optional<NegativeResponse> decode_negative_response(
    std::span<const std::uint8_t> payload);

bool is_positive_response(std::span<const std::uint8_t> payload,
                          Service service);

/// DIDs listed in a 0x22 request.
std::optional<std::vector<Did>> decode_read_data_request(
    std::span<const std::uint8_t> payload);

/// Parse a 0x62 response given the DID order of the request and a callback
/// that reports each DID's data length (the proprietary knowledge a real
/// diagnostic tool has, and DP-Reverser reverse engineers).
std::optional<std::vector<DataRecord>> decode_read_data_response(
    std::span<const std::uint8_t> payload, std::span<const Did> requested,
    const std::function<std::optional<std::size_t>(Did)>& length_of);

struct IoControlRequest {
  Did did = 0;
  IoControlParameter param = IoControlParameter::kReturnControlToEcu;
  util::Bytes control_state;
};
std::optional<IoControlRequest> decode_io_control_request(
    std::span<const std::uint8_t> payload);

std::string service_name(std::uint8_t sid);
std::string nrc_name(Nrc nrc);

}  // namespace dpr::uds
