#include "uds/server.hpp"

#include <algorithm>

namespace dpr::uds {

void Server::add_did(Did did, std::size_t length, DidReader reader) {
  dids_[did] = DidEntry{length, std::move(reader)};
}

void Server::add_io_did(Did did, IoHandler handler, bool requires_session) {
  io_dids_[did] = IoEntry{std::move(handler), requires_session};
}

void Server::add_dtc(std::uint32_t code, std::uint8_t status) {
  dtcs_.push_back(Dtc{code & 0xFFFFFF, status});
}

void Server::enable_security(
    std::function<util::Bytes(const util::Bytes&)> key_fn) {
  key_fn_ = std::move(key_fn);
  unlocked_ = false;
}

void Server::bind(util::MessageLink& link) {
  link.set_message_handler([this, &link](const util::Bytes& request) {
    for (const util::Bytes& response : respond(request)) {
      link.send(response);
    }
  });
}

void Server::enable_faults(const FaultProfile& profile, util::Rng rng) {
  faults_ = profile;
  fault_rng_ = rng;
}

std::vector<util::Bytes> Server::respond(
    std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  std::vector<util::Bytes> responses;
  if (faults_.enabled()) {
    const auto sid = static_cast<Service>(request[0]);
    if (faults_.busy_rate > 0.0 && fault_rng_.chance(faults_.busy_rate)) {
      // Busy ECUs refuse without processing; the tester must resend.
      responses.push_back(
          encode_negative_response(sid, Nrc::kBusyRepeatRequest));
      return responses;
    }
    if (faults_.pending_rate > 0.0 &&
        fault_rng_.chance(faults_.pending_rate)) {
      const auto n = fault_rng_.uniform_int(
          1, std::max(1, faults_.max_pending));
      for (std::int64_t i = 0; i < n; ++i) {
        responses.push_back(
            encode_negative_response(sid, Nrc::kResponsePending));
      }
    }
  }
  util::Bytes answer = handle(request);
  if (!answer.empty()) responses.push_back(std::move(answer));
  return responses;
}

util::Bytes Server::handle(std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  ++request_counts_[request[0]];
  switch (request[0]) {
    case 0x10:
      return handle_session_control(request);
    case 0x11:
      return handle_ecu_reset(request);
    case 0x14:
      return handle_clear_dtc(request);
    case 0x19:
      return handle_read_dtc(request);
    case 0x22:
      return handle_read_data(request);
    case 0x27:
      return handle_security_access(request);
    case 0x2F:
      return handle_io_control(request);
    case 0x3E:
      return handle_tester_present(request);
    default:
      return encode_negative_response(static_cast<Service>(request[0]),
                                      Nrc::kServiceNotSupported);
  }
}

util::Bytes Server::handle_session_control(
    std::span<const std::uint8_t> req) {
  if (req.size() != 2) {
    return encode_negative_response(Service::kDiagnosticSessionControl,
                                    Nrc::kIncorrectMessageLength);
  }
  if (req[1] == 0x00 || req[1] > 0x04) {
    return encode_negative_response(Service::kDiagnosticSessionControl,
                                    Nrc::kSubFunctionNotSupported);
  }
  session_ = req[1];
  if (session_ == 0x01) unlocked_ = false;  // default session re-locks
  return {static_cast<std::uint8_t>(0x10 + kPositiveOffset), req[1],
          0x00, 0x32, 0x01, 0xF4};  // P2/P2* timing record
}

util::Bytes Server::handle_tester_present(
    std::span<const std::uint8_t> req) {
  if (req.size() != 2 || req[1] != 0x00) {
    return encode_negative_response(Service::kTesterPresent,
                                    Nrc::kSubFunctionNotSupported);
  }
  return {static_cast<std::uint8_t>(0x3E + kPositiveOffset), 0x00};
}

util::Bytes Server::handle_ecu_reset(std::span<const std::uint8_t> req) {
  if (req.size() != 2) {
    return encode_negative_response(Service::kEcuReset,
                                    Nrc::kIncorrectMessageLength);
  }
  session_ = 0x01;
  unlocked_ = false;
  return {static_cast<std::uint8_t>(0x11 + kPositiveOffset), req[1]};
}

util::Bytes Server::handle_security_access(
    std::span<const std::uint8_t> req) {
  if (!key_fn_) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kServiceNotSupported);
  }
  if (req.size() < 2) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kIncorrectMessageLength);
  }
  const std::uint8_t level = req[1];
  if (level % 2 == 1) {  // requestSeed
    pending_seed_ = {0x12, 0x34, 0x56, 0x78};
    util::Bytes out{static_cast<std::uint8_t>(0x27 + kPositiveOffset), level};
    out.insert(out.end(), pending_seed_.begin(), pending_seed_.end());
    return out;
  }
  // sendKey
  if (pending_seed_.empty()) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kRequestSequenceError);
  }
  const util::Bytes expected = key_fn_(pending_seed_);
  const util::Bytes provided(req.begin() + 2, req.end());
  pending_seed_.clear();
  if (provided != expected) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kInvalidKey);
  }
  unlocked_ = true;
  return {static_cast<std::uint8_t>(0x27 + kPositiveOffset), level};
}

util::Bytes Server::handle_read_data(std::span<const std::uint8_t> req) {
  const auto dids = decode_read_data_request(req);
  if (!dids) {
    return encode_negative_response(Service::kReadDataByIdentifier,
                                    Nrc::kIncorrectMessageLength);
  }
  std::vector<DataRecord> records;
  for (Did did : *dids) {
    const auto it = dids_.find(did);
    if (it == dids_.end()) {
      return encode_negative_response(Service::kReadDataByIdentifier,
                                      Nrc::kRequestOutOfRange);
    }
    util::Bytes data = it->second.reader();
    data.resize(it->second.length, 0x00);  // enforce declared length
    records.push_back(DataRecord{did, std::move(data)});
  }
  return encode_read_data_response(records);
}

util::Bytes Server::handle_read_dtc(std::span<const std::uint8_t> req) {
  // 0x19 0x02 <statusMask>: reportDTCByStatusMask.
  if (req.size() != 3 || req[1] != 0x02) {
    return encode_negative_response(static_cast<Service>(0x19),
                                    Nrc::kSubFunctionNotSupported);
  }
  const std::uint8_t mask = req[2];
  util::Bytes out{0x59, 0x02, 0x2F};  // DTCStatusAvailabilityMask
  for (const auto& dtc : dtcs_) {
    if ((dtc.status & mask) == 0) continue;
    out.push_back(static_cast<std::uint8_t>(dtc.code >> 16));
    out.push_back(static_cast<std::uint8_t>(dtc.code >> 8));
    out.push_back(static_cast<std::uint8_t>(dtc.code));
    out.push_back(dtc.status);
  }
  return out;
}

util::Bytes Server::handle_clear_dtc(std::span<const std::uint8_t> req) {
  // 0x14 <groupOfDTC: 3 bytes>; 0xFFFFFF clears everything.
  if (req.size() != 4) {
    return encode_negative_response(static_cast<Service>(0x14),
                                    Nrc::kIncorrectMessageLength);
  }
  const std::uint32_t group = (static_cast<std::uint32_t>(req[1]) << 16) |
                              (static_cast<std::uint32_t>(req[2]) << 8) |
                              req[3];
  if (group == 0xFFFFFF) {
    dtcs_.clear();
  } else {
    std::erase_if(dtcs_, [group](const Dtc& d) { return d.code == group; });
  }
  return {0x54};
}

util::Bytes Server::handle_io_control(std::span<const std::uint8_t> req) {
  const auto parsed = decode_io_control_request(req);
  if (!parsed) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kIncorrectMessageLength);
  }
  const auto it = io_dids_.find(parsed->did);
  if (it == io_dids_.end()) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kRequestOutOfRange);
  }
  if (it->second.requires_session && session_ == 0x01) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kConditionsNotCorrect);
  }
  if (key_fn_ && !unlocked_) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kSecurityAccessDenied);
  }
  const auto status =
      it->second.handler(parsed->param, parsed->control_state);
  if (!status) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kRequestOutOfRange);
  }
  return encode_io_control_response(parsed->did, parsed->param, *status);
}

}  // namespace dpr::uds
