#include "uds/server.hpp"

#include <algorithm>

namespace dpr::uds {

void Server::add_did(Did did, std::size_t length, DidReader reader) {
  dids_[did] = DidEntry{length, std::move(reader)};
}

void Server::add_io_did(Did did, IoHandler handler, bool requires_session) {
  io_dids_[did] = IoEntry{std::move(handler), requires_session};
}

void Server::add_dtc(std::uint32_t code, std::uint8_t status) {
  dtcs_.push_back(Dtc{code & 0xFFFFFF, status});
}

void Server::enable_security(
    std::function<util::Bytes(const util::Bytes&)> key_fn) {
  key_fn_ = std::move(key_fn);
  unlocked_ = false;
}

void Server::bind(util::MessageLink& link) {
  link.set_message_handler([this, &link](const util::Bytes& request) {
    for (const util::Bytes& response : respond(request)) {
      link.send(response);
    }
  });
}

void Server::enable_faults(const FaultProfile& profile, util::Rng rng) {
  faults_ = profile;
  fault_rng_ = rng;
}

void Server::enable_sessions(const SessionProfile& profile,
                             const util::SimClock& clock) {
  session_profile_ = profile;
  clock_ = &clock;
  sessions_armed_ = true;
  last_activity_ = clock.now();
}

void Server::enable_resets(const ResetProfile& profile,
                           const util::SimClock& clock,
                           util::CounterRng stream) {
  if (!profile.enabled()) return;  // zero rate: stay draw-free
  reset_profile_ = profile;
  clock_ = &clock;
  reset_stream_ = stream;
  resets_armed_ = true;
}

bool Server::locked_out() const {
  return sessions_armed_ && clock_->now() < lockout_until_;
}

std::vector<util::Bytes> Server::respond(
    std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  if (resets_armed_) {
    // Fixed draw order per request: the reboot draw comes before the
    // busy/pending envelope draws. A rebooting ECU is bus-silent — the
    // request is swallowed without a draw while the boot window runs.
    const util::SimTime now = clock_->now();
    if (now < silent_until_) return {};
    if (reset_stream_.at(reset_events_++).chance(reset_profile_.reset_rate)) {
      session_ = 0x01;
      unlocked_ = false;
      pending_seed_.clear();
      key_attempts_ = 0;
      lockout_until_ = -1;
      silent_until_ = now + reset_profile_.boot_time;
      ++resets_;
      return {};
    }
  }
  std::vector<util::Bytes> responses;
  if (faults_.enabled()) {
    const auto sid = static_cast<Service>(request[0]);
    if (faults_.busy_rate > 0.0 && fault_rng_.chance(faults_.busy_rate)) {
      // Busy ECUs refuse without processing; the tester must resend.
      responses.push_back(
          encode_negative_response(sid, Nrc::kBusyRepeatRequest));
      return responses;
    }
    if (faults_.pending_rate > 0.0 &&
        fault_rng_.chance(faults_.pending_rate)) {
      const auto n = fault_rng_.uniform_int(
          1, std::max(1, faults_.max_pending));
      for (std::int64_t i = 0; i < n; ++i) {
        responses.push_back(
            encode_negative_response(sid, Nrc::kResponsePending));
      }
    }
  }
  util::Bytes answer = handle(request);
  if (!answer.empty()) responses.push_back(std::move(answer));
  return responses;
}

util::Bytes Server::handle(std::span<const std::uint8_t> request) {
  if (request.empty()) return {};
  if (sessions_armed_) {
    // Lazy S3 expiry: the session fell back to default the moment the
    // timer ran out; we only observe it on the next request.
    const util::SimTime now = clock_->now();
    if (session_ != 0x01 &&
        now - last_activity_ > session_profile_.s3_timeout) {
      session_ = 0x01;
      unlocked_ = false;
      ++s3_expiries_;
    }
    last_activity_ = now;
  }
  ++request_counts_[request[0]];
  switch (request[0]) {
    case 0x10:
      return handle_session_control(request);
    case 0x11:
      return handle_ecu_reset(request);
    case 0x14:
      return handle_clear_dtc(request);
    case 0x19:
      return handle_read_dtc(request);
    case 0x22:
      return handle_read_data(request);
    case 0x27:
      return handle_security_access(request);
    case 0x2F:
      return handle_io_control(request);
    case 0x3E:
      return handle_tester_present(request);
    default:
      return encode_negative_response(static_cast<Service>(request[0]),
                                      Nrc::kServiceNotSupported);
  }
}

util::Bytes Server::handle_session_control(
    std::span<const std::uint8_t> req) {
  if (req.size() != 2) {
    return encode_negative_response(Service::kDiagnosticSessionControl,
                                    Nrc::kIncorrectMessageLength);
  }
  if (req[1] == 0x00 || req[1] > 0x04) {
    return encode_negative_response(Service::kDiagnosticSessionControl,
                                    Nrc::kSubFunctionNotSupported);
  }
  session_ = req[1];
  if (session_ == 0x01) unlocked_ = false;  // default session re-locks
  return {static_cast<std::uint8_t>(0x10 + kPositiveOffset), req[1],
          0x00, 0x32, 0x01, 0xF4};  // P2/P2* timing record
}

util::Bytes Server::handle_tester_present(
    std::span<const std::uint8_t> req) {
  if (req.size() != 2 ||
      (req[1] & static_cast<std::uint8_t>(~kSuppressPositiveResponse)) !=
          0x00) {
    return encode_negative_response(Service::kTesterPresent,
                                    Nrc::kSubFunctionNotSupported);
  }
  // suppressPositiveResponse: the keepalive refreshed the S3 timer above;
  // an empty answer is dropped by respond()/the transport binding.
  if (req[1] & kSuppressPositiveResponse) return {};
  return {static_cast<std::uint8_t>(0x3E + kPositiveOffset), 0x00};
}

util::Bytes Server::handle_ecu_reset(std::span<const std::uint8_t> req) {
  if (req.size() != 2) {
    return encode_negative_response(Service::kEcuReset,
                                    Nrc::kIncorrectMessageLength);
  }
  session_ = 0x01;
  unlocked_ = false;
  return {static_cast<std::uint8_t>(0x11 + kPositiveOffset), req[1]};
}

util::Bytes Server::handle_security_access(
    std::span<const std::uint8_t> req) {
  if (!key_fn_) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kServiceNotSupported);
  }
  if (req.size() < 2) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kIncorrectMessageLength);
  }
  if (locked_out()) {
    // Both seed requests and key sends are refused until the delay timer
    // set by the exceeded-attempts lockout expires.
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kRequiredTimeDelayNotExpired);
  }
  const std::uint8_t level = req[1];
  if (level % 2 == 1) {  // requestSeed
    pending_seed_ = {0x12, 0x34, 0x56, 0x78};
    util::Bytes out{static_cast<std::uint8_t>(0x27 + kPositiveOffset), level};
    out.insert(out.end(), pending_seed_.begin(), pending_seed_.end());
    return out;
  }
  // sendKey
  if (pending_seed_.empty()) {
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kRequestSequenceError);
  }
  const util::Bytes expected = key_fn_(pending_seed_);
  const util::Bytes provided(req.begin() + 2, req.end());
  pending_seed_.clear();
  if (provided != expected) {
    if (sessions_armed_ &&
        ++key_attempts_ >= session_profile_.max_key_attempts) {
      key_attempts_ = 0;
      lockout_until_ = clock_->now() + session_profile_.lockout_delay;
      return encode_negative_response(Service::kSecurityAccess,
                                      Nrc::kExceedNumberOfAttempts);
    }
    return encode_negative_response(Service::kSecurityAccess,
                                    Nrc::kInvalidKey);
  }
  key_attempts_ = 0;
  unlocked_ = true;
  return {static_cast<std::uint8_t>(0x27 + kPositiveOffset), level};
}

util::Bytes Server::handle_read_data(std::span<const std::uint8_t> req) {
  const auto dids = decode_read_data_request(req);
  if (!dids) {
    return encode_negative_response(Service::kReadDataByIdentifier,
                                    Nrc::kIncorrectMessageLength);
  }
  std::vector<DataRecord> records;
  for (Did did : *dids) {
    const auto it = dids_.find(did);
    if (it == dids_.end()) {
      return encode_negative_response(Service::kReadDataByIdentifier,
                                      Nrc::kRequestOutOfRange);
    }
    util::Bytes data = it->second.reader();
    data.resize(it->second.length, 0x00);  // enforce declared length
    records.push_back(DataRecord{did, std::move(data)});
  }
  return encode_read_data_response(records);
}

util::Bytes Server::handle_read_dtc(std::span<const std::uint8_t> req) {
  // 0x19 0x02 <statusMask>: reportDTCByStatusMask.
  if (req.size() != 3 || req[1] != 0x02) {
    return encode_negative_response(static_cast<Service>(0x19),
                                    Nrc::kSubFunctionNotSupported);
  }
  const std::uint8_t mask = req[2];
  util::Bytes out{0x59, 0x02, 0x2F};  // DTCStatusAvailabilityMask
  for (const auto& dtc : dtcs_) {
    if ((dtc.status & mask) == 0) continue;
    out.push_back(static_cast<std::uint8_t>(dtc.code >> 16));
    out.push_back(static_cast<std::uint8_t>(dtc.code >> 8));
    out.push_back(static_cast<std::uint8_t>(dtc.code));
    out.push_back(dtc.status);
  }
  return out;
}

util::Bytes Server::handle_clear_dtc(std::span<const std::uint8_t> req) {
  // 0x14 <groupOfDTC: 3 bytes>; 0xFFFFFF clears everything.
  if (req.size() != 4) {
    return encode_negative_response(static_cast<Service>(0x14),
                                    Nrc::kIncorrectMessageLength);
  }
  const std::uint32_t group = (static_cast<std::uint32_t>(req[1]) << 16) |
                              (static_cast<std::uint32_t>(req[2]) << 8) |
                              req[3];
  if (group == 0xFFFFFF) {
    dtcs_.clear();
  } else {
    std::erase_if(dtcs_, [group](const Dtc& d) { return d.code == group; });
  }
  return {0x54};
}

util::Bytes Server::handle_io_control(std::span<const std::uint8_t> req) {
  const auto parsed = decode_io_control_request(req);
  if (!parsed) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kIncorrectMessageLength);
  }
  const auto it = io_dids_.find(parsed->did);
  if (it == io_dids_.end()) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kRequestOutOfRange);
  }
  if (it->second.requires_session && session_ == 0x01) {
    // With session timers armed, the precise ISO 14229 answer is 0x7F
    // serviceNotSupportedInActiveSession — the pattern the supervisor
    // keys session-loss detection on. A bare server keeps the legacy
    // conditionsNotCorrect answer.
    return encode_negative_response(
        Service::kIoControlByIdentifier,
        sessions_armed_ ? Nrc::kServiceNotSupportedInActiveSession
                        : Nrc::kConditionsNotCorrect);
  }
  if (key_fn_ && !unlocked_) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kSecurityAccessDenied);
  }
  const auto status =
      it->second.handler(parsed->param, parsed->control_state);
  if (!status) {
    return encode_negative_response(Service::kIoControlByIdentifier,
                                    Nrc::kRequestOutOfRange);
  }
  return encode_io_control_response(parsed->did, parsed->param, *status);
}

}  // namespace dpr::uds
