#pragma once
// UDS server: the application layer of a simulated ECU. Owns a registry of
// readable data identifiers (0x22) and controllable IO identifiers (0x2F),
// enforces the session/security gating a real ECU applies, and produces
// byte-exact positive/negative responses.

#include <functional>
#include <map>
#include <optional>

#include "uds/message.hpp"
#include "util/clock.hpp"
#include "util/counter_rng.hpp"
#include "util/link.hpp"
#include "util/rng.hpp"

namespace dpr::uds {

/// Produces the current raw data bytes for one DID.
using DidReader = std::function<util::Bytes()>;

/// Handles an IO-control action; returns the control-status bytes echoed in
/// the positive response, or nullopt to signal requestOutOfRange.
using IoHandler = std::function<std::optional<util::Bytes>(
    IoControlParameter, std::span<const std::uint8_t> control_state)>;

class Server {
 public:
  /// Register a readable DID with fixed-length data.
  void add_did(Did did, std::size_t length, DidReader reader);

  /// Register a controllable DID (0x2F target). If `requires_session` the
  /// ECU rejects IO control outside an extended diagnostic session, like
  /// real ECUs do.
  void add_io_did(Did did, IoHandler handler, bool requires_session = true);

  /// Security-access seed/key: if set, 0x2F additionally requires an
  /// unlocked state. The key function maps seed -> expected key.
  void enable_security(std::function<util::Bytes(const util::Bytes&)> key_fn);

  /// Stored diagnostic trouble code (ISO 14229 0x19 / 0x14).
  struct Dtc {
    std::uint32_t code = 0;     // 3-byte DTC
    std::uint8_t status = 0x2F; // status byte (testFailed | confirmed...)
  };
  void add_dtc(std::uint32_t code, std::uint8_t status = 0x2F);
  const std::vector<Dtc>& dtcs() const { return dtcs_; }

  /// Process one request, producing exactly one response message.
  util::Bytes handle(std::span<const std::uint8_t> request);

  /// Server-side fault behaviour: with probability `pending_rate` the ECU
  /// stalls with 1..max_pending NRC 0x78 responsePending messages before
  /// the real answer; with probability `busy_rate` it refuses with NRC
  /// 0x21 busyRepeatRequest (the request is NOT processed). Draw order is
  /// fixed (busy, then pending count) and per-request.
  struct FaultProfile {
    double pending_rate = 0.0;
    int max_pending = 2;
    double busy_rate = 0.0;

    bool enabled() const { return pending_rate > 0.0 || busy_rate > 0.0; }
  };
  void enable_faults(const FaultProfile& profile, util::Rng rng);

  /// Session-state timers, armed only when a sim clock is provided (a bare
  /// server keeps the legacy always-on session semantics): a non-default
  /// session falls back to defaultSession after `s3_timeout` of inactivity
  /// (any handled request refreshes the timer, which is what TesterPresent
  /// keepalives are for), and `max_key_attempts` wrong security keys lock
  /// security access out for `lockout_delay` (NRC 0x36 on the attempt that
  /// trips the limit, NRC 0x37 until the delay expires).
  struct SessionProfile {
    util::SimTime s3_timeout = 5 * util::kSecond;
    int max_key_attempts = 3;
    util::SimTime lockout_delay = 10 * util::kSecond;
  };
  void enable_sessions(const SessionProfile& profile,
                       const util::SimClock& clock);

  /// Deterministic ECU reboots: with probability `reset_rate` per incoming
  /// request the ECU wipes its session/security state and goes bus-silent
  /// (no response at all) until `boot_time` has elapsed. The n-th
  /// *non-silent* request draws event n of the provided counter stream, so
  /// any request's reboot fate can be re-derived in O(1); requests
  /// swallowed by the boot window consume no event. A zero rate is never
  /// armed, so clean runs perform zero draws.
  struct ResetProfile {
    double reset_rate = 0.0;
    util::SimTime boot_time = 300 * util::kMillisecond;

    bool enabled() const { return reset_rate > 0.0; }
  };
  void enable_resets(const ResetProfile& profile, const util::SimClock& clock,
                     util::CounterRng stream);

  /// Spontaneous reboots performed / S3 timeouts that dropped a session.
  std::uint64_t resets() const { return resets_; }
  std::uint64_t s3_expiries() const { return s3_expiries_; }
  /// Security lockout currently in force (for tests).
  bool locked_out() const;
  /// Exclusive end of the current reboot silence window, or -1 when the
  /// ECU is up. NM nodes use this to model a rebooting ECU vanishing from
  /// the ring (deaf and mute until the boot completes).
  util::SimTime silent_until() const { return silent_until_; }

  /// Process one request, producing the full response sequence: the real
  /// answer, possibly preceded by fault-injected 0x78 markers or replaced
  /// by an 0x21 refusal. Without faults this is exactly {handle(request)}.
  std::vector<util::Bytes> respond(std::span<const std::uint8_t> request);

  /// Bind to a transport: incoming messages are handled and the response
  /// sequence is sent back on the same link.
  void bind(util::MessageLink& link);

  std::uint8_t active_session() const { return session_; }
  bool unlocked() const { return unlocked_; }

  /// Number of requests processed, by service id (for traffic census).
  const std::map<std::uint8_t, std::size_t>& request_counts() const {
    return request_counts_;
  }

 private:
  util::Bytes handle_session_control(std::span<const std::uint8_t> req);
  util::Bytes handle_tester_present(std::span<const std::uint8_t> req);
  util::Bytes handle_ecu_reset(std::span<const std::uint8_t> req);
  util::Bytes handle_security_access(std::span<const std::uint8_t> req);
  util::Bytes handle_read_data(std::span<const std::uint8_t> req);
  util::Bytes handle_io_control(std::span<const std::uint8_t> req);
  util::Bytes handle_read_dtc(std::span<const std::uint8_t> req);
  util::Bytes handle_clear_dtc(std::span<const std::uint8_t> req);

  struct DidEntry {
    std::size_t length = 0;
    DidReader reader;
  };
  struct IoEntry {
    IoHandler handler;
    bool requires_session = true;
  };

  std::map<Did, DidEntry> dids_;
  std::map<Did, IoEntry> io_dids_;
  std::vector<Dtc> dtcs_;
  std::function<util::Bytes(const util::Bytes&)> key_fn_;
  util::Bytes pending_seed_;
  bool unlocked_ = false;
  std::uint8_t session_ = 0x01;  // defaultSession
  std::map<std::uint8_t, std::size_t> request_counts_;
  FaultProfile faults_;
  util::Rng fault_rng_;

  // Stateful-failure machinery; inert until enable_sessions/enable_resets.
  const util::SimClock* clock_ = nullptr;
  SessionProfile session_profile_;
  bool sessions_armed_ = false;
  ResetProfile reset_profile_;
  util::CounterRng reset_stream_;
  std::uint64_t reset_events_ = 0;  ///< non-silent requests seen so far
  bool resets_armed_ = false;
  util::SimTime last_activity_ = 0;
  util::SimTime silent_until_ = -1;   ///< rebooting: exclusive end of silence
  util::SimTime lockout_until_ = -1;  ///< security lockout delay timer
  int key_attempts_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t s3_expiries_ = 0;
};

}  // namespace dpr::uds
