#include "util/checkpoint.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "util/crash.hpp"

namespace dpr::util {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<std::uint8_t>(value >> (8 * i));
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64_f64(double value, std::uint64_t hash) {
  return fnv1a64_u64(std::bit_cast<std::uint64_t>(value), hash);
}

std::uint64_t fnv1a64_str(const std::string& value, std::uint64_t hash) {
  hash = fnv1a64_u64(value.size(), hash);
  for (const char c : value) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void BinaryWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::str(const std::string& v) {
  u64(v.size());
  for (const char c : v) u8(static_cast<std::uint8_t>(c));
}

void BinaryWriter::bytes(std::span<const std::uint8_t> v) {
  u64(v.size());
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

std::span<const std::uint8_t> BinaryReader::take(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw std::runtime_error("checkpoint: truncated payload");
  }
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t BinaryReader::u8() { return take(1)[0]; }

std::uint16_t BinaryReader::u16() {
  const auto d = take(2);
  return static_cast<std::uint16_t>(d[0] | (d[1] << 8));
}

std::uint32_t BinaryReader::u32() {
  const auto d = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(d[i]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  const auto d = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  const auto d = take(n);
  return std::string(d.begin(), d.end());
}

Bytes BinaryReader::bytes() {
  const std::uint64_t n = u64();
  const auto d = take(n);
  return Bytes(d.begin(), d.end());
}

std::string IoResult::message() const {
  if (ok) return {};
  std::string out = stage;
  out += ": ";
  out += std::strerror(error);
  return out;
}

IoResult IoResult::failure(const char* stage, int error) {
  IoResult r;
  r.ok = false;
  r.error = error;
  r.stage = stage;
  return r;
}

namespace {

/// Transient conditions worth a bounded retry: interrupted syscalls and
/// momentary resource exhaustion (a checkpoint directory shared with a
/// log writer can bounce off ENOSPC/EDQUOT for one rotation cycle).
bool transient_errno(int error) {
  return error == EINTR || error == EAGAIN || error == ENOSPC ||
         error == EDQUOT;
}

constexpr int kWriteAttempts = 3;

/// One full open→write→fsync→rename→fsync-dir attempt.
IoResult write_file_atomic_once(const std::string& path, const std::string& tmp,
                                std::span<const std::uint8_t> data) {
  int fd = -1;
  do {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return IoResult::failure("open_tmp", errno);

  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int error = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return IoResult::failure("write", error);
    }
    written += static_cast<std::size_t>(n);
  }
  DPR_CRASH_POINT("ckpt.tmp_written");

  // fsync before the rename: once the new name is visible it must point
  // at fully persisted bytes, or a crash could leave a "successfully
  // renamed" file with a torn tail.
  if (::fsync(fd) != 0) {
    const int error = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return IoResult::failure("fsync", error);
  }
  if (::close(fd) != 0) {
    const int error = errno;
    ::unlink(tmp.c_str());
    return IoResult::failure("close", error);
  }
  DPR_CRASH_POINT("ckpt.pre_rename");

  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int error = errno;
    ::unlink(tmp.c_str());
    return IoResult::failure("rename", error);
  }
  DPR_CRASH_POINT("ckpt.post_rename");

  // fsync the parent directory so the rename's directory entry is durable
  // too (best effort: some filesystems refuse O_RDONLY directory fsync —
  // that is not a data-loss path on them, so it is not an error here).
  const auto slash = path.find_last_of('/');
  const std::string parent = slash == std::string::npos
                                 ? std::string(".")
                                 : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = ::open(parent.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return IoResult::success();
}

}  // namespace

IoResult write_file_atomic(const std::string& path,
                           std::span<const std::uint8_t> data) {
  // The pid suffix keeps two processes writing the same key from
  // clobbering each other's temp file mid-write; the rename still makes
  // last-writer-wins atomic at the final name.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  IoResult result;
  for (int attempt = 0; attempt < kWriteAttempts; ++attempt) {
    result = write_file_atomic_once(path, tmp, data);
    if (result.ok || !transient_errno(result.error)) return result;
  }
  return result;
}

std::optional<Bytes> read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return std::nullopt;
  Bytes data;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!ok) return std::nullopt;
  return data;
}

}  // namespace dpr::util
