#include "util/checkpoint.hpp"

#include <cstdio>
#include <filesystem>

namespace dpr::util {

std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const std::uint8_t byte : bytes) {
    hash ^= byte;
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t hash) {
  for (int i = 0; i < 8; ++i) {
    hash ^= static_cast<std::uint8_t>(value >> (8 * i));
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

std::uint64_t fnv1a64_f64(double value, std::uint64_t hash) {
  return fnv1a64_u64(std::bit_cast<std::uint64_t>(value), hash);
}

std::uint64_t fnv1a64_str(const std::string& value, std::uint64_t hash) {
  hash = fnv1a64_u64(value.size(), hash);
  for (const char c : value) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

void BinaryWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void BinaryWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void BinaryWriter::str(const std::string& v) {
  u64(v.size());
  for (const char c : v) u8(static_cast<std::uint8_t>(c));
}

void BinaryWriter::bytes(std::span<const std::uint8_t> v) {
  u64(v.size());
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

std::span<const std::uint8_t> BinaryReader::take(std::size_t n) {
  if (n > data_.size() - pos_) {
    throw std::runtime_error("checkpoint: truncated payload");
  }
  const auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

std::uint8_t BinaryReader::u8() { return take(1)[0]; }

std::uint16_t BinaryReader::u16() {
  const auto d = take(2);
  return static_cast<std::uint16_t>(d[0] | (d[1] << 8));
}

std::uint32_t BinaryReader::u32() {
  const auto d = take(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(d[i]) << (8 * i);
  return v;
}

std::uint64_t BinaryReader::u64() {
  const auto d = take(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(d[i]) << (8 * i);
  return v;
}

std::string BinaryReader::str() {
  const std::uint64_t n = u64();
  const auto d = take(n);
  return std::string(d.begin(), d.end());
}

Bytes BinaryReader::bytes() {
  const std::uint64_t n = u64();
  const auto d = take(n);
  return Bytes(d.begin(), d.end());
}

bool write_file_atomic(const std::string& path,
                       std::span<const std::uint8_t> data) {
  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (!out) return false;
  const bool wrote =
      data.empty() ||
      std::fwrite(data.data(), 1, data.size(), out) == data.size();
  const bool closed = std::fclose(out) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Bytes> read_file(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (!in) return std::nullopt;
  Bytes data;
  std::uint8_t chunk[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), in)) > 0) {
    data.insert(data.end(), chunk, chunk + n);
  }
  const bool ok = std::ferror(in) == 0;
  std::fclose(in);
  if (!ok) return std::nullopt;
  return data;
}

}  // namespace dpr::util
