#pragma once
// Binary (de)serialization + atomic file I/O for campaign checkpoints.
//
// The encoding is deliberately dumb: little-endian fixed-width integers,
// doubles as raw IEEE-754 bit patterns (bit-exact round-trips are part of
// the resume == fresh signature guarantee), length-prefixed strings and
// containers. A trailing FNV-1a digest over the payload catches files
// truncated by a crash mid-write; writes go through a temp file + rename
// so a reader never observes a half-written checkpoint.

#include <bit>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/hex.hpp"

namespace dpr::util {

/// FNV-1a 64-bit over a byte range; used as checkpoint payload digest and
/// as the campaign options hash.
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes,
                      std::uint64_t seed = 0xCBF29CE484222325ULL);

/// Incremental FNV-1a folding helpers for hashing heterogeneous fields.
std::uint64_t fnv1a64_u64(std::uint64_t value, std::uint64_t hash);
std::uint64_t fnv1a64_f64(double value, std::uint64_t hash);
std::uint64_t fnv1a64_str(const std::string& value, std::uint64_t hash);

/// Append-only binary encoder.
class BinaryWriter {
 public:
  void u8(std::uint8_t v) { buffer_.push_back(v); }
  void b(bool v) { u8(v ? 1 : 0); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }
  void str(const std::string& v);
  void bytes(std::span<const std::uint8_t> v);

  const Bytes& data() const { return buffer_; }
  Bytes take() { return std::move(buffer_); }

 private:
  Bytes buffer_;
};

/// Bounds-checked binary decoder; throws std::runtime_error on underflow
/// so a corrupt checkpoint surfaces as a load failure, never as UB.
class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  bool b() { return u8() != 0; }
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str();
  Bytes bytes();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Outcome of a filesystem operation that must report *why* it failed,
/// not just that it did (the fleet log prints message() when a resume
/// falls back to fresh). Converts to bool like the old plain-bool API.
struct IoResult {
  bool ok = true;
  int error = 0;            ///< errno captured at the failing step
  const char* stage = "";   ///< failing step: "open_tmp", "write", ...

  explicit operator bool() const { return ok; }
  /// "<stage>: <strerror(error)>"; empty for success.
  std::string message() const;

  static IoResult success() { return IoResult{}; }
  static IoResult failure(const char* stage, int error);
};

/// Write `data` to `path` atomically *and durably*: unique per-process
/// temp file in the same directory, write + fsync the file, rename over
/// `path`, then fsync the parent directory so the rename itself survives
/// a power cut. Transient EINTR/ENOSPC-class errors are retried a bounded
/// number of times before giving up; the temp file never outlives a
/// failure. Returns the failing stage + errno on error.
IoResult write_file_atomic(const std::string& path,
                           std::span<const std::uint8_t> data);

/// Read a whole file; nullopt if it does not exist or cannot be read.
std::optional<Bytes> read_file(const std::string& path);

}  // namespace dpr::util
