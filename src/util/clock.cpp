#include "util/clock.hpp"

#include <cassert>
#include <cmath>

namespace dpr::util {

void SimClock::advance(SimTime delta) {
  assert(delta >= 0);
  now_ += delta;
}

void SimClock::advance_to(SimTime t) {
  if (t > now_) now_ = t;
}

SimTime DeviceClock::local_time(SimTime global) const {
  const double scaled =
      static_cast<double>(global) * (1.0 + drift_ppm_ * 1e-6);
  return static_cast<SimTime>(std::llround(scaled)) + offset_;
}

SimTime DeviceClock::global_time(SimTime local) const {
  const double unscaled =
      static_cast<double>(local - offset_) / (1.0 + drift_ppm_ * 1e-6);
  return static_cast<SimTime>(std::llround(unscaled));
}

void DeviceClock::ntp_sync(SimTime residual) { offset_ = residual; }

}  // namespace dpr::util
