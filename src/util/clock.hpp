#pragma once
// Simulated time base shared by every component of the cyber-physical rig.
//
// The paper aligns diagnostic-message timestamps with UI-video timestamps
// (§3.5 step 1, §9.4). To reproduce clock-skew effects we model each device
// (CAN sniffer laptop, camera smartphone) as a DeviceClock with its own
// offset/drift relative to one global SimClock.

#include <cstdint>

namespace dpr::util {

/// Monotonic simulated time in microseconds since experiment start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1000;
constexpr SimTime kSecond = 1000 * kMillisecond;

/// Central simulated clock. Components advance it explicitly; there is no
/// wall-clock dependence anywhere in the pipeline.
class SimClock {
 public:
  SimTime now() const { return now_; }

  void advance(SimTime delta);

  /// Jump directly to an absolute time; must not move backwards.
  void advance_to(SimTime t);

 private:
  SimTime now_ = 0;
};

/// A device-local clock with fixed offset and linear drift against the
/// global SimClock. `local = global * (1 + drift_ppm*1e-6) + offset`.
class DeviceClock {
 public:
  DeviceClock() = default;
  DeviceClock(SimTime offset, double drift_ppm)
      : offset_(offset), drift_ppm_(drift_ppm) {}

  SimTime local_time(SimTime global) const;

  /// Inverse mapping: recover global time from a local timestamp.
  SimTime global_time(SimTime local) const;

  SimTime offset() const { return offset_; }
  double drift_ppm() const { return drift_ppm_; }

  /// NTP-style synchronization: set the offset so that local time equals
  /// global time at the instant of sync, leaving residual error `residual`.
  void ntp_sync(SimTime residual = 0);

 private:
  SimTime offset_ = 0;
  double drift_ppm_ = 0.0;
};

}  // namespace dpr::util
