#include "util/counter_rng.hpp"

#include <cmath>

#include "util/philox.hpp"

namespace dpr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

CounterRng::CounterRng(std::uint64_t seed, std::uint64_t stream_id) {
  // SplitMix both halves so nearby (seed, stream) pairs land on
  // decorrelated keys even though Philox only consumes 64 key bits.
  std::uint64_t sm = seed;
  const std::uint64_t a = splitmix64(sm);
  sm ^= stream_id * 0x9E3779B97F4A7C15ULL + 0x632BE59BD9B4E019ULL;
  key_ = a ^ splitmix64(sm);
}

CounterRng::result_type CounterRng::operator()() {
  return philox2x64(key_, event_, index_++);
}

CounterRng::result_type CounterRng::word_at(std::uint64_t event,
                                            std::uint64_t index) const {
  return philox2x64(key_, event, index);
}

void CounterRng::seek(std::uint64_t event) {
  event_ = event;
  index_ = 0;
  has_cached_normal_ = false;
}

CounterRng CounterRng::at(std::uint64_t event) const {
  CounterRng copy = *this;
  copy.seek(event);
  return copy;
}

double CounterRng::uniform() {
  // 53 high-quality bits -> double in [0,1). Same reduction as Rng.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double CounterRng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t CounterRng::uniform_int(std::int64_t lo, std::int64_t hi) {
  // Lemire multiply-shift with rejection — identical logic to
  // Rng::uniform_int; see the discussion there. Rejection re-draws only
  // advance this event's own draw index.
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  std::uint64_t x = (*this)();
  auto product = static_cast<unsigned __int128>(x) * span;
  auto low = static_cast<std::uint64_t>(product);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = (*this)();
      product = static_cast<unsigned __int128>(x) * span;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   static_cast<std::uint64_t>(product >> 64));
}

double CounterRng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double CounterRng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool CounterRng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

}  // namespace dpr::util
