#pragma once
// Counter-based pseudo-random number generation: Philox2x64-10.
//
// util::Rng (xoshiro) is sequential — draw k exists only after draws
// 0..k-1, so every consumer that replays a stream must reproduce the
// exact draw *order*. CounterRng removes that coupling: each output is a
// pure function of (seed, stream_id, event, draw index), so any event's
// draws can be re-derived in O(1) without generating its predecessors.
// That is what lets fault replay ignore wire-delivery order and lets any
// sub-phase of a campaign re-derive its randomness independently.
//
// The engine is the Philox2x64 bijection of Salmon et al. (SC'11,
// "Parallel random numbers: as easy as 1, 2, 3") at the recommended 10
// rounds: a 128-bit counter block {event, draw index} is encrypted under
// a 64-bit key derived from (seed, stream_id); word 0 of the block is
// the draw. Crush-resistant, stateless, and cheap enough to key one
// sub-stream per delivered frame.
//
// The draw surface (uniform / uniform_int / normal / chance) mirrors
// util::Rng bit-for-bit in its *reduction* logic (same 53-bit mantissa
// construction, same Lemire rejection, same Box-Muller with a cached
// second variate), so call sites migrate by swapping the engine type.

#include <cstdint>
#include <limits>

namespace dpr::util {

/// Philox2x64-10 counter-based engine keyed by (seed, stream_id).
/// Satisfies std::uniform_random_bit_generator. Copies are cheap (five
/// words) — `at(event)` hands out an independently positioned view.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  CounterRng() : CounterRng(0, 0) {}
  CounterRng(std::uint64_t seed, std::uint64_t stream_id);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next 64-bit word of the current event's sub-stream. Draw j of event
  /// e is philox2x64(key, {e, j}) — independent of every other (e, j).
  result_type operator()();

  /// Reposition onto event `event`, resetting the intra-event draw index
  /// (and the Box-Muller cache) — O(1) random access.
  void seek(std::uint64_t event);

  /// Copy positioned at `event` with a fresh draw index. The idiomatic
  /// random-access form: `stream.at(n).chance(p)` re-derives event n's
  /// first draw no matter what was drawn before.
  CounterRng at(std::uint64_t event) const;

  std::uint64_t event() const { return event_; }
  std::uint64_t draw_index() const { return index_; }

  /// Raw draw `index` of event `event` — the pure Philox word this stream
  /// would produce there, without moving the stream. Draw j of at(e) is
  /// word_at(e, j); batch engines (simd_philox) reproduce exactly these
  /// words.
  result_type word_at(std::uint64_t event, std::uint64_t index) const;

  /// The derived Philox key. Batch draw kernels take it to compute many
  /// word_at() results per call; it identifies this (seed, stream) pair.
  std::uint64_t key() const { return key_; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi. Same
  /// Lemire multiply-shift rejection as Rng::uniform_int — unbiased, and
  /// a rejection only advances this event's draw index, never another
  /// event's values.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller, cached second value).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial: true with probability p; draw-free at p<=0 / p>=1
  /// (mirrors Rng::chance, so rate-zero paths stay bit-clean).
  bool chance(double p);

 private:
  std::uint64_t key_ = 0;    // derived from (seed, stream_id), constant
  std::uint64_t event_ = 0;  // counter block high word
  std::uint64_t index_ = 0;  // counter block low word (per-event draws)
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dpr::util
