#include "util/crash.hpp"

#include <unistd.h>

#include <cstring>
#include <mutex>

namespace dpr::util {

namespace {

// Every DPR_CRASH_POINT site in the codebase, in sweep order. Keep this
// list in sync with the call sites: arming validates against it, and
// bench_crash iterates it, proving each entry is live in a checkpointed
// campaign before killing there.
constexpr const char* kSites[] = {
    // util::write_file_atomic (fires for checkpoint and manifest writes)
    "ckpt.tmp_written",   // tmp file written, not yet fsynced
    "ckpt.pre_rename",    // tmp fsynced + closed, rename not issued
    "ckpt.post_rename",   // renamed, parent directory not yet fsynced
    // core::CheckpointStore
    "ckpt.pre_save",      // save() entered, nothing touched yet
    "ckpt.pre_manifest",  // checkpoint durable, manifest not yet bumped
    "ckpt.post_save",     // checkpoint + manifest durable
    "ckpt.pre_remove",    // remove() entered, file still present
    "ckpt.post_remove",   // file unlinked, manifest not yet bumped
    // core::Campaign::run
    "campaign.phase_done",       // phase returned, checkpoint not written
    "campaign.post_checkpoint",  // checkpoint written, next phase not begun
};
constexpr std::size_t kNumSites = sizeof(kSites) / sizeof(kSites[0]);

std::mutex mutex;                       // guards the slow path only
int armed_site = -1;                    // index into kSites, -1 = disarmed
std::uint64_t armed_n = 0;              // crash on this hit count
std::uint64_t armed_hits = 0;           // hits of the armed site so far
bool counting = false;
std::uint64_t hit_counts[kNumSites] = {};

int site_index(const char* site) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (std::strcmp(kSites[i], site) == 0) return static_cast<int>(i);
  }
  return -1;
}

void refresh_active() {
  detail::crash_points_active.store(armed_site >= 0 || counting,
                                    std::memory_order_relaxed);
}

}  // namespace

namespace detail {

std::atomic<bool> crash_points_active{false};

void crash_point_hit(const char* site) {
  std::unique_lock<std::mutex> lock(mutex);
  const int index = site_index(site);
  if (index < 0) return;  // unregistered literal: never crash, never count
  if (counting) ++hit_counts[index];
  if (index == armed_site && ++armed_hits >= armed_n) {
    // No destructors, no stream flushes: the process dies as abruptly as
    // a SIGKILL would, at a site the harness chose. _exit is async-signal
    // safe, so dying while other threads run is well-defined.
    _exit(kCrashExitCode);
  }
}

}  // namespace detail

std::span<const char* const> crash_point_sites() {
  return std::span<const char* const>(kSites, kNumSites);
}

bool arm_crash_point(const std::string& site, std::uint64_t n) {
  const int index = site_index(site.c_str());
  if (index < 0 || n == 0) return false;
  std::unique_lock<std::mutex> lock(mutex);
  armed_site = index;
  armed_n = n;
  armed_hits = 0;
  refresh_active();
  return true;
}

bool arm_crash_point_spec(const std::string& spec) {
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos) return arm_crash_point(spec, 1);
  const std::string site = spec.substr(0, colon);
  const std::string count = spec.substr(colon + 1);
  if (site.empty() || count.empty()) return false;
  std::uint64_t n = 0;
  for (const char c : count) {
    if (c < '0' || c > '9') return false;
    n = n * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return arm_crash_point(site, n);
}

void disarm_crash_points() {
  std::unique_lock<std::mutex> lock(mutex);
  armed_site = -1;
  armed_n = 0;
  armed_hits = 0;
  refresh_active();
}

void set_crash_point_counting(bool on) {
  std::unique_lock<std::mutex> lock(mutex);
  counting = on;
  refresh_active();
}

std::uint64_t crash_point_hits(const std::string& site) {
  std::unique_lock<std::mutex> lock(mutex);
  const int index = site_index(site.c_str());
  return index < 0 ? 0 : hit_counts[index];
}

void reset_crash_point_hits() {
  std::unique_lock<std::mutex> lock(mutex);
  for (auto& count : hit_counts) count = 0;
}

}  // namespace dpr::util
