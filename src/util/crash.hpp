#pragma once
// Deterministic crash-point injection (ISSUE 9).
//
// A crash point is a named site in a state-mutating code path (checkpoint
// writes, phase boundaries). Disarmed — the default — a site costs one
// relaxed atomic load and performs zero RNG draws, so production runs are
// bit-identical to a build without the registry. Armed via
// `arm_crash_point("ckpt.pre_rename", 3)` (CLI: --crash-at site:n), the
// n-th execution of that site calls _exit(kCrashExitCode) without running
// destructors or flushing buffers — the closest portable stand-in for
// SIGKILL that still lets a harness pick the exact interleaving.
// bench_crash sweeps every registered site and asserts that killing at
// the point plus --resume reproduces the uninterrupted report signature.
//
// Counting mode (`set_crash_point_counting(true)`) tallies per-site hits
// without ever crashing, so the harness can prove a site is actually
// exercised by a workload before asserting on its crash behavior.

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

namespace dpr::util {

/// Process exit status used by an armed crash point. Distinct from every
/// exit code the CLI/benches use (0/1/2) so a harness can tell "crashed
/// where asked" from "failed for a real reason".
inline constexpr int kCrashExitCode = 86;

namespace detail {
/// Fires when arming or counting is active. Callers go through
/// DPR_CRASH_POINT, which skips the call entirely while the registry is
/// fully idle.
void crash_point_hit(const char* site);
/// True while any site is armed or counting is on (one relaxed load).
extern std::atomic<bool> crash_points_active;
}  // namespace detail

/// All registered site names, in a stable order (the sweep order of
/// bench_crash and the output of --list-crash-points).
std::span<const char* const> crash_point_sites();

/// Arm `site` to _exit(kCrashExitCode) on its n-th hit (n >= 1). Returns
/// false (and arms nothing) for an unknown site or n == 0. At most one
/// site is armed at a time; arming replaces any previous arming.
bool arm_crash_point(const std::string& site, std::uint64_t n);

/// Parse and arm a "site:n" spec ("ckpt.pre_rename:2"); a bare "site"
/// means n = 1. Returns false on malformed specs and unknown sites.
bool arm_crash_point_spec(const std::string& spec);

/// Disarm whatever is armed (tests / harness reuse within one process).
void disarm_crash_points();

/// Toggle no-crash hit counting for every registered site.
void set_crash_point_counting(bool on);

/// Hits recorded for `site` while counting was on (0 for unknown sites).
std::uint64_t crash_point_hits(const std::string& site);

/// Reset every counting tally to zero.
void reset_crash_point_hits();

}  // namespace dpr::util

/// Plant a crash point. `site` must be a string literal listed in
/// crash.cpp's registry — arming and counting reject unknown names, and
/// bench_crash fails if a registered name is never hit.
#define DPR_CRASH_POINT(site)                                              \
  do {                                                                     \
    if (::dpr::util::detail::crash_points_active.load(                     \
            std::memory_order_relaxed)) {                                  \
      ::dpr::util::detail::crash_point_hit(site);                          \
    }                                                                      \
  } while (0)
