#include "util/fault.hpp"

#include <algorithm>

#include "util/simd_philox.hpp"

namespace dpr::util {

namespace {

// Salt constant for counter-based fault streams. Deliberately distinct from
// the 0x...E019 constant inside rng_for(): bumping it when the injector
// migrated from sequential to per-unit counter draws makes the stream-format
// break explicit — old and new builds never silently share a stream.
constexpr std::uint64_t kFaultStreamSaltV2 = 0x632BE59BD9B4E01BULL;

}  // namespace

FaultPlan FaultPlan::scaled(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  FaultPlan plan;
  plan.drop_rate = rate;
  plan.corrupt_rate = rate * 0.5;
  plan.duplicate_rate = rate * 0.25;
  plan.jitter_rate = std::min(1.0, rate * 2.0);
  plan.burst_rate = rate * 0.02;
  return plan;
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  delivered += other.delivered;
  dropped += other.dropped;
  corrupted += other.corrupted;
  duplicated += other.duplicated;
  jittered += other.jittered;
  bursts += other.bursts;
  return *this;
}

namespace {

// Shared draw-consumption logic for raw decisions: the exact uniform /
// Lemire reductions of CounterRng, fed by any 64-bit word source. The
// scalar path (raw_decide) and the batch path (decide_batch) both run
// this body, so they are bit-identical by construction — the only thing
// that differs is where the Philox words come from.
template <typename NextWord>
FaultInjector::RawDecision raw_from_words(const FaultPlan& plan,
                                          NextWord&& next) {
  auto uniform01 = [&next] {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  };
  auto chance = [&](double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  };
  auto uniform_int = [&next](std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    std::uint64_t x = next();
    auto product = static_cast<unsigned __int128>(x) * span;
    auto low = static_cast<std::uint64_t>(product);
    if (low < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (low < threshold) {
        x = next();
        product = static_cast<unsigned __int128>(x) * span;
        low = static_cast<std::uint64_t>(product);
      }
    }
    return static_cast<std::int64_t>(
        static_cast<std::uint64_t>(lo) +
        static_cast<std::uint64_t>(product >> 64));
  };

  // All of unit n's draws come from event n, in a fixed intra-event order
  // (burst, drop, corrupt + corrupt_bit, duplicate, jitter + delay).
  // Conditional draws advance only this event's index, so they can never
  // shift another unit's fate.
  FaultInjector::RawDecision raw;
  if (plan.burst_rate > 0.0 && chance(plan.burst_rate)) {
    raw.burst_start = true;
    return raw;
  }
  if (plan.drop_rate > 0.0 && chance(plan.drop_rate)) {
    raw.drop = true;
    return raw;
  }
  if (plan.corrupt_rate > 0.0 && chance(plan.corrupt_rate)) {
    raw.corrupt = true;
    raw.corrupt_bit = static_cast<std::uint32_t>(uniform_int(0, 63));
  }
  if (plan.duplicate_rate > 0.0 && chance(plan.duplicate_rate)) {
    raw.duplicate = true;
  }
  if (plan.jitter_rate > 0.0 && chance(plan.jitter_rate)) {
    raw.jitter = true;
    raw.extra_delay = uniform_int(0, plan.max_jitter);
  }
  return raw;
}

}  // namespace

FaultInjector::Decision FaultInjector::decide(SimTime now) {
  const std::uint64_t unit = next_unit_++;
  if (unit - raw_base_ < raw_count_) {
    return resolve(raws_[unit - raw_base_], now);
  }
  return decide_unit(unit, now);
}

FaultInjector::Decision FaultInjector::decide_unit(std::uint64_t unit,
                                                   SimTime now) {
  Decision decision;
  if (!plan_.enabled()) {
    ++stats_.delivered;
    return decision;  // no draws: fault-free runs stay bit-identical
  }
  // Units inside an active burst window are swallowed without consulting
  // the stream; with counter draws that is a non-event anyway (event `unit`
  // simply goes unread), but it keeps the swallow path branch-cheap.
  if (now < burst_until_) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  return resolve(raw_decide(unit), now);
}

FaultInjector::RawDecision FaultInjector::raw_decide(
    std::uint64_t unit) const {
  if (!plan_.enabled()) return RawDecision{};
  std::uint64_t index = 0;
  return raw_from_words(plan_, [this, unit, &index] {
    return stream_.word_at(unit, index++);
  });
}

void FaultInjector::decide_batch(std::uint64_t first_unit, std::size_t n,
                                 RawDecision* out) const {
  if (!plan_.enabled()) {
    for (std::size_t i = 0; i < n; ++i) out[i] = RawDecision{};
    return;
  }
  const Philox4Fn px = philox4();
  const std::uint64_t key = stream_.key();
  // Worst case a unit consumes 7 words (burst + drop + corrupt +
  // corrupt_bit + duplicate + jitter + delay) when every Lemire draw
  // accepts on the first word; rejections overflow to scalar word_at.
  constexpr std::size_t kCols = 8;
  for (std::size_t block = 0; block < n; block += 4) {
    const std::uint64_t e0 = first_unit + block;
    const std::uint64_t c0[4] = {e0, e0 + 1, e0 + 2, e0 + 3};
    std::uint64_t cols[kCols][4];
    std::size_t filled = 0;
    // Columns (draw indices) are generated lazily, 4 units wide: most
    // units stop after 2-3 draws, so later columns are usually never
    // computed at all.
    auto word = [&](std::size_t lane, std::uint64_t index) {
      if (index >= kCols) return stream_.word_at(e0 + lane, index);
      while (filled <= index) {
        const std::uint64_t c1[4] = {filled, filled, filled, filled};
        px(key, c0, c1, cols[filled]);
        ++filled;
      }
      return cols[index][lane];
    };
    const std::size_t lanes = n - block < 4 ? n - block : 4;
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      std::uint64_t index = 0;
      out[block + lane] = raw_from_words(
          plan_, [&word, lane, &index] { return word(lane, index++); });
    }
  }
}

FaultInjector::Decision FaultInjector::resolve(const RawDecision& raw,
                                               SimTime now) {
  Decision decision;
  if (!plan_.enabled()) {
    ++stats_.delivered;
    return decision;
  }
  if (now < burst_until_) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (raw.burst_start) {
    burst_until_ = now + plan_.burst_duration;
    ++stats_.bursts;
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (raw.drop) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (raw.corrupt) {
    decision.corrupt = true;
    decision.corrupt_bit = raw.corrupt_bit;
    ++stats_.corrupted;
  }
  if (raw.duplicate) {
    decision.duplicate = true;
    ++stats_.duplicated;
  }
  if (raw.jitter) {
    decision.extra_delay = raw.extra_delay;
    ++stats_.jittered;
  }
  ++stats_.delivered;
  return decision;
}

void FaultInjector::prefetch(std::size_t n) {
  if (!plan_.enabled() || n == 0) return;
  if (n > kPrefetchMax) n = kPrefetchMax;
  // Refill only once the window runs dry. Requiring full coverage of
  // [next_unit_, next_unit_ + n) instead would recompute the whole batch
  // on every call whenever the caller's queue keeps growing (listeners
  // answering requests mid-delivery) — O(window) draws per unit.
  if (next_unit_ >= raw_base_ && next_unit_ < raw_base_ + raw_count_) {
    return;
  }
  decide_batch(next_unit_, n, raws_);
  raw_base_ = next_unit_;
  raw_count_ = n;
}

double FaultConfig::server_pending_rate() const {
  return std::min(1.0, rate * 4.0);
}

double FaultConfig::server_busy_rate() const {
  return std::min(1.0, rate * 2.0);
}

Rng FaultConfig::rng_for(std::uint64_t salt) const {
  // SplitMix-style mix keeps nearby salts (car 0, car 1, ...) decorrelated.
  std::uint64_t mixed = fault_seed ^ (salt * 0x9E3779B97F4A7C15ULL +
                                      0x632BE59BD9B4E019ULL);
  return Rng(mixed);
}

CounterRng FaultConfig::stream_for(std::uint64_t stream_id) const {
  return CounterRng(fault_seed ^ kFaultStreamSaltV2, stream_id);
}

}  // namespace dpr::util
