#include "util/fault.hpp"

#include <algorithm>

namespace dpr::util {

namespace {

// Salt constant for counter-based fault streams. Deliberately distinct from
// the 0x...E019 constant inside rng_for(): bumping it when the injector
// migrated from sequential to per-unit counter draws makes the stream-format
// break explicit — old and new builds never silently share a stream.
constexpr std::uint64_t kFaultStreamSaltV2 = 0x632BE59BD9B4E01BULL;

}  // namespace

FaultPlan FaultPlan::scaled(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  FaultPlan plan;
  plan.drop_rate = rate;
  plan.corrupt_rate = rate * 0.5;
  plan.duplicate_rate = rate * 0.25;
  plan.jitter_rate = std::min(1.0, rate * 2.0);
  plan.burst_rate = rate * 0.02;
  return plan;
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  delivered += other.delivered;
  dropped += other.dropped;
  corrupted += other.corrupted;
  duplicated += other.duplicated;
  jittered += other.jittered;
  bursts += other.bursts;
  return *this;
}

FaultInjector::Decision FaultInjector::decide(SimTime now) {
  return decide_unit(next_unit_++, now);
}

FaultInjector::Decision FaultInjector::decide_unit(std::uint64_t unit,
                                                   SimTime now) {
  Decision decision;
  if (!plan_.enabled()) {
    ++stats_.delivered;
    return decision;  // no draws: fault-free runs stay bit-identical
  }
  // Units inside an active burst window are swallowed without consulting
  // the stream; with counter draws that is a non-event anyway (event `unit`
  // simply goes unread), but it keeps the swallow path branch-cheap.
  if (now < burst_until_) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  // All of unit n's draws come from event n, in a fixed intra-event order.
  // Conditional draws (corrupt_bit only when corrupt fires) advance only
  // this event's index, so they can never shift another unit's fate.
  CounterRng draws = stream_.at(unit);
  if (plan_.burst_rate > 0.0 && draws.chance(plan_.burst_rate)) {
    burst_until_ = now + plan_.burst_duration;
    ++stats_.bursts;
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (plan_.drop_rate > 0.0 && draws.chance(plan_.drop_rate)) {
    decision.drop = true;
    ++stats_.dropped;
    return decision;
  }
  if (plan_.corrupt_rate > 0.0 && draws.chance(plan_.corrupt_rate)) {
    decision.corrupt = true;
    decision.corrupt_bit =
        static_cast<std::uint32_t>(draws.uniform_int(0, 63));
    ++stats_.corrupted;
  }
  if (plan_.duplicate_rate > 0.0 && draws.chance(plan_.duplicate_rate)) {
    decision.duplicate = true;
    ++stats_.duplicated;
  }
  if (plan_.jitter_rate > 0.0 && draws.chance(plan_.jitter_rate)) {
    decision.extra_delay = draws.uniform_int(0, plan_.max_jitter);
    ++stats_.jittered;
  }
  ++stats_.delivered;
  return decision;
}

double FaultConfig::server_pending_rate() const {
  return std::min(1.0, rate * 4.0);
}

double FaultConfig::server_busy_rate() const {
  return std::min(1.0, rate * 2.0);
}

Rng FaultConfig::rng_for(std::uint64_t salt) const {
  // SplitMix-style mix keeps nearby salts (car 0, car 1, ...) decorrelated.
  std::uint64_t mixed = fault_seed ^ (salt * 0x9E3779B97F4A7C15ULL +
                                      0x632BE59BD9B4E019ULL);
  return Rng(mixed);
}

CounterRng FaultConfig::stream_for(std::uint64_t stream_id) const {
  return CounterRng(fault_seed ^ kFaultStreamSaltV2, stream_id);
}

}  // namespace dpr::util
