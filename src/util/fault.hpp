#pragma once
// Deterministic fault injection for the simulated buses.
//
// The paper's pipeline runs against a hostile physical world: lossy CAN
// wiring, ECUs that stall with `responsePending`, bursts of bus-off time.
// FaultPlan describes a fault mix, FaultInjector turns it into per-unit
// (frame or byte) delivery decisions driven by a counter-based
// util::CounterRng stream: unit n's draws come from event n of the stream,
// so the fate of a unit is a pure function of (seed, stream, unit ordinal)
// and dropping or reordering one unit can never shift the draws of another.
// Every campaign owns its own bus and injector, and any (seed, fault-rate)
// pair replays bit-identically at any thread count — or under random-access
// replay via decide_unit(). A disabled plan performs no RNG draws at all,
// which keeps fault-free runs bit-identical to a build without the injector.
//
// Stream-format note: migrating from sequential xoshiro draws to per-unit
// counter events (and bumping the fault-stream salt) was a one-time break
// in the fault stream format — fault sequences differ from pre-counter
// builds for the same seed, but are deterministic within this format.

#include <cstddef>
#include <cstdint>

#include "util/clock.hpp"
#include "util/counter_rng.hpp"
#include "util/rng.hpp"

namespace dpr::util {

/// Per-delivery fault probabilities and magnitudes. All rates are in [0, 1]
/// and evaluated per delivered unit (CAN frame or K-Line byte).
struct FaultPlan {
  double drop_rate = 0.0;       ///< unit vanishes from the wire
  double corrupt_rate = 0.0;    ///< one payload bit is flipped
  double duplicate_rate = 0.0;  ///< unit is delivered twice
  double jitter_rate = 0.0;     ///< extra delivery latency is inserted
  SimTime max_jitter = 5 * kMillisecond;  ///< upper bound for jitter delay
  double burst_rate = 0.0;      ///< a bus-off burst starts at this unit
  SimTime burst_duration = 20 * kMillisecond;  ///< burst outage length

  bool enabled() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           jitter_rate > 0.0 || burst_rate > 0.0;
  }

  /// Map the single CLI knob `--fault-rate r` onto the full taxonomy:
  /// drops dominate, corruption/duplication follow at fixed fractions,
  /// jitter is common but harmless, bursts are rare and long.
  static FaultPlan scaled(double rate);
};

/// Counters accumulated by a FaultInjector; deterministic per (plan, seed).
struct FaultStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;    ///< includes units swallowed by bursts
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t jittered = 0;
  std::uint64_t bursts = 0;

  FaultStats& operator+=(const FaultStats& other);
};

/// Draws one fault decision per delivered unit. Unit n's draws all come
/// from event n of the counter stream in a fixed order (burst start, drop,
/// corrupt + corrupt_bit, duplicate, jitter), so decisions are random-access
/// reproducible: decide_unit(n, t) returns the same fate no matter which
/// units were decided before it. Only the burst *window* (`burst_until_`)
/// is stateful — whether a unit is swallowed depends on sim time, but
/// swallowed units consume no draws, so they cannot shift anything.
class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    SimTime extra_delay = 0;
    std::uint32_t corrupt_bit = 0;  ///< caller reduces modulo payload bits
  };

  /// The stateless half of one unit's fate: every random draw, no stats,
  /// no burst window. A RawDecision is a pure function of (stream, unit),
  /// which is what makes whole-window pre-computation legal — see
  /// decide_batch().
  struct RawDecision {
    bool burst_start = false;
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    bool jitter = false;            ///< jitter fired (delay may still be 0)
    std::uint32_t corrupt_bit = 0;
    SimTime extra_delay = 0;
  };

  FaultInjector(FaultPlan plan, CounterRng stream)
      : plan_(plan), stream_(stream) {}

  bool enabled() const { return plan_.enabled(); }

  /// Decide the fate of the next unit in wire-delivery order at sim time
  /// `now`. Equivalent to decide_unit(next unit ordinal, now). Consumes a
  /// prefetch()ed RawDecision when one covers the unit, otherwise draws
  /// scalar — either way the result is bit-identical.
  Decision decide(SimTime now);

  /// Decide the fate of unit `unit` (its ordinal on this wire) delivered
  /// at sim time `now`. Pure in the random draws; advances stats and the
  /// burst window.
  Decision decide_unit(std::uint64_t unit, SimTime now);

  /// The pure draw half of decide_unit: unit `unit`'s RawDecision,
  /// touching no injector state. Scalar reference for decide_batch.
  RawDecision raw_decide(std::uint64_t unit) const;

  /// Pre-compute the RawDecisions of units [first_unit, first_unit + n)
  /// in one pass, 4 units per Philox invocation (util::philox4 — AVX2
  /// when available). Legality: every draw of unit u is the pure word
  /// philox(key, u, j), so batch evaluation commutes with delivery order,
  /// and computing a raw for a unit that later lands inside a burst
  /// window (or is never delivered) is a non-event. Bit-identical to n
  /// raw_decide() calls.
  void decide_batch(std::uint64_t first_unit, std::size_t n,
                    RawDecision* out) const;

  /// Apply the stateful half to a pre-computed RawDecision: burst-window
  /// swallow, burst arming, stats. decide_unit(u, now) ==
  /// resolve(raw_decide(u), now) for the injector's next sequential unit.
  Decision resolve(const RawDecision& raw, SimTime now);

  /// Pre-compute raw decisions for the next `n` sequential units (capped
  /// at kPrefetchMax, no-op when the window already covers them or the
  /// plan is disabled). Buses call this once per delivery window; decide()
  /// then consumes the window without further draws.
  void prefetch(std::size_t n);
  static constexpr std::size_t kPrefetchMax = 64;

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  CounterRng stream_;
  FaultStats stats_;
  std::uint64_t next_unit_ = 0;  ///< ordinal used by sequential decide()
  SimTime burst_until_ = -1;  ///< exclusive end of the active burst window
  // Prefetched RawDecisions for units [raw_base_, raw_base_ + raw_count_).
  RawDecision raws_[kPrefetchMax];
  std::uint64_t raw_base_ = 0;
  std::size_t raw_count_ = 0;
};

/// Campaign-level fault configuration: one rate knob plus an independent
/// seed. Derives the bus plan and the server-side NRC fault rates so a
/// single `--fault-rate` exercises every layer of the retry stack.
///
/// The *stateful* knobs model failures that survive a retry: ECU reboots
/// (`reset_rate`: per-request chance that the ECU wipes its session /
/// security state and goes bus-silent for `reset_boot_time`) and S3
/// session timers (`session_faults`: non-default sessions expire after
/// `s3_timeout` of inactivity, security lockout counters are armed).
/// Either one turns on the diagtool session supervisor. All stateful
/// draws use their own salted streams, and a config with every stateful
/// knob at its default performs zero extra RNG draws — clean runs stay
/// bit-identical to a build without the machinery.
struct FaultConfig {
  double rate = 0.0;
  std::uint64_t fault_seed = 0xFA017D0DULL;

  double reset_rate = 0.0;  ///< per-request ECU reboot probability
  SimTime reset_boot_time = 300 * kMillisecond;  ///< bus-silent boot window
  bool session_faults = false;  ///< arm S3 expiry + security lockout
  SimTime s3_timeout = 5 * kSecond;  ///< S3 inactivity limit when armed

  /// OSEK/VDX network management: every ECU runs an NM ring node, the bus
  /// gains a sleep/wakeup lifecycle, and the campaign's tool must keep the
  /// bus awake (dpr::nm). Off by default; when off, no NM node is built,
  /// the bus lifecycle stays disabled, and no NM stream draws happen, so
  /// NM-off runs stay bit-identical to a build without the module.
  bool nm = false;
  /// Quiet-bus window after which the ring agrees to sleep (NM armed only).
  SimTime nm_sleep_timeout = 3 * kSecond;
  /// NM veto holdout: the ring node at this 1-based ECU address joins the
  /// ring but never acks a sleep request, so the bus can never complete
  /// the two-phase sleep agreement. 0 (default) = no holdout. Folded into
  /// the checkpoint options digest only when nonzero, so default-config
  /// keys stay identical to pre-veto builds.
  std::uint8_t nm_veto_address = 0;

  /// Stateful failures armed (ECU resets and/or session timers)?
  bool stateful() const { return reset_rate > 0.0 || session_faults; }

  bool enabled() const { return rate > 0.0 || stateful(); }

  FaultPlan bus_plan() const { return FaultPlan::scaled(rate); }

  /// Probability that a server prepends 0x78 responsePending message(s).
  double server_pending_rate() const;
  /// Probability that a server answers 0x21 busyRepeatRequest instead.
  double server_busy_rate() const;

  /// Independent sequential child stream for one component. `salt` must be
  /// stable across runs (car index, request id) — never an address. Still
  /// used where draws are inherently ordered (server NRC envelopes).
  Rng rng_for(std::uint64_t salt) const;

  /// Independent counter-based stream for one component — the random-access
  /// sibling of rng_for(), used by fault injectors and ECU reset draws.
  /// Uses a distinct salt constant so counter streams never collide with a
  /// sequential stream derived from the same id.
  CounterRng stream_for(std::uint64_t stream_id) const;
};

}  // namespace dpr::util
