#pragma once
// Deterministic fault injection for the simulated buses.
//
// The paper's pipeline runs against a hostile physical world: lossy CAN
// wiring, ECUs that stall with `responsePending`, bursts of bus-off time.
// FaultPlan describes a fault mix, FaultInjector turns it into per-unit
// (frame or byte) delivery decisions driven by a forked util::Rng stream.
// Every campaign owns its own bus and injector, and decisions are drawn in
// wire-delivery order, so any (seed, fault-rate) pair replays bit-identically
// at any thread count. A disabled plan performs no RNG draws at all, which
// keeps fault-free runs bit-identical to a build without the injector.

#include <cstdint>

#include "util/clock.hpp"
#include "util/rng.hpp"

namespace dpr::util {

/// Per-delivery fault probabilities and magnitudes. All rates are in [0, 1]
/// and evaluated per delivered unit (CAN frame or K-Line byte).
struct FaultPlan {
  double drop_rate = 0.0;       ///< unit vanishes from the wire
  double corrupt_rate = 0.0;    ///< one payload bit is flipped
  double duplicate_rate = 0.0;  ///< unit is delivered twice
  double jitter_rate = 0.0;     ///< extra delivery latency is inserted
  SimTime max_jitter = 5 * kMillisecond;  ///< upper bound for jitter delay
  double burst_rate = 0.0;      ///< a bus-off burst starts at this unit
  SimTime burst_duration = 20 * kMillisecond;  ///< burst outage length

  bool enabled() const {
    return drop_rate > 0.0 || corrupt_rate > 0.0 || duplicate_rate > 0.0 ||
           jitter_rate > 0.0 || burst_rate > 0.0;
  }

  /// Map the single CLI knob `--fault-rate r` onto the full taxonomy:
  /// drops dominate, corruption/duplication follow at fixed fractions,
  /// jitter is common but harmless, bursts are rare and long.
  static FaultPlan scaled(double rate);
};

/// Counters accumulated by a FaultInjector; deterministic per (plan, seed).
struct FaultStats {
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;    ///< includes units swallowed by bursts
  std::uint64_t corrupted = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t jittered = 0;
  std::uint64_t bursts = 0;

  FaultStats& operator+=(const FaultStats& other);
};

/// Draws one fault decision per delivered unit. The draw order is fixed
/// (burst window check, burst start, drop, corrupt, duplicate, jitter) and
/// is part of the determinism contract: buses consult the injector exactly
/// once per unit, in delivery order.
class FaultInjector {
 public:
  struct Decision {
    bool drop = false;
    bool corrupt = false;
    bool duplicate = false;
    SimTime extra_delay = 0;
    std::uint32_t corrupt_bit = 0;  ///< caller reduces modulo payload bits
  };

  FaultInjector(FaultPlan plan, Rng rng) : plan_(plan), rng_(rng) {}

  bool enabled() const { return plan_.enabled(); }

  /// Decide the fate of the unit about to be delivered at sim time `now`.
  Decision decide(SimTime now);

  const FaultPlan& plan() const { return plan_; }
  const FaultStats& stats() const { return stats_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  FaultStats stats_;
  SimTime burst_until_ = -1;  ///< exclusive end of the active burst window
};

/// Campaign-level fault configuration: one rate knob plus an independent
/// seed. Derives the bus plan and the server-side NRC fault rates so a
/// single `--fault-rate` exercises every layer of the retry stack.
///
/// The *stateful* knobs model failures that survive a retry: ECU reboots
/// (`reset_rate`: per-request chance that the ECU wipes its session /
/// security state and goes bus-silent for `reset_boot_time`) and S3
/// session timers (`session_faults`: non-default sessions expire after
/// `s3_timeout` of inactivity, security lockout counters are armed).
/// Either one turns on the diagtool session supervisor. All stateful
/// draws use their own salted streams, and a config with every stateful
/// knob at its default performs zero extra RNG draws — clean runs stay
/// bit-identical to a build without the machinery.
struct FaultConfig {
  double rate = 0.0;
  std::uint64_t fault_seed = 0xFA017D0DULL;

  double reset_rate = 0.0;  ///< per-request ECU reboot probability
  SimTime reset_boot_time = 300 * kMillisecond;  ///< bus-silent boot window
  bool session_faults = false;  ///< arm S3 expiry + security lockout
  SimTime s3_timeout = 5 * kSecond;  ///< S3 inactivity limit when armed

  /// Stateful failures armed (ECU resets and/or session timers)?
  bool stateful() const { return reset_rate > 0.0 || session_faults; }

  bool enabled() const { return rate > 0.0 || stateful(); }

  FaultPlan bus_plan() const { return FaultPlan::scaled(rate); }

  /// Probability that a server prepends 0x78 responsePending message(s).
  double server_pending_rate() const;
  /// Probability that a server answers 0x21 busyRepeatRequest instead.
  double server_busy_rate() const;

  /// Independent child stream for one component (bus, ECU, ...). `salt`
  /// must be stable across runs (car index, request id) — never an address.
  Rng rng_for(std::uint64_t salt) const;
};

}  // namespace dpr::util
