#include "util/hex.hpp"

#include <cctype>
#include <stdexcept>

namespace dpr::util {

std::string to_hex(std::span<const std::uint8_t> data) {
  static constexpr char digits[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(data.size() * 3);
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i != 0) out.push_back(' ');
    out.push_back(digits[data[i] >> 4]);
    out.push_back(digits[data[i] & 0xF]);
  }
  return out;
}

namespace {

int nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  throw std::invalid_argument(std::string("invalid hex character: ") + c);
}

}  // namespace

Bytes from_hex(std::string_view text) {
  Bytes out;
  std::size_t i = 0;
  while (i < text.size()) {
    const char c = text[i];
    if (c == ' ' || c == ',' || c == '\t' || c == '\n') {
      ++i;
      continue;
    }
    if (i + 1 >= text.size()) {
      throw std::invalid_argument("dangling hex nibble");
    }
    const int hi = nibble(text[i]);
    const int lo = nibble(text[i + 1]);
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
    i += 2;
  }
  return out;
}

std::uint16_t read_u16(std::span<const std::uint8_t> data, std::size_t i) {
  return static_cast<std::uint16_t>((data[i] << 8) | data[i + 1]);
}

void append_u16(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

}  // namespace dpr::util
