#pragma once
// Hex encoding/decoding for diagnostic payloads.
//
// Diagnostic messages throughout the paper are written as space-separated
// hex bytes ("2F 09 50 03 05 01 00 00"); these helpers parse and render
// that notation.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dpr::util {

using Bytes = std::vector<std::uint8_t>;

/// Render bytes as uppercase space-separated hex: {0x2F,0x09} -> "2F 09".
std::string to_hex(std::span<const std::uint8_t> data);

/// Parse space/comma-separated hex bytes. Throws std::invalid_argument on
/// malformed input (odd nibble counts, non-hex characters).
Bytes from_hex(std::string_view text);

/// Big-endian 16-bit read of data[i], data[i+1]. Caller guarantees bounds.
std::uint16_t read_u16(std::span<const std::uint8_t> data, std::size_t i);

/// Append a big-endian 16-bit value.
void append_u16(Bytes& out, std::uint16_t v);

}  // namespace dpr::util
