#pragma once
// Transport-agnostic message link.
//
// UDS runs over ISO-TP; KWP 2000 runs over ISO-TP, VW TP 2.0 or the BMW
// framing variant (Table 1). Application-layer clients and servers talk
// through this interface so the same diagnostic logic composes with every
// transport.

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace dpr::util {

class MessageLink {
 public:
  using Handler = std::function<void(const std::vector<std::uint8_t>&)>;

  virtual ~MessageLink() = default;

  /// Queue a complete application-layer message for transmission.
  virtual void send(std::span<const std::uint8_t> payload) = 0;

  /// Register the callback invoked with each reassembled incoming message.
  virtual void set_message_handler(Handler handler) = 0;

  /// Drop any link-level connection state so the next send() re-establishes
  /// it (e.g. a K-Line tester repeating fast-init + StartCommunication
  /// after the ECU rebooted). Default: links with no handshake do nothing.
  virtual void reconnect() {}
};

}  // namespace dpr::util
