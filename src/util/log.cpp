#include "util/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace dpr::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& component,
                 const std::string& message) {
  if (level < g_level.load()) return;
  const std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << component << ": "
            << message << "\n";
}

}  // namespace dpr::util
