#pragma once
// Minimal leveled logger. Defaults to Warning so tests/benches stay quiet;
// examples raise it to Info to narrate the pipeline.

#include <sstream>
#include <string>

namespace dpr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit a log line if `level` passes the global threshold.
void log_message(LogLevel level, const std::string& component,
                 const std::string& message);

/// Stream-style helper: LogLine(kInfo, "can") << "bus reset"; emits at scope
/// exit.
class LogLine {
 public:
  LogLine(LogLevel level, std::string component)
      : level_(level), component_(std::move(component)) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, component_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};

}  // namespace dpr::util
