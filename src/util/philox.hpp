#pragma once
// The Philox2x64-10 block function (Salmon et al., SC'11), shared between
// the sequential CounterRng engine and the 4-wide batch kernels in
// simd_philox.{hpp,cpp}. There is exactly one scalar definition of the
// bijection in the codebase — both consumers include this header — so the
// scalar/SIMD bit-exactness contract has a single reference to match.

#include <cstdint>

namespace dpr::util {

// Philox2x64 round constants.
inline constexpr std::uint64_t kPhiloxMul = 0xD2B74407B1CE6E93ULL;
inline constexpr std::uint64_t kPhiloxWeyl = 0x9E3779B97F4A7C15ULL;

/// One Philox2x64-10 block: encrypt counter {c0, c1} under `key`, return
/// word 0. Ten rounds of mulhi/mullo mixing with a Weyl key schedule.
inline std::uint64_t philox2x64(std::uint64_t key, std::uint64_t c0,
                                std::uint64_t c1) {
  std::uint64_t x0 = c0;
  std::uint64_t x1 = c1;
  for (int round = 0; round < 10; ++round) {
    const auto product = static_cast<unsigned __int128>(kPhiloxMul) * x0;
    const auto hi = static_cast<std::uint64_t>(product >> 64);
    const auto lo = static_cast<std::uint64_t>(product);
    x0 = hi ^ key ^ x1;
    x1 = lo;
    key += kPhiloxWeyl;
  }
  return x0;
}

}  // namespace dpr::util
