#include "util/rng.hpp"

#include <cmath>

namespace dpr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high-quality bits -> double in [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  // Unsigned subtraction: hi - lo would overflow std::int64_t for the
  // full-range request (and UBSan rightly objects).
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  // Lemire multiply-shift with rejection: `x % span` over-weights the low
  // residues whenever span does not divide 2^64, which skews exactly the
  // small-range draws the GP engine leans on (tournament selection,
  // mutation-site picks). Rejecting the partial final interval makes every
  // residue equally likely; the expected number of extra draws is < 1 even
  // in the worst case.
  std::uint64_t x = (*this)();
  auto product = static_cast<unsigned __int128>(x) * span;
  auto low = static_cast<std::uint64_t>(product);
  if (low < span) {
    const std::uint64_t threshold = (0 - span) % span;
    while (low < threshold) {
      x = (*this)();
      product = static_cast<unsigned __int128>(x) * span;
      low = static_cast<std::uint64_t>(product);
    }
  }
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   static_cast<std::uint64_t>(product >> 64));
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::fork() { return Rng((*this)() ^ 0xD1B54A32D192ED03ULL); }

Rng::State Rng::state() const {
  State state;
  for (int i = 0; i < 4; ++i) state.s[i] = s_[i];
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::restore(const State& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state.s[i];
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

}  // namespace dpr::util
