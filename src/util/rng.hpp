#pragma once
// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component of the simulated apparatus (sensor dynamics,
// OCR noise, GP evolution) draws from an explicitly seeded Rng so that the
// whole reproduction pipeline is bit-deterministic given a seed.

#include <cstdint>
#include <limits>

namespace dpr::util {

/// xoshiro256** 1.0 — small, fast, high-quality PRNG.
/// Satisfies std::uniform_random_bit_generator so it can drive <random>.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  /// Reinitialize the state from a 64-bit seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box-Muller, cached second value).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Bernoulli trial: true with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Derive an independent child generator; used to give each simulated
  /// component its own stream without correlated draws.
  Rng fork();

  /// Complete generator state, including the Box-Muller cache, so a
  /// restored generator replays the exact upcoming draw sequence
  /// (campaign checkpoints save the OCR stream mid-flight).
  struct State {
    std::uint64_t s[4]{};
    double cached_normal = 0.0;
    bool has_cached_normal = false;
  };

  State state() const;
  void restore(const State& state);

 private:
  std::uint64_t s_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace dpr::util
