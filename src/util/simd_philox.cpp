#include "util/simd_philox.hpp"

#include <cstdlib>

#include "util/philox.hpp"

namespace dpr::util {

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64)
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

}  // namespace

void philox2x64x4_scalar(std::uint64_t key, const std::uint64_t* c0,
                         const std::uint64_t* c1, std::uint64_t* out) {
  out[0] = philox2x64(key, c0[0], c1[0]);
  out[1] = philox2x64(key, c0[1], c1[1]);
  out[2] = philox2x64(key, c0[2], c1[2]);
  out[3] = philox2x64(key, c0[3], c1[3]);
}

bool philox4_simd_compiled() { return philox4_avx2() != nullptr; }

bool philox4_simd_supported() {
  return philox4_simd_compiled() && cpu_has_avx2();
}

Philox4Fn philox4() {
  // Both bodies are bit-identical, so the choice is purely a speed
  // policy. The 4-lane scalar body measures ~2x FASTER than the AVX2
  // body on current x86-64 (bench_micro BM_SimdPhiloxBlock): AVX2 lacks
  // a 64-bit multiply, so the vector round is a serial chain of
  // synthesized vpmuludq partial products (latency-bound), while the
  // scalar body pipelines four independent native mulx chains. The AVX2
  // body stays compiled and fuzz-gated — DPR_PHILOX_AVX2=1 selects it
  // for measurement, and a native-vpmullq (AVX-512DQ) port would flip
  // the default.
  static const Philox4Fn chosen = [] {
    const char* force = std::getenv("DPR_PHILOX_AVX2");
    if (force && force[0] == '1' && philox4_simd_supported()) {
      return philox4_avx2();
    }
    return &philox2x64x4_scalar;
  }();
  return chosen;
}

}  // namespace dpr::util
