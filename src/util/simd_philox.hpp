#pragma once
// 4-wide vectorized Philox2x64-10 for bulk draw sites (the ROADMAP PR-7
// follow-on). One call produces word 0 of four independent counter blocks
// {c0[i], c1[i]} under a shared key — exactly four CounterRng::word_at()
// results — so batch consumers (FaultInjector::decide_batch) can draw a
// whole delivery window per invocation.
//
// Two implementations sit behind one function-pointer type, mirroring the
// gp kernel-table layout: a portable scalar body (four calls into the
// shared util::philox2x64 reference, always available) and an AVX2 body
// compiled into its own TU (simd_philox_avx2.cpp, built only when
// DPR_ENABLE_AVX2 targets x86-64). Both are bit-identical to
// CounterRng::word_at by construction and fuzz-gated in util_test.

#include <cstdint>

namespace dpr::util {

/// out[i] = philox2x64(key, c0[i], c1[i]) for i in 0..3.
using Philox4Fn = void (*)(std::uint64_t key, const std::uint64_t* c0,
                           const std::uint64_t* c1, std::uint64_t* out);

/// Portable 4-wide body: four scalar philox2x64 blocks. The bit-exact
/// reference; always available.
void philox2x64x4_scalar(std::uint64_t key, const std::uint64_t* c0,
                         const std::uint64_t* c1, std::uint64_t* out);

/// AVX2 4-lane body, or nullptr when the build carries no AVX2 code path.
Philox4Fn philox4_avx2();

/// Was an AVX2 Philox body compiled into this binary?
bool philox4_simd_compiled();

/// philox4_simd_compiled() and the running CPU reports AVX2.
bool philox4_simd_supported();

/// The 4-wide kernel batch sites should use right now. Defaults to the
/// pipelined scalar body — it measures ~2x faster than the AVX2 body on
/// current x86-64 (no native 64-bit vector multiply; see bench_micro
/// BM_SimdPhiloxBlock). DPR_PHILOX_AVX2=1 selects the AVX2 body where
/// compiled + supported. Resolved once per process; both bodies are
/// bit-identical, so the choice never affects results.
Philox4Fn philox4();

}  // namespace dpr::util
