// AVX2 4-lane Philox2x64-10: four counter blocks per invocation, one
// 64-bit lane each. This TU is compiled with `-mavx2` only when
// DPR_ENABLE_AVX2 targets x86-64; otherwise it compiles to the nullptr
// stub and the dispatcher stays on the scalar body.
//
// AVX2 has no 64x64 multiply, so the mulhi/mullo pair each round is
// synthesized from _mm256_mul_epu32 32x32->64 partial products
// (schoolbook: ll + cross terms + hh, with explicit carry propagation
// through a 32-bit mid word). Every operation is exact integer
// arithmetic — the lanes match util::philox2x64 bit for bit, which
// util_test fuzz-gates against CounterRng::word_at.

#include "util/simd_philox.hpp"

#if defined(DPR_SIMD_AVX2) && defined(__AVX2__)

#include <immintrin.h>

#include "util/philox.hpp"

namespace dpr::util {

namespace {

// 64x64 -> {hi, lo} per lane, `b` broadcast constant (the Philox
// multiplier). a = aH*2^32 + aL, b = bH*2^32 + bL:
//   lo = (mid << 32) | (ll & 0xFFFFFFFF)
//   hi = aH*bH + (aL*bH >> 32) + (aH*bL >> 32) + (mid >> 32)
// with mid = (ll >> 32) + (aL*bH & 0xFFFFFFFF) + (aH*bL & 0xFFFFFFFF).
// Each partial sum fits a 64-bit lane (mid < 3*2^32, hi < 2^64).
struct WideProduct {
  __m256i hi;
  __m256i lo;
};

inline WideProduct mul64_wide(__m256i a, __m256i b) {
  const __m256i mask32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i a_hi = _mm256_srli_epi64(a, 32);
  const __m256i b_hi = _mm256_srli_epi64(b, 32);
  const __m256i ll = _mm256_mul_epu32(a, b);      // aL*bL
  const __m256i lh = _mm256_mul_epu32(a, b_hi);   // aL*bH
  const __m256i hl = _mm256_mul_epu32(a_hi, b);   // aH*bL
  const __m256i hh = _mm256_mul_epu32(a_hi, b_hi);  // aH*bH
  const __m256i mid = _mm256_add_epi64(
      _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                       _mm256_and_si256(lh, mask32)),
      _mm256_and_si256(hl, mask32));
  WideProduct p;
  p.hi = _mm256_add_epi64(
      _mm256_add_epi64(hh, _mm256_srli_epi64(lh, 32)),
      _mm256_add_epi64(_mm256_srli_epi64(hl, 32),
                       _mm256_srli_epi64(mid, 32)));
  p.lo = _mm256_or_si256(_mm256_slli_epi64(mid, 32),
                         _mm256_and_si256(ll, mask32));
  return p;
}

void avx2_philox4(std::uint64_t key, const std::uint64_t* c0,
                  const std::uint64_t* c1, std::uint64_t* out) {
  const __m256i mul = _mm256_set1_epi64x(static_cast<long long>(kPhiloxMul));
  __m256i x0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c0));
  __m256i x1 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c1));
  __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
  const __m256i weyl =
      _mm256_set1_epi64x(static_cast<long long>(kPhiloxWeyl));
  for (int round = 0; round < 10; ++round) {
    const WideProduct p = mul64_wide(x0, mul);
    x0 = _mm256_xor_si256(_mm256_xor_si256(p.hi, k), x1);
    x1 = p.lo;
    k = _mm256_add_epi64(k, weyl);
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out), x0);
}

}  // namespace

Philox4Fn philox4_avx2() { return &avx2_philox4; }

}  // namespace dpr::util

#else  // no AVX2 code path in this build

namespace dpr::util {

Philox4Fn philox4_avx2() { return nullptr; }

}  // namespace dpr::util

#endif
