#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>

namespace dpr::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const std::size_t mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(mid),
                   xs.end());
  double hi = xs[mid];
  if (xs.size() % 2 == 1) return hi;
  std::nth_element(xs.begin(),
                   xs.begin() + static_cast<std::ptrdiff_t>(mid) - 1,
                   xs.end());
  return (xs[mid - 1] + hi) / 2.0;
}

double mad(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const double m = median(xs);
  for (double& x : xs) x = std::abs(x - m);
  return median(std::move(xs));
}

double mean_absolute_error(std::span<const double> pred,
                           std::span<const double> target) {
  // A size mismatch is a caller bug, and 0.0 would read as a *perfect*
  // score; NaN poisons downstream comparisons instead of silently winning
  // them.
  if (pred.size() != target.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    s += std::abs(pred[i] - target[i]);
  }
  return s / static_cast<double>(pred.size());
}

double mean_squared_error(std::span<const double> pred,
                          std::span<const double> target) {
  if (pred.size() != target.size()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (pred.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace dpr::util
