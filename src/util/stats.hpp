#pragma once
// Small statistics helpers used by the screenshot outlier filter (§3.3),
// the correlation module and the regression baselines.

#include <span>
#include <vector>

namespace dpr::util {

double mean(std::span<const double> xs);
double variance(std::span<const double> xs);   // population variance
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);          // by value: sorts a copy

/// Median absolute deviation (raw, not scaled to sigma).
double mad(std::vector<double> xs);

/// Mean absolute error between predictions and targets (GP fitness, §3.5).
/// Mismatched sizes return NaN (never 0.0, which would read as perfect).
double mean_absolute_error(std::span<const double> pred,
                           std::span<const double> target);

/// Mean squared error. Mismatched sizes return NaN.
double mean_squared_error(std::span<const double> pred,
                          std::span<const double> target);

/// Pearson correlation coefficient; returns 0 when either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

}  // namespace dpr::util
