#include "util/thread_pool.hpp"

#include <algorithm>
#include <exception>
#include <memory>
#include <utility>

namespace dpr::util {

std::size_t ThreadPool::resolve(std::size_t n_threads) {
  if (n_threads != 0) return n_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t n_threads) {
  const std::size_t n = resolve(n_threads);
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  stop_.store(true, std::memory_order_release);
  sleep_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  const std::size_t home =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  pending_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(queues_[home]->mutex);
    queues_[home]->tasks.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_release);
  sleep_cv_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t home) {
  std::function<void()> task;
  // Own deque first (LIFO: cache-warm), then steal FIFO from siblings.
  {
    auto& q = *queues_[home];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      task = std::move(q.tasks.back());
      q.tasks.pop_back();
    }
  }
  if (!task) {
    for (std::size_t step = 1; step < queues_.size() && !task; ++step) {
      auto& victim = *queues_[(home + step) % queues_.size()];
      std::lock_guard<std::mutex> lock(victim.mutex);
      if (!victim.tasks.empty()) {
        task = std::move(victim.tasks.front());
        victim.tasks.pop_front();
      }
    }
  }
  if (!task) return false;
  queued_.fetch_sub(1, std::memory_order_acq_rel);
  task();
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    idle_cv_.notify_all();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  while (!stop_.load(std::memory_order_acquire)) {
    if (try_run_one(index)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    // Sleep on *queued* (not in-flight) work so a long-running task on a
    // sibling does not keep the idle workers spinning.
    sleep_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
  }
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] {
    return pending_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& body) {
  parallel_chunks(n, n,
                  [&body](std::size_t, std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) body(i);
                  });
}

void ThreadPool::parallel_chunks(
    std::size_t n, std::size_t n_chunks,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (n == 0 || n_chunks == 0) return;
  n_chunks = std::min(n_chunks, n);

  // Shared-ownership loop state: helper tasks may be dequeued after the
  // caller has already returned (every chunk can be claimed before a
  // queued helper ever runs), so everything a late helper touches must
  // live in this block, not on the caller's stack.
  struct Loop {
    std::size_t n = 0;
    std::size_t n_chunks = 0;
    std::function<void(std::size_t, std::size_t, std::size_t)> body;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex mutex;
    std::condition_variable cv;
    std::exception_ptr error;

    void drain() {
      for (;;) {
        const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= n_chunks) break;
        // Fixed decomposition: chunk c covers [c*n/nc, (c+1)*n/nc) — a
        // function of (n, n_chunks) only, never of the worker count, so
        // deterministic callers can rely on the chunk boundaries.
        try {
          body(c, c * n / n_chunks, (c + 1) * n / n_chunks);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex);
          if (!error) error = std::current_exception();
        }
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == n_chunks) {
          std::lock_guard<std::mutex> lock(mutex);
          cv.notify_all();
        }
      }
    }
  };
  auto loop = std::make_shared<Loop>();
  loop->n = n;
  loop->n_chunks = n_chunks;
  loop->body = body;

  // One helper task per worker; each pulls chunks from the shared cursor.
  // The caller drains too, so even when every worker is busy with long
  // jobs (nested loops, BatchRunner fan-out) the loop always completes.
  const std::size_t helpers =
      std::min(workers_.size(), n_chunks > 1 ? n_chunks - 1 : 0);
  for (std::size_t h = 0; h < helpers; ++h) {
    submit([loop] { loop->drain(); });
  }
  loop->drain();

  {
    std::unique_lock<std::mutex> lock(loop->mutex);
    loop->cv.wait(lock, [&loop] {
      return loop->done.load(std::memory_order_acquire) == loop->n_chunks;
    });
  }
  if (loop->error) std::rethrow_exception(loop->error);
}

}  // namespace dpr::util
