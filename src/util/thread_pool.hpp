#pragma once
// Work-stealing thread pool for the parallel inference engine.
//
// Each worker owns a deque: it pushes and pops work at the back and, when
// its own deque runs dry, steals from the front of a sibling's. submit()
// distributes tasks round-robin so independent jobs (e.g. BatchRunner's
// per-(vehicle, DID) datasets) spread across workers, while stealing keeps
// everyone busy when job costs are skewed — GP runs on small datasets
// finish early and their workers pick up the stragglers' chunks.
//
// parallel_for()/parallel_chunks() are *caller-participating*: the calling
// thread drains iterations from a shared atomic cursor alongside the
// workers, so a nested parallel_for issued from inside a pool task can
// never deadlock — worst case the caller executes every iteration itself.
// The first exception thrown by any iteration is captured and rethrown on
// the calling thread after the loop quiesces.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dpr::util {

class ThreadPool {
 public:
  /// Spawns `n_threads` workers; 0 means std::thread::hardware_concurrency.
  explicit ThreadPool(std::size_t n_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Resolve a user-facing thread knob: 0 -> hardware concurrency,
  /// otherwise the value itself (never less than 1).
  static std::size_t resolve(std::size_t n_threads);

  /// Enqueue a fire-and-forget task (round-robin across worker deques).
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished.
  void wait_idle();

  /// Run body(i) for i in [0, n). Blocks until all iterations complete;
  /// the caller participates, so this is safe to nest from pool tasks.
  /// Rethrows the first exception raised by any iteration.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// Run body(chunk, begin, end) over `n_chunks` contiguous slices of
  /// [0, n). The chunk decomposition depends only on (n, n_chunks), never
  /// on the worker count — callers rely on this for deterministic replay.
  void parallel_chunks(
      std::size_t n, std::size_t n_chunks,
      const std::function<void(std::size_t, std::size_t, std::size_t)>&
          body);

 private:
  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  bool try_run_one(std::size_t home);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleep_mutex_;
  std::condition_variable sleep_cv_;
  std::condition_variable idle_cv_;
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<std::size_t> queued_{0};   // tasks sitting in a deque
  std::atomic<std::size_t> pending_{0};  // queued + in flight
  std::atomic<bool> stop_{false};
};

}  // namespace dpr::util
