#pragma once
// Shared retry/timeout policy for the diagnostic transaction layer.
//
// ISO 14229-2 names the timing parameters we model: P2 (how long a tester
// waits for the first response) and P2* (the extended wait granted by NRC
// 0x78 responsePending). uds::Client and kwp::Client both run the same
// bounded-retry loop on top of these; TransactStats rolls the per-client
// counters up into CampaignReport.

#include <cstddef>
#include <cstdint>

#include "util/clock.hpp"

namespace dpr::util {

/// Retry/timeout knobs for one diagnostic client. The default policy is
/// the legacy single-shot behaviour (no retries, no clock advancement) so
/// fault-free runs stay bit-identical to pre-fault builds; `resilient()`
/// is what campaigns use whenever fault injection is enabled.
struct TransactPolicy {
  int max_retries = 0;        ///< extra attempts after the first send
  int max_pending_waits = 16; ///< 0x78 messages absorbed per transaction
  SimTime p2 = 50 * kMillisecond;        ///< backoff before a timeout retry
  SimTime p2_star = 500 * kMillisecond;  ///< backoff after 0x21 busy

  static TransactPolicy resilient() {
    TransactPolicy policy;
    policy.max_retries = 3;
    return policy;
  }
};

/// Deterministic per-client transaction counters.
struct TransactStats {
  std::uint64_t transactions = 0;   ///< transact() calls
  std::uint64_t retries = 0;        ///< resends after a response timeout
  std::uint64_t busy_retries = 0;   ///< resends after 0x21 busyRepeatRequest
  std::uint64_t pending_waits = 0;  ///< 0x78 responsePending absorbed
  std::uint64_t failures = 0;       ///< transactions with no usable answer

  TransactStats& operator+=(const TransactStats& other) {
    transactions += other.transactions;
    retries += other.retries;
    busy_retries += other.busy_retries;
    pending_waits += other.pending_waits;
    failures += other.failures;
    return *this;
  }
};

}  // namespace dpr::util
