#include "util/watchdog.hpp"

namespace dpr::util {

DeadlineExceeded::DeadlineExceeded(std::string phase, double budget_s)
    : std::runtime_error("phase_timeout(" + phase + ")"),
      phase_(std::move(phase)),
      budget_s_(budget_s) {}

void Watchdog::poll() const {
  if (armed() && token_.expired()) {
    throw DeadlineExceeded(phase_, budget_s_ > 0.0 ? budget_s_
                                                   : sim_budget_s_);
  }
}

}  // namespace dpr::util
