#pragma once
// Cooperative phase watchdog: a monotonic (wall-clock) deadline plus a
// shareable CancelToken that long-running loops poll. Nothing here is
// preemptive — a hung phase only dies because its inner loops check the
// token — which keeps the campaign pipeline free of signals and thread
// kills. The token is cheap to copy (shared atomic state) so it can be
// handed to GP jobs running on a different thread than the phase driver.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "util/clock.hpp"

namespace dpr::util {

/// Shared cancellation + deadline flag. Copies observe the same state, so
/// the campaign can arm one token and thread it through a BatchRunner's
/// worker loops. `expired()` is true once `cancel()` was called *or* the
/// monotonic deadline passed; a default token never expires.
class CancelToken {
 public:
  CancelToken() : state_(std::make_shared<State>()) {}

  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }

  /// Arm (or re-arm) a wall-clock deadline `seconds` from now. Clears a
  /// previous cancel() so one token can supervise successive phases.
  void arm_after(double seconds) {
    state_->cancelled.store(false, std::memory_order_relaxed);
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() +
        static_cast<std::int64_t>(seconds * 1e9);
    state_->deadline_ns.store(ns, std::memory_order_relaxed);
  }

  /// Arm (or re-arm) a *sim-time* deadline `budget` past the clock's
  /// current time. Catches the inverse failure of the wall-clock deadline:
  /// a phase burning sim-hours (e.g. waiting out bus sleeps) while still
  /// making real-time progress. The clock pointer is read from the thread
  /// that advances it — poll sites and the clock owner are the same
  /// campaign thread, so plain loads are safe.
  void arm_sim(const SimClock& clock, SimTime budget) {
    state_->cancelled.store(false, std::memory_order_relaxed);
    state_->sim_clock.store(&clock, std::memory_order_relaxed);
    state_->sim_deadline.store(clock.now() + budget,
                               std::memory_order_relaxed);
  }

  /// Remove the deadline (cancel() state is kept).
  void disarm() {
    state_->deadline_ns.store(0, std::memory_order_relaxed);
    state_->sim_clock.store(nullptr, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }

  bool expired() const {
    if (cancelled()) return true;
    const SimClock* sim = state_->sim_clock.load(std::memory_order_relaxed);
    if (sim != nullptr &&
        sim->now() >= state_->sim_deadline.load(std::memory_order_relaxed)) {
      return true;
    }
    const std::int64_t deadline =
        state_->deadline_ns.load(std::memory_order_relaxed);
    if (deadline == 0) return false;
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration_cast<std::chrono::nanoseconds>(now).count() >=
           deadline;
  }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<std::int64_t> deadline_ns{0};  ///< 0 = no deadline armed
    std::atomic<const SimClock*> sim_clock{nullptr};  ///< null = no sim cap
    std::atomic<SimTime> sim_deadline{0};
  };
  std::shared_ptr<State> state_;
};

/// Thrown by Watchdog::poll() when the armed phase ran past its budget.
/// FleetRunner turns this into a `phase_timeout(<phase>)` failure slot.
class DeadlineExceeded : public std::runtime_error {
 public:
  DeadlineExceeded(std::string phase, double budget_s);
  const std::string& phase() const { return phase_; }
  double budget_s() const { return budget_s_; }

 private:
  std::string phase_;
  double budget_s_ = 0.0;
};

/// Per-phase deadline driver. arm() names the phase and starts the clock;
/// poll() throws DeadlineExceeded once the budget is spent. The underlying
/// token can be handed to inner loops (GP generations) that want to stop
/// early instead of throwing.
class Watchdog {
 public:
  Watchdog() = default;

  /// Arm the wall-clock budget, plus an optional sim-time budget (seconds
  /// of *sim* time; 0 disables) checked against `clock`. Either budget
  /// running out throws the same phase_timeout(<phase>).
  void arm(std::string phase, double budget_s, double sim_budget_s = 0.0,
           const SimClock* clock = nullptr) {
    phase_ = std::move(phase);
    budget_s_ = budget_s;
    sim_budget_s_ = (clock != nullptr) ? sim_budget_s : 0.0;
    token_.disarm();
    if (budget_s_ > 0.0) token_.arm_after(budget_s_);
    if (sim_budget_s_ > 0.0) {
      token_.arm_sim(*clock,
                     static_cast<SimTime>(sim_budget_s_ * kSecond));
    }
  }

  void disarm() {
    budget_s_ = 0.0;
    sim_budget_s_ = 0.0;
    token_.disarm();
  }

  bool armed() const { return budget_s_ > 0.0 || sim_budget_s_ > 0.0; }
  const std::string& phase() const { return phase_; }

  /// Throws DeadlineExceeded when an armed budget has run out.
  void poll() const;

  const CancelToken& token() const { return token_; }

 private:
  CancelToken token_;
  std::string phase_;
  double budget_s_ = 0.0;
  double sim_budget_s_ = 0.0;
};

}  // namespace dpr::util
