#include "vehicle/actuator.hpp"

namespace dpr::vehicle {

std::optional<util::Bytes> Actuator::apply(
    std::uint8_t io_control_param, std::span<const std::uint8_t> state) {
  switch (io_control_param) {
    case 0x00: {  // returnControlToEcu
      phase_ = Phase::kEcuControlled;
      control_state_.clear();
      return util::Bytes{0x00};
    }
    case 0x01: {  // resetToDefault
      phase_ = Phase::kEcuControlled;
      control_state_.clear();
      return util::Bytes{0x01};
    }
    case 0x02: {  // freezeCurrentState ("prepare to control", §4.5)
      phase_ = Phase::kFrozen;
      return util::Bytes{0x02};
    }
    case 0x03: {  // shortTermAdjustment ("start controlling")
      if (phase_ == Phase::kEcuControlled) {
        // Real ECUs demand the freeze first; reject out-of-sequence
        // adjustments so the 3-message pattern is observable in traffic.
        return std::nullopt;
      }
      phase_ = Phase::kAdjusting;
      control_state_.assign(state.begin(), state.end());
      ++activations_;
      activation_log_.emplace_back(state.begin(), state.end());
      util::Bytes status{0x03};
      status.insert(status.end(), state.begin(), state.end());
      return status;
    }
    default:
      return std::nullopt;
  }
}

}  // namespace dpr::vehicle
