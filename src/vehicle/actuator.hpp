#pragma once
// Controllable vehicle components (actuators) and the IO-control state
// machine of §4.5: freeze current state (0x02) -> short-term adjustment
// (0x03 + control state) -> return control to ECU (0x00).
//
// The actuator records every activation so experiments (Table 13) can
// verify that a replayed request actually triggered the component.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/hex.hpp"

namespace dpr::vehicle {

class Actuator {
 public:
  enum class Phase { kEcuControlled, kFrozen, kAdjusting };

  Actuator() = default;
  explicit Actuator(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  Phase phase() const { return phase_; }
  bool active() const { return phase_ == Phase::kAdjusting; }
  const util::Bytes& control_state() const { return control_state_; }
  std::size_t activations() const { return activations_; }

  /// UDS-style IO-control parameter dispatch (first ECR byte). Returns
  /// the control-status bytes for the positive response, or nullopt if
  /// the transition is invalid (e.g. adjustment without a prior freeze).
  std::optional<util::Bytes> apply(std::uint8_t io_control_param,
                                   std::span<const std::uint8_t> state);

  /// History of control states that reached kAdjusting (for Table 13).
  const std::vector<util::Bytes>& activation_log() const {
    return activation_log_;
  }

 private:
  std::string name_;
  Phase phase_ = Phase::kEcuControlled;
  util::Bytes control_state_;
  std::size_t activations_ = 0;
  std::vector<util::Bytes> activation_log_;
};

}  // namespace dpr::vehicle
